// cbc-lint fixture: MUST trigger L1 (raw standard-library mutex).
// Locks outside util/thread_annotations.h bypass both the runtime rank
// checks and the Clang thread-safety capability model.
#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> guard(mutex_);
    value_ += 1;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace fixture
