// cbc-lint fixture: MUST trigger L3 (blocking call on the loop thread).
// A handler that sleeps freezes every fd and timer on the event loop.
#include <chrono>
#include <thread>

#include "net/event_loop.h"

namespace fixture {

class SlowHandler {
 public:
  explicit SlowHandler(cbc::net::EventLoop& loop) : loop_(loop) {}

  void on_readable() {
    loop_.assert_in_loop();
    // "Just a moment" on the loop thread stalls the whole node.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

 private:
  cbc::net::EventLoop& loop_;
};

}  // namespace fixture
