// cbc-lint fixture: MUST trigger L4 (writer appended after the envelope
// section). Re-framing layers splice section_bytes() verbatim assuming
// the section ends the frame; a trailer would be parsed as payload
// bytes by some receivers and dropped by others.
#include "causal/envelope.h"
#include "util/serde.h"

namespace fixture {

cbc::SharedBuffer frame_with_trailer(cbc::MessageId id) {
  cbc::Writer writer;
  writer.u64(7);  // prelude: fine before the section
  cbc::Envelope::encode_section(writer, id, "label", cbc::DepSpec::none(),
                                /*sent_at=*/0, /*payload=*/{});
  writer.u32(0xFEED);  // trailer after the section: corrupts splicing
  return writer.take_shared();
}

}  // namespace fixture
