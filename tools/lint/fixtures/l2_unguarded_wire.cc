// cbc-lint fixture: MUST trigger L2 (wire Reader without SerdeError
// guard). A truncated or corrupt datagram would throw out of the
// receive path instead of being counted and dropped.
#include "transport/transport.h"
#include "util/serde.h"

namespace fixture {

class NaiveReceiver {
 public:
  void on_receive(cbc::NodeId from, const cbc::WireFrame& frame) {
    cbc::Reader reader(frame.bytes());
    last_type_ = reader.u8();
    last_seq_ = reader.u64();
    (void)from;
  }

 private:
  unsigned last_type_ = 0;
  unsigned long long last_seq_ = 0;
};

}  // namespace fixture
