// cbc-lint fixture: MUST trigger L5 (metric family off the catalog).
// "kvstore" is not a registered family — the kv service's series live
// under `kv.*` (docs/OBSERVABILITY.md, cbc_kv_* in the CI baseline), so
// both registrations below would mint namespaces no gate watches.
#include "obs/metrics.h"

namespace fixture {

void register_off_catalog(cbc::obs::MetricsRegistry& registry,
                          cbc::obs::Hooks& hooks) {
  registry.counter("kvstore.requests");  // should be "kv.requests"
  hooks.prefix = "kvs";                  // should be "kv"
}

}  // namespace fixture
