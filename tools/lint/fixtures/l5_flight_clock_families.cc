// cbc-lint fixture: MUST trigger L5 exactly once. The flight recorder
// and clock-offset series are registered families — `flight.*` and
// `clock.*` pass — while the misspelled "flights" family below is off
// the catalog and must fire. Guards against the flight/clock families
// silently falling out of METRIC_FAMILIES.
#include "obs/metrics.h"

namespace fixture {

void register_flight_and_clock(cbc::obs::MetricsRegistry& registry,
                               const std::string& peer) {
  registry.counter("flight.records");           // ok: registered family
  registry.gauge("flight.capacity");            // ok: registered family
  registry.gauge("clock.offset_us." + peer);    // ok: registered family
  registry.counter("clock.samples");            // ok: registered family
  registry.counter("flights.records");          // BAD: off-catalog family
}

}  // namespace fixture
