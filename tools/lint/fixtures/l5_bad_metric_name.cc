// cbc-lint fixture: MUST trigger L5 (metric name outside the dotted
// lower_snake grammar). prometheus_name() would sanitize the dashes
// and capitals into underscores, silently diverging from the key the
// CI baseline (bench/cluster_metrics_baseline.prom) gates on.
#include "obs/metrics.h"

namespace fixture {

void register_badly(cbc::obs::MetricsRegistry& registry) {
  registry.counter("Frames-Dropped");  // should be e.g. "fixture.frames_dropped"
}

}  // namespace fixture
