#!/usr/bin/env python3
"""cbc-lint: project-specific static checks over the cbc source tree.

A small pure-Python pass (no compiler, no third-party packages) that
enforces repo invariants no general-purpose tool knows about. It reads
the C++ sources directly; when a compile_commands.json is supplied the
file set is taken from it, otherwise the tree is globbed.

Rules
-----
  L1 raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
                      <mutex> / <condition_variable> outside
                      src/util/thread_annotations.h. Everything must go
                      through cbc::Mutex / cbc::LockGuard so the runtime
                      rank checks and Clang thread-safety capabilities
                      cover every lock in the tree.
  L2 wire-guard       a Reader constructed from wire bytes (an argument
                      containing `.bytes()`) must sit in a function that
                      catches SerdeError: untrusted frames are dropped
                      and counted, never allowed to tear down the
                      receive path. `// cbc-lint: disable=L2` marks the
                      sites whose guard is established by every caller.
  L3 loop-blocking    functions that hold the EventLoop capability
                      (declared CBC_REQUIRES(...capability()) or calling
                      assert_in_loop()) must not block: no sleeps, no
                      joins, no condition-variable waits. One stalled
                      handler would freeze every fd on the loop.
  L4 envelope-freeze  after Envelope::encode_section(writer, ...) the
                      writer may only be finished (take / take_shared).
                      Appending after the section would break layers
                      that splice section_bytes() verbatim.
  L5 metric-name      string literals registered with .counter() /
                      .gauge() / .histogram() must follow the dotted
                      lower_snake grammar that prometheus_name() maps
                      onto bench/cluster_metrics_baseline.prom keys,
                      and the family segment — the first segment of a
                      full dotted literal, or a string assigned to an
                      obs `prefix` — must be one of the registered
                      families in docs/OBSERVABILITY.md (udp, fault,
                      reliable, recovery, batch, osend, asend, check,
                      explorer, stack, kv). An off-catalog family mints
                      a cbc_<family>_* namespace no CI baseline gates.

Exit status: 0 when clean, 1 when any rule fires, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = ("L1", "L2", "L3", "L4", "L5")

# The one file allowed to name raw standard-library primitives: it wraps
# them behind the annotated capability types.
L1_EXEMPT = "thread_annotations.h"

L1_PATTERN = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(_any)?)\b"
)
L1_INCLUDE = re.compile(r'#\s*include\s*<(mutex|condition_variable|shared_mutex)>')

READER_CTOR = re.compile(r"\bReader\s+\w+\s*\(([^;]*?)\)\s*;")

LOOP_REQUIRES = re.compile(
    r"\b([A-Za-z_]\w*)\s*\([^;{()]*\)\s*(?:const\s*)?"
    r"CBC_REQUIRES\s*\([^)]*capability\s*\(\)"
)
BLOCKING_CALL = re.compile(
    r"std::this_thread::sleep_for|std::this_thread::sleep_until|"
    r"\.join\s*\(|\.wait\s*\(|\.wait_for\s*\(|\.wait_until\s*\(|"
    r"\busleep\s*\(|\bsystem\s*\(|\bstd::getchar\b"
)

ENCODE_SECTION = re.compile(r"Envelope::encode_section\s*\(\s*(\w+)")
WRITER_APPEND = re.compile(
    r"\.(u8|u16|u32|u64|i64|boolean|str|blob|bytes|u64_vec)\s*\("
)

METRIC_CALL = re.compile(r"\.(counter|gauge|histogram)\s*\(")
# Registered metric families (the docs/OBSERVABILITY.md catalog): the
# first segment of every full metric name. New families must land in the
# catalog table and bench/cluster_metrics_baseline.prom alongside.
METRIC_FAMILIES = frozenset({
    "udp", "fault", "reliable", "recovery", "batch", "osend", "asend",
    "check", "explorer", "stack", "kv", "flight", "clock",
})
# An obs prefix assignment names a family for every series the instance
# registers (variables literally named `prefix`; `*_prefix` helpers for
# paths etc. don't match the word boundary).
PREFIX_ASSIGN = re.compile(r'\bprefix\s*=\s*"([^"]*)"')
# Dotted lower_snake segments; a leading/trailing dot is allowed for
# literals concatenated with a runtime prefix/suffix.
METRIC_LITERAL = re.compile(r"^\.?[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*\.?$")

SUPPRESS = re.compile(r"cbc-lint:\s*disable=(L\d)")


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Returns text of identical length/line structure with comments (and,
    unless keep_strings, string/char literal contents) spaced out."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j + 1 < n and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j + 1 < n:
                out[j] = " "
                out[j + 1] = " "
                j += 2
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            if not keep_strings:
                for k in range(i + 1, min(j, n)):
                    if text[k] != "\n":
                        out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int, rule: str) -> bool:
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(raw_lines):
            match = SUPPRESS.search(raw_lines[candidate - 1])
            if match and match.group(1) == rule:
                return True
    return False


def brace_pairs(code: str) -> list[tuple[int, int]]:
    """All matched {...} spans in comment/string-blanked code."""
    pairs, stack = [], []
    for i, c in enumerate(code):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def is_type_or_namespace_block(code: str, start: int) -> bool:
    """True when the brace at `start` opens a namespace/class/struct/enum
    body (or an extern block) rather than a function body."""
    prefix = code[max(0, start - 300):start]
    prefix = re.sub(r"\s+", " ", prefix).strip()
    if re.search(r"\b(namespace)\s*(\w|::)*\s*$", prefix):
        return True
    if re.search(r'\bextern\s*"C"\s*$', prefix):
        return True
    # `class Foo : public Bar` / `struct Foo final` / `enum class E`
    # end in identifiers, never in `)` the way function signatures do.
    if re.search(r"\b(class|struct|union|enum)\b[^;(){}]*$", prefix):
        return True
    return False


def function_spans(code: str) -> list[tuple[int, int]]:
    """Outermost brace spans that look like function bodies: the widest
    non-namespace/non-type block. Lambdas and statement blocks inside a
    function are subsumed by their enclosing span."""
    pairs = sorted(brace_pairs(code))
    spans: list[tuple[int, int]] = []
    for start, end in pairs:
        if is_type_or_namespace_block(code, start):
            continue
        container = None
        for s, e in spans:
            if s < start and end < e:
                container = (s, e)
                break
        if container is None:
            # keep only the widest: drop any previously kept span nested
            # inside this one, unless this one is nested in a kept span
            spans = [(s, e) for (s, e) in spans if not (start < s and e < end)]
            spans.append((start, end))
    # A function body directly inside a class (inline method) is still a
    # function span; one inside another function span was dropped above.
    return sorted(spans)


def enclosing_function(spans: list[tuple[int, int]], pos: int):
    for s, e in spans:
        if s <= pos <= e:
            return (s, e)
    return None


class Linter:
    def __init__(self):
        self.findings: list[Finding] = []
        # method names annotated CBC_REQUIRES(...capability()...) in any
        # scanned header: their out-of-line definitions are loop-only.
        self.loop_methods: set[str] = set()

    # ---- pass 1: collect cross-file facts --------------------------------

    def collect(self, path: Path, text: str):
        code = blank_comments_and_strings(text)
        for match in LOOP_REQUIRES.finditer(code):
            self.loop_methods.add(match.group(1))

    # ---- pass 2: per-file rules ------------------------------------------

    def lint_file(self, path: Path, text: str, rules: set[str]):
        raw_lines = text.splitlines()
        code = blank_comments_and_strings(text)
        code_with_strings = blank_comments_and_strings(text, keep_strings=True)
        spans = function_spans(code)

        def add(rule: str, pos: int, message: str):
            line = line_of(text, pos)
            if rule in rules and not suppressed(raw_lines, line, rule):
                self.findings.append(Finding(rule, path, line, message))

        if path.name != L1_EXEMPT:
            for match in L1_PATTERN.finditer(code):
                add("L1", match.start(),
                    f"raw {match.group(0)} — use cbc::Mutex/cbc::LockGuard "
                    "from util/thread_annotations.h")
            for match in L1_INCLUDE.finditer(code):
                add("L1", match.start(),
                    f"include <{match.group(1)}> — util/thread_annotations.h "
                    "is the only file that may include it")

        for match in READER_CTOR.finditer(code):
            args = match.group(1).replace("->bytes()", ".bytes()")
            if ".bytes()" not in args:
                continue
            span = enclosing_function(spans, match.start())
            body = code[span[0]:span[1]] if span else code
            if "catch" in body and "SerdeError" in body:
                continue
            # Reading back a locally-built Writer's bytes is not wire
            # input: decoding what this very function encoded can't fail.
            local_writers = {w.group(1)
                             for w in re.finditer(r"\bWriter\s+(\w+)", body)}
            sources = {s.group(1)
                       for s in re.finditer(r"(\w+)\.bytes\(\)", args)}
            if sources and sources <= local_writers:
                continue
            add("L2", match.start(),
                "Reader over wire bytes without a SerdeError guard in the "
                "same function — drop and count malformed frames, don't "
                "let them tear down the receive path")

        loop_bodies: list[tuple[int, int]] = []
        for span in spans:
            body = code[span[0]:span[1]]
            head = code[max(0, span[0] - 300):span[0]]
            named_loop_method = any(
                re.search(rf"\b{re.escape(name)}\s*\([^;{{]*\)\s*(const\s*)?$",
                          re.sub(r"\s+", " ", head).strip()[-200:])
                for name in self.loop_methods)
            if "assert_in_loop" in body or named_loop_method or \
                    "capability()" in head:
                loop_bodies.append(span)
        for span in loop_bodies:
            for match in BLOCKING_CALL.finditer(code, span[0], span[1]):
                add("L3", match.start(),
                    f"blocking call {match.group(0).strip()} in a "
                    "loop-capability function — one stalled handler freezes "
                    "every fd on the loop")

        for match in ENCODE_SECTION.finditer(code):
            writer = match.group(1)
            span = enclosing_function(spans, match.start())
            end = span[1] if span else len(code)
            tail = code[match.end():end]
            for append in re.finditer(
                    rf"\b{re.escape(writer)}{WRITER_APPEND.pattern}", tail):
                add("L4", match.end() + append.start(),
                    f"{writer}.{append.group(1)}() after "
                    "Envelope::encode_section — the envelope section must "
                    "end the frame (section_bytes() is spliced verbatim)")

        for match in METRIC_CALL.finditer(code_with_strings):
            # first argument: up to the matching close paren or first comma
            depth, i = 1, match.end()
            while i < len(code_with_strings) and depth > 0:
                c = code_with_strings[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif c == "," and depth == 1:
                    break
                i += 1
            first_arg = code_with_strings[match.end():i]
            for literal in re.finditer(r'"([^"]*)"', first_arg):
                name = literal.group(1)
                if name and not METRIC_LITERAL.match(name):
                    add("L5", match.start(),
                        f'metric name literal "{name}" does not match the '
                        "dotted lower_snake grammar of "
                        "bench/cluster_metrics_baseline.prom")
                elif "." in name and not name.startswith("."):
                    # Full dotted name: its family must be on the catalog.
                    family = name.split(".", 1)[0]
                    if family not in METRIC_FAMILIES:
                        add("L5", match.start(),
                            f'metric family "{family}" (in "{name}") is not '
                            "in the docs/OBSERVABILITY.md catalog — register "
                            "the family there and in "
                            "bench/cluster_metrics_baseline.prom first")

        for match in PREFIX_ASSIGN.finditer(code_with_strings):
            family = match.group(1)
            if family and family not in METRIC_FAMILIES:
                add("L5", match.start(),
                    f'obs prefix "{family}" is not a registered metric '
                    "family — every series it mints escapes the "
                    "docs/OBSERVABILITY.md catalog and the CI baselines")


def gather_files(root: Path, compile_commands: Path | None) -> list[Path]:
    if compile_commands:
        files: set[Path] = set()
        for entry in json.loads(compile_commands.read_text()):
            source = Path(entry["file"])
            if not source.is_absolute():
                source = Path(entry["directory"]) / source
            source = source.resolve()
            if root.resolve() in source.parents:
                files.add(source)
        # compile_commands lists .cpp units; headers ride along by glob.
        for header in root.rglob("*.h"):
            files.add(header.resolve())
        return sorted(files)
    return sorted(p for ext in ("*.h", "*.cpp", "*.cc")
                  for p in root.rglob(ext))


def run_lint(files: list[Path], rules: set[str]) -> list[Finding]:
    linter = Linter()
    texts = {}
    for path in files:
        try:
            texts[path] = path.read_text(errors="replace")
        except OSError as error:
            print(f"cbc-lint: cannot read {path}: {error}", file=sys.stderr)
            continue
    for path, text in texts.items():
        linter.collect(path, text)
    for path, text in sorted(texts.items()):
        linter.lint_file(path, text, rules)
    return linter.findings


def check_fixtures(fixture_dir: Path) -> int:
    """Every fixture l<N>_*.cc must trigger rule L<N> and nothing else."""
    failures = 0
    fixtures = sorted(fixture_dir.glob("l[0-9]_*.cc"))
    if not fixtures:
        print(f"cbc-lint: no fixtures found in {fixture_dir}", file=sys.stderr)
        return 1
    for fixture in fixtures:
        expected = fixture.name[:2].upper()  # l3_foo.cc -> L3
        findings = run_lint([fixture], set(RULES))
        fired = {f.rule for f in findings}
        if expected not in fired:
            print(f"FAIL {fixture.name}: expected {expected} to fire, "
                  f"got {sorted(fired) or 'nothing'}")
            failures += 1
        elif fired != {expected}:
            print(f"FAIL {fixture.name}: expected only {expected}, "
                  f"got {sorted(fired)}")
            for finding in findings:
                print(f"  {finding}")
            failures += 1
        else:
            print(f"ok   {fixture.name}: {expected} fired "
                  f"({len(findings)} finding(s))")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path("src"),
                        help="source tree to lint (default: src)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="optional compile_commands.json restricting "
                             "the translation-unit set")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--check-fixtures", action="store_true",
                        help="verify each fixture triggers exactly its rule")
    args = parser.parse_args()

    if args.check_fixtures:
        return check_fixtures(Path(__file__).parent / "fixtures")

    rules = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"cbc-lint: unknown rules {sorted(unknown)}", file=sys.stderr)
        return 2
    if not args.root.is_dir():
        print(f"cbc-lint: no such directory {args.root}", file=sys.stderr)
        return 2

    findings = run_lint(gather_files(args.root, args.compile_commands), rules)
    for finding in findings:
        print(finding)
    summary = f"{len(findings)} finding(s)" if findings else "clean"
    print(f"cbc-lint: {summary} over {args.root} "
          f"(rules {','.join(sorted(rules))})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
