// Distributed file service — the paper's opening example (§1): "a
// distributed file service may be implemented by a group of servers, with
// each server maintaining a local copy of files and exchanging messages
// with other servers in the group to update the various file copies in
// response to client requests."
//
// This example combines two of the library's ordering tools:
//  - reads/stat-like traffic flows as plain causal messages;
//  - a multi-file atomic update (several writes that must land in the
//    same relative order everywhere) uses a §5.2 SCOPED total order:
//    ASend({write1, write2, write3}, Occurs_After(tx-begin)).
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/scheduler.h"
#include "total/scoped_order.h"
#include "transport/sim_transport.h"
#include "util/serde.h"

int main() {
  using namespace cbc;

  sim::Scheduler scheduler;
  sim::SimNetwork network(scheduler,
                          std::make_unique<sim::UniformJitterLatency>(1000, 4000),
                          sim::FaultConfig{}, /*seed=*/17);
  SimTransport transport(network);
  const GroupView view(1, {0, 1, 2});

  // Each server applies delivered writes to its local file table.
  struct Server {
    std::unique_ptr<ScopedOrderMember> member;
    std::map<std::string, std::string> files;
    std::vector<std::string> applied;  // order of applied writes
  };
  std::vector<Server> servers(3);
  for (std::size_t i = 0; i < 3; ++i) {
    servers[i].member = std::make_unique<ScopedOrderMember>(
        transport, view, [&servers, i](const Delivery& delivery) {
          if (delivery.label().rfind("write:", 0) == 0) {
            Reader reader(delivery.payload());
            const std::string path = reader.str();
            const std::string content = reader.str();
            servers[i].files[path] = content;
            servers[i].applied.push_back(path);
          }
        });
  }

  auto write_payload = [](const std::string& path, const std::string& body) {
    Writer writer;
    writer.str(path);
    writer.str(body);
    return writer.take();
  };

  // --- A single-file write: plain causal traffic.
  servers[0].member->send_causal("write:motd",
                                 write_payload("/etc/motd", "hello"),
                                 DepSpec::none());
  scheduler.run();

  // --- A multi-file "transaction": server 1 opens an update scope; two
  //     servers contribute writes; the close releases them in the SAME
  //     order at every server.
  const ScopeId tx = servers[1].member->open_scope("tx-begin");
  scheduler.run();
  servers[1].member->send_scoped(tx, "write:passwd",
                                 write_payload("/etc/passwd", "v2"));
  servers[2].member->send_scoped(tx, "write:shadow",
                                 write_payload("/etc/shadow", "v2"));
  scheduler.run();
  servers[1].member->close_scope(tx, "tx-commit");
  scheduler.run();

  std::cout << "Per-server applied-write order:\n";
  for (std::size_t i = 0; i < 3; ++i) {
    std::cout << "  server " << i << ": ";
    for (const std::string& path : servers[i].applied) {
      std::cout << path << " ";
    }
    std::cout << "\n";
  }
  bool identical = true;
  for (std::size_t i = 1; i < 3; ++i) {
    identical = identical && servers[i].applied == servers[0].applied &&
                servers[i].files == servers[0].files;
  }
  std::cout << "\nAll file copies identical and applied in one order: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "The tx writes were concurrent on the wire (no server "
               "coordination), yet the scoped total order (§5.2 eq. 5) made "
               "every server apply them identically.\n";
  return identical ? 0 : 1;
}
