#!/usr/bin/env sh
# Launches a 3-node cluster with the observability layer on: every node
# traces each envelope, serves live Prometheus metrics off its event
# loop, and snapshots the page to disk. The script waits for the
# workload, scrapes a live endpoint, merges the per-node Chrome traces
# into one timeline (load it in Perfetto / chrome://tracing), and leaves
# all artifacts in OUT_DIR:
#
#   scrape.prom        live scrape of node 0's /metrics endpoint
#   metricsN.prom      each node's final snapshot file
#   traceN.json        each node's Chrome trace
#   trace_merged.json  the merged cross-process timeline
#   reportN.txt        each node's key=value report
#
# Usage: examples/observe_cluster.sh [BUILD_DIR] [ROUNDS] [OPS] [OUT_DIR] [OBJECT]
#
# OBJECT picks the replicated object the cluster runs (--object; any
# catalog name: counter, registry, document, card_game, set, queue).
# Defaults to $CBC_CLUSTER_OBJECT when set, else counter.
set -eu

BUILD_DIR=${1:-build}
ROUNDS=${2:-10}
OPS=${3:-20}
OUT=${4:-$(mktemp -d /tmp/cbc_observe.XXXXXX)}
OBJECT=${5:-${CBC_CLUSTER_OBJECT:-counter}}
NODE_BIN=$BUILD_DIR/src/net/cbc_node
MERGE_BIN=$BUILD_DIR/src/obs/cbc_trace_merge
for bin in "$NODE_BIN" "$MERGE_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR --target cbc_node cbc_trace_merge)" >&2
    exit 1
  fi
done
mkdir -p "$OUT"

trap 'kill $P0 $P1 $P2 2>/dev/null || true' EXIT INT TERM

cat > "$OUT/cluster.txt" <<EOF
0 127.0.0.1:9111
1 127.0.0.1:9112
2 127.0.0.1:9113
EOF

for i in 0 1 2; do
  "$NODE_BIN" --config "$OUT/cluster.txt" --id $i \
      --rounds "$ROUNDS" --ops "$OPS" --object "$OBJECT" \
      --report "$OUT/report$i.txt" --progress "$OUT/progress$i.txt" \
      --trace "$OUT/trace$i.json" \
      --metrics-port 0 --metrics-snapshot "$OUT/metrics$i.prom" &
  eval "P$i=\$!"
done

for i in 0 1 2; do
  while ! grep -q '^done=1' "$OUT/report$i.txt" 2>/dev/null; do sleep 0.1; done
done

# Scrape node 0's live endpoint (the kernel picked the port; the node
# published it in its report).
PORT=$(sed -n 's/^metrics_port=//p' "$OUT/report0.txt")
if command -v curl >/dev/null 2>&1; then
  curl -sf "http://127.0.0.1:$PORT/metrics" > "$OUT/scrape.prom"
else
  python3 -c "import urllib.request,sys;
sys.stdout.write(urllib.request.urlopen('http://127.0.0.1:$PORT/metrics').read().decode())" \
    > "$OUT/scrape.prom"
fi

# SIGTERM flushes each node's final report, snapshot, and trace.
kill -TERM $P0 $P1 $P2
wait $P0 $P1 $P2 2>/dev/null || true

"$MERGE_BIN" -o "$OUT/trace_merged.json" \
    "$OUT/trace0.json" "$OUT/trace1.json" "$OUT/trace2.json"

echo "--- scraped from node 0 (port $PORT)"
grep -E '^cbc_(osend_delivered|udp_datagrams_sent|batch_messages_in|check_stable_points) ' \
    "$OUT/scrape.prom" || true
echo "--- artifacts in $OUT"
ls "$OUT"
