// Distributed name service (paper §5.2): spontaneous registrations and
// resolutions with application-level inconsistency handling.
//
// Updates and queries carry NO ordering constraints — tracking causal
// dependencies in a large name-service group would be too expensive — so
// member registries may transiently diverge. Each query carries context
// (which updates its issuer had applied for the name); members that would
// answer differently detect the mismatch and DISCARD the query instead of
// returning a wrong answer.
#include <iostream>
#include <memory>
#include <vector>

#include "appcons/name_service.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "transport/sim_transport.h"

int main() {
  using namespace cbc;

  sim::Scheduler scheduler;
  // One deliberately slow link (server 0 -> server 2) creates the §5.2
  // interleaving: a query races ahead of the update it depends on.
  auto latency = std::make_unique<sim::MatrixLatency>(3, 1000, 0);
  latency->set(0, 2, 25000);
  sim::SimNetwork network(scheduler, std::move(latency), {}, 11);
  SimTransport transport(network);

  const GroupView view(1, {0, 1, 2});
  std::vector<std::unique_ptr<NameServiceMember>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<NameServiceMember>(transport, view));
  }

  // Server 0 registers a printer; the update reaches server 1 quickly but
  // crawls toward server 2.
  std::cout << "server0: upd(printer -> spool-a:631)\n";
  servers[0]->update("printer", "spool-a:631");
  scheduler.run_until(3000);

  // Server 1 resolves the name — its context says "I have seen 1 update".
  servers[1]->query("printer", [](const QueryOutcome& outcome) {
    std::cout << "server1 qry(printer) at issuer: "
              << (outcome.discarded ? "DISCARDED"
                                    : "ok -> " + outcome.value.value_or("<none>"))
              << "\n";
  });
  scheduler.run();

  std::cout << "\nPer-server §5.2 statistics:\n";
  for (int i = 0; i < 3; ++i) {
    const NameServiceStats& stats = servers[i]->stats();
    std::cout << "  server" << i << ": updates=" << stats.updates_applied
              << " queries=" << stats.queries_processed
              << " discarded=" << stats.queries_discarded << "\n";
  }
  std::cout
      << "\nServer 2 processed the query before the update arrived, saw a\n"
         "context mismatch (issuer had 1 update for 'printer', it had 0),\n"
         "and discarded the query rather than answering <none> — the\n"
         "paper's application-level consistency check in action.\n";

  const bool discarded_somewhere = servers[2]->stats().queries_discarded == 1;
  return discarded_somewhere ? 0 : 1;
}
