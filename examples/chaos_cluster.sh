#!/usr/bin/env sh
# Chaos smoke: a 3-node cluster run under a seeded FaultPlan (loss +
# added latency + a scripted partition on the survivor links), with
# stable-point checkpointing and the heartbeat failure detector on.
# Node 2 quiesces after QUIESCE_ROUND, is SIGKILLed mid-run — no final
# report, no graceful departure — and is relaunched with --recover: the
# fresh process fetches a survivor's checkpoint over the state-transfer
# frames, restores, and rejoins through leader admission. The script
# fails unless every member (including the recovered one) reports the
# identical stable-point digest with zero checker violations.
#
# Artifacts left in OUT_DIR: fault.txt, reportN.txt, metricsN.prom
# (gated in CI by bench/compare.py --metrics), flightN.bin (file-backed
# flight-recorder rings; flight2_killed.bin preserves the SIGKILLed
# incarnation's ring before the relaunch overwrites the path).
#
# Usage: examples/chaos_cluster.sh [BUILD_DIR] [ROUNDS] [OPS] [OUT_DIR]
set -eu

BUILD_DIR=${1:-build}
ROUNDS=${2:-8}
OPS=${3:-10}
OUT=${4:-$(mktemp -d /tmp/cbc_chaos.XXXXXX)}
QUIESCE_ROUND=2
SUSPECT_MS=4000
NODE_BIN=$BUILD_DIR/src/net/cbc_node
if [ ! -x "$NODE_BIN" ]; then
  echo "error: $NODE_BIN not built (run: cmake --build $BUILD_DIR --target cbc_node)" >&2
  exit 1
fi
mkdir -p "$OUT"

trap 'kill $P0 $P1 $P2 2>/dev/null || true' EXIT INT TERM

cat > "$OUT/cluster.txt" <<EOF
0 127.0.0.1:9121
1 127.0.0.1:9122
2 127.0.0.1:9123
EOF

# Adversity on the SURVIVOR links only: the victim's links stay clean so
# its pre-kill traffic drains promptly and the safe-kill ordering below
# is reached fast. The partition window (1s) is shorter than the suspect
# timeout, so it never triggers false suspicion — a false suspicion
# would let the leader close cycles without a live member's markers and
# fork the digest chain (see docs/ROBUSTNESS.md).
cat > "$OUT/fault.txt" <<EOF
seed 42
link 0 1 drop 0.08 delay 200 1500
link 1 0 drop 0.08 delay 200 1500
partition 2000000 1000000 0|1
EOF

start_node() {
  i=$1
  shift
  "$NODE_BIN" --config "$OUT/cluster.txt" --id "$i" \
      --rounds "$ROUNDS" --ops "$OPS" \
      --fault-plan "$OUT/fault.txt" \
      --checkpoint "$OUT/checkpoint$i.bin" \
      --suspect-timeout-ms "$SUSPECT_MS" \
      --report "$OUT/report$i.txt" --progress "$OUT/progress$i.txt" \
      --metrics-port 0 --metrics-snapshot "$OUT/metrics$i.prom" \
      --flight "$OUT/flight$i.bin" \
      "$@" &
  eval "P$i=\$!"
}

# Blocks until progress file $1 reports key $2 >= $3.
wait_progress() {
  while ! awk -F= -v key="$2" -v want="$3" \
      '$1 == key && $2 + 0 >= want { ok = 1 } END { exit !ok }' \
      "$1" 2>/dev/null; do
    sleep 0.1
  done
}

start_node 0
start_node 1
start_node 2 --quiesce-at-round "$QUIESCE_ROUND"

# Safe-kill ordering: the victim must be drained (quiesced=1) AND both
# survivors must have delivered its quiesce-round sync, so the transfer
# peer's checkpoint frontier covers every message node 2 ever sent
# (else the recovered process would reuse sequence numbers of its own
# uncovered messages and peers would dup-drop them).
wait_progress "$OUT/progress2.txt" quiesced 1
wait_progress "$OUT/progress0.txt" syncs $((QUIESCE_ROUND + 1))
wait_progress "$OUT/progress1.txt" syncs $((QUIESCE_ROUND + 1))

echo "--- SIGKILL node 2 (no departure, no report)"
kill -KILL "$P2"
wait "$P2" 2>/dev/null || true

# The killed incarnation left no report and flushed nothing — its only
# evidence is the file-backed flight ring, which survives SIGKILL by
# construction. Preserve it before the relaunch reuses the path, and
# prove it still decodes when the decoder CLI is built.
cp "$OUT/flight2.bin" "$OUT/flight2_killed.bin"
FLIGHT_BIN=$BUILD_DIR/src/obs/cbc_flight
if [ -x "$FLIGHT_BIN" ]; then
  echo "--- postmortem: flight ring of the killed node 2"
  "$FLIGHT_BIN" --summary "$OUT/flight2_killed.bin"
fi

# Hold the relaunch past the suspect timeout so the failure detector
# actually fires on the survivors: the leader marks node 2 departed,
# closes the stalled round without its marker, and the chaos gate can
# require suspect/alive events to be positive.
sleep $(( (SUSPECT_MS + 2000) / 1000 ))

echo "--- relaunch node 2 with --recover"
start_node 2 --recover

for i in 0 1 2; do
  while ! grep -q '^done=1' "$OUT/report$i.txt" 2>/dev/null; do sleep 0.1; done
done

# SIGTERM flushes each node's final report and metrics snapshot.
kill -TERM "$P0" "$P1" "$P2"
wait "$P0" "$P1" "$P2" 2>/dev/null || true

for i in 0 1 2; do
  echo "--- node $i"
  cat "$OUT/report$i.txt"
done

FAIL=0
D0=$(grep '^digest=' "$OUT/report0.txt")
for i in 1 2; do
  Di=$(grep "^digest=" "$OUT/report$i.txt")
  if [ "$Di" != "$D0" ]; then
    echo "DIGEST MISMATCH: node $i $Di vs node 0 $D0" >&2
    FAIL=1
  fi
done
for i in 0 1 2; do
  if ! grep -q '^violations=0' "$OUT/report$i.txt"; then
    echo "CHECKER VIOLATIONS at node $i" >&2
    FAIL=1
  fi
done
if ! grep -q '^recovered=1' "$OUT/report2.txt"; then
  echo "node 2 report does not carry recovered=1" >&2
  FAIL=1
fi
[ "$FAIL" -eq 0 ] || exit 1
echo "all members (incl. SIGKILLed + recovered node 2) agree: $D0"
echo "--- artifacts in $OUT"
ls "$OUT"
