// Conferencing (paper §1, §5.2, ref [11]): participants collaboratively
// annotate a shared design document — ON REAL THREADS.
//
// Each workstation agent is a Document replica over ThreadTransport: every
// endpoint runs its own delivery thread, and the transport injects random
// delivery jitter, so the interleaving is genuinely nondeterministic.
// Annotations are commutative (order-free set inserts); a `publish`
// checkpoint is the sync operation that forms a stable point at which all
// participants' windows agree.
#include <iostream>

#include "apps/document.h"
#include "replica/replica_group.h"
#include "transport/thread_transport.h"

int main() {
  using namespace cbc;

  ThreadTransport::Options options;
  options.max_jitter_us = 2000;  // reorder deliveries across threads
  options.seed = 7;
  ThreadTransport transport(options);

  ReplicaGroup<apps::Document> session(transport, 3, apps::Document::spec());

  // Three participants annotate concurrently from their own threads (the
  // submitting thread here, plus per-endpoint delivery threads).
  session.node(0).submit(apps::Document::annotate("intro", "motivate with the file-service example"));
  session.node(1).submit(apps::Document::annotate("intro", "cite ISIS and Psync"));
  session.node(2).submit(apps::Document::annotate("model", "define Occurs_After earlier"));
  session.node(0).submit(apps::Document::annotate("model", "add the dependency-graph figure"));
  session.node(1).submit(apps::Document::rewrite("eval", "TODO: add lock-protocol scenario"));
  transport.drain();  // let the burst propagate everywhere

  // The moderator publishes a checkpoint: a sync op closing the activity.
  session.node(0).submit(apps::Document::publish());
  transport.drain();

  std::cout << "Conference checkpoint reached. Participant views:\n";
  for (std::size_t i = 0; i < 3; ++i) {
    const apps::Document& doc = session.node(i).state();
    std::cout << "  participant " << i << ": " << doc.to_string() << "\n";
    for (const std::string& remark : doc.annotations("intro")) {
      std::cout << "      intro: " << remark << "\n";
    }
    for (const std::string& remark : doc.annotations("model")) {
      std::cout << "      model: " << remark << "\n";
    }
  }

  const bool agreed = session.states_agree() && session.stable_states_agree();
  std::cout << "\nAll participants agree at the checkpoint: "
            << (agreed ? "yes" : "NO") << "\n";
  std::cout << "Stable points observed by participant 0: "
            << session.node(0).detector().history().size() << "\n";
  return agreed ? 0 : 1;
}
