// Decentralized distributed lock (paper §6.2, Figure 5).
//
// Three nodes guard a shared "page" with the LOCK/TFR arbitration
// protocol: spontaneous LOCK requests are totally ordered by ASend, every
// node runs the same deterministic arbitration algorithm, and the lock
// walks the agreed sequence — consensus on each holder with zero
// dedicated agreement messages. The critical section increments a shared
// page counter; at the end all nodes hold the same page and observed the
// same grant history.
#include <iostream>
#include <memory>
#include <vector>

#include "lock/lock_arbiter.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "transport/sim_transport.h"

int main() {
  using namespace cbc;

  sim::Scheduler scheduler;
  sim::SimNetwork network(scheduler,
                          std::make_unique<sim::UniformJitterLatency>(1000, 1500),
                          sim::FaultConfig{}, /*seed=*/3);
  SimTransport transport(network);
  const GroupView view(1, {0, 1, 2});

  int shared_page = 0;  // the datum the lock guards
  std::vector<std::unique_ptr<LockArbiter>> nodes;
  LockArbiter::Options options;
  options.policy = ArbitrationPolicy::kRotating;  // fair over cycles

  for (NodeId i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<LockArbiter>(
        transport, view,
        [&, i](std::uint64_t cycle) {
          ++shared_page;  // critical section
          std::cout << "  t=" << scheduler.now() << "us  node " << i
                    << " holds the lock (cycle S=" << cycle
                    << "), page -> " << shared_page << "\n";
          // Work for 800us, then transfer.
          transport.schedule(800, [&, i] { nodes[i]->release(); });
        },
        options));
  }

  std::cout << "Three acquisition cycles, every node requesting each cycle:\n";
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (auto& node : nodes) {
      node->request();
    }
  }
  scheduler.run();

  std::cout << "\nGrant history (identical object at every node):\n  ";
  for (const auto& [holder, cycle] : nodes[0]->grant_history()) {
    std::cout << "n" << holder << "(S" << cycle << ") ";
  }
  std::cout << "\n";
  bool consensus = true;
  for (int i = 1; i < 3; ++i) {
    consensus = consensus &&
                nodes[static_cast<std::size_t>(i)]->grant_history() ==
                    nodes[0]->grant_history();
  }
  std::cout << "Consensus without agreement rounds: "
            << (consensus ? "yes" : "NO") << "; page = " << shared_page
            << " (expected 9)\n";
  std::cout << "Note the rotating policy: the first holder differs each "
               "cycle (§6.2 fairness).\n";
  return (consensus && shared_page == 9) ? 0 : 1;
}
