// Multiplayer card game (paper §5.1): relaxed turn order via explicit
// Occurs_After dependencies.
//
// Four players take turns in the pre-sequence 0,1,2,3 — but player 3's
// move only depends on player 1's card, so the paper relaxes the order:
//     card_1 -> card_3,   ||{card_3, card_2}.
// Player 3 plays as soon as it SEES card_1 in its window, concurrently
// with player 2. The trace below shows card_3 landing before card_2 at
// some players — and every player still ends the round with the identical
// table, because the only ordering that matters semantically was kept.
#include <iostream>
#include <memory>
#include <vector>

#include "apps/card_game.h"
#include "causal/osend.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "transport/sim_transport.h"

int main() {
  using namespace cbc;

  sim::Scheduler scheduler;
  sim::SimNetwork network(scheduler,
                          std::make_unique<sim::UniformJitterLatency>(1000, 2500),
                          sim::FaultConfig{}, /*seed=*/5);
  SimTransport transport(network);

  const std::uint32_t players = 4;
  const GroupView view(1, {0, 1, 2, 3});
  // deps[l] = the position whose card player l actually waits for:
  // player 1 waits for 0, player 2 waits for 1, player 3 waits for 1 (!).
  const apps::TurnPlan plan = apps::TurnPlan::relaxed({0, 0, 1, 1});

  std::vector<std::unique_ptr<OSendMember>> members;
  std::vector<apps::CardGame> tables(players);
  std::vector<MessageId> card_ids(players);

  for (std::uint32_t p = 0; p < players; ++p) {
    members.push_back(std::make_unique<OSendMember>(
        transport, view, [&, p](const Delivery& delivery) {
          Reader reader(delivery.payload());
          const std::uint64_t turn = reader.u64();
          const std::uint32_t who = reader.u32();
          const std::int64_t card = reader.i64();
          std::cout << "  t=" << scheduler.now() << "us  player " << p
                    << " sees card " << card << " from player " << who << "\n";
          // Apply to the local table.
          const auto op = apps::CardGame::card(turn, who, card);
          Reader args(op.args);
          tables[p].apply(op.kind, args);
          // Is it MY turn now? (I wait only for plan.dependency(me).)
          if (p > 0 && who == plan.dependency(p) &&
              card_ids[p].is_null()) {
            const auto my_op = apps::CardGame::card(0, p, 10 * p + 7);
            std::cout << "  t=" << scheduler.now() << "us  player " << p
                      << " PLAYS (after seeing player "
                      << plan.dependency(p) << ")\n";
            card_ids[p] = members[p]->osend("card", my_op.args,
                                            DepSpec::after(delivery.id));
          }
        }));
  }

  std::cout << "Round 1 — relaxed plan deps = {start, 0, 1, 1}:\n";
  const auto opening = apps::CardGame::card(0, 0, 7);
  card_ids[0] = members[0]->osend("card", opening.args, DepSpec::none());
  scheduler.run();

  std::cout << "\nFinal tables:\n";
  bool all_equal = true;
  for (std::uint32_t p = 0; p < players; ++p) {
    std::cout << "  player " << p << ": " << tables[p].to_string() << " [";
    for (std::uint32_t q = 0; q < players; ++q) {
      std::cout << tables[p].card_at(0, q) << (q + 1 < players ? " " : "");
    }
    std::cout << "]\n";
    all_equal = all_equal && tables[p] == tables[0];
  }
  std::cout << "\nAll tables identical despite relaxed ordering: "
            << (all_equal ? "yes" : "NO") << "\n";
  std::cout << "Causal edges kept: card_0 -> card_1 -> {card_2, card_3}; "
               "card_2 || card_3 ran concurrently.\n";
  return all_equal ? 0 : 1;
}
