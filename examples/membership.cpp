// Dynamic membership: join and leave with the flush protocol.
//
// The group starts as {0,1}; traffic flows; node 2 joins (view 2); more
// traffic; node 1 leaves (view 3). Every view installs at a consistent
// cut — no message is delivered in different views at different members —
// and the whole history is rendered as a space-time diagram.
#include <iostream>
#include <memory>
#include <vector>

#include "causal/flush.h"
#include "group/membership.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "transport/sim_transport.h"

int main() {
  using namespace cbc;

  sim::Scheduler scheduler;
  sim::SimNetwork network(scheduler,
                          std::make_unique<sim::UniformJitterLatency>(1000, 1500),
                          sim::FaultConfig{}, /*seed=*/13);
  SimTransport transport(network);
  sim::Trace trace;

  // The deterministic membership authority (views 1, 2, 3...).
  Membership membership({0, 1});

  auto make_member = [&](const GroupView& view) {
    return std::make_unique<FlushCoordinator>(
        transport, view,
        [&, node = transport.endpoint_count()](const Delivery& delivery) {
          trace.record(scheduler.now(), static_cast<NodeId>(node),
                       sim::TraceKind::kDeliver, delivery.label());
        },
        [&, node = transport.endpoint_count()](const GroupView& installed) {
          trace.record(scheduler.now(), static_cast<NodeId>(node),
                       sim::TraceKind::kMark,
                       "installed " + installed.to_string());
        });
  };

  std::vector<std::unique_ptr<FlushCoordinator>> nodes;
  nodes.push_back(make_member(membership.view()));
  nodes.push_back(make_member(membership.view()));

  // Traffic in view 1.
  trace.record(scheduler.now(), 0, sim::TraceKind::kSend, "hello-v1");
  nodes[0]->member().broadcast("hello-v1", {}, DepSpec::none());
  scheduler.run();

  // --- Node 2 joins: the authority mints view 2; the joiner is created
  //     directly in it; node 0 proposes, survivors flush and install.
  const GroupView& view2 = membership.join(2);
  nodes.push_back(make_member(view2));
  std::cout << "proposing " << view2.to_string() << " (join of node 2)\n";
  nodes[0]->propose(view2);
  scheduler.run();

  trace.record(scheduler.now(), 2, sim::TraceKind::kSend, "hi-from-joiner");
  nodes[2]->member().broadcast("hi-from-joiner", {}, DepSpec::none());
  scheduler.run();

  // --- Node 1 leaves: view 3 = {0, 2}.
  const GroupView& view3 = membership.leave(1);
  std::cout << "proposing " << view3.to_string() << " (leave of node 1)\n";
  nodes[0]->propose(view3);
  scheduler.run();

  trace.record(scheduler.now(), 0, sim::TraceKind::kSend, "v3-only");
  nodes[0]->member().broadcast("v3-only", {}, DepSpec::none());
  scheduler.run();

  std::cout << "\nSpace-time diagram (*, o, # = send, deliver, milestone):\n"
            << trace.render(3) << "\n";

  std::cout << "Final views: node0=" << nodes[0]->view().to_string()
            << " node1=" << nodes[1]->view().to_string() << " (left, stays in "
            << "its last view) node2=" << nodes[2]->view().to_string() << "\n";

  const bool ok = nodes[0]->view().id() == 3 && nodes[2]->view().id() == 3 &&
                  nodes[1]->view().id() == 2;
  std::cout << "Consistent installation: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
