// Quickstart: a replicated counter with causal broadcasting and
// stable-point reads, on the deterministic simulator.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart
//
// What it shows:
//  1. Assemble the stack: discrete-event scheduler -> simulated network
//     -> SimTransport -> a ReplicaGroup of three counter replicas.
//  2. Submit commutative operations (inc/dec) from different members —
//     they are broadcast with OSend and may be applied in different
//     orders at different replicas.
//  3. Submit a read. The §6.1 front-end manager orders it after every
//     open commutative request, so its delivery closes the causal
//     activity: a *stable point* where every replica holds the same
//     value. The deferred read returns that agreed value.
#include <iostream>
#include <memory>

#include "apps/counter.h"
#include "replica/replica_group.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "transport/sim_transport.h"

int main() {
  using namespace cbc;

  // --- 1. The simulated environment: 1ms links with 3ms jitter, so the
  //        network aggressively reorders messages.
  sim::Scheduler scheduler;
  sim::SimNetwork network(scheduler,
                          std::make_unique<sim::UniformJitterLatency>(1000, 3000),
                          sim::FaultConfig{}, /*seed=*/2024);
  SimTransport transport(network);

  // --- 2. Three replicas of an integer counter. Counter::spec() tells the
  //        protocol that inc/dec are commutative and rd/set are sync ops.
  ReplicaGroup<apps::Counter> group(transport, 3, apps::Counter::spec());

  // --- 3. Commutative traffic from different members (concurrent!).
  group.node(0).submit(apps::Counter::inc(5));
  group.node(1).submit(apps::Counter::inc(10));
  group.node(2).submit(apps::Counter::dec(3));
  scheduler.run();  // let the broadcasts propagate

  std::cout << "After the commutative burst, every replica already agrees\n"
            << "(all ops delivered; different orders would still commute):\n";
  for (std::size_t i = 0; i < 3; ++i) {
    std::cout << "  replica " << i << ": " << group.node(i).state().to_string()
              << "\n";
  }

  // --- 4. A deferred read: fires at the next stable point with the agreed
  //        value, identical at every member.
  for (std::size_t i = 0; i < 3; ++i) {
    group.node(i).read_at_next_stable(
        [i](const apps::Counter& counter, const StablePoint& point) {
          std::cout << "  replica " << i << " reads " << counter.value()
                    << " at stable point (cycle " << point.cycle
                    << ", sync msg " << point.sync_message.to_string()
                    << ", coverage "
                    << (point.coverage_complete ? "complete" : "INCOMPLETE")
                    << ")\n";
        });
  }

  // Any member's non-commutative operation closes the causal activity.
  std::cout << "\nSubmitting the sync read (closes the causal activity):\n";
  group.node(1).submit(apps::Counter::rd());
  scheduler.run();

  // --- 5. The dependency graph R(M) is the same at every member; print it.
  std::cout << "\nObserved dependency graph (DOT):\n"
            << group.node(0).osend().graph().to_dot("quickstart");

  std::cout << "Value at every replica: " << group.node(0).state().value()
            << " " << group.node(1).state().value() << " "
            << group.node(2).state().value() << " — expected 12\n";
  return group.node(0).state().value() == 12 ? 0 : 1;
}
