#!/usr/bin/env sh
# Launches a sharded causal KV cluster on loopback UDP — SHARDS
# independent causal groups of REPLICAS members each — then runs the
# built-in mixed get/put driver: sessions write their own keys, adopt
# each other's context tokens, and read across shards; a fence round
# closes each round. The driver asks every replica to drain at the end,
# so the per-replica reports below are final. Within each shard the
# stable digest line must be identical at every replica, and the driver
# must report value_mismatches=0 (no causally-stale read was ever
# served).
#
# Usage: examples/run_kv.sh [BUILD_DIR] [SHARDS] [REPLICAS] [ROUNDS] [OUT_DIR]
#
# With OUT_DIR given, artifacts (reports, layout, per-replica Prometheus
# metrics snapshots) persist there instead of a throwaway temp dir — CI
# gates the snapshots with bench/compare.py --metrics.
set -eu

BUILD_DIR=${1:-build}
SHARDS=${2:-4}
REPLICAS=${3:-3}
ROUNDS=${4:-3}
OUT_DIR=${5:-}
KV_BIN=$BUILD_DIR/src/kv/cbc_kv
if [ ! -x "$KV_BIN" ]; then
  echo "error: $KV_BIN not built (run: cmake --build $BUILD_DIR --target cbc_kv_node)" >&2
  exit 1
fi

if [ -n "$OUT_DIR" ]; then
  mkdir -p "$OUT_DIR"
  DIR=$OUT_DIR
  trap 'kill $(cat "$DIR"/pids 2>/dev/null) 2>/dev/null || true' EXIT INT TERM
else
  DIR=$(mktemp -d /tmp/cbc_kv.XXXXXX)
  trap 'kill $(cat "$DIR"/pids 2>/dev/null) 2>/dev/null || true; rm -rf "$DIR"' EXIT INT TERM
fi

# Layout: per shard, REPLICAS member addresses plus one router slot the
# driver's client socket binds (see src/kv/shard_map.h). Ports are taken
# from a base chosen per run; collisions simply fail the bind loudly.
BASE=${CBC_KV_BASE_PORT:-9400}
{
  echo "shards $SHARDS"
  echo "replicas $REPLICAS"
  port=$BASE
  s=0
  while [ "$s" -lt "$SHARDS" ]; do
    r=0
    while [ "$r" -le "$REPLICAS" ]; do
      echo "member $s $r 127.0.0.1:$port"
      port=$((port + 1))
      r=$((r + 1))
    done
    s=$((s + 1))
  done
} > "$DIR/layout.txt"

: > "$DIR/pids"
s=0
while [ "$s" -lt "$SHARDS" ]; do
  r=0
  while [ "$r" -lt "$REPLICAS" ]; do
    if [ -n "$OUT_DIR" ]; then
      "$KV_BIN" server --layout "$DIR/layout.txt" --shard "$s" --rank "$r" \
          --report "$DIR/report_s${s}_r${r}.txt" \
          --metrics-port 0 --metrics-snapshot "$DIR/metrics_s${s}_r${r}.prom" &
    else
      "$KV_BIN" server --layout "$DIR/layout.txt" --shard "$s" --rank "$r" \
          --report "$DIR/report_s${s}_r${r}.txt" &
    fi
    echo "$!" >> "$DIR/pids"
    r=$((r + 1))
  done
  s=$((s + 1))
done

sleep 0.5
"$KV_BIN" drive --layout "$DIR/layout.txt" \
    --sessions 3 --rounds "$ROUNDS" --ops 4 --report "$DIR/driver.txt"
wait $(cat "$DIR/pids") 2>/dev/null || true

echo "--- driver"
cat "$DIR/driver.txt"
s=0
while [ "$s" -lt "$SHARDS" ]; do
  D0=$(grep '^digest=' "$DIR/report_s${s}_r0.txt")
  r=1
  while [ "$r" -lt "$REPLICAS" ]; do
    Dr=$(grep '^digest=' "$DIR/report_s${s}_r${r}.txt")
    if [ "$Dr" != "$D0" ]; then
      echo "DIGEST MISMATCH: shard $s replica $r $Dr vs $D0" >&2
      exit 1
    fi
    r=$((r + 1))
  done
  echo "shard $s agrees: $D0"
  s=$((s + 1))
done
if ! grep -q '^value_mismatches=0' "$DIR/driver.txt"; then
  echo "STALE READ SERVED (value_mismatches != 0)" >&2
  exit 1
fi
echo "ok: every shard digest-equal, no stale read served"
