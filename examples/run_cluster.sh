#!/usr/bin/env sh
# Launches a 3-node replicated-counter cluster on loopback UDP, waits for
# every node to finish its rounds, and prints the per-node reports — the
# stable-point digest line must be identical at every member.
#
# Usage: examples/run_cluster.sh [BUILD_DIR] [ROUNDS] [OPS_PER_ROUND]
set -eu

BUILD_DIR=${1:-build}
ROUNDS=${2:-20}
OPS=${3:-50}
NODE_BIN=$BUILD_DIR/src/net/cbc_node
if [ ! -x "$NODE_BIN" ]; then
  echo "error: $NODE_BIN not built (run: cmake --build $BUILD_DIR --target cbc_node)" >&2
  exit 1
fi

DIR=$(mktemp -d /tmp/cbc_cluster.XXXXXX)
trap 'kill $P0 $P1 $P2 2>/dev/null || true; rm -rf "$DIR"' EXIT INT TERM

# Static membership: same file at every node; the line index is the
# member's group rank (see DESIGN.md).
cat > "$DIR/cluster.txt" <<EOF
0 127.0.0.1:9101
1 127.0.0.1:9102
2 127.0.0.1:9103
EOF

for i in 0 1 2; do
  "$NODE_BIN" --config "$DIR/cluster.txt" --id $i \
      --rounds "$ROUNDS" --ops "$OPS" \
      --report "$DIR/report$i.txt" --progress "$DIR/progress$i.txt" &
  eval "P$i=\$!"
done

# Wait until every node reports done=1, then ask all to report and exit.
for i in 0 1 2; do
  while ! grep -q '^done=1' "$DIR/report$i.txt" 2>/dev/null; do sleep 0.1; done
done
kill -TERM $P0 $P1 $P2
wait $P0 $P1 $P2 2>/dev/null || true

for i in 0 1 2; do
  echo "--- node $i"
  cat "$DIR/report$i.txt"
done

D0=$(grep '^digest=' "$DIR/report0.txt")
for i in 1 2; do
  Di=$(grep "^digest=" "$DIR/report$i.txt")
  if [ "$Di" != "$D0" ]; then
    echo "DIGEST MISMATCH: node $i $Di vs node 0 $D0" >&2
    exit 1
  fi
done
echo "all members agree: $D0"
