// ReliableEndpoint edge cases driven deterministically: instead of seeded
// random loss, a raw transport endpoint plays the peer and crafts exact
// frame sequences — duplicated data, gaps that force NACK recovery,
// out-of-window and stale control frames, unknown frame types. Every
// schedule here is exact, so each assertion pins one recovery rule.

#include <cstdint>
#include <gtest/gtest.h>
#include <span>
#include <vector>

#include "common/sim_env.h"
#include "transport/reliable.h"
#include "util/serde.h"

namespace cbc {
namespace {

constexpr std::uint8_t kDataType = 1;
constexpr std::uint8_t kControlType = 2;

/// Raw endpoint that records every arriving frame verbatim.
struct RawPeer {
  explicit RawPeer(Transport& transport) : transport(transport) {
    id = transport.add_endpoint([this](NodeId from, const WireFrame& frame) {
      received.emplace_back(from, std::vector<std::uint8_t>(
                                      frame.bytes().begin(),
                                      frame.bytes().end()));
    });
  }

  void send_data(NodeId to, SeqNo seq, std::uint64_t value) {
    Writer writer;
    writer.u8(kDataType);
    writer.u64(seq);
    writer.u64(value);
    transport.send(id, to, writer.take_shared());
  }

  void send_control(NodeId to, SeqNo cumulative,
                    std::vector<std::uint64_t> missing) {
    Writer writer;
    writer.u8(kControlType);
    writer.u64(cumulative);
    writer.u64_vec(missing);
    transport.send(id, to, writer.take_shared());
  }

  /// Frames received that are data frames (first byte == kData).
  [[nodiscard]] std::size_t data_frames() const {
    std::size_t count = 0;
    for (const auto& [from, bytes] : received) {
      count += !bytes.empty() && bytes[0] == kDataType;
    }
    return count;
  }

  /// Parses the most recent control frame as (cumulative, missing).
  [[nodiscard]] std::pair<SeqNo, std::vector<std::uint64_t>>
  last_control() const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (!it->second.empty() && it->second[0] == kControlType) {
        Reader reader(std::span(it->second));
        reader.u8();
        const SeqNo cumulative = reader.u64();
        return {cumulative, reader.u64_vec()};
      }
    }
    return {0, {}};
  }

  Transport& transport;
  NodeId id = kNoNode;
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> received;
};

struct EdgeRig {
  EdgeRig()
      : peer(env.transport),
        endpoint(env.transport,
                 [this](NodeId, const WireFrame& frame) {
                   Reader reader(frame.bytes());
                   delivered.push_back(reader.u64());
                 }) {}

  testkit::SimEnv env;  // loss-free, zero-jitter: every frame is hand-made
  RawPeer peer;
  ReliableEndpoint endpoint;
  std::vector<std::uint64_t> delivered;
};

TEST(ReliableEdge, DuplicateDataFrameIsSuppressedAndAckedImmediately) {
  EdgeRig rig;
  rig.peer.send_data(rig.endpoint.id(), 1, 42);
  rig.peer.send_data(rig.endpoint.id(), 1, 42);  // exact duplicate
  rig.env.run();
  EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{42}));
  EXPECT_EQ(rig.endpoint.stats().duplicates_suppressed, 1u);
  // The duplicate provokes an immediate ack so a retransmitting sender
  // can prune and stop — no control-interval wait.
  const auto [cumulative, missing] = rig.peer.last_control();
  EXPECT_EQ(cumulative, 1u);
  EXPECT_TRUE(missing.empty());
}

TEST(ReliableEdge, StaleDuplicateBelowContiguousIsSuppressed) {
  EdgeRig rig;
  rig.peer.send_data(rig.endpoint.id(), 1, 10);
  rig.peer.send_data(rig.endpoint.id(), 2, 11);
  rig.env.run_until(1000);
  ASSERT_EQ(rig.delivered.size(), 2u);
  rig.peer.send_data(rig.endpoint.id(), 1, 10);  // below contiguous now
  rig.env.run();
  EXPECT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.endpoint.stats().duplicates_suppressed, 1u);
}

TEST(ReliableEdge, GapTriggersNackAndRetransmitHealsIt) {
  EdgeRig rig;
  // seq 2 "lost": the receiver sees 1 then 3 and must NACK exactly {2}.
  rig.peer.send_data(rig.endpoint.id(), 1, 10);
  rig.peer.send_data(rig.endpoint.id(), 3, 12);
  rig.env.run_until(5000);  // past one control interval
  auto [cumulative, missing] = rig.peer.last_control();
  EXPECT_EQ(cumulative, 1u);
  EXPECT_EQ(missing, (std::vector<std::uint64_t>{2}));
  // Out-of-order delivery is the contract: 3 was handed up before 2.
  EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{10, 12}));

  rig.peer.send_data(rig.endpoint.id(), 2, 11);  // the "retransmission"
  rig.env.run();  // must quiesce: gap healed, ack sent, timers disarmed
  EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{10, 12, 11}));
  EXPECT_EQ(rig.env.scheduler.pending(), 0u);
  std::tie(cumulative, missing) = rig.peer.last_control();
  EXPECT_EQ(cumulative, 3u);
  EXPECT_TRUE(missing.empty());
}

TEST(ReliableEdge, OutOfWindowAckIsHarmless) {
  EdgeRig rig;
  rig.endpoint.send(rig.peer.id, std::vector<std::uint8_t>{1, 2, 3});
  rig.env.run_until(1500);
  ASSERT_EQ(rig.peer.data_frames(), 1u);
  // A control frame acking far beyond anything ever sent, NACKing seqs
  // that never existed: the sender must prune, resend nothing, and stop.
  rig.peer.send_control(rig.endpoint.id(), 100, {50, 77});
  rig.env.run();
  EXPECT_EQ(rig.endpoint.stats().retransmissions, 0u);
  EXPECT_EQ(rig.peer.data_frames(), 1u);  // no bogus retransmits
  EXPECT_EQ(rig.env.scheduler.pending(), 0u);  // unacked drained, quiesced
}

TEST(ReliableEdge, StaleControlFrameCausesNoRetransmit) {
  EdgeRig rig;
  // Nothing was ever sent to this peer; an unsolicited stale ack must be
  // a pure no-op.
  rig.peer.send_control(rig.endpoint.id(), 0, {});
  rig.env.run();
  EXPECT_EQ(rig.endpoint.stats().retransmissions, 0u);
  EXPECT_EQ(rig.env.scheduler.pending(), 0u);
}

TEST(ReliableEdge, NackForUnackedSeqRetransmitsImmediately) {
  EdgeRig rig;
  rig.endpoint.send(rig.peer.id, std::vector<std::uint8_t>{9});
  rig.env.run_until(1500);
  ASSERT_EQ(rig.peer.data_frames(), 1u);
  // Peer claims it never got seq 1: retransmit must not wait for the
  // sender-side timer.
  rig.peer.send_control(rig.endpoint.id(), 0, {1});
  rig.env.run_until(4000);  // well before retransmit_interval (10ms)
  EXPECT_EQ(rig.endpoint.stats().retransmissions, 1u);
  EXPECT_EQ(rig.peer.data_frames(), 2u);
  // The retransmitted frame is byte-identical to the original.
  EXPECT_EQ(rig.peer.received[0].second, rig.peer.received[1].second);
}

TEST(ReliableEdge, UnknownFrameTypeDroppedAndCounted) {
  EdgeRig rig;
  Writer writer;
  writer.u8(9);  // no such frame type
  writer.u64(1);
  rig.env.transport.send(rig.peer.id, rig.endpoint.id(),
                         writer.take_shared());
  // Untrusted datagram input: an unrecognized frame must be dropped and
  // counted, not thrown — a throw would unwind a real socket event loop.
  EXPECT_NO_THROW(rig.env.run());
  EXPECT_EQ(rig.endpoint.stats().malformed_frames, 1u);
  // The endpoint still works afterwards.
  rig.peer.send_data(rig.endpoint.id(), 1, 42);
  rig.env.run();
  EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{42}));
}

TEST(ReliableEdge, DeadPeerRetentionCappedAfterGraceWindow) {
  // A peer that goes silent long enough to be suspected must not pin
  // unbounded sender memory: once suspect_after_us + dead_peer_grace_us
  // elapses, retention toward it is capped (oldest seqs dropped first)
  // and every drop is counted in retained_capped.
  testkit::SimEnv env;
  RawPeer peer(env.transport);
  ReliableEndpoint::Options options;
  options.suspect_after_us = 10'000;
  options.dead_peer_grace_us = 20'000;
  options.max_retained_per_dead_peer = 4;
  ReliableEndpoint endpoint(
      env.transport, [](NodeId, const WireFrame&) {}, options);
  endpoint.monitor_peers({peer.id});

  for (std::uint64_t value = 0; value < 10; ++value) {
    Writer writer;
    writer.u64(value);
    endpoint.send(peer.id, writer.take_shared());
  }
  EXPECT_EQ(endpoint.unacked_total(), 10u);

  // Inside suspect + grace: the peer may be slow, not dead — everything
  // is still retained for retransmission.
  env.run_until(25'000);
  EXPECT_EQ(endpoint.unacked_total(), 10u);
  EXPECT_EQ(endpoint.stats().retained_capped, 0u);
  EXPECT_EQ(endpoint.suspected_peers(), std::vector<NodeId>{peer.id});

  // Past the grace window the liveness timer enforces the cap.
  env.run_until(60'000);
  EXPECT_EQ(endpoint.unacked_total(), 4u);
  EXPECT_EQ(endpoint.stats().retained_capped, 6u);

  // New sends toward the still-dead peer are re-capped on later ticks
  // rather than accumulating.
  for (std::uint64_t value = 10; value < 13; ++value) {
    Writer writer;
    writer.u64(value);
    endpoint.send(peer.id, writer.take_shared());
  }
  env.run_until(120'000);
  EXPECT_EQ(endpoint.unacked_total(), 4u);
  EXPECT_EQ(endpoint.stats().retained_capped, 9u);
}

TEST(ReliableEdge, DuplicateOfGapFrameStillAboveContiguousIsSuppressed) {
  EdgeRig rig;
  // seq 2 received twice while seq 1 is still missing: the copy in the
  // above-contiguous set must also dedupe.
  rig.peer.send_data(rig.endpoint.id(), 2, 20);
  rig.peer.send_data(rig.endpoint.id(), 2, 20);
  rig.env.run_until(1000);
  EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{20}));
  EXPECT_EQ(rig.endpoint.stats().duplicates_suppressed, 1u);
  rig.peer.send_data(rig.endpoint.id(), 1, 19);  // heal so the run quiesces
  rig.env.run();
  EXPECT_EQ(rig.env.scheduler.pending(), 0u);
}

}  // namespace
}  // namespace cbc
