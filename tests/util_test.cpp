// Unit tests for src/util: ensure, rng, serde, stats, logging.
#include <gtest/gtest.h>

#include <cmath>

#include "util/ensure.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"

namespace cbc {
namespace {

// ---------- ensure ----------

TEST(Ensure, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_NO_THROW(protocol_ensure(true, "ok"));
}

TEST(Ensure, FailingEnsureThrowsLogicError) {
  EXPECT_THROW(ensure(false, "broken"), LogicError);
}

TEST(Ensure, FailingRequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "bad arg"), InvalidArgument);
}

TEST(Ensure, FailingProtocolEnsureThrowsProtocolViolation) {
  EXPECT_THROW(protocol_ensure(false, "protocol broken"), ProtocolViolation);
}

TEST(Ensure, MessageContainsTextAndLocation) {
  try {
    ensure(false, "xyzzy-marker");
    FAIL() << "expected throw";
  } catch (const LogicError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("xyzzy-marker"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

// ---------- rng ----------

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.next_bool(0.3) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRoughlyRequestedMean) {
  Rng rng(23);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.next_exponential(50.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / trials, 50.0, 2.5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  // The child stream should differ from the parent continuation.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next_u64() != child.next_u64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleChangesOrderForLongVectors) {
  Rng rng(37);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

// ---------- serde ----------

TEST(Serde, ScalarRoundTrip) {
  Writer writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.i64(-42);
  writer.f64(3.14159);
  writer.boolean(true);
  writer.boolean(false);

  Reader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.14159);
  EXPECT_TRUE(reader.boolean());
  EXPECT_FALSE(reader.boolean());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, StringRoundTrip) {
  Writer writer;
  writer.str("hello");
  writer.str("");
  writer.str(std::string(1000, 'x'));
  Reader reader(writer.bytes());
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_EQ(reader.str(), std::string(1000, 'x'));
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, BlobAndVecRoundTrip) {
  Writer writer;
  const std::vector<std::uint8_t> blob{1, 2, 3, 255};
  writer.blob(blob);
  writer.u64_vec({10, 20, 30});
  writer.u64_vec({});
  Reader reader(writer.bytes());
  EXPECT_EQ(reader.blob(), blob);
  EXPECT_EQ(reader.u64_vec(), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_TRUE(reader.u64_vec().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serde, TruncatedInputThrows) {
  Writer writer;
  writer.u64(7);
  const auto& bytes = writer.bytes();
  Reader reader(std::span<const std::uint8_t>(bytes.data(), 4));
  EXPECT_THROW(reader.u64(), SerdeError);
}

TEST(Serde, TruncatedStringThrows) {
  Writer writer;
  writer.u32(100);  // claims a 100-byte string with no body
  Reader reader(writer.bytes());
  EXPECT_THROW(reader.str(), SerdeError);
}

TEST(Serde, EmptyReaderIsExhausted) {
  Reader reader(std::span<const std::uint8_t>{});
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_THROW(reader.u8(), SerdeError);
}

TEST(Serde, NegativeDoublesAndSpecials) {
  Writer writer;
  writer.f64(-0.0);
  writer.f64(1e300);
  writer.f64(-1e-300);
  Reader reader(writer.bytes());
  EXPECT_EQ(reader.f64(), -0.0);
  EXPECT_DOUBLE_EQ(reader.f64(), 1e300);
  EXPECT_DOUBLE_EQ(reader.f64(), -1e-300);
}

// ---------- stats ----------

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW((void)h.mean(), InvalidArgument);
  EXPECT_EQ(h.summary(), "n=0");
}

// Regression: percentile/summary must be well-defined at n=0 — metric
// plumbing asks for percentiles of streams that have seen nothing yet,
// and a throwing accessor would turn an idle node's scrape into a crash.
TEST(Histogram, EmptyPercentileIsZeroNotAThrow) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
  // Out-of-range q still rejects, empty or not.
  EXPECT_THROW((void)h.percentile(-1), InvalidArgument);
  EXPECT_THROW((void)h.percentile(101), InvalidArgument);
  EXPECT_EQ(h.summary(), "n=0");
  // Adding then resetting returns to the well-defined empty answers.
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.summary(), "n=0");
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    h.add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_NEAR(h.stddev(), std::sqrt(2.0), 1e-9);
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
  EXPECT_GT(h.percentile(99), 98.0);
}

TEST(Histogram, PercentileRejectsOutOfRange) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW((void)h.percentile(-1), InvalidArgument);
  EXPECT_THROW((void)h.percentile(101), InvalidArgument);
}

TEST(Histogram, MergeAndReset) {
  Histogram a;
  Histogram b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.reset();
  EXPECT_TRUE(a.empty());
}

TEST(Counters, IncrementAndQuery) {
  Counters c;
  EXPECT_EQ(c.get("missing"), 0u);
  c.inc("msgs");
  c.inc("msgs", 4);
  c.inc("drops");
  EXPECT_EQ(c.get("msgs"), 5u);
  EXPECT_EQ(c.get("drops"), 1u);
  const std::string summary = c.summary();
  EXPECT_NE(summary.find("msgs=5"), std::string::npos);
  EXPECT_NE(summary.find("drops=1"), std::string::npos);
}

// ---------- logging ----------

TEST(Logging, SinkReceivesEnabledLevels) {
  std::vector<std::pair<LogLevel, std::string>> records;
  LogConfig::set_sink([&records](LogLevel level, std::string_view message) {
    records.emplace_back(level, std::string(message));
  });
  LogConfig::set_min_level(LogLevel::kInfo);
  Log(LogLevel::kDebug) << "hidden";
  Log(LogLevel::kInfo) << "shown " << 42;
  Log(LogLevel::kError) << "error";
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "shown 42");
  EXPECT_EQ(records[1].first, LogLevel::kError);
  // Restore defaults for other tests.
  LogConfig::set_min_level(LogLevel::kWarn);
  LogConfig::set_sink([](LogLevel, std::string_view) {});
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace cbc
