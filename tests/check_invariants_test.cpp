// Unit tests for the invariant checker itself: each violation class is
// provoked directly by injecting synthetic deliveries through a stub
// member, and each clean pattern must stay clean (including the
// order-insensitivity of the stable-state digest). Also covers the ranked
// lock-order guard, which turns would-be deadlocks into LogicErrors.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cbc {
namespace {

using check::InvariantChecker;
using check::InvariantMonitor;
using check::ViolationKind;

/// A BroadcastMember whose deliveries are injected by the test, so the
/// checker can be probed with exact (possibly illegal) delivery streams.
class StubMember final : public BroadcastMember {
 public:
  explicit StubMember(NodeId id) : id_(id), view_(testkit::make_view(2)) {}

  void inject(MessageId id, std::string label,
              std::vector<MessageId> deps = {}) {
    Delivery delivery = Delivery::synthetic(
        id, std::move(label), DepSpec::after_all(std::move(deps)));
    log_.push_back(delivery);
    stats_.delivered += 1;
    if (deliver_) {
      deliver_(log_.back());
    }
  }

  [[nodiscard]] NodeId id() const override { return id_; }
  MessageId broadcast(std::string /*label*/,
                      std::vector<std::uint8_t> /*payload*/,
                      const DepSpec& /*deps*/) override {
    return MessageId{id_, ++next_seq_};
  }
  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }
  [[nodiscard]] const GroupView& view() const override { return view_; }
  void set_deliver(DeliverFn deliver) override { deliver_ = std::move(deliver); }
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  NodeId id_;
  GroupView view_;
  DeliverFn deliver_;
  SeqNo next_seq_ = 0;
  std::vector<Delivery> log_;
  OrderingStats stats_;
  mutable RecursiveMutex mutex_{kRankStack, "stub stack"};
};

struct CheckerRig {
  explicit CheckerRig(InvariantChecker::Options options =
                          InvariantChecker::Options{},
                      std::size_t members = 1)
      : monitor(options) {
    for (std::size_t i = 0; i < members; ++i) {
      auto stub = std::make_unique<StubMember>(static_cast<NodeId>(i));
      stubs.push_back(stub.get());
      checkers.push_back(monitor.attach(std::move(stub)));
    }
  }

  InvariantMonitor monitor;
  std::vector<StubMember*> stubs;
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
};

TEST(InvariantChecker, CleanCausalStreamReportsNothing) {
  CheckerRig rig;
  const MessageId a{0, 1};
  const MessageId b{1, 1};
  rig.stubs[0]->inject(a, "a");
  rig.stubs[0]->inject(b, "b", {a});
  EXPECT_TRUE(rig.monitor.log()->empty());
  EXPECT_TRUE(rig.monitor.check_quiescent());
  EXPECT_EQ(rig.checkers[0]->delivered_sequence(),
            (std::vector<MessageId>{a, b}));
}

TEST(InvariantChecker, DependencyViolationIsReported) {
  CheckerRig rig;
  const MessageId a{0, 1};
  const MessageId b{1, 1};
  rig.stubs[0]->inject(b, "b", {a});  // a was never delivered here
  ASSERT_EQ(rig.monitor.log()->size(), 1u);
  const check::Violation& violation = rig.monitor.log()->violations()[0];
  EXPECT_EQ(violation.kind, ViolationKind::kDependencyViolation);
  EXPECT_EQ(violation.message, b);
  EXPECT_NE(violation.detail.find(a.to_string()), std::string::npos);
  EXPECT_EQ(rig.checkers[0]->violation_count(), 1u);
}

TEST(InvariantChecker, DuplicateDeliveryIsReported) {
  CheckerRig rig;
  const MessageId a{0, 1};
  rig.stubs[0]->inject(a, "a");
  rig.stubs[0]->inject(a, "a");
  ASSERT_EQ(rig.monitor.log()->size(), 1u);
  EXPECT_EQ(rig.monitor.log()->violations()[0].kind,
            ViolationKind::kDuplicateDelivery);
  // The duplicate still flows upward; the checker observes, never filters.
  EXPECT_EQ(rig.checkers[0]->delivered_sequence().size(), 1u);
}

TEST(InvariantChecker, DeliveriesPassThroughToUpperLayer) {
  CheckerRig rig;
  std::vector<std::string> labels;
  rig.checkers[0]->set_deliver([&labels](const Delivery& delivery) {
    labels.push_back(delivery.label());
  });
  rig.stubs[0]->inject({0, 1}, "a");
  rig.stubs[0]->inject({1, 1}, "b");
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b"}));
}

TEST(InvariantChecker, SenderGapIsReportedAtQuiescence) {
  CheckerRig rig;
  rig.stubs[0]->inject({0, 1}, "a");
  rig.stubs[0]->inject({0, 3}, "c");  // seq 2 is missing
  EXPECT_TRUE(rig.monitor.log()->empty());  // only detectable at quiescence
  EXPECT_FALSE(rig.monitor.check_quiescent());
  ASSERT_EQ(rig.monitor.log()->size(), 1u);
  EXPECT_EQ(rig.monitor.log()->violations()[0].kind,
            ViolationKind::kSenderGap);
}

TEST(InvariantChecker, SetDivergenceIsReportedAcrossMembers) {
  CheckerRig rig(InvariantChecker::Options{}, 2);
  const MessageId a{0, 1};
  const MessageId b{1, 1};
  rig.stubs[0]->inject(a, "a");
  rig.stubs[0]->inject(b, "b");
  rig.stubs[1]->inject(a, "a");  // member 1 never saw b
  EXPECT_FALSE(rig.monitor.check_quiescent());
  bool found = false;
  for (const check::Violation& violation :
       rig.monitor.log()->violations()) {
    if (violation.kind == ViolationKind::kSetDivergence) {
      found = true;
      EXPECT_EQ(violation.message, b);  // names a diverging id
    }
  }
  EXPECT_TRUE(found) << rig.monitor.report();
}

TEST(InvariantChecker, OrderDivergenceRequiresTotalOrderPromise) {
  const MessageId a{0, 1};
  const MessageId b{1, 1};
  {
    // Causal members may disagree on the order of concurrent messages.
    CheckerRig causal(InvariantChecker::Options{}, 2);
    causal.stubs[0]->inject(a, "a");
    causal.stubs[0]->inject(b, "b");
    causal.stubs[1]->inject(b, "b");
    causal.stubs[1]->inject(a, "a");
    EXPECT_TRUE(causal.monitor.check_quiescent()) << causal.monitor.report();
  }
  {
    InvariantChecker::Options options;
    options.expect_total_order = true;
    CheckerRig total(options, 2);
    total.stubs[0]->inject(a, "a");
    total.stubs[0]->inject(b, "b");
    total.stubs[1]->inject(b, "b");
    total.stubs[1]->inject(a, "a");
    EXPECT_FALSE(total.monitor.check_quiescent());
    ASSERT_FALSE(total.monitor.log()->empty());
    EXPECT_EQ(total.monitor.log()->violations()[0].kind,
              ViolationKind::kOrderDivergence);
  }
}

InvariantChecker::Options stable_options() {
  CommutativitySpec spec;
  spec.mark_commutative("inc");
  InvariantChecker::Options options;
  options.stable_spec = spec;
  return options;
}

TEST(InvariantChecker, StableDigestIsOrderInsensitive) {
  CheckerRig rig(stable_options(), 2);
  const MessageId i1{0, 1};
  const MessageId i2{1, 1};
  const MessageId sync{0, 2};
  // Same commutative set, opposite delivery orders, same sync message.
  rig.stubs[0]->inject(i1, "inc(x)");
  rig.stubs[0]->inject(i2, "inc(x)");
  rig.stubs[0]->inject(sync, "read(x)", {i1, i2});
  rig.stubs[1]->inject(i2, "inc(x)");
  rig.stubs[1]->inject(i1, "inc(x)");
  rig.stubs[1]->inject(sync, "read(x)", {i1, i2});
  EXPECT_TRUE(rig.monitor.check_quiescent()) << rig.monitor.report();
  ASSERT_EQ(rig.checkers[0]->stable_digests().size(), 1u);
  EXPECT_EQ(rig.checkers[0]->stable_digests(),
            rig.checkers[1]->stable_digests());
  ASSERT_EQ(rig.checkers[0]->stable_history().size(), 1u);
  EXPECT_EQ(rig.checkers[0]->stable_history()[0].sync_message, sync);
  EXPECT_TRUE(rig.checkers[0]->stable_history()[0].coverage_complete);
}

TEST(InvariantChecker, DigestExemptKindFloatingAcrossCyclesStaysClean) {
  // A state-inert op whose delivery is NOT ordered relative to the sync
  // chain (e.g. a departure marker racing an in-flight sync) can land in
  // cycle 1 at one member and cycle 2 at another. Folding it into the
  // digest reports divergence even though states agree at both stable
  // points; digest_exempt_kinds removes exactly that false positive.
  const MessageId i1{0, 1};
  const MessageId floater{1, 1};
  const MessageId sync1{0, 2};
  const MessageId i2{0, 3};
  const MessageId sync2{0, 4};
  const auto run = [&](InvariantChecker::Options options) {
    options.stable_spec->mark_commutative("nop");
    CheckerRig rig(options, 2);
    rig.stubs[0]->inject(i1, "inc(x)");
    rig.stubs[0]->inject(floater, "nop");  // before sync1 here...
    rig.stubs[0]->inject(sync1, "read(x)", {i1});
    rig.stubs[0]->inject(i2, "inc(x)");
    rig.stubs[0]->inject(sync2, "read(x)", {i2});
    rig.stubs[1]->inject(i1, "inc(x)");
    rig.stubs[1]->inject(sync1, "read(x)", {i1});
    rig.stubs[1]->inject(floater, "nop");  // ...after sync1 there
    rig.stubs[1]->inject(i2, "inc(x)");
    rig.stubs[1]->inject(sync2, "read(x)", {i2});
    return rig.monitor.check_quiescent();
  };
  EXPECT_FALSE(run(stable_options()));  // digest includes the floater
  InvariantChecker::Options exempting = stable_options();
  exempting.digest_exempt_kinds = {"nop"};
  EXPECT_TRUE(run(exempting));
}

TEST(InvariantChecker, StableDivergenceIsReported) {
  CheckerRig rig(stable_options(), 2);
  const MessageId i1{0, 1};
  const MessageId i2{1, 1};
  const MessageId sync{0, 2};
  // Member 1 closes the cycle having processed a DIFFERENT commutative
  // set — states at the "stable" point cannot agree.
  rig.stubs[0]->inject(i1, "inc(x)");
  rig.stubs[0]->inject(sync, "read(x)", {i1});
  rig.stubs[1]->inject(i2, "inc(x)");
  rig.stubs[1]->inject(sync, "read(x)", {i1});
  EXPECT_FALSE(rig.monitor.check_quiescent());
  bool found = false;
  for (const check::Violation& violation :
       rig.monitor.log()->violations()) {
    found = found || violation.kind == ViolationKind::kStableDivergence;
  }
  EXPECT_TRUE(found) << rig.monitor.report();
}

TEST(InvariantChecker, ViolationReportNamesKindMemberAndMessage) {
  CheckerRig rig;
  rig.stubs[0]->inject({1, 1}, "b", {MessageId{0, 1}});
  const std::string report = rig.monitor.report();
  EXPECT_NE(report.find("dependency"), std::string::npos) << report;
  EXPECT_NE(report.find("s1:1"), std::string::npos) << report;
}

TEST(InvariantChecker, MetricsCountersTrackTheRun) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  // Both checkers share one registry and prefix, so the counters are the
  // group-wide aggregate across members.
  obs::MetricsRegistry registry;
  obs::Tracer tracer{obs::Tracer::Options{}};
  InvariantChecker::Options options = stable_options();
  options.obs = {&registry, &tracer, "check"};
  CheckerRig rig(options, 2);
  const MessageId i1{0, 1};
  const MessageId i2{1, 1};
  const MessageId sync{0, 2};
  for (StubMember* stub : rig.stubs) {
    stub->inject(i1, "inc(x)");
    stub->inject(i2, "inc(x)");
    stub->inject(sync, "read(x)", {i1, i2});
  }
  // One extra commutative delivery with an unseen dependency: a violation
  // (and, being commutative, no extra stable cycle).
  rig.stubs[0]->inject({1, 7}, "inc(x)", {MessageId{0, 9}});

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.at("check.deliveries"), 7.0);
  EXPECT_EQ(snap.at("check.violations"), 1.0);
  EXPECT_EQ(snap.at("check.stable_points"), 2.0);  // one cycle per member
  // Each closed cycle also leaves a stable_point instant in the trace.
  std::size_t stable_instants = 0;
  for (const obs::TraceEvent& event : tracer.events_snapshot()) {
    stable_instants += event.name == "stable_point" ? 1 : 0;
  }
  EXPECT_EQ(stable_instants, 2u);
}

// ---------- ranked lock-order guard (cbc::Mutex runtime discipline) ----

TEST(LockOrder, AscendingRanksAreAllowed) {
  RecursiveMutex stack_mutex{kRankStack, "stack"};
  Mutex reliable_mutex{kRankReliable, "reliable"};
  Mutex transport_mutex{kRankTransport, "batching"};
  const LockGuard stack_guard(stack_mutex);
  const LockGuard reliable_guard(reliable_mutex);
  const LockGuard transport_guard(transport_mutex);
  SUCCEED();
}

TEST(LockOrder, DescendingRankThrowsInsteadOfDeadlocking) {
  Mutex reliable_mutex{kRankReliable, "reliable"};
  RecursiveMutex stack_mutex{kRankStack, "stack"};
  const LockGuard reliable_guard(reliable_mutex);
  try {
    const LockGuard stack_guard(stack_mutex);
    FAIL() << "expected LogicError";
  } catch (const LogicError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("lock-order"), std::string::npos);
    EXPECT_NE(what.find("stack"), std::string::npos);
    EXPECT_NE(what.find("reliable"), std::string::npos);
  }
}

TEST(LockOrder, RecursiveReentryIsExempt) {
  RecursiveMutex stack_mutex{kRankStack, "stack"};
  Mutex reliable_mutex{kRankReliable, "reliable"};
  const LockGuard outer(stack_mutex);
  const LockGuard reliable_guard(reliable_mutex);
  // Re-entering the stack mutex this thread already owns is fine even
  // while a higher rank is held — it cannot block.
  const LockGuard inner(stack_mutex);
  SUCCEED();
}

TEST(LockOrder, SameRankSiblingsAreAllowed) {
  // Two members' stacks in one thread (delivery callback of one member
  // broadcasting on another) share a rank; that is not an inversion.
  RecursiveMutex mutex_a{kRankStack, "stack A"};
  RecursiveMutex mutex_b{kRankStack, "stack B"};
  const LockGuard guard_a(mutex_a);
  const LockGuard guard_b(mutex_b);
  SUCCEED();
}

TEST(LockOrder, ReleaseRestoresCleanState) {
  Mutex transport_mutex{kRankTransport, "batching"};
  RecursiveMutex stack_mutex{kRankStack, "stack"};
  {
    const LockGuard transport_guard(transport_mutex);
  }
  // After release, acquiring a lower rank is legal again.
  const LockGuard stack_guard(stack_mutex);
  SUCCEED();
}

TEST(LockOrder, CondVarWaitPreservesRankBookkeeping) {
  // A CondVar wait releases the native mutex while blocked but keeps the
  // thread's rank entry; after the wait returns, the discipline still
  // sees the lock held and release restores a clean slate.
  Mutex mu{kRankReliable, "cv mutex"};
  CondVar cv;
  bool ready = true;
  {
    const LockGuard guard(mu);
    cv.wait(mu, [&] { return ready; });
    // Still holding mu at its rank: acquiring a LOWER rank must throw.
    RecursiveMutex stack_mutex{kRankStack, "stack"};
    EXPECT_THROW({ const LockGuard bad(stack_mutex); }, LogicError);
  }
  RecursiveMutex stack_mutex{kRankStack, "stack"};
  const LockGuard fine(stack_mutex);
  SUCCEED();
}

}  // namespace
}  // namespace cbc
