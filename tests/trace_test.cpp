// Tests for the trace recorder and space-time diagram renderer.
#include <gtest/gtest.h>

#include "causal/osend.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "sim/trace.h"
#include "util/ensure.h"

namespace cbc::sim {
namespace {

TEST(Trace, RecordsAndFiltersByNode) {
  Trace trace;
  trace.record(10, 0, TraceKind::kSend, "m1");
  trace.record(20, 1, TraceKind::kDeliver, "m1");
  trace.record(5, 1, TraceKind::kMark, "boot");
  EXPECT_EQ(trace.size(), 3u);
  const auto at1 = trace.at_node(1);
  ASSERT_EQ(at1.size(), 2u);
  EXPECT_EQ(at1[0].detail, "boot");  // sorted by time
  EXPECT_EQ(at1[1].detail, "m1");
}

TEST(Trace, HappensBeforeQueries) {
  Trace trace;
  trace.record(10, 0, TraceKind::kSend, "send m1");
  trace.record(25, 1, TraceKind::kDeliver, "deliver m1");
  EXPECT_TRUE(trace.happens_before(0, "send m1", 1, "deliver m1"));
  EXPECT_FALSE(trace.happens_before(1, "deliver m1", 0, "send m1"));
  EXPECT_FALSE(trace.happens_before(0, "nonexistent", 1, "deliver m1"));
}

TEST(Trace, RenderProducesColumnsAndGlyphs) {
  Trace trace;
  trace.record(100, 0, TraceKind::kSend, "m");
  trace.record(250, 1, TraceKind::kDeliver, "m");
  trace.record(300, 1, TraceKind::kMark, "stable");
  const std::string diagram = trace.render(2);
  EXPECT_NE(diagram.find("node 0"), std::string::npos);
  EXPECT_NE(diagram.find("node 1"), std::string::npos);
  EXPECT_NE(diagram.find("* m"), std::string::npos);
  EXPECT_NE(diagram.find("o m"), std::string::npos);
  EXPECT_NE(diagram.find("# stable"), std::string::npos);
  EXPECT_NE(diagram.find("100"), std::string::npos);
}

TEST(Trace, RenderValidation) {
  Trace trace;
  EXPECT_THROW((void)trace.render(0), InvalidArgument);
  EXPECT_THROW((void)trace.render(2, 3), InvalidArgument);
}

TEST(Trace, WiredToARealScenario) {
  // Tap the network plus protocol sends into a trace and check the
  // diagram tells the Figure-2 story: send at one node precedes delivery
  // at the others.
  testkit::SimEnv env;
  Trace trace;
  env.network.set_delivery_tap([&](NodeId from, NodeId to,
                                   std::span<const std::uint8_t>,
                                   SimTime at) {
    trace.record(at, to, TraceKind::kDeliver,
                 "wire from n" + std::to_string(from));
  });
  testkit::Group<cbc::OSendMember> group(env.transport, 3);
  trace.record(env.scheduler.now(), 0, TraceKind::kSend, "osend mk");
  group[0].osend("mk", {}, cbc::DepSpec::none());
  env.run();
  EXPECT_TRUE(trace.happens_before(0, "osend mk", 1, "wire from n0"));
  EXPECT_TRUE(trace.happens_before(0, "osend mk", 2, "wire from n0"));
  const std::string diagram = trace.render(3);
  EXPECT_NE(diagram.find("osend mk"), std::string::npos);
}

}  // namespace
}  // namespace cbc::sim
