// UdpTransport over real loopback sockets: cluster-config parsing, raw
// datagram delivery, the endpoint-registration threading contract, and
// the decorator-composition check — the same (Batching + reliability)
// stack that runs over SimTransport must behave identically over UDP,
// including under forced datagram loss.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "causal/osend.h"
#include "common/sim_env.h"
#include "common/udp_ports.h"
#include "fault/chaos_transport.h"
#include "fault/fault_plan.h"
#include "group/group_view.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/udp_transport.h"
#include "transport/batching.h"
#include "transport/reliable.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {
namespace {

using net::ClusterConfig;
using net::EventLoop;
using net::UdpTransport;

// ---------- ClusterConfig ----------

TEST(ClusterConfig, ParsesIdsCommentsAndBlanks) {
  const ClusterConfig config = ClusterConfig::parse(
      "# cluster\n"
      "0 127.0.0.1:9001\n"
      "\n"
      "1 localhost:9002\n"
      "2 10.0.0.7:9003\n");
  ASSERT_EQ(config.size(), 3u);
  EXPECT_EQ(config.member(1).host, "localhost");
  EXPECT_EQ(config.member(2).port, 9003);
  EXPECT_EQ(config.to_view(), (std::vector<NodeId>{0, 1, 2}));
  // Reverse lookup: sockaddr identity back to a node id.
  EXPECT_EQ(config.node_at(0x7F000001, 9001), std::optional<NodeId>{0});
  EXPECT_EQ(config.node_at(0x7F000001, 9999), std::nullopt);
}

TEST(ClusterConfig, RejectsMalformedInput) {
  EXPECT_THROW(ClusterConfig::parse(""), InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 nocolon\n"), InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 127.0.0.1:0\n"), InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 127.0.0.1:70000\n"), InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("1 127.0.0.1:9001\n"), InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 127.0.0.1:9001\n2 127.0.0.1:9002\n"),
               InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 127.0.0.1:9001 extra\n"),
               InvalidArgument);
  EXPECT_THROW(ClusterConfig::parse("0 999.1.1.1:9001\n"), InvalidArgument);
}

// ---------- Raw datagram delivery ----------

/// Runs the loop on a worker thread for a test body executing on the
/// main thread; always stops and joins on destruction.
class LoopRunner {
 public:
  explicit LoopRunner(EventLoop& loop) : loop_(loop) {
    thread_ = std::thread([this] { loop_.run(); });
    // Wait until the loop is actually live so the threading contract
    // tests exercise the *running* state.
    while (!loop_.running()) {
      std::this_thread::yield();
    }
  }
  ~LoopRunner() {
    loop_.stop();
    thread_.join();
  }

 private:
  EventLoop& loop_;
  std::thread thread_;
};

TEST(UdpTransport, DeliversDatagramsBetweenLocalEndpoints) {
  const auto ports = testkit::reserve_udp_ports(2);
  EventLoop loop;
  UdpTransport udp(loop, ClusterConfig::localhost(ports));

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, std::uint64_t>> received;
  udp.add_endpoint([](NodeId, const WireFrame&) {});  // node 0: sender only
  udp.add_endpoint([&](NodeId from, const WireFrame& frame) {
    Reader reader(frame.bytes());
    const std::lock_guard<std::mutex> guard(mutex);
    received.emplace_back(from, reader.u64());
    cv.notify_all();
  });
  ASSERT_EQ(udp.endpoint_count(), 2u);

  LoopRunner runner(loop);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Writer writer;
    writer.u64(i);
    udp.send(0, 1, writer.take_shared());
  }
  std::unique_lock<std::mutex> wait(mutex);
  ASSERT_TRUE(cv.wait_for(wait, std::chrono::seconds(5),
                          [&] { return received.size() == 10u; }))
      << "only " << received.size() << " datagrams arrived";
  for (const auto& [from, value] : received) {
    EXPECT_EQ(from, 0u);
  }
  EXPECT_GE(udp.stats().datagrams_sent, 10u);
  EXPECT_GE(udp.stats().datagrams_received, 10u);
}

TEST(UdpTransport, OversizeSendIsDroppedAndCounted) {
  const auto ports = testkit::reserve_udp_ports(2);
  EventLoop loop;
  UdpTransport::Options options;
  options.max_datagram_bytes = 64;
  UdpTransport udp(loop, ClusterConfig::localhost(ports), options);
  udp.add_endpoint([](NodeId, const WireFrame&) {});
  udp.add_endpoint([](NodeId, const WireFrame&) {});
  udp.send(0, 1, std::vector<std::uint8_t>(1000, 0xAB));
  EXPECT_EQ(udp.stats().oversize_drops, 1u);
  EXPECT_EQ(udp.stats().datagrams_sent, 0u);
}

// ---------- Endpoint-registration threading contract (transport.h) ----------

TEST(UdpTransport, AddEndpointBeforeRunWorks) {
  const auto ports = testkit::reserve_udp_ports(1);
  EventLoop loop;
  UdpTransport udp(loop, ClusterConfig::localhost(ports));
  EXPECT_EQ(udp.add_endpoint([](NodeId, const WireFrame&) {}), 0u);
  EXPECT_EQ(udp.endpoint_count(), 1u);
}

TEST(UdpTransport, LateAddEndpointOffLoopThreadFailsLoudly) {
  const auto ports = testkit::reserve_udp_ports(2);
  EventLoop loop;
  UdpTransport udp(loop, ClusterConfig::localhost(ports));
  udp.add_endpoint([](NodeId, const WireFrame&) {});
  LoopRunner runner(loop);
  // The documented contract: once the loop runs, registration from any
  // other thread is an InvalidArgument, not a silent race.
  EXPECT_THROW(udp.add_endpoint([](NodeId, const WireFrame&) {}),
               InvalidArgument);
}

TEST(UdpTransport, LateAddEndpointOnLoopThreadWorks) {
  const auto ports = testkit::reserve_udp_ports(2);
  EventLoop loop;
  UdpTransport udp(loop, ClusterConfig::localhost(ports));
  udp.add_endpoint([](NodeId, const WireFrame&) {});
  LoopRunner runner(loop);
  std::mutex mutex;
  std::condition_variable cv;
  bool added = false;
  loop.post([&] {
    const NodeId id = udp.add_endpoint([](NodeId, const WireFrame&) {});
    EXPECT_EQ(id, 1u);
    const std::lock_guard<std::mutex> guard(mutex);
    added = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> wait(mutex);
  ASSERT_TRUE(
      cv.wait_for(wait, std::chrono::seconds(5), [&] { return added; }));
  EXPECT_EQ(udp.endpoint_count(), 2u);
}

// ---------- Decorator composition: Batching + reliability over UDP ----------

/// A sender/receiver pair of OSend members (reliability enabled) over a
/// BatchingTransport over any Transport. The sender issues a FIFO
/// dependency chain, which pins the delivery order: every correct run —
/// simulated or real, lossy or not — must produce the same sequence.
struct ChainStack {
  explicit ChainStack(Transport& transport)
      : batching(transport),
        view(testkit::make_view(2)),
        sender(batching, view, [](const Delivery&) {}, member_options()),
        receiver(
            batching, view,
            [this](const Delivery& delivery) {
              const std::lock_guard<std::mutex> guard(mutex);
              delivered.push_back(delivery.label());
            },
            member_options()) {}

  static OSendMember::Options member_options() {
    OSendMember::Options options;
    options.reliability.enabled = true;
    return options;
  }

  void broadcast_chain(std::size_t messages) {
    MessageId previous = MessageId::null();
    for (std::size_t i = 0; i < messages; ++i) {
      Writer payload;
      payload.u64(i);
      previous = sender.broadcast("m" + std::to_string(i), payload.take(),
                                  DepSpec::after(previous));
    }
  }

  [[nodiscard]] std::size_t delivered_count() {
    const std::lock_guard<std::mutex> guard(mutex);
    return delivered.size();
  }

  BatchingTransport batching;
  GroupView view;
  OSendMember sender;
  OSendMember receiver;
  std::mutex mutex;
  std::vector<std::string> delivered;
};

TEST(UdpComposition, LossyUdpMatchesSimTransportDeliveryOrder) {
  constexpr std::size_t kMessages = 200;

  // Reference run: deterministic simulator, no loss.
  testkit::SimEnv env;
  ChainStack sim_stack(env.transport);
  sim_stack.broadcast_chain(kMessages);
  env.run();
  ASSERT_EQ(sim_stack.delivered.size(), kMessages);

  // Real run: loopback UDP under a seeded ChaosTransport dropping ~20%
  // of frames per link (the FaultPlan replacement for the old test-only
  // send-filter shim).
  const auto ports = testkit::reserve_udp_ports(2);
  EventLoop loop;
  UdpTransport udp(loop, ClusterConfig::localhost(ports));
  fault::ChaosTransport::Options chaos_options;
  chaos_options.plan =
      fault::FaultPlan::parse("seed 7\nlink * * drop 0.2\n");
  fault::ChaosTransport chaos(udp, std::move(chaos_options));
  ChainStack udp_stack(chaos);  // endpoints register before the loop runs
  {
    LoopRunner runner(loop);
    udp_stack.broadcast_chain(kMessages);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (udp_stack.delivered_count() < kMessages &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // loop stopped and joined: the stack is quiescent below this line

  // Identical delivery order: the FIFO dependency chain pins it, and the
  // reliability layer must have healed every dropped frame.
  EXPECT_EQ(udp_stack.delivered, sim_stack.delivered);
  EXPECT_GT(chaos.stats().drops, 0u);
  EXPECT_EQ(udp.stats().handler_parse_errors, 0u);
}

}  // namespace
}  // namespace cbc
