// Ephemeral UDP port reservation for loopback tests and harnesses.
//
// Binds throwaway sockets to 127.0.0.1:0, reads back the kernel-assigned
// ports, and closes the sockets. There is a small window in which another
// process could grab a returned port, but the kernel cycles ephemeral
// ports, so immediate reuse by a stranger is vanishingly rare — the
// standard trade-off for fixture code that must hand a whole port *set*
// to a config file before any socket opens.
#pragma once

#include <arpa/inet.h>
#include <cstdint>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "util/ensure.h"

namespace cbc::testkit {

inline std::vector<std::uint16_t> reserve_udp_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    require(fd >= 0, "reserve_udp_ports: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    require(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0,
            "reserve_udp_ports: bind() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    require(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "reserve_udp_ports: getsockname() failed");
    fds.push_back(fd);  // hold until all are reserved: ports must be distinct
    ports.push_back(ntohs(bound.sin_port));
  }
  for (const int fd : fds) {
    ::close(fd);
  }
  return ports;
}

}  // namespace cbc::testkit
