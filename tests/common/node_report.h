// Parsed key=value report/progress files — the artifact format every
// forked binary (cbc_node, cbc_kv) writes atomically and every harness
// polls. Shared by ClusterHarness and KvHarness.
#pragma once

#include <fstream>
#include <map>
#include <optional>
#include <string>

namespace cbc::testkit {

/// One node's parsed key=value report file.
using NodeReport = std::map<std::string, std::string>;

[[nodiscard]] inline std::optional<NodeReport> parse_kv_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  NodeReport report;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq != std::string::npos) {
      report[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  if (report.empty()) {
    return std::nullopt;
  }
  return report;
}

}  // namespace cbc::testkit
