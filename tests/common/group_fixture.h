// Shared fixture: a group of N broadcast members of any discipline over a
// fresh SimEnv transport.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "causal/delivery.h"
#include "common/sim_env.h"

namespace cbc::testkit {

/// Constructs N members (ids 0..N-1) of the given member type over a
/// transport. MemberT must be constructible as (Transport&, const
/// GroupView&, DeliverFn, MemberT::Options).
template <typename MemberT>
class Group {
 public:
  Group(Transport& transport, std::size_t n)
      : Group(transport, n, typename MemberT::Options{}) {}

  Group(Transport& transport, std::size_t n, typename MemberT::Options options)
      : view_(make_view(n)) {
    members_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      members_.push_back(std::make_unique<MemberT>(
          transport, view_, [](const Delivery&) {}, options));
    }
  }

  [[nodiscard]] MemberT& operator[](std::size_t i) { return *members_[i]; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const GroupView& view() const { return view_; }

  /// True when every member's delivery log contains the same message ids
  /// as member 0's (any order).
  [[nodiscard]] bool all_delivered_same_set() const {
    auto sorted_ids = [](const MemberT& member) {
      std::vector<MessageId> ids = delivered_ids(member.log());
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    const auto reference = sorted_ids(*members_[0]);
    for (std::size_t i = 1; i < members_.size(); ++i) {
      if (sorted_ids(*members_[i]) != reference) {
        return false;
      }
    }
    return true;
  }

  /// True when every member delivered in exactly the same sequence.
  [[nodiscard]] bool all_delivered_same_sequence() const {
    const auto reference = delivered_ids(members_[0]->log());
    for (std::size_t i = 1; i < members_.size(); ++i) {
      if (delivered_ids(members_[i]->log()) != reference) {
        return false;
      }
    }
    return true;
  }

 private:
  GroupView view_;
  std::vector<std::unique_ptr<MemberT>> members_;
};

}  // namespace cbc::testkit
