// Shared test/bench fixture: a deterministic simulated environment
// (scheduler + network + transport) with configurable latency and faults.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "group/group_view.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "transport/sim_transport.h"

namespace cbc::testkit {

/// Bundles the simulation substrate for one scenario.
struct SimEnv {
  struct Config {
    SimTime base_latency_us = 1000;
    SimTime jitter_us = 0;
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    std::uint64_t seed = 42;
  };

  SimEnv() : SimEnv(Config{}) {}
  explicit SimEnv(Config config)
      : network(scheduler,
                std::make_unique<sim::UniformJitterLatency>(
                    config.base_latency_us, config.jitter_us),
                sim::FaultConfig{config.drop_probability,
                                 config.duplicate_probability},
                config.seed),
        transport(network) {}

  /// Runs the simulation to quiescence and returns events processed.
  std::size_t run() { return scheduler.run(); }

  /// Runs until the given virtual time.
  std::size_t run_until(SimTime until) { return scheduler.run_until(until); }

  sim::Scheduler scheduler;
  sim::SimNetwork network;
  SimTransport transport;
};

/// A group view {0..n-1} matching a freshly constructed SimEnv transport.
inline GroupView make_view(std::size_t n) {
  std::vector<NodeId> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(static_cast<NodeId>(i));
  }
  return GroupView(1, std::move(members));
}

}  // namespace cbc::testkit
