// KvHarness — forks a full sharded cbc_kv deployment on loopback UDP:
// S shards x R replicas, each shard an independent causal group with a
// freshly-reserved port block (no fixed-range assumption), plus one
// router-slot port per shard for the driver's client socket. The layout
// file is written once and shared by every process; per-replica reports,
// histories, and metrics snapshots land under one temp directory. The
// binary path comes from the CBC_KV_BIN compile definition (set by
// tests/CMakeLists.txt to the built cbc_kv target).
//
// Shape of a run:
//   KvHarness kv({.shards = 4, .replicas = 3});
//   kv.start_all();
//   ASSERT_EQ(kv.run_driver(3, 3, 4), 0);   // driver shuts servers down
//   ASSERT_TRUE(kv.wait_for_all_reports());
#pragma once

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/node_report.h"
#include "common/udp_ports.h"
#include "kv/shard_map.h"
#include "util/ensure.h"

namespace cbc::testkit {

class KvHarness {
 public:
  struct Options {
    std::size_t shards = 2;
    std::size_t replicas = 3;
    /// Start every replica with --record-history history_path(shard, rank).
    bool record_history = true;
    /// Start every replica with --metrics-snapshot (written at shutdown).
    bool metrics_snapshots = false;
    /// FaultPlan text written to dir()/fault.txt and passed to every
    /// replica via --fault-plan (ChaosTransport delay/drop schedules).
    std::string fault_plan{};
    /// Server-side park deadline for causally-stale reads (--wait-timeout-ms).
    std::uint64_t wait_timeout_ms = 0;
  };

  explicit KvHarness(Options options) : options_(std::move(options)) {
    require(options_.shards >= 1 && options_.replicas >= 1,
            "KvHarness: need at least one shard and one replica");
    dir_ = make_temp_dir();
    // One independently-reserved block per shard: shard groups never
    // assume adjacent or disjoint fixed ranges (same rule as the
    // multi-group ClusterHarness).
    std::vector<std::uint16_t> ports;
    for (std::size_t s = 0; s < options_.shards; ++s) {
      const auto block = reserve_udp_ports(options_.replicas + 1);
      ports.insert(ports.end(), block.begin(), block.end());
    }
    layout_ = kv::KvLayout::localhost(options_.shards, options_.replicas,
                                      ports);
    std::ofstream layout_file(layout_path());
    layout_file << layout_.encode_text();
    if (!options_.fault_plan.empty()) {
      std::ofstream plan(fault_plan_path());
      plan << options_.fault_plan;
    }
  }

  ~KvHarness() {
    for (auto& [key, pid] : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
  }

  void start_replica(std::size_t shard, std::size_t rank,
                     const std::vector<std::string>& extra_args = {}) {
    require(shard < options_.shards && rank < options_.replicas,
            "start_replica: shard/rank out of range");
    const pid_t pid = ::fork();
    require(pid >= 0, "KvHarness: fork failed");
    if (pid == 0) {
      std::vector<std::string> args = {
          CBC_KV_BIN,
          "server",
          "--layout", layout_path(),
          "--shard", std::to_string(shard),
          "--rank", std::to_string(rank),
          "--report", report_path(shard, rank),
          "--progress", progress_path(shard, rank),
          // File-backed flight ring: survives SIGKILL, so postmortem
          // tests can decode what a killed replica was doing.
          "--flight", flight_path(shard, rank),
      };
      if (options_.record_history) {
        args.push_back("--record-history");
        args.push_back(history_path(shard, rank));
      }
      if (options_.metrics_snapshots) {
        args.push_back("--metrics-port");
        args.push_back("0");
        args.push_back("--metrics-snapshot");
        args.push_back(metrics_snapshot_path(shard, rank));
      }
      if (!options_.fault_plan.empty()) {
        args.push_back("--fault-plan");
        args.push_back(fault_plan_path());
      }
      if (options_.wait_timeout_ms > 0) {
        args.push_back("--wait-timeout-ms");
        args.push_back(std::to_string(options_.wait_timeout_ms));
      }
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
    pids_[{shard, rank}] = pid;
  }

  void start_all() {
    for (std::size_t s = 0; s < options_.shards; ++s) {
      for (std::size_t r = 0; r < options_.replicas; ++r) {
        start_replica(s, r);
      }
    }
  }

  /// Runs the built-in mixed cross-shard workload driver to completion
  /// and returns its exit status (0 = all ops ok, no value mismatches,
  /// clean shutdown). The driver ends by asking every replica to drain
  /// and exit, so wait_for_all_reports() afterwards observes the final
  /// per-replica reports.
  [[nodiscard]] int run_driver(std::uint64_t sessions, std::uint64_t rounds,
                               std::uint64_t ops,
                               const std::vector<std::string>& extra_args =
                                   {}) {
    const pid_t pid = ::fork();
    require(pid >= 0, "KvHarness: fork failed");
    if (pid == 0) {
      std::vector<std::string> args = {
          CBC_KV_BIN,
          "drive",
          "--layout", layout_path(),
          "--sessions", std::to_string(sessions),
          "--rounds", std::to_string(rounds),
          "--ops", std::to_string(ops),
          "--report", driver_report_path(),
      };
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

  /// Blocks until every replica has written its final (done=1) report
  /// and exited; reaps the processes.
  [[nodiscard]] bool wait_for_all_reports(int timeout_ms = 300'000) {
    for (std::size_t s = 0; s < options_.shards; ++s) {
      for (std::size_t r = 0; r < options_.replicas; ++r) {
        if (!wait_for_report(s, r, timeout_ms)) {
          return false;
        }
      }
    }
    reap_all();
    return true;
  }

  [[nodiscard]] bool wait_for_report(std::size_t shard, std::size_t rank,
                                     int timeout_ms = 300'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      const std::optional<NodeReport> report =
          parse_kv_file(report_path(shard, rank));
      if (report && report->count("done") != 0 && report->at("done") == "1") {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// SIGTERM + reap one replica (drains, writes report, exits).
  void terminate_replica(std::size_t shard, std::size_t rank) {
    const auto entry = pids_.find({shard, rank});
    if (entry == pids_.end() || entry->second <= 0) {
      return;
    }
    ::kill(entry->second, SIGTERM);
    int status = 0;
    ::waitpid(entry->second, &status, 0);
    pids_.erase(entry);
  }

  /// Reaps replicas that exited on their own (driver-initiated drain).
  void reap_all() {
    for (auto& [key, pid] : pids_) {
      if (pid > 0) {
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
    pids_.clear();
  }

  [[nodiscard]] std::optional<NodeReport> report(std::size_t shard,
                                                 std::size_t rank) const {
    return parse_kv_file(report_path(shard, rank));
  }
  [[nodiscard]] std::optional<NodeReport> driver_report() const {
    return parse_kv_file(driver_report_path());
  }

  [[nodiscard]] const kv::KvLayout& layout() const { return layout_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string layout_path() const {
    return dir_ + "/layout.txt";
  }
  [[nodiscard]] std::string fault_plan_path() const {
    return dir_ + "/fault.txt";
  }
  [[nodiscard]] std::string driver_report_path() const {
    return dir_ + "/driver.txt";
  }
  [[nodiscard]] std::string report_path(std::size_t shard,
                                        std::size_t rank) const {
    return dir_ + "/report_s" + std::to_string(shard) + "_r" +
           std::to_string(rank) + ".txt";
  }
  [[nodiscard]] std::string progress_path(std::size_t shard,
                                          std::size_t rank) const {
    return dir_ + "/progress_s" + std::to_string(shard) + "_r" +
           std::to_string(rank) + ".txt";
  }
  [[nodiscard]] std::string history_path(std::size_t shard,
                                         std::size_t rank) const {
    return dir_ + "/history_s" + std::to_string(shard) + "_r" +
           std::to_string(rank) + ".bin";
  }
  [[nodiscard]] std::string metrics_snapshot_path(std::size_t shard,
                                                  std::size_t rank) const {
    return dir_ + "/metrics_s" + std::to_string(shard) + "_r" +
           std::to_string(rank) + ".prom";
  }
  [[nodiscard]] std::string flight_path(std::size_t shard,
                                        std::size_t rank) const {
    return dir_ + "/flight_s" + std::to_string(shard) + "_r" +
           std::to_string(rank) + ".bin";
  }
  /// Every per-replica progress path — the cbc_top --report discovery
  /// set for a live cluster.
  [[nodiscard]] std::vector<std::string> progress_paths() const {
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < options_.shards; ++s) {
      for (std::size_t r = 0; r < options_.replicas; ++r) {
        paths.push_back(progress_path(s, r));
      }
    }
    return paths;
  }
  /// Every per-replica history path, shard-major — the argument order
  /// cbc_check --kv-replicas expects.
  [[nodiscard]] std::vector<std::string> history_paths() const {
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < options_.shards; ++s) {
      for (std::size_t r = 0; r < options_.replicas; ++r) {
        paths.push_back(history_path(s, r));
      }
    }
    return paths;
  }

 private:
  [[nodiscard]] static std::string make_temp_dir() {
    std::string templ = "/tmp/cbc_kv_XXXXXX";
    const char* made = ::mkdtemp(templ.data());
    require(made != nullptr, "KvHarness: mkdtemp failed");
    return made;
  }

  Options options_;
  std::string dir_;
  kv::KvLayout layout_;
  std::map<std::pair<std::size_t, std::size_t>, pid_t> pids_;
};

}  // namespace cbc::testkit
