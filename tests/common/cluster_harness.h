// ClusterHarness — forks N cbc_node processes on loopback UDP and drives
// a real multi-process run: start, watch progress files, signal graceful
// departures, restart members as observers, collect and parse the final
// key=value reports. The binary path comes from the CBC_NODE_BIN compile
// definition (set by tests/CMakeLists.txt to the built cbc_node target).
//
// Supports multiple INDEPENDENT groups side by side (Options::groups):
// each group gets its own freshly-reserved port block, its own config
// file, and its own artifact subdirectory (group 0 keeps the flat
// layout, so single-group callers and their historical paths are
// unchanged) — no fixed port-range assumption, no shared report/
// checkpoint/history paths between groups. The single-argument API
// operates on group 0; every method has a (group, id) overload.
#pragma once

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/node_report.h"
#include "common/udp_ports.h"
#include "util/ensure.h"

namespace cbc::testkit {

class ClusterHarness {
 public:
  struct Options {
    /// Independent causal groups to host side by side. Each group is a
    /// complete cluster of `nodes` members with its own ports, config,
    /// and artifact paths.
    std::size_t groups = 1;
    std::size_t nodes = 3;
    std::uint64_t rounds = 10;
    std::uint64_t ops_per_round = 20;
    std::string discipline = "causal";
    /// Replicated object to run (--object). Empty resolves to the
    /// CBC_CLUSTER_OBJECT environment variable (the CI matrix knob),
    /// falling back to "counter".
    std::string object{};
    /// Start every node with --record-history history_path(id): each
    /// member persists its delivery history for cbc_check at SIGTERM.
    bool record_history = false;
    bool force_poll = false;
    /// Start every node with tracing (--trace trace_path(id)) and an
    /// ephemeral metrics endpoint + snapshot file. The report then carries
    /// metrics_port=..., and terminate_node() leaves a per-node Chrome
    /// trace file behind for obs::merge_trace_files.
    bool observability = false;
    /// FaultPlan text (fault/fault_plan.h format). When non-empty it is
    /// written to dir()/fault.txt and every node starts with
    /// --fault-plan pointing at it.
    std::string fault_plan{};
    /// Start every node with --checkpoint checkpoint_path(id): persist a
    /// recovery checkpoint at each stable point.
    bool checkpoints = false;
    /// When > 0, every node runs the heartbeat failure detector
    /// (--suspect-timeout-ms); heartbeat_ms additionally overrides the
    /// heartbeat send period (default: suspect/4).
    std::uint64_t suspect_timeout_ms = 0;
    std::uint64_t heartbeat_ms = 0;
  };

  explicit ClusterHarness(Options options) : options_(std::move(options)) {
    if (options_.object.empty()) {
      const char* env = std::getenv("CBC_CLUSTER_OBJECT");
      options_.object = env != nullptr && *env != '\0' ? env : "counter";
    }
    require(options_.groups >= 1, "ClusterHarness: groups must be >= 1");
    dir_ = make_temp_dir();
    for (std::size_t g = 0; g < options_.groups; ++g) {
      if (g > 0) {
        require(::mkdir(group_dir(g).c_str(), 0755) == 0,
                "ClusterHarness: cannot create group directory");
      }
      // One port block per group, reserved independently — groups never
      // assume adjacent or disjoint fixed ranges.
      const auto ports = reserve_udp_ports(options_.nodes);
      std::ofstream config(config_path(g));
      for (std::size_t i = 0; i < options_.nodes; ++i) {
        config << i << " 127.0.0.1:" << ports[i] << "\n";
      }
    }
    if (!options_.fault_plan.empty()) {
      std::ofstream plan(fault_plan_path());
      plan << options_.fault_plan;
    }
  }

  ~ClusterHarness() {
    for (auto& [key, pid] : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
  }

  /// Forks and execs one node (extra_args appended, e.g. "--observer").
  void start_node(std::size_t id,
                  const std::vector<std::string>& extra_args = {}) {
    start_node(0, id, extra_args);
  }

  void start_node(std::size_t group, std::size_t id,
                  const std::vector<std::string>& extra_args) {
    require(group < options_.groups, "start_node: group out of range");
    const pid_t pid = ::fork();
    require(pid >= 0, "ClusterHarness: fork failed");
    if (pid == 0) {
      std::vector<std::string> args = {
          CBC_NODE_BIN,
          "--config", config_path(group),
          "--id", std::to_string(id),
          "--rounds", std::to_string(options_.rounds),
          "--ops", std::to_string(options_.ops_per_round),
          "--discipline", options_.discipline,
          "--object", options_.object,
          "--report", report_path(group, id),
          "--progress", progress_path(group, id),
          // File-backed flight ring: survives SIGKILL, so postmortem
          // tests can decode what a killed member was doing.
          "--flight", flight_path(group, id),
      };
      if (options_.record_history) {
        args.push_back("--record-history");
        args.push_back(history_path(group, id));
      }
      if (options_.force_poll) {
        args.push_back("--force-poll");
      }
      if (!options_.fault_plan.empty()) {
        args.push_back("--fault-plan");
        args.push_back(fault_plan_path());
      }
      if (options_.checkpoints) {
        args.push_back("--checkpoint");
        args.push_back(checkpoint_path(group, id));
      }
      if (options_.suspect_timeout_ms > 0) {
        args.push_back("--suspect-timeout-ms");
        args.push_back(std::to_string(options_.suspect_timeout_ms));
      }
      if (options_.heartbeat_ms > 0) {
        args.push_back("--heartbeat-ms");
        args.push_back(std::to_string(options_.heartbeat_ms));
      }
      if (options_.observability) {
        args.push_back("--trace");
        args.push_back(trace_path(group, id));
        args.push_back("--metrics-port");
        args.push_back("0");
        args.push_back("--metrics-snapshot");
        args.push_back(metrics_snapshot_path(group, id));
      }
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
    pids_[{group, id}] = pid;
  }

  void start_all() {
    for (std::size_t g = 0; g < options_.groups; ++g) {
      for (std::size_t i = 0; i < options_.nodes; ++i) {
        start_node(g, i, {});
      }
    }
  }

  /// Blocks until node `id`'s progress file reports `key` >= `value`
  /// (progress files are atomically replaced, so reads are consistent).
  [[nodiscard]] bool wait_for_progress(std::size_t id, const std::string& key,
                                       std::int64_t value,
                                       int timeout_ms = 120'000) {
    return wait_for_progress(0, id, key, value, timeout_ms);
  }

  [[nodiscard]] bool wait_for_progress(std::size_t group, std::size_t id,
                                       const std::string& key,
                                       std::int64_t value,
                                       int timeout_ms = 120'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      const std::optional<NodeReport> progress =
          parse_kv_file(progress_path(group, id));
      if (progress) {
        const auto entry = progress->find(key);
        if (entry != progress->end() &&
            std::stoll(entry->second) >= value) {
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Asks node `id` to depart gracefully (it broadcasts a departure
  /// marker, then lingers to serve retransmissions until terminated).
  void signal_departure(std::size_t id) { signal_departure(0, id); }

  void signal_departure(std::size_t group, std::size_t id) {
    require(pids_.count({group, id}) != 0,
            "signal_departure: node not running");
    ::kill(pids_[{group, id}], SIGUSR1);
  }

  /// Blocks until node `id` has written a report with done=1 (or, for a
  /// departed node, any report at all).
  // Generous default: sanitizer-instrumented nodes on loaded CI runners
  // can be an order of magnitude slower than a quiet machine.
  [[nodiscard]] bool wait_for_report(std::size_t id, bool require_done,
                                     int timeout_ms = 300'000) {
    return wait_for_report(0, id, require_done, timeout_ms);
  }

  [[nodiscard]] bool wait_for_report(std::size_t group, std::size_t id,
                                     bool require_done,
                                     int timeout_ms = 300'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      const std::optional<NodeReport> report =
          parse_kv_file(report_path(group, id));
      if (report && (!require_done || report->at("done") == "1")) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// SIGTERM + reap: the node writes its final report and exits.
  void terminate_node(std::size_t id) { terminate_node(0, id); }

  void terminate_node(std::size_t group, std::size_t id) {
    const auto entry = pids_.find({group, id});
    if (entry == pids_.end() || entry->second <= 0) {
      return;
    }
    ::kill(entry->second, SIGTERM);
    int status = 0;
    ::waitpid(entry->second, &status, 0);
    pids_.erase(entry);
  }

  void terminate_all() {
    std::vector<std::pair<std::size_t, std::size_t>> keys;
    for (const auto& [key, pid] : pids_) {
      keys.push_back(key);
    }
    for (const auto& [group, id] : keys) {
      terminate_node(group, id);
    }
  }

  /// SIGKILL (no final report, no graceful departure) + reap.
  void kill_node(std::size_t id) { kill_node(0, id); }

  void kill_node(std::size_t group, std::size_t id) {
    const auto entry = pids_.find({group, id});
    require(entry != pids_.end(), "kill_node: node not running");
    ::kill(entry->second, SIGKILL);
    int status = 0;
    ::waitpid(entry->second, &status, 0);
    pids_.erase(entry);
  }

  [[nodiscard]] std::optional<NodeReport> report(std::size_t id) const {
    return report(0, id);
  }
  [[nodiscard]] std::optional<NodeReport> report(std::size_t group,
                                                 std::size_t id) const {
    return parse_kv_file(report_path(group, id));
  }

  /// Group 0 keeps the historical flat layout under dir(); group g > 0
  /// lives in dir()/g<g>/.
  [[nodiscard]] std::string group_dir(std::size_t group) const {
    return group == 0 ? dir_ : dir_ + "/g" + std::to_string(group);
  }
  [[nodiscard]] std::string config_path(std::size_t group = 0) const {
    return group_dir(group) + "/cluster.txt";
  }
  [[nodiscard]] std::string report_path(std::size_t id) const {
    return report_path(0, id);
  }
  [[nodiscard]] std::string report_path(std::size_t group,
                                        std::size_t id) const {
    return group_dir(group) + "/report" + std::to_string(id) + ".txt";
  }
  [[nodiscard]] std::string progress_path(std::size_t id) const {
    return progress_path(0, id);
  }
  [[nodiscard]] std::string progress_path(std::size_t group,
                                          std::size_t id) const {
    return group_dir(group) + "/progress" + std::to_string(id) + ".txt";
  }
  [[nodiscard]] std::string flight_path(std::size_t id) const {
    return flight_path(0, id);
  }
  [[nodiscard]] std::string flight_path(std::size_t group,
                                        std::size_t id) const {
    return group_dir(group) + "/flight" + std::to_string(id) + ".bin";
  }
  [[nodiscard]] std::string trace_path(std::size_t id) const {
    return trace_path(0, id);
  }
  [[nodiscard]] std::string trace_path(std::size_t group,
                                       std::size_t id) const {
    return group_dir(group) + "/trace" + std::to_string(id) + ".json";
  }
  [[nodiscard]] std::string metrics_snapshot_path(std::size_t id) const {
    return metrics_snapshot_path(0, id);
  }
  [[nodiscard]] std::string metrics_snapshot_path(std::size_t group,
                                                  std::size_t id) const {
    return group_dir(group) + "/metrics" + std::to_string(id) + ".prom";
  }
  [[nodiscard]] std::string checkpoint_path(std::size_t id) const {
    return checkpoint_path(0, id);
  }
  [[nodiscard]] std::string checkpoint_path(std::size_t group,
                                            std::size_t id) const {
    return group_dir(group) + "/checkpoint" + std::to_string(id) + ".bin";
  }
  [[nodiscard]] std::string history_path(std::size_t id) const {
    return history_path(0, id);
  }
  [[nodiscard]] std::string history_path(std::size_t group,
                                         std::size_t id) const {
    return group_dir(group) + "/history" + std::to_string(id) + ".bin";
  }
  [[nodiscard]] const std::string& object() const {
    return options_.object;
  }
  [[nodiscard]] std::string fault_plan_path() const {
    return dir_ + "/fault.txt";
  }
  /// The node's live metrics endpoint port, parsed from its report
  /// (written once the node reports; requires Options::observability).
  [[nodiscard]] std::optional<int> metrics_port(std::size_t id) const {
    const std::optional<NodeReport> node_report = report(id);
    if (!node_report) {
      return std::nullopt;
    }
    const auto entry = node_report->find("metrics_port");
    if (entry == node_report->end() || entry->second == "none") {
      return std::nullopt;
    }
    return std::stoi(entry->second);
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Kept as a member for existing callers; the shared implementation
  /// lives in common/node_report.h.
  [[nodiscard]] static std::optional<NodeReport> parse_kv_file(
      const std::string& path) {
    return testkit::parse_kv_file(path);
  }

 private:
  [[nodiscard]] static std::string make_temp_dir() {
    std::string templ = "/tmp/cbc_cluster_XXXXXX";
    const char* made = ::mkdtemp(templ.data());
    require(made != nullptr, "ClusterHarness: mkdtemp failed");
    return made;
  }

  Options options_;
  std::string dir_;
  std::map<std::pair<std::size_t, std::size_t>, pid_t> pids_;
};

}  // namespace cbc::testkit
