// ClusterHarness — forks N cbc_node processes on loopback UDP and drives
// a real multi-process run: start, watch progress files, signal graceful
// departures, restart members as observers, collect and parse the final
// key=value reports. The binary path comes from the CBC_NODE_BIN compile
// definition (set by tests/CMakeLists.txt to the built cbc_node target).
#pragma once

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/udp_ports.h"
#include "util/ensure.h"

namespace cbc::testkit {

/// One node's parsed key=value report file.
using NodeReport = std::map<std::string, std::string>;

class ClusterHarness {
 public:
  struct Options {
    std::size_t nodes = 3;
    std::uint64_t rounds = 10;
    std::uint64_t ops_per_round = 20;
    std::string discipline = "causal";
    /// Replicated object to run (--object). Empty resolves to the
    /// CBC_CLUSTER_OBJECT environment variable (the CI matrix knob),
    /// falling back to "counter".
    std::string object{};
    /// Start every node with --record-history history_path(id): each
    /// member persists its delivery history for cbc_check at SIGTERM.
    bool record_history = false;
    bool force_poll = false;
    /// Start every node with tracing (--trace trace_path(id)) and an
    /// ephemeral metrics endpoint + snapshot file. The report then carries
    /// metrics_port=..., and terminate_node() leaves a per-node Chrome
    /// trace file behind for obs::merge_trace_files.
    bool observability = false;
    /// FaultPlan text (fault/fault_plan.h format). When non-empty it is
    /// written to dir()/fault.txt and every node starts with
    /// --fault-plan pointing at it.
    std::string fault_plan{};
    /// Start every node with --checkpoint checkpoint_path(id): persist a
    /// recovery checkpoint at each stable point.
    bool checkpoints = false;
    /// When > 0, every node runs the heartbeat failure detector
    /// (--suspect-timeout-ms); heartbeat_ms additionally overrides the
    /// heartbeat send period (default: suspect/4).
    std::uint64_t suspect_timeout_ms = 0;
    std::uint64_t heartbeat_ms = 0;
  };

  explicit ClusterHarness(Options options) : options_(std::move(options)) {
    if (options_.object.empty()) {
      const char* env = std::getenv("CBC_CLUSTER_OBJECT");
      options_.object = env != nullptr && *env != '\0' ? env : "counter";
    }
    dir_ = make_temp_dir();
    const auto ports = reserve_udp_ports(options_.nodes);
    config_path_ = dir_ + "/cluster.txt";
    std::ofstream config(config_path_);
    for (std::size_t i = 0; i < options_.nodes; ++i) {
      config << i << " 127.0.0.1:" << ports[i] << "\n";
    }
    if (!options_.fault_plan.empty()) {
      std::ofstream plan(fault_plan_path());
      plan << options_.fault_plan;
    }
  }

  ~ClusterHarness() {
    for (auto& [id, pid] : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
  }

  /// Forks and execs one node (extra_args appended, e.g. "--observer").
  void start_node(std::size_t id,
                  const std::vector<std::string>& extra_args = {}) {
    const pid_t pid = ::fork();
    require(pid >= 0, "ClusterHarness: fork failed");
    if (pid == 0) {
      std::vector<std::string> args = {
          CBC_NODE_BIN,
          "--config", config_path_,
          "--id", std::to_string(id),
          "--rounds", std::to_string(options_.rounds),
          "--ops", std::to_string(options_.ops_per_round),
          "--discipline", options_.discipline,
          "--object", options_.object,
          "--report", report_path(id),
          "--progress", progress_path(id),
      };
      if (options_.record_history) {
        args.push_back("--record-history");
        args.push_back(history_path(id));
      }
      if (options_.force_poll) {
        args.push_back("--force-poll");
      }
      if (!options_.fault_plan.empty()) {
        args.push_back("--fault-plan");
        args.push_back(fault_plan_path());
      }
      if (options_.checkpoints) {
        args.push_back("--checkpoint");
        args.push_back(checkpoint_path(id));
      }
      if (options_.suspect_timeout_ms > 0) {
        args.push_back("--suspect-timeout-ms");
        args.push_back(std::to_string(options_.suspect_timeout_ms));
      }
      if (options_.heartbeat_ms > 0) {
        args.push_back("--heartbeat-ms");
        args.push_back(std::to_string(options_.heartbeat_ms));
      }
      if (options_.observability) {
        args.push_back("--trace");
        args.push_back(trace_path(id));
        args.push_back("--metrics-port");
        args.push_back("0");
        args.push_back("--metrics-snapshot");
        args.push_back(metrics_snapshot_path(id));
      }
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed
    }
    pids_[id] = pid;
  }

  void start_all() {
    for (std::size_t i = 0; i < options_.nodes; ++i) {
      start_node(i);
    }
  }

  /// Blocks until node `id`'s progress file reports `key` >= `value`
  /// (progress files are atomically replaced, so reads are consistent).
  [[nodiscard]] bool wait_for_progress(std::size_t id, const std::string& key,
                                       std::int64_t value,
                                       int timeout_ms = 120'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      const std::optional<NodeReport> progress =
          parse_kv_file(progress_path(id));
      if (progress) {
        const auto entry = progress->find(key);
        if (entry != progress->end() &&
            std::stoll(entry->second) >= value) {
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Asks node `id` to depart gracefully (it broadcasts a departure
  /// marker, then lingers to serve retransmissions until terminated).
  void signal_departure(std::size_t id) {
    require(pids_.count(id) != 0, "signal_departure: node not running");
    ::kill(pids_[id], SIGUSR1);
  }

  /// Blocks until node `id` has written a report with done=1 (or, for a
  /// departed node, any report at all).
  // Generous default: sanitizer-instrumented nodes on loaded CI runners
  // can be an order of magnitude slower than a quiet machine.
  [[nodiscard]] bool wait_for_report(std::size_t id, bool require_done,
                                     int timeout_ms = 300'000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      const std::optional<NodeReport> report =
          parse_kv_file(report_path(id));
      if (report && (!require_done || report->at("done") == "1")) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// SIGTERM + reap: the node writes its final report and exits.
  void terminate_node(std::size_t id) {
    const auto entry = pids_.find(id);
    if (entry == pids_.end() || entry->second <= 0) {
      return;
    }
    ::kill(entry->second, SIGTERM);
    int status = 0;
    ::waitpid(entry->second, &status, 0);
    pids_.erase(entry);
  }

  void terminate_all() {
    std::vector<std::size_t> ids;
    for (const auto& [id, pid] : pids_) {
      ids.push_back(id);
    }
    for (const std::size_t id : ids) {
      terminate_node(id);
    }
  }

  /// SIGKILL (no final report, no graceful departure) + reap.
  void kill_node(std::size_t id) {
    const auto entry = pids_.find(id);
    require(entry != pids_.end(), "kill_node: node not running");
    ::kill(entry->second, SIGKILL);
    int status = 0;
    ::waitpid(entry->second, &status, 0);
    pids_.erase(entry);
  }

  [[nodiscard]] std::optional<NodeReport> report(std::size_t id) const {
    return parse_kv_file(report_path(id));
  }

  [[nodiscard]] std::string report_path(std::size_t id) const {
    return dir_ + "/report" + std::to_string(id) + ".txt";
  }
  [[nodiscard]] std::string progress_path(std::size_t id) const {
    return dir_ + "/progress" + std::to_string(id) + ".txt";
  }
  [[nodiscard]] std::string trace_path(std::size_t id) const {
    return dir_ + "/trace" + std::to_string(id) + ".json";
  }
  [[nodiscard]] std::string metrics_snapshot_path(std::size_t id) const {
    return dir_ + "/metrics" + std::to_string(id) + ".prom";
  }
  [[nodiscard]] std::string checkpoint_path(std::size_t id) const {
    return dir_ + "/checkpoint" + std::to_string(id) + ".bin";
  }
  [[nodiscard]] std::string history_path(std::size_t id) const {
    return dir_ + "/history" + std::to_string(id) + ".bin";
  }
  [[nodiscard]] const std::string& object() const {
    return options_.object;
  }
  [[nodiscard]] std::string fault_plan_path() const {
    return dir_ + "/fault.txt";
  }
  /// The node's live metrics endpoint port, parsed from its report
  /// (written once the node reports; requires Options::observability).
  [[nodiscard]] std::optional<int> metrics_port(std::size_t id) const {
    const std::optional<NodeReport> node_report = report(id);
    if (!node_report) {
      return std::nullopt;
    }
    const auto entry = node_report->find("metrics_port");
    if (entry == node_report->end() || entry->second == "none") {
      return std::nullopt;
    }
    return std::stoi(entry->second);
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] static std::optional<NodeReport> parse_kv_file(
      const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      return std::nullopt;
    }
    NodeReport report;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t eq = line.find('=');
      if (eq != std::string::npos) {
        report[line.substr(0, eq)] = line.substr(eq + 1);
      }
    }
    if (report.empty()) {
      return std::nullopt;
    }
    return report;
  }

 private:
  [[nodiscard]] static std::string make_temp_dir() {
    std::string templ = "/tmp/cbc_cluster_XXXXXX";
    const char* made = ::mkdtemp(templ.data());
    require(made != nullptr, "ClusterHarness: mkdtemp failed");
    return made;
  }

  Options options_;
  std::string dir_;
  std::string config_path_;
  std::map<std::size_t, pid_t> pids_;
};

}  // namespace cbc::testkit
