// Multi-process cluster tests: N forked cbc_node processes exchanging
// 10k+ real UDP datagrams on loopback, one member killed and restarted
// mid-run, survivors asserted to agree on the stable-point digest chain —
// the paper's "identical state with no agreement protocol" claim, checked
// end-to-end on a real kernel network path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "apps/install.h"
#include "check/history.h"
#include "check/history_checker.h"
#include "common/cluster_harness.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "obs/flight_recorder.h"
#include "obs/hooks.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace cbc {
namespace {

using testkit::ClusterHarness;
using testkit::NodeReport;

/// Minimal HTTP GET against a node's live metrics endpoint; returns the
/// whole response (headers + body), or "" on any failure.
std::string http_get(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(0x7F000001);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Value of one plain `name value` metric line ("" when absent).
std::string metric_value(const std::string& page, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t at = page.find(needle);
  if (at == std::string::npos) {
    return {};
  }
  const std::size_t start = at + needle.size();
  return page.substr(start, page.find('\n', start) - start);
}

void expect_clean(const NodeReport& report) {
  EXPECT_EQ(report.at("violations"), "0");
  EXPECT_EQ(report.at("malformed"), "0");
}

TEST(Cluster, ThreeNodesConvergeOnLoopback) {
  ClusterHarness cluster({.nodes = 3, .rounds = 10, .ops_per_round = 20});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();
  const NodeReport leader = *cluster.report(0);
  expect_clean(leader);
  EXPECT_EQ(leader.at("digest_count"), "10");
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    // Same number of stable points, same chained digest: the whole
    // delivered history agreed at every member.
    EXPECT_EQ(report.at("digest_count"), leader.at("digest_count"));
    EXPECT_EQ(report.at("digest"), leader.at("digest"));
    EXPECT_EQ(report.at("delivered"), leader.at("delivered"));
    EXPECT_EQ(report.at("stable_state"), leader.at("stable_state"));
  }
}

TEST(Cluster, TwoGroupsSideBySide) {
  // Two INDEPENDENT causal groups hosted by one harness: each group gets
  // its own reserved port block and artifact directory, so neither can
  // collide with (or even observe) the other. Regression for the old
  // fixed-port-range assumption — a second cluster used to race the
  // first for the same addresses.
  ClusterHarness cluster(
      {.groups = 2, .nodes = 3, .rounds = 5, .ops_per_round = 10});
  cluster.start_all();
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(cluster.wait_for_report(g, id, /*require_done=*/true))
          << "group " << g << " node " << id << " never finished";
    }
  }
  cluster.terminate_all();
  for (std::size_t g = 0; g < 2; ++g) {
    const NodeReport leader = *cluster.report(g, 0);
    expect_clean(leader);
    EXPECT_EQ(leader.at("digest_count"), "5");
    for (std::size_t id = 1; id < 3; ++id) {
      const NodeReport report = *cluster.report(g, id);
      expect_clean(report);
      EXPECT_EQ(report.at("digest_count"), leader.at("digest_count"));
      EXPECT_EQ(report.at("digest"), leader.at("digest"));
      EXPECT_EQ(report.at("delivered"), leader.at("delivered"));
      EXPECT_EQ(report.at("stable_state"), leader.at("stable_state"));
    }
  }
  // Each group saw ONLY its own 3 members' traffic: a group that
  // received a stranger's datagrams would count them as malformed, and
  // delivery counts higher than 3 nodes x 5 rounds x 11 ops would mean
  // cross-group leakage.
  EXPECT_NE(cluster.config_path(0), cluster.config_path(1));
  EXPECT_NE(cluster.report_path(0, 0), cluster.report_path(1, 0));
}

TEST(Cluster, SurvivorsConvergeAfterDepartureAndRestart) {
  // 50 rounds x 3 nodes x 101 broadcasts per round per node: well over
  // 10k messages through the kernel. Node 2 departs mid-run and comes
  // back as an observer; the two survivors must still agree exactly.
  ClusterHarness cluster({.nodes = 3, .rounds = 50, .ops_per_round = 100});
  cluster.start_all();

  // Let the run get going, then take node 2 out gracefully.
  ASSERT_TRUE(cluster.wait_for_progress(2, "round", 3));
  cluster.signal_departure(2);
  ASSERT_TRUE(cluster.wait_for_report(2, /*require_done=*/false))
      << "departing node never wrote its report";
  const NodeReport departed = *cluster.report(2);
  EXPECT_EQ(departed.at("role"), "departed");
  cluster.terminate_node(2);

  // Restart the same member id as an observer: its reliability state died
  // with the old process, so it cannot rejoin the causal past, but its
  // presence (sockets up, datagrams flowing) must not disturb survivors.
  cluster.start_node(2, {"--observer"});

  for (std::size_t id = 0; id < 2; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "survivor " << id << " never finished";
  }
  cluster.terminate_all();

  const NodeReport leader = *cluster.report(0);
  const NodeReport worker = *cluster.report(1);
  expect_clean(leader);
  expect_clean(worker);
  EXPECT_EQ(leader.at("done"), "1");
  EXPECT_EQ(worker.at("done"), "1");
  EXPECT_EQ(leader.at("digest_count"), "50");
  EXPECT_EQ(worker.at("digest_count"), "50");
  EXPECT_EQ(worker.at("digest"), leader.at("digest"));
  EXPECT_EQ(worker.at("delivered"), leader.at("delivered"));
  EXPECT_EQ(worker.at("stable_state"), leader.at("stable_state"));

  // The departed member's prefix agreed too: its digest chain at cycle k
  // is a prefix of the survivors' chain, so its own run was clean.
  EXPECT_EQ(departed.at("violations"), "0");

  // Volume check: each survivor delivered 10k+ messages.
  EXPECT_GE(std::stoull(leader.at("delivered")), 10'000u);
}

TEST(Cluster, KilledMemberRecoversFromCheckpointAndRejoins) {
  // Crash-recovery acceptance: node 2 drains at its quiesce round, is
  // SIGKILLed (no graceful departure, no final report), and relaunched
  // with --recover. The fresh process fetches a survivor's stable-point
  // checkpoint over the state-transfer frames, restores replica + checker
  // + sequence numbers from it, and rejoins through leader admission.
  // Every member — including the recovered one — must finish with the
  // identical stable-point digest chain and zero checker violations.
  constexpr std::uint64_t kRounds = 8;
  constexpr std::int64_t kQuiesceRound = 2;
  ClusterHarness cluster({.nodes = 3,
                          .rounds = kRounds,
                          .ops_per_round = 10,
                          .checkpoints = true,
                          .suspect_timeout_ms = 4'000});
  cluster.start_node(0);
  cluster.start_node(1);
  cluster.start_node(2,
                     {"--quiesce-at-round", std::to_string(kQuiesceRound)});

  // Safe-kill ordering: the victim must report quiesced=1 (its own sync
  // delivered, reliability layer drained) AND both survivors must have
  // delivered the victim's quiesce-round sync, so the transfer peer's
  // checkpoint frontier covers every message node 2 ever sent. Killing
  // earlier would make the recovered process reuse sequence numbers of
  // its own uncovered messages, which peers would then dup-drop. (Round
  // K+1 cannot close while the quiesced victim is alive — its marker is
  // missing — so K+1 delivered syncs is also the most that can be
  // awaited here.)
  ASSERT_TRUE(cluster.wait_for_progress(2, "quiesced", 1));
  ASSERT_TRUE(cluster.wait_for_progress(0, "syncs", kQuiesceRound + 1));
  ASSERT_TRUE(cluster.wait_for_progress(1, "syncs", kQuiesceRound + 1));
  cluster.kill_node(2);

  cluster.start_node(2, {"--recover"});
  ASSERT_TRUE(cluster.wait_for_progress(2, "admitted", 1))
      << "recovered node was never re-admitted by the leader";
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();

  const NodeReport leader = *cluster.report(0);
  expect_clean(leader);
  EXPECT_EQ(leader.at("digest_count"), std::to_string(kRounds));
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    EXPECT_EQ(report.at("digest_count"), leader.at("digest_count"));
    EXPECT_EQ(report.at("digest"), leader.at("digest"));
    EXPECT_EQ(report.at("stable_state"), leader.at("stable_state"));
  }
  EXPECT_EQ(cluster.report(2)->at("recovered"), "1");
}

TEST(Cluster, TotalOrderSmokeConverges) {
  // ASend deterministic-merge total order over real UDP: every member
  // submits up front; the merged sequence (and thus the digest) must be
  // identical everywhere.
  ClusterHarness cluster(
      {.nodes = 3, .rounds = 1, .ops_per_round = 30, .discipline = "total"});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();
  const NodeReport first = *cluster.report(0);
  expect_clean(first);
  EXPECT_EQ(first.at("delivered"), std::to_string(3 * 31));
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    EXPECT_EQ(report.at("digest"), first.at("digest"));
    EXPECT_EQ(report.at("delivered"), first.at("delivered"));
  }
}

TEST(Cluster, TotalOrderConvergesAcrossPartitionHeal) {
  // ASend total order under scripted adversity: a partition isolates
  // node 2 from 200ms to 1.7s while everyone's up-front submissions are
  // in flight, plus light loss on every link. Reliability must retransmit
  // across the heal and the deterministic merge must still produce one
  // identical sequence (and digest) at every member.
  ClusterHarness cluster({.nodes = 3,
                          .rounds = 1,
                          .ops_per_round = 20,
                          .discipline = "total",
                          .fault_plan = "seed 7\n"
                                        "link * * drop 0.05\n"
                                        "partition 200000 1500000 0,1|2\n"});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();
  const NodeReport first = *cluster.report(0);
  expect_clean(first);
  EXPECT_EQ(first.at("delivered"), std::to_string(3 * 21));
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    EXPECT_EQ(report.at("digest"), first.at("digest"));
    EXPECT_EQ(report.at("delivered"), first.at("delivered"));
  }
}

TEST(Cluster, RecordedHistoriesSatisfyCausalConsistencyForEveryObject) {
  // The offline oracle closes the loop on the live protocol: every
  // catalog object runs a real 3-process cluster with --record-history,
  // and the recorded per-site histories must pass CC, CM, and CCv when
  // replayed black-box against the object's own sequential spec.
  apps::install_objects();
  for (const std::string& name : object::Catalog::instance().names()) {
    ClusterHarness cluster({.nodes = 3,
                            .rounds = 3,
                            .ops_per_round = 5,
                            .object = name,
                            .record_history = true});
    cluster.start_all();
    for (std::size_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
          << name << ": node " << id << " never finished";
    }
    cluster.terminate_all();  // SIGTERM flushes each node's history file

    std::vector<check::SiteHistory> sites;
    for (std::size_t id = 0; id < 3; ++id) {
      sites.push_back(check::SiteHistory::load(cluster.history_path(id)));
      EXPECT_EQ(sites.back().object, name);
      EXPECT_FALSE(sites.back().ops.empty());
    }
    const auto entry = object::Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    const object::SequentialSpec spec = entry->spec();
    const check::HistoryChecker checker(
        spec, object::derive_commutativity(spec));
    const check::HistoryChecker::Result result = checker.check(sites);
    EXPECT_TRUE(result.cc) << name << ": " << result.summary();
    EXPECT_TRUE(result.cm) << name << ": " << result.summary();
    EXPECT_TRUE(result.ccv) << name << ": " << result.summary();
    for (const std::string& violation : result.violations) {
      ADD_FAILURE() << name << ": " << violation;
    }
  }
}

TEST(Cluster, ObservabilityScrapeAndMergedTrace) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  // Acceptance run for the observability layer: three traced processes,
  // live Prometheus scrape off a running node's event loop, and one
  // merged Chrome trace with deliver spans on every process row and
  // cross-message Occurs_After flow arrows.
  ClusterHarness cluster({.nodes = 3,
                          .rounds = 5,
                          .ops_per_round = 10,
                          .observability = true});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }

  // Live scrape while the nodes are still serving (core counters must be
  // nonzero after a completed workload).
  const std::optional<int> port = cluster.metrics_port(1);
  ASSERT_TRUE(port.has_value()) << "report carries no metrics_port";
  const std::string page = http_get(*port);
  ASSERT_NE(page.find("200 OK"), std::string::npos) << page;
  ASSERT_NE(page.find("# TYPE"), std::string::npos);
  for (const std::string metric :
       {"cbc_osend_delivered", "cbc_udp_datagrams_sent",
        "cbc_batch_messages_in", "cbc_check_deliveries",
        "cbc_stack_deliveries"}) {
    const std::string value = metric_value(page, metric);
    ASSERT_FALSE(value.empty()) << metric << " missing from scrape";
    EXPECT_GT(std::stod(value), 0.0) << metric;
  }
  // The histogram rides the same page.
  EXPECT_NE(page.find("cbc_stack_submit_to_deliver_us_count"),
            std::string::npos);

  // The snapshot timer wrote the same page to disk.
  EXPECT_TRUE(
      ClusterHarness::parse_kv_file(cluster.report_path(1)).has_value());
  std::ifstream snapshot(cluster.metrics_snapshot_path(1));
  EXPECT_TRUE(static_cast<bool>(snapshot));

  // SIGTERM flushes each node's trace; merge and assert the causal
  // structure survived the multi-process round trip.
  cluster.terminate_all();
  const std::string merged = obs::merge_trace_files(
      {cluster.trace_path(0), cluster.trace_path(1), cluster.trace_path(2)});
  const obs::JsonValue doc = obs::parse_chrome_trace(merged);
  const obs::TraceSummary summary = obs::summarize_chrome_trace(doc);
  EXPECT_GT(summary.events, 0u);
  for (std::uint32_t pid = 0; pid < 3; ++pid) {
    const auto row = summary.deliver_events.find(pid);
    ASSERT_NE(row, summary.deliver_events.end())
        << "no deliver spans on process row " << pid;
    EXPECT_GT(row->second, 0u);
  }
  EXPECT_GT(summary.occurs_after_flows, 0u)
      << "merged trace carries no Occurs_After flow edges";
}

TEST(Cluster, FlightDumpOfKilledNodeMergesIntoSurvivorTimeline) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  // The postmortem claim end to end: a member dies by SIGKILL — no
  // signal handler, no trace flush, no report — and its file-backed
  // flight ring still decodes into the same timeline as the survivors'
  // live traces.
  ClusterHarness cluster({.nodes = 3,
                          .rounds = 5,
                          .ops_per_round = 10,
                          .observability = true});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.kill_node(2);
  cluster.terminate_node(0);
  cluster.terminate_node(1);

  // The killed node's mapping survives the SIGKILL verbatim.
  std::ifstream in(cluster.flight_path(2), std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(in)) << "no flight file for killed node";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::vector<std::uint8_t> bytes(raw.begin(), raw.end());
  const obs::FlightDump dump = obs::decode_flight_dump(bytes);
  EXPECT_EQ(dump.node_id, 2u);
  EXPECT_EQ(dump.role, 0u);
  ASSERT_FALSE(dump.records.empty());
  bool saw_submit = false;
  bool saw_deliver = false;
  for (const obs::FlightRecord& record : dump.records) {
    saw_submit = saw_submit || record.event == obs::FlightEvent::kSubmit;
    saw_deliver = saw_deliver || record.event == obs::FlightEvent::kDeliver;
  }
  EXPECT_TRUE(saw_deliver) << "killed node's ring has no deliver records";

  // Postmortem + survivors merge into one timeline with all three
  // process rows populated.
  const std::string postmortem =
      obs::render_trace_events(obs::flight_to_trace_events(dump));
  std::vector<obs::JsonValue> docs;
  docs.push_back(obs::parse_chrome_trace(postmortem));
  for (std::size_t id = 0; id < 2; ++id) {
    std::ifstream trace(cluster.trace_path(id));
    std::ostringstream text;
    text << trace.rdbuf();
    docs.push_back(obs::parse_chrome_trace(text.str()));
  }
  const std::string merged = obs::merge_trace_docs(docs);
  const obs::TraceSummary summary =
      obs::summarize_chrome_trace(obs::parse_chrome_trace(merged));
  for (std::uint32_t pid = 0; pid < 3; ++pid) {
    const auto row = summary.deliver_events.find(pid);
    ASSERT_NE(row, summary.deliver_events.end())
        << "no deliver spans on process row " << pid;
    EXPECT_GT(row->second, 0u);
  }

  // The same documents feed the cross-node latency decomposition.
  const obs::LatencyReport report = obs::latency_report(docs);
  EXPECT_GT(report.deliver.count, 0u);
  EXPECT_GT(report.hold.count, 0u);
  EXPECT_GE(report.deliver.p99, report.deliver.p50);
}

}  // namespace
}  // namespace cbc
