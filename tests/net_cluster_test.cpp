// Multi-process cluster tests: N forked cbc_node processes exchanging
// 10k+ real UDP datagrams on loopback, one member killed and restarted
// mid-run, survivors asserted to agree on the stable-point digest chain —
// the paper's "identical state with no agreement protocol" claim, checked
// end-to-end on a real kernel network path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/cluster_harness.h"

namespace cbc {
namespace {

using testkit::ClusterHarness;
using testkit::NodeReport;

void expect_clean(const NodeReport& report) {
  EXPECT_EQ(report.at("violations"), "0");
  EXPECT_EQ(report.at("malformed"), "0");
}

TEST(Cluster, ThreeNodesConvergeOnLoopback) {
  ClusterHarness cluster({.nodes = 3, .rounds = 10, .ops_per_round = 20});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();
  const NodeReport leader = *cluster.report(0);
  expect_clean(leader);
  EXPECT_EQ(leader.at("digest_count"), "10");
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    // Same number of stable points, same chained digest: the whole
    // delivered history agreed at every member.
    EXPECT_EQ(report.at("digest_count"), leader.at("digest_count"));
    EXPECT_EQ(report.at("digest"), leader.at("digest"));
    EXPECT_EQ(report.at("delivered"), leader.at("delivered"));
    EXPECT_EQ(report.at("stable_counter"), leader.at("stable_counter"));
  }
}

TEST(Cluster, SurvivorsConvergeAfterDepartureAndRestart) {
  // 50 rounds x 3 nodes x 101 broadcasts per round per node: well over
  // 10k messages through the kernel. Node 2 departs mid-run and comes
  // back as an observer; the two survivors must still agree exactly.
  ClusterHarness cluster({.nodes = 3, .rounds = 50, .ops_per_round = 100});
  cluster.start_all();

  // Let the run get going, then take node 2 out gracefully.
  ASSERT_TRUE(cluster.wait_for_progress(2, "round", 3));
  cluster.signal_departure(2);
  ASSERT_TRUE(cluster.wait_for_report(2, /*require_done=*/false))
      << "departing node never wrote its report";
  const NodeReport departed = *cluster.report(2);
  EXPECT_EQ(departed.at("role"), "departed");
  cluster.terminate_node(2);

  // Restart the same member id as an observer: its reliability state died
  // with the old process, so it cannot rejoin the causal past, but its
  // presence (sockets up, datagrams flowing) must not disturb survivors.
  cluster.start_node(2, {"--observer"});

  for (std::size_t id = 0; id < 2; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "survivor " << id << " never finished";
  }
  cluster.terminate_all();

  const NodeReport leader = *cluster.report(0);
  const NodeReport worker = *cluster.report(1);
  expect_clean(leader);
  expect_clean(worker);
  EXPECT_EQ(leader.at("done"), "1");
  EXPECT_EQ(worker.at("done"), "1");
  EXPECT_EQ(leader.at("digest_count"), "50");
  EXPECT_EQ(worker.at("digest_count"), "50");
  EXPECT_EQ(worker.at("digest"), leader.at("digest"));
  EXPECT_EQ(worker.at("delivered"), leader.at("delivered"));
  EXPECT_EQ(worker.at("stable_counter"), leader.at("stable_counter"));

  // The departed member's prefix agreed too: its digest chain at cycle k
  // is a prefix of the survivors' chain, so its own run was clean.
  EXPECT_EQ(departed.at("violations"), "0");

  // Volume check: each survivor delivered 10k+ messages.
  EXPECT_GE(std::stoull(leader.at("delivered")), 10'000u);
}

TEST(Cluster, TotalOrderSmokeConverges) {
  // ASend deterministic-merge total order over real UDP: every member
  // submits up front; the merged sequence (and thus the digest) must be
  // identical everywhere.
  ClusterHarness cluster(
      {.nodes = 3, .rounds = 1, .ops_per_round = 30, .discipline = "total"});
  cluster.start_all();
  for (std::size_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(cluster.wait_for_report(id, /*require_done=*/true))
        << "node " << id << " never finished";
  }
  cluster.terminate_all();
  const NodeReport first = *cluster.report(0);
  expect_clean(first);
  EXPECT_EQ(first.at("delivered"), std::to_string(3 * 31));
  for (std::size_t id = 1; id < 3; ++id) {
    const NodeReport report = *cluster.report(id);
    expect_clean(report);
    EXPECT_EQ(report.at("digest"), first.at("digest"));
    EXPECT_EQ(report.at("delivered"), first.at("delivered"));
  }
}

}  // namespace
}  // namespace cbc
