// Schedule-permutation exploration: the paper's invariants must hold on
// EVERY delivery interleaving, not just the ones a seeded sim happens to
// produce. Three scenarios (OSend dependency DAG, ASend deterministic
// merge, stable-point activity) are explored exhaustively up to a budget
// plus seeded random walks — several hundred distinct interleavings each,
// >1000 across the suite — with the InvariantChecker attached to every
// member. A deliberately bugged discipline (dependencies ignored) proves
// the harness actually detects ordering violations and minimizes the
// failing schedule.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "causal/osend.h"
#include "check/invariant_checker.h"
#include "check/schedule_explorer.h"
#include "common/sim_env.h"
#include "obs/metrics.h"
#include "total/asend.h"
#include "util/serde.h"

namespace cbc {
namespace {

using check::ExplorerOptions;
using check::ExplorerResult;
using check::InvariantChecker;
using check::InvariantMonitor;
using check::ScheduleExplorer;

ExplorerOptions default_options() {
  ExplorerOptions options;
  options.max_exhaustive_schedules = 400;
  options.random_schedules = 50;
  options.seed = 7;
  return options;
}

// ---------- scenario 1: OSend Occurs_After DAG ----------
//
// a (member 0) and d (member 2) are concurrent roots; b is broadcast by
// member 1 in reaction to delivering a (deps {a}); c by member 2 in
// reaction to delivering b (deps {a, b}). Every interleaving must respect
// the declared DAG at every member.
class OSendDagScenario final : public check::Scenario {
 public:
  explicit OSendDagScenario(Transport& transport)
      : view_(testkit::make_view(3)) {
    for (std::size_t i = 0; i < 3; ++i) {
      checkers_.push_back(monitor_.attach(std::make_unique<OSendMember>(
          transport, view_, [](const Delivery&) {})));
    }
    checkers_[1]->set_deliver([this](const Delivery& delivery) {
      if (delivery.label() == "a" && !sent_b_) {
        sent_b_ = true;
        checkers_[1]->broadcast("b", {}, DepSpec::after(delivery.id));
      }
    });
    checkers_[2]->set_deliver([this](const Delivery& delivery) {
      if (delivery.label() == "b" && !sent_c_) {
        sent_c_ = true;
        checkers_[2]->broadcast("c", {},
                                DepSpec::after_all({a_id_, delivery.id}));
      }
    });
  }

  void start() override {
    a_id_ = checkers_[0]->broadcast("a", {}, DepSpec::none());
    checkers_[2]->broadcast("d", {}, DepSpec::none());
  }

  InvariantMonitor& monitor() override { return monitor_; }

  void on_quiescent() override {
    for (const auto& checker : checkers_) {
      if (checker->delivered_sequence().size() != 4) {
        monitor_.log()->add(check::ViolationKind::kSetDivergence,
                            checker->id(), MessageId::null(),
                            "expected 4 deliveries at quiescence, got " +
                                std::to_string(
                                    checker->delivered_sequence().size()));
      }
    }
  }

 private:
  GroupView view_;
  InvariantMonitor monitor_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  MessageId a_id_;
  bool sent_b_ = false;
  bool sent_c_ = false;
};

TEST(ScheduleExplorer, OSendDagHoldsOnEveryInterleaving) {
  ScheduleExplorer explorer(
      [](Transport& transport) {
        return std::make_unique<OSendDagScenario>(transport);
      },
      default_options());
  const ExplorerResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << result.failure_report;
  EXPECT_GE(result.distinct_schedules, 400u);
  RecordProperty("distinct_schedules",
                 static_cast<int>(result.distinct_schedules));
}

// ---------- scenario 2: ASend deterministic merge ----------
//
// Three members submit spontaneous messages concurrently; the round merge
// must impose ONE order, identical at every member (eq. 5), whatever the
// arrival order of round frames.
class ASendMergeScenario final : public check::Scenario {
 public:
  explicit ASendMergeScenario(Transport& transport)
      : view_(testkit::make_view(3)) {
    InvariantChecker::Options options;
    options.expect_total_order = true;
    for (std::size_t i = 0; i < 3; ++i) {
      checkers_.push_back(monitor_.attach(
          std::make_unique<ASendMember>(transport, view_,
                                        [](const Delivery&) {}),
          options));
    }
  }

  void start() override {
    for (std::size_t i = 0; i < 3; ++i) {
      checkers_[i]->broadcast("m" + std::to_string(i),
                              {static_cast<std::uint8_t>(i)},
                              DepSpec::none());
    }
  }

  InvariantMonitor& monitor() override { return monitor_; }

  void on_quiescent() override {
    for (const auto& checker : checkers_) {
      if (checker->delivered_sequence().size() != 3) {
        monitor_.log()->add(check::ViolationKind::kSetDivergence,
                            checker->id(), MessageId::null(),
                            "expected 3 deliveries at quiescence, got " +
                                std::to_string(
                                    checker->delivered_sequence().size()));
      }
    }
  }

 private:
  GroupView view_;
  InvariantMonitor monitor_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
};

TEST(ScheduleExplorer, ASendMergeAgreesOnEveryInterleaving) {
  ScheduleExplorer explorer(
      [](Transport& transport) {
        return std::make_unique<ASendMergeScenario>(transport);
      },
      default_options());
  const ExplorerResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << result.failure_report;
  EXPECT_GE(result.distinct_schedules, 400u);
}

// ---------- scenario 3: stable-point activity ----------
//
// Two commutative inc(x) from members 0 and 1; member 2 closes the cycle
// with a read(x) whose Occurs_After covers both. At every member the
// stable point must close on the same sync message with the same
// (order-insensitive) state digest — agreement with no extra protocol.
class StableActivityScenario final : public check::Scenario {
 public:
  explicit StableActivityScenario(Transport& transport)
      : view_(testkit::make_view(3)) {
    CommutativitySpec spec;
    spec.mark_commutative("inc");
    InvariantChecker::Options options;
    options.stable_spec = spec;
    for (std::size_t i = 0; i < 3; ++i) {
      checkers_.push_back(monitor_.attach(
          std::make_unique<OSendMember>(transport, view_,
                                        [](const Delivery&) {}),
          options));
    }
    checkers_[2]->set_deliver([this](const Delivery& delivery) {
      if (delivery.label() == "inc(x)") {
        incs_seen_.push_back(delivery.id);
        if (incs_seen_.size() == 4) {
          checkers_[2]->broadcast("read(x)", {},
                                  DepSpec::after_all(incs_seen_));
        }
      }
    });
  }

  void start() override {
    // Four concurrent commutative updates (two per updater) make the
    // interleaving space comfortably larger than the DFS budget.
    checkers_[0]->broadcast("inc(x)", {1}, DepSpec::none());
    checkers_[0]->broadcast("inc(x)", {3}, DepSpec::none());
    checkers_[1]->broadcast("inc(x)", {2}, DepSpec::none());
    checkers_[1]->broadcast("inc(x)", {4}, DepSpec::none());
  }

  InvariantMonitor& monitor() override { return monitor_; }

  void on_quiescent() override {
    for (const auto& checker : checkers_) {
      if (checker->stable_history().size() != 1) {
        monitor_.log()->add(check::ViolationKind::kStableDivergence,
                            checker->id(), MessageId::null(),
                            "expected 1 stable point at quiescence, got " +
                                std::to_string(
                                    checker->stable_history().size()));
      } else if (!checker->stable_history()[0].coverage_complete) {
        monitor_.log()->add(check::ViolationKind::kStableDivergence,
                            checker->id(),
                            checker->stable_history()[0].sync_message,
                            "sync coverage incomplete");
      }
    }
  }

 private:
  GroupView view_;
  InvariantMonitor monitor_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  std::vector<MessageId> incs_seen_;
};

TEST(ScheduleExplorer, StableActivityAgreesOnEveryInterleaving) {
  ScheduleExplorer explorer(
      [](Transport& transport) {
        return std::make_unique<StableActivityScenario>(transport);
      },
      default_options());
  const ExplorerResult result = explorer.explore();
  EXPECT_TRUE(result.ok()) << result.failure_report;
  EXPECT_GE(result.distinct_schedules, 400u);
}

// ---------- negative: an injected ordering bug must be caught ----------

/// A broken discipline: broadcasts carry their Occurs_After set but
/// deliveries ignore it entirely (no hold-back) — the bug class the
/// checker exists to catch.
class UnorderedMember final : public BroadcastMember {
 public:
  UnorderedMember(Transport& transport, const GroupView& view,
                  DeliverFn deliver)
      : transport_(transport), view_(view), deliver_(std::move(deliver)) {
    id_ = transport.add_endpoint([this](NodeId /*from*/,
                                        const WireFrame& frame) {
      Delivery delivery(Envelope::parse(frame.buffer, frame.offset));
      deliver_now(std::move(delivery));
    });
  }

  [[nodiscard]] NodeId id() const override { return id_; }

  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override {
    const MessageId message_id{id_, next_seq_++};
    Writer writer;
    Envelope::encode_section(writer, message_id, label, deps,
                             transport_.now_us(), payload);
    const SharedBuffer frame = writer.take_shared();
    for (const NodeId member : view_.members()) {
      if (member != id_) {
        transport_.send(id_, member, frame);
      }
    }
    deliver_now(Delivery(Envelope::parse(frame, 0)));
    return message_id;
  }

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }
  [[nodiscard]] const GroupView& view() const override { return view_; }
  void set_deliver(DeliverFn deliver) override { deliver_ = std::move(deliver); }
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  void deliver_now(Delivery delivery) {
    delivery.delivered_at = transport_.now_us();
    log_.push_back(std::move(delivery));
    stats_.delivered += 1;
    if (deliver_) {
      deliver_(log_.back());
    }
  }

  Transport& transport_;
  GroupView view_;
  DeliverFn deliver_;
  NodeId id_ = kNoNode;
  SeqNo next_seq_ = 1;
  std::vector<Delivery> log_;
  OrderingStats stats_;
  mutable RecursiveMutex mutex_{kRankStack, "stub stack"};
};

class InjectedBugScenario final : public check::Scenario {
 public:
  explicit InjectedBugScenario(Transport& transport)
      : view_(testkit::make_view(2)) {
    for (std::size_t i = 0; i < 2; ++i) {
      checkers_.push_back(monitor_.attach(std::make_unique<UnorderedMember>(
          transport, view_, [](const Delivery&) {})));
    }
  }

  void start() override {
    const MessageId a = checkers_[0]->broadcast("a", {}, DepSpec::none());
    checkers_[0]->broadcast("b", {}, DepSpec::after(a));
  }

  InvariantMonitor& monitor() override { return monitor_; }

 private:
  GroupView view_;
  InvariantMonitor monitor_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
};

TEST(ScheduleExplorer, InjectedOrderingBugIsFoundAndMinimized) {
  ScheduleExplorer explorer(
      [](Transport& transport) {
        return std::make_unique<InjectedBugScenario>(transport);
      },
      default_options());
  const ExplorerResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found);
  // The minimal reorder: deliver b at member 1 before a (one non-FIFO
  // choice).
  ASSERT_FALSE(result.failing_schedule.empty());
  EXPECT_NE(result.failure_report.find("dependency"), std::string::npos)
      << result.failure_report;
  EXPECT_NE(result.failure_report.find("Occurs_After"), std::string::npos);
  EXPECT_NE(result.failure_report.find("failing schedule"), std::string::npos);
  // The reported schedule replays to the same violation.
  EXPECT_FALSE(explorer.replay(result.failing_schedule).empty());
}

// The combined suite covers well over 1,000 distinct interleavings: each
// positive scenario above enumerates >= 400 (DFS budget) and the three
// run in every ctest invocation.
TEST(ScheduleExplorer, CombinedCoverageExceedsThousandInterleavings) {
  std::size_t total = 0;
  const auto count = [&total](check::ScenarioFactory factory) {
    ExplorerOptions options = default_options();
    options.random_schedules = 0;
    ScheduleExplorer explorer(std::move(factory), options);
    const ExplorerResult result = explorer.explore();
    EXPECT_TRUE(result.ok()) << result.failure_report;
    total += result.distinct_schedules;
  };
  count([](Transport& transport) {
    return std::make_unique<OSendDagScenario>(transport);
  });
  count([](Transport& transport) {
    return std::make_unique<ASendMergeScenario>(transport);
  });
  count([](Transport& transport) {
    return std::make_unique<StableActivityScenario>(transport);
  });
  EXPECT_GE(total, 1000u);
}

TEST(ScheduleExplorer, MetricsCountTheSearch) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  obs::MetricsRegistry registry;
  ExplorerOptions options = default_options();
  options.metrics = &registry;
  ScheduleExplorer explorer(
      [](Transport& transport) {
        return std::make_unique<InjectedBugScenario>(transport);
      },
      options);
  const ExplorerResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found);
  const auto snap = registry.snapshot();
  // The schedules counter moves in lockstep with the result field.
  EXPECT_EQ(snap.at("explorer.schedules_explored"),
            static_cast<double>(result.schedules_explored));
  EXPECT_GE(snap.at("explorer.violations_found"), 1.0);
  // Minimization replayed shrunken candidates.
  EXPECT_GT(snap.at("explorer.minimize_steps"), 0.0);
}

}  // namespace
}  // namespace cbc
