// Tests for the transport layer: SimTransport, ThreadTransport, and the
// ReliableEndpoint loss-recovery layer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/sim_env.h"
#include "transport/reliable.h"
#include "transport/thread_transport.h"
#include "util/serde.h"

namespace cbc {
namespace {

using testkit::SimEnv;

// ---------- SimTransport ----------

TEST(SimTransport, SendAndScheduleWork) {
  SimEnv env;
  std::vector<int> events;
  const NodeId a = env.transport.add_endpoint(
      [&](NodeId, const WireFrame&) { events.push_back(1); });
  const NodeId b = env.transport.add_endpoint(
      [&](NodeId from, const WireFrame& frame) {
        EXPECT_EQ(from, a);
        EXPECT_EQ(frame.bytes().size(), 3u);
        events.push_back(2);
      });
  env.transport.send(a, b, {1, 2, 3});
  env.transport.schedule(50, [&] { events.push_back(3); });
  env.run();
  // Timer at t=50 fires before delivery at t=1000.
  EXPECT_EQ(events, (std::vector<int>{3, 2}));
  EXPECT_EQ(env.transport.endpoint_count(), 2u);
  EXPECT_EQ(env.transport.now_us(), 1000);
}

// ---------- ReliableEndpoint over a lossy network ----------

struct ReliablePair {
  explicit ReliablePair(SimEnv::Config config,
                        ReliableEndpoint::Options options = {
                            .control_interval_us = 2000, .enabled = true})
      : env(config),
        alice(env.transport,
              [this](NodeId, const WireFrame& frame) {
                Reader reader(frame.bytes());
                alice_received.push_back(reader.u64());
              },
              options),
        bob(env.transport,
            [this](NodeId, const WireFrame& frame) {
              Reader reader(frame.bytes());
              bob_received.push_back(reader.u64());
            },
            options) {}

  static std::vector<std::uint8_t> payload(std::uint64_t value) {
    Writer writer;
    writer.u64(value);
    return writer.take();
  }

  SimEnv env;
  ReliableEndpoint alice;
  ReliableEndpoint bob;
  std::vector<std::uint64_t> alice_received;
  std::vector<std::uint64_t> bob_received;
};

TEST(Reliable, LossFreeDeliversInOrderWithoutRetransmission) {
  ReliablePair pair(SimEnv::Config{});
  for (std::uint64_t i = 0; i < 20; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run();
  ASSERT_EQ(pair.bob_received.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(pair.bob_received[i], i);
  }
  EXPECT_EQ(pair.alice.stats().retransmissions, 0u);
}

TEST(Reliable, RecoversFromHeavyLoss) {
  SimEnv::Config config;
  config.drop_probability = 0.4;
  config.seed = 5;
  ReliablePair pair(config);
  const std::uint64_t count = 100;
  for (std::uint64_t i = 0; i < count; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run();
  // Every message delivered exactly once, despite 40% loss.
  ASSERT_EQ(pair.bob_received.size(), count);
  const std::set<std::uint64_t> unique(pair.bob_received.begin(),
                                       pair.bob_received.end());
  EXPECT_EQ(unique.size(), count);
  EXPECT_GT(pair.alice.stats().retransmissions, 0u);
}

TEST(Reliable, SenderTimerKeepsRetryingUnackedTail) {
  // 100% loss: the single message (and every retry) is dropped, but the
  // sender-side timer must keep retransmitting — the guarantee that a
  // dropped *tail* message is never abandoned. Retries back off
  // exponentially up to max_retransmit_interval_us, so give the run
  // enough simulated time to see several of them.
  SimEnv::Config config;
  config.drop_probability = 1.0;
  config.seed = 6;
  ReliablePair pair(config);
  pair.alice.send(pair.bob.id(), ReliablePair::payload(7));
  pair.env.run_until(600000);
  EXPECT_TRUE(pair.bob_received.empty());
  EXPECT_GE(pair.alice.stats().retransmissions, 5u);
  EXPECT_EQ(pair.alice.stats().peer_unresponsive_events, 1u);
  EXPECT_GT(pair.env.scheduler.pending(), 0u);  // still trying
}

TEST(Reliable, AckCeilingWithholdsAcksUntilRaised) {
  // Checkpoint-retention contract: frames above the ceiling are still
  // delivered, but never acknowledged — the sender must retain (and keep
  // retrying) them until the ceiling rises past their seqs.
  ReliablePair pair(SimEnv::Config{});
  pair.bob.set_ack_ceiling(pair.alice.id(), 5);
  for (std::uint64_t i = 0; i < 10; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run_until(200000);
  EXPECT_EQ(pair.bob_received.size(), 10u);  // delivery is not gated
  EXPECT_EQ(pair.alice.unacked_total(), 5u);
  EXPECT_GT(pair.alice.stats().retransmissions, 0u);
  EXPECT_GT(pair.bob.stats().duplicates_suppressed, 0u);
  // Raising the ceiling re-acks immediately; the sender drains and the
  // retained tail is released without any duplicate delivery upward.
  pair.bob.set_ack_ceiling(pair.alice.id(), 10);
  pair.env.run();
  EXPECT_EQ(pair.alice.unacked_total(), 0u);
  EXPECT_EQ(pair.bob_received.size(), 10u);
}

TEST(Reliable, SuppressesDuplicates) {
  SimEnv::Config config;
  config.duplicate_probability = 1.0;
  config.seed = 8;
  ReliablePair pair(config);
  for (std::uint64_t i = 0; i < 10; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run();
  EXPECT_EQ(pair.bob_received.size(), 10u);
  EXPECT_GT(pair.bob.stats().duplicates_suppressed, 0u);
}

TEST(Reliable, BidirectionalTrafficIndependent) {
  SimEnv::Config config;
  config.drop_probability = 0.2;
  config.seed = 9;
  ReliablePair pair(config);
  for (std::uint64_t i = 0; i < 30; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
    pair.bob.send(pair.alice.id(), ReliablePair::payload(1000 + i));
  }
  pair.env.run();
  EXPECT_EQ(pair.bob_received.size(), 30u);
  EXPECT_EQ(pair.alice_received.size(), 30u);
}

TEST(Reliable, PassThroughModeSendsRawBytes) {
  SimEnv env;
  std::vector<std::uint8_t> got;
  ReliableEndpoint a(env.transport, [](NodeId, const WireFrame&) {},
                     {.control_interval_us = 1000, .enabled = false});
  ReliableEndpoint b(
      env.transport,
      [&](NodeId, const WireFrame& frame) {
        got.assign(frame.bytes().begin(), frame.bytes().end());
      },
      {.control_interval_us = 1000, .enabled = false});
  a.send(b.id(), {42, 43});
  env.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{42, 43}));  // no framing header
  EXPECT_EQ(env.network.stats().sent, 1u);              // no control frames
}

TEST(Reliable, QuiescesAfterRecovery) {
  SimEnv::Config config;
  config.drop_probability = 0.3;
  config.seed = 10;
  ReliablePair pair(config);
  for (std::uint64_t i = 0; i < 50; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run();  // must terminate: timers disarm once all acked
  EXPECT_EQ(pair.env.scheduler.pending(), 0u);
  EXPECT_EQ(pair.bob_received.size(), 50u);
}

TEST(Reliable, JitterReorderingToleratedWithoutRetransmitStorm) {
  SimEnv::Config config;
  config.jitter_us = 5000;
  config.seed = 11;
  ReliablePair pair(config);
  for (std::uint64_t i = 0; i < 40; ++i) {
    pair.alice.send(pair.bob.id(), ReliablePair::payload(i));
  }
  pair.env.run();
  EXPECT_EQ(pair.bob_received.size(), 40u);
  // Reordering alone may trigger some NACK scans but must not lose data.
  const std::set<std::uint64_t> unique(pair.bob_received.begin(),
                                       pair.bob_received.end());
  EXPECT_EQ(unique.size(), 40u);
}

// ---------- ThreadTransport ----------

TEST(ThreadTransport, DeliversAcrossThreads) {
  ThreadTransport transport;
  std::atomic<int> received{0};
  std::atomic<NodeId> seen_from{kNoNode};
  const NodeId a = transport.add_endpoint(
      [](NodeId, const WireFrame&) {});
  const NodeId b = transport.add_endpoint(
      [&](NodeId from, const WireFrame& frame) {
        seen_from.store(from);
        received.fetch_add(static_cast<int>(frame.bytes().size()));
      });
  transport.send(a, b, {1, 2, 3});
  transport.drain();
  EXPECT_EQ(received.load(), 3);
  EXPECT_EQ(seen_from.load(), a);
}

TEST(ThreadTransport, ManyMessagesAllArrive) {
  ThreadTransport transport;
  std::atomic<int> count{0};
  const NodeId a = transport.add_endpoint(
      [](NodeId, const WireFrame&) {});
  const NodeId b = transport.add_endpoint(
      [&](NodeId, const WireFrame&) { count.fetch_add(1); });
  for (int i = 0; i < 500; ++i) {
    transport.send(a, b, {static_cast<std::uint8_t>(i)});
  }
  transport.drain();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadTransport, TimersFire) {
  ThreadTransport transport;
  std::atomic<bool> fired{false};
  transport.schedule(1000, [&] { fired.store(true); });
  transport.drain();
  EXPECT_TRUE(fired.load());
}

TEST(ThreadTransport, JitterStillDeliversEverything) {
  ThreadTransport::Options options;
  options.max_jitter_us = 3000;
  options.seed = 77;
  ThreadTransport transport(options);
  std::atomic<int> count{0};
  const NodeId a = transport.add_endpoint(
      [](NodeId, const WireFrame&) {});
  const NodeId b = transport.add_endpoint(
      [&](NodeId, const WireFrame&) { count.fetch_add(1); });
  for (int i = 0; i < 100; ++i) {
    transport.send(a, b, std::vector<std::uint8_t>{0});
  }
  transport.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadTransport, ReliableLayerWorksOnThreads) {
  ThreadTransport::Options options;
  options.max_jitter_us = 500;
  ThreadTransport transport(options);
  std::atomic<int> count{0};
  ReliableEndpoint a(transport, [](NodeId, const WireFrame&) {},
                     {.control_interval_us = 1000, .enabled = true});
  ReliableEndpoint b(
      transport, [&](NodeId, const WireFrame&) { count.fetch_add(1); },
      {.control_interval_us = 1000, .enabled = true});
  for (int i = 0; i < 50; ++i) {
    Writer writer;
    writer.u64(static_cast<std::uint64_t>(i));
    a.send(b.id(), writer.take());
  }
  transport.drain();
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace cbc
