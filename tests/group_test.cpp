// Unit tests for group views and the membership service.
#include <gtest/gtest.h>

#include "group/group_view.h"
#include "group/membership.h"
#include "util/ensure.h"

namespace cbc {
namespace {

TEST(GroupView, MembersSortedAndRanked) {
  GroupView view(1, {5, 2, 9});
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view.members(), (std::vector<NodeId>{2, 5, 9}));
  EXPECT_EQ(view.rank_of(2), 0u);
  EXPECT_EQ(view.rank_of(5), 1u);
  EXPECT_EQ(view.rank_of(9), 2u);
  EXPECT_EQ(view.rank_of(7), std::nullopt);
  EXPECT_EQ(view.member_at(1), 5u);
}

TEST(GroupView, ContainsChecks) {
  GroupView view(1, {1, 3});
  EXPECT_TRUE(view.contains(1));
  EXPECT_TRUE(view.contains(3));
  EXPECT_FALSE(view.contains(2));
}

TEST(GroupView, DuplicateMembersRejected) {
  EXPECT_THROW(GroupView(1, {1, 1}), InvalidArgument);
}

TEST(GroupView, RankOutOfRangeRejected) {
  GroupView view(1, {1});
  EXPECT_THROW((void)view.member_at(1), InvalidArgument);
}

TEST(GroupView, EncodeDecodeRoundTrip) {
  GroupView view(42, {3, 1, 7});
  Writer writer;
  view.encode(writer);
  Reader reader(writer.bytes());
  const GroupView copy = GroupView::decode(reader);
  EXPECT_EQ(view, copy);
  EXPECT_EQ(copy.id(), 42u);
}

TEST(GroupView, ToStringShowsIdAndMembers) {
  GroupView view(3, {2, 1});
  EXPECT_EQ(view.to_string(), "view#3{1,2}");
}

TEST(Membership, InitialViewIsOne) {
  Membership membership({0, 1, 2});
  EXPECT_EQ(membership.view().id(), 1u);
  EXPECT_EQ(membership.view().size(), 3u);
}

TEST(Membership, JoinInstallsSuccessorView) {
  Membership membership({0, 1});
  const GroupView& next = membership.join(5);
  EXPECT_EQ(next.id(), 2u);
  EXPECT_TRUE(next.contains(5));
  EXPECT_EQ(membership.history().size(), 2u);
}

TEST(Membership, LeaveRemovesMember) {
  Membership membership({0, 1, 2});
  const GroupView& next = membership.leave(1);
  EXPECT_EQ(next.id(), 2u);
  EXPECT_FALSE(next.contains(1));
  EXPECT_EQ(next.size(), 2u);
}

TEST(Membership, ListenersSeeEveryInstallInOrder) {
  Membership membership({0});
  std::vector<ViewId> seen;
  membership.subscribe(
      [&seen](const GroupView& view) { seen.push_back(view.id()); });
  membership.join(1);
  membership.join(2);
  membership.leave(1);
  EXPECT_EQ(seen, (std::vector<ViewId>{2, 3, 4}));
}

TEST(Membership, InvalidTransitionsRejected) {
  Membership membership({0});
  EXPECT_THROW(membership.join(0), InvalidArgument);
  EXPECT_THROW(membership.leave(9), InvalidArgument);
  EXPECT_THROW(membership.leave(0), InvalidArgument);  // would empty group
  EXPECT_THROW(Membership({}), InvalidArgument);
}

TEST(Membership, ViewIdsStrictlyIncrease) {
  Membership membership({0, 1});
  for (NodeId n = 10; n < 20; ++n) {
    membership.join(n);
  }
  const auto& history = membership.history();
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i].id(), history[i - 1].id() + 1);
  }
}

}  // namespace
}  // namespace cbc
