// FaultPlan parsing and ChaosTransport semantics: directive grammar and
// line-numbered rejection, most-specific-rule precedence, partition and
// crash-point windows, and the acceptance criterion for the whole fault
// subsystem — two runs of the same scenario under the same plan + seed
// replay byte-identical delivery schedules and fault decisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "causal/osend.h"
#include "common/sim_env.h"
#include "fault/chaos_transport.h"
#include "fault/fault_plan.h"
#include "group/group_view.h"
#include "transport/batching.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc::fault {
namespace {

// ---------- Parsing ----------

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "# adversity for the three-node smoke\n"
      "seed 99\n"
      "link 0 1 drop 0.25 dup 0.1\n"
      "link * * delay 100 500 reorder 0.05\n"
      "partition 10000 5000 0,1|2\n"
      "crash 2 20000\n");
  EXPECT_EQ(plan.seed(), 99u);
  EXPECT_FALSE(plan.empty());
  ASSERT_NE(plan.rule_for(0, 1), nullptr);
  EXPECT_DOUBLE_EQ(plan.rule_for(0, 1)->drop, 0.25);
  EXPECT_DOUBLE_EQ(plan.rule_for(0, 1)->duplicate, 0.1);
  ASSERT_EQ(plan.partitions().size(), 1u);
  ASSERT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.crash_time(2), std::optional<SimTime>{20'000});
  EXPECT_EQ(plan.crash_time(0), std::nullopt);
}

TEST(FaultPlan, EmptyAndCommentOnlyPlansInjectNothing) {
  EXPECT_TRUE(FaultPlan().empty());
  const FaultPlan plan = FaultPlan::parse("# nothing\n\n  \t\nseed 7\n");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_EQ(plan.rule_for(0, 1), nullptr);
}

TEST(FaultPlan, RejectsMalformedInputWithLineNumbers) {
  EXPECT_THROW(FaultPlan::parse("bogus directive\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("seed\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("link 0\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("link 0 1 drop 1.5\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("link 0 1 drop\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("link 0 1 warp 0.5\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("link 0 1 delay 500 100\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("partition 0 1000 0,1\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("partition 0 1000 0,1|\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("crash 2\n"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("crash 2 5 extra\n"), InvalidArgument);
  // The reported line number names the offender, not line 1.
  try {
    FaultPlan::parse("seed 1\nlink 0 1 drop nine\n");
    FAIL() << "malformed drop accepted";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(FaultPlan, MostSpecificLinkRuleWins) {
  const FaultPlan plan = FaultPlan::parse(
      "link * * drop 0.5\n"
      "link 0 * drop 0.3\n"
      "link * 1 drop 0.2\n"
      "link 0 1 drop 0.1\n");
  EXPECT_DOUBLE_EQ(plan.rule_for(0, 1)->drop, 0.1);  // exact pair
  EXPECT_DOUBLE_EQ(plan.rule_for(0, 2)->drop, 0.3);  // from-match
  EXPECT_DOUBLE_EQ(plan.rule_for(2, 1)->drop, 0.2);  // to-match
  EXPECT_DOUBLE_EQ(plan.rule_for(2, 3)->drop, 0.5);  // catch-all
  // A quiet exact rule overrides a noisy wildcard: that is how a plan
  // protects one link while hammering the rest.
  const FaultPlan carve_out = FaultPlan::parse(
      "link * * drop 0.9\n"
      "link 0 2\n");
  EXPECT_TRUE(carve_out.rule_for(0, 2)->quiet());
  EXPECT_DOUBLE_EQ(carve_out.rule_for(0, 1)->drop, 0.9);
}

TEST(FaultPlan, PartitionWindowsAndGroups) {
  const FaultPlan plan = FaultPlan::parse("partition 1000 500 0,1|2\n");
  // Inside the window, only cross-group pairs are cut — both directions.
  EXPECT_TRUE(plan.partitioned(0, 2, 1000));
  EXPECT_TRUE(plan.partitioned(2, 1, 1499));
  EXPECT_FALSE(plan.partitioned(0, 1, 1200));  // same group
  EXPECT_FALSE(plan.partitioned(0, 3, 1200));  // unlisted node unaffected
  // Half-open window [start, start + duration).
  EXPECT_FALSE(plan.partitioned(0, 2, 999));
  EXPECT_FALSE(plan.partitioned(0, 2, 1500));
}

// ---------- Determinism over the simulated transport ----------

/// One complete lossy scenario: a 2-member causal stack (reliability on)
/// over Batching over Chaos over the deterministic simulator. The sender
/// FIFO-chains every broadcast, so delivery order is fully pinned; the
/// returned labels + ChaosStats capture the entire observable schedule.
struct ChaosRun {
  std::vector<std::string> delivered;
  ChaosTransport::ChaosStats stats;
};

ChaosRun run_chaos_chain(const std::string& plan_text,
                         std::size_t messages) {
  testkit::SimEnv env;  // quiet simulator: all adversity comes from the plan
  ChaosTransport::Options options;
  options.plan = FaultPlan::parse(plan_text);
  ChaosTransport chaos(env.transport, std::move(options));
  BatchingTransport batching(chaos);
  GroupView view = testkit::make_view(2);
  OSendMember::Options member_options;
  member_options.reliability.enabled = true;
  ChaosRun run;
  OSendMember sender(batching, view, [](const Delivery&) {},
                     member_options);
  OSendMember receiver(
      batching, view,
      [&run](const Delivery& delivery) {
        run.delivered.push_back(delivery.label());
      },
      member_options);
  MessageId previous = MessageId::null();
  for (std::size_t i = 0; i < messages; ++i) {
    Writer payload;
    payload.u64(i);
    previous = sender.broadcast("m" + std::to_string(i), payload.take(),
                                DepSpec::after(previous));
  }
  env.run();
  run.stats = chaos.stats();
  return run;
}

TEST(ChaosTransport, SamePlanAndSeedReplaysByteIdentically) {
  // The PR's acceptance criterion: two independent runs of the same
  // scenario under the same plan + seed produce the identical delivery
  // schedule AND the identical per-category fault decisions.
  const std::string plan =
      "seed 1234\n"
      "link * * drop 0.15 dup 0.1 delay 200 900 reorder 0.1\n";
  const ChaosRun first = run_chaos_chain(plan, 150);
  const ChaosRun second = run_chaos_chain(plan, 150);
  ASSERT_EQ(first.delivered.size(), 150u) << "reliability failed to heal";
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.stats.drops, second.stats.drops);
  EXPECT_EQ(first.stats.duplicates, second.stats.duplicates);
  EXPECT_EQ(first.stats.delays, second.stats.delays);
  EXPECT_EQ(first.stats.reorders, second.stats.reorders);
  EXPECT_EQ(first.stats.forwarded, second.stats.forwarded);
  EXPECT_GT(first.stats.drops, 0u);
  EXPECT_GT(first.stats.duplicates, 0u);
  EXPECT_GT(first.stats.delays, 0u);

  // A different seed must explore a different schedule: the plan text is
  // the contract, the seed is the dice.
  const ChaosRun reseeded = run_chaos_chain(
      "seed 4321\n"
      "link * * drop 0.15 dup 0.1 delay 200 900 reorder 0.1\n",
      150);
  EXPECT_NE(reseeded.stats.drops, first.stats.drops);
}

TEST(ChaosTransport, PartitionDropsCrossGroupFramesThenHeals) {
  // Partition 0|1 for the first 50ms of virtual time: nothing crosses,
  // the reliability layer retransmits, and after the heal every message
  // arrives exactly once in order.
  const ChaosRun run = run_chaos_chain(
      "seed 5\n"
      "partition 0 50000 0|1\n",
      20);
  ASSERT_EQ(run.delivered.size(), 20u);
  for (std::size_t i = 0; i < run.delivered.size(); ++i) {
    EXPECT_EQ(run.delivered[i], "m" + std::to_string(i));
  }
  EXPECT_GT(run.stats.partition_drops, 0u);
}

TEST(ChaosTransport, CrashPointSilencesNodeAndFiresLocalHook) {
  testkit::SimEnv env;
  ChaosTransport::Options options;
  options.plan = FaultPlan::parse("crash 1 5000\n");
  options.local_node = 1;
  bool crash_fired = false;
  options.on_crash = [&crash_fired] { crash_fired = true; };
  ChaosTransport chaos(env.transport, std::move(options));
  std::size_t node1_received = 0;
  chaos.add_endpoint([](NodeId, const WireFrame&) {});
  chaos.add_endpoint(
      [&node1_received](NodeId, const WireFrame&) { node1_received += 1; });

  const auto send_one = [&chaos] {
    Writer writer;
    writer.u64(0);
    chaos.send(0, 1, writer.take_shared());
  };
  send_one();             // t=0: before the crash, delivered
  env.run_until(10'000);  // past the crash point
  const std::size_t before_crash = node1_received;
  EXPECT_EQ(before_crash, 1u);
  send_one();  // t=10ms: node 1 is dead, frame dropped
  env.run();
  EXPECT_EQ(node1_received, before_crash);
  EXPECT_GT(chaos.stats().crash_drops, 0u);
  EXPECT_TRUE(crash_fired);
}

}  // namespace
}  // namespace cbc::fault
