// Crash-recovery persistence edges: every way a checkpoint file can be
// unreadable (missing, truncated, version-bumped, magic-corrupted) must
// be a clean InvalidArgument — recovery code paths branch on that — and
// an InvariantChecker seeded via restore() must chain new stable cycles
// off the restored digest tail while treating floor-covered deliveries
// as already seen.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/counter.h"
#include "check/invariant_checker.h"
#include "common/group_fixture.h"
#include "fault/checkpoint.h"
#include "time/vector_clock.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {
namespace {

using check::InvariantChecker;
using check::InvariantMonitor;
using fault::Checkpoint;

Checkpoint sample_checkpoint() {
  Checkpoint snapshot;
  snapshot.node = 1;
  snapshot.cycles = 2;
  snapshot.stable_digests = {0xAAAA, 0xBBBB};
  snapshot.last_sync = MessageId{0, 7};
  snapshot.frontier = VectorClock(3);
  snapshot.app_state = {9, 8, 7};
  return snapshot;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  const Checkpoint snapshot = sample_checkpoint();
  const std::string path = testing::TempDir() + "checkpoint_roundtrip.bin";
  snapshot.save(path);
  const Checkpoint loaded = Checkpoint::load(path);
  EXPECT_EQ(loaded.node, snapshot.node);
  EXPECT_EQ(loaded.cycles, snapshot.cycles);
  EXPECT_EQ(loaded.stable_digests, snapshot.stable_digests);
  EXPECT_EQ(loaded.last_sync, snapshot.last_sync);
  EXPECT_EQ(loaded.app_state, snapshot.app_state);
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileThrows) {
  EXPECT_THROW((void)Checkpoint::load("/nonexistent/dir/checkpoint.bin"),
               InvalidArgument);
}

TEST(CheckpointFile, EveryTruncationThrows) {
  const std::string path = testing::TempDir() + "checkpoint_truncated.bin";
  sample_checkpoint().save(path);
  const std::vector<char> full = file_bytes(path);
  ASSERT_GT(full.size(), 8u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_bytes(path, {full.begin(), full.begin() + cut});
    EXPECT_THROW((void)Checkpoint::load(path), InvalidArgument)
        << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST(CheckpointFile, VersionMismatchAndBadMagicThrow) {
  const std::string path = testing::TempDir() + "checkpoint_version.bin";
  sample_checkpoint().save(path);
  const std::vector<char> full = file_bytes(path);

  std::vector<char> bumped = full;
  bumped[4] = 42;  // version field (bytes 4..7, little-endian)
  write_bytes(path, bumped);
  EXPECT_THROW((void)Checkpoint::load(path), InvalidArgument);

  std::vector<char> corrupted = full;
  corrupted[0] = static_cast<char>(corrupted[0] ^ 0x1);  // magic
  write_bytes(path, corrupted);
  EXPECT_THROW((void)Checkpoint::load(path), InvalidArgument);

  // A valid header whose cycle count disagrees with its digest chain is
  // internally inconsistent and must be rejected too.
  Checkpoint lying = sample_checkpoint();
  lying.cycles = 5;
  lying.save(path);
  EXPECT_THROW((void)Checkpoint::load(path), InvalidArgument);
  std::remove(path.c_str());
}

// ---------- InvariantChecker::restore ----------

/// Minimal injectable member (same shape as check_invariants_test).
class StubMember final : public BroadcastMember {
 public:
  explicit StubMember(NodeId id) : id_(id), view_(testkit::make_view(2)) {}

  void inject(MessageId id, std::string label,
              std::vector<MessageId> deps = {}) {
    Delivery delivery = Delivery::synthetic(
        id, std::move(label), DepSpec::after_all(std::move(deps)));
    log_.push_back(delivery);
    stats_.delivered += 1;
    if (deliver_) {
      deliver_(log_.back());
    }
  }

  [[nodiscard]] NodeId id() const override { return id_; }
  MessageId broadcast(std::string /*label*/,
                      std::vector<std::uint8_t> /*payload*/,
                      const DepSpec& /*deps*/) override {
    return MessageId{id_, ++next_seq_};
  }
  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }
  [[nodiscard]] const GroupView& view() const override { return view_; }
  void set_deliver(DeliverFn deliver) override {
    deliver_ = std::move(deliver);
  }
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  NodeId id_;
  GroupView view_;
  DeliverFn deliver_;
  SeqNo next_seq_ = 0;
  std::vector<Delivery> log_;
  OrderingStats stats_;
  mutable RecursiveMutex mutex_{kRankStack, "stub stack"};
};

TEST(CheckerRestore, RestoredChainExtendsAndFloorsSatisfyDependencies) {
  InvariantChecker::Options options;
  options.stable_spec = apps::Counter::spec();
  InvariantMonitor monitor(options);
  auto stub_owner = std::make_unique<StubMember>(0);
  StubMember* stub = stub_owner.get();
  const std::unique_ptr<InvariantChecker> checker =
      monitor.attach(std::move(stub_owner));

  const std::vector<std::uint64_t> restored = {0xAAAA, 0xBBBB};
  checker->restore(restored, {{0, 2}, {1, 2}});
  EXPECT_EQ(checker->stable_digests(), restored);

  // Dependencies on floor-covered ids are satisfied by the checkpoint;
  // seqs resume above the floor with no gap violation.
  stub->inject({0, 3}, "inc", {{1, 2}});
  stub->inject({1, 3}, "inc", {{0, 3}});
  stub->inject({0, 4}, "rd", {{0, 3}, {1, 3}});
  EXPECT_EQ(checker->violation_count(), 0u) << monitor.report();
  checker->check_no_gaps();
  EXPECT_EQ(checker->violation_count(), 0u) << monitor.report();

  // The sync closed one new cycle, chained off the restored tail.
  ASSERT_EQ(checker->stable_digests().size(), 3u);
  EXPECT_EQ(checker->stable_digests()[0], restored[0]);
  EXPECT_EQ(checker->stable_digests()[1], restored[1]);
  EXPECT_NE(checker->stable_digests()[2], restored[1]);

  // A second restored-and-replayed checker lands on the identical chain —
  // recovery must be deterministic or digest agreement breaks.
  InvariantMonitor again_monitor(options);
  auto again_owner = std::make_unique<StubMember>(0);
  StubMember* again = again_owner.get();
  const std::unique_ptr<InvariantChecker> twin =
      again_monitor.attach(std::move(again_owner));
  twin->restore(restored, {{0, 2}, {1, 2}});
  again->inject({0, 3}, "inc", {{1, 2}});
  again->inject({1, 3}, "inc", {{0, 3}});
  again->inject({0, 4}, "rd", {{0, 3}, {1, 3}});
  EXPECT_EQ(twin->stable_digests(), checker->stable_digests());
}

TEST(CheckerRestore, SeqBelowFloorIsNotAGapAboveItIs) {
  InvariantChecker::Options options;
  options.stable_spec = apps::Counter::spec();
  InvariantMonitor monitor(options);
  auto stub_owner = std::make_unique<StubMember>(0);
  StubMember* stub = stub_owner.get();
  const std::unique_ptr<InvariantChecker> checker =
      monitor.attach(std::move(stub_owner));
  checker->restore({0x1}, {{1, 4}});

  // Seq 6 skips seq 5 — a real gap above the floor.
  stub->inject({1, 6}, "inc");
  checker->check_no_gaps();
  EXPECT_GT(checker->violation_count(), 0u);
}

}  // namespace
}  // namespace cbc
