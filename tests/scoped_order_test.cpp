// Tests for ScopedOrderMember: eq. (5)'s on-demand total order over OSend.
#include <gtest/gtest.h>

#include <memory>

#include "common/sim_env.h"
#include "total/scoped_order.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::SimEnv;

struct ScopedGroup {
  ScopedGroup(Transport& transport, std::size_t n)
      : view(testkit::make_view(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<ScopedOrderMember>(
          transport, view, [](const Delivery&) {}));
    }
  }
  std::vector<std::string> labels(std::size_t i) const {
    std::vector<std::string> out;
    for (const Delivery& delivery : members[i]->app_log()) {
      out.push_back(delivery.label());
    }
    return out;
  }
  GroupView view;
  std::vector<std::unique_ptr<ScopedOrderMember>> members;
};

TEST(ScopedOrder, PlainCausalTrafficPassesThrough) {
  SimEnv env;
  ScopedGroup group(env.transport, 2);
  group.members[0]->send_causal("hello", {}, DepSpec::none());
  env.run();
  EXPECT_EQ(group.labels(1), (std::vector<std::string>{"hello"}));
}

TEST(ScopedOrder, ReservedLabelRejected) {
  SimEnv env;
  ScopedGroup group(env.transport, 2);
  EXPECT_THROW(group.members[0]->send_causal("@bad", {}, DepSpec::none()),
               InvalidArgument);
}

TEST(ScopedOrder, ScopedSetReleasedInIdenticalOrderEverywhere) {
  // The exact eq. (5) scenario: ASend({m1', m2'}, Occurs_After(Msg)).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 5000;
    config.seed = seed;
    SimEnv env(config);
    ScopedGroup group(env.transport, 3);
    const ScopeId scope = group.members[0]->open_scope("Msg");
    env.run();  // ascendant reaches everyone
    // Two members submit spontaneously into the scope.
    group.members[1]->send_scoped(scope, "m1'", {});
    group.members[2]->send_scoped(scope, "m2'", {});
    env.run();
    group.members[0]->close_scope(scope, "lbl_d");
    env.run();
    // Every member: Msg first, then m1'/m2' in ONE deterministic order,
    // then the descendant.
    const auto reference = group.labels(0);
    ASSERT_EQ(reference.size(), 4u) << "seed " << seed;
    EXPECT_EQ(reference.front(), "Msg");
    EXPECT_EQ(reference.back(), "lbl_d");
    for (std::size_t i = 1; i < 3; ++i) {
      EXPECT_EQ(group.labels(i), reference) << "seed " << seed;
    }
  }
}

TEST(ScopedOrder, WireOrderMayDifferButAppOrderMatches) {
  // Underlying OSend logs may deliver m1'/m2' in different orders at
  // different members (they are concurrent on the wire); the app log must
  // still match. Find a seed demonstrating the wire divergence.
  bool wire_diverged = false;
  for (std::uint64_t seed = 1; seed <= 40 && !wire_diverged; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 6000;
    config.seed = seed;
    SimEnv env(config);
    ScopedGroup group(env.transport, 3);
    const ScopeId scope = group.members[0]->open_scope("a");
    env.run();
    group.members[1]->send_scoped(scope, "x", {});
    group.members[2]->send_scoped(scope, "y", {});
    env.run();
    group.members[0]->close_scope(scope, "d");
    env.run();
    // Wire order: compare raw OSend logs of members 1 and 2.
    const auto wire1 = delivered_labels(group.members[1]->member().log());
    const auto wire2 = delivered_labels(group.members[2]->member().log());
    wire_diverged = wire1 != wire2;
    // App order must agree regardless.
    EXPECT_EQ(group.labels(1), group.labels(2)) << "seed " << seed;
  }
  EXPECT_TRUE(wire_diverged);
}

TEST(ScopedOrder, MultipleSequentialScopes) {
  SimEnv env;
  ScopedGroup group(env.transport, 2);
  for (int round = 0; round < 3; ++round) {
    const ScopeId scope =
        group.members[0]->open_scope("open" + std::to_string(round));
    env.run();
    group.members[1]->send_scoped(scope, "w" + std::to_string(round), {});
    env.run();
    group.members[0]->close_scope(scope, "close" + std::to_string(round));
    env.run();
  }
  const auto labels = group.labels(1);
  ASSERT_EQ(labels.size(), 9u);
  EXPECT_EQ(labels[0], "open0");
  EXPECT_EQ(labels[1], "w0");
  EXPECT_EQ(labels[2], "close0");
  EXPECT_EQ(labels[8], "close2");
}

TEST(ScopedOrder, CausalTrafficInterleavesWithoutWaitingForScopes) {
  // An open scope must not delay unrelated causal traffic — that is the
  // whole point of paying for total order only where requested.
  SimEnv env;
  ScopedGroup group(env.transport, 2);
  const ScopeId scope = group.members[0]->open_scope("a");
  env.run();
  group.members[1]->send_scoped(scope, "held", {});
  group.members[0]->send_causal("urgent", {}, DepSpec::none());
  env.run();
  // "urgent" is delivered although the scope is still open and "held" is
  // parked.
  const auto labels = group.labels(1);
  EXPECT_NE(std::find(labels.begin(), labels.end(), "urgent"), labels.end());
  EXPECT_EQ(std::find(labels.begin(), labels.end(), "held"), labels.end());
  group.members[0]->close_scope(scope, "d");
  env.run();
  EXPECT_NE(std::find(group.labels(1).begin(), group.labels(1).end(), "held"),
            group.labels(1).end());
}

TEST(ScopedOrder, SubmitToUnknownOrClosedScopeRejected) {
  SimEnv env;
  ScopedGroup group(env.transport, 2);
  EXPECT_THROW(group.members[1]->send_scoped(ScopeId{0, 99}, "m", {}),
               InvalidArgument);
  const ScopeId scope = group.members[0]->open_scope("a");
  env.run();
  group.members[0]->close_scope(scope, "d");
  EXPECT_THROW(group.members[0]->send_scoped(scope, "late", {}),
               InvalidArgument);
  EXPECT_THROW(group.members[0]->close_scope(scope, "again"),
               InvalidArgument);
}

TEST(ScopedOrder, StragglerNotCoveredByCloseIsReleasedCausally) {
  // Member 1's submission races the close: the closer never saw it, so no
  // total-order promise — it must still be delivered (causally) at every
  // member, after the scope release there.
  sim::Scheduler scheduler;
  auto latency = std::make_unique<sim::MatrixLatency>(2, 1000, 0);
  latency->set(1, 0, 20000);  // member1 -> member0 very slow
  sim::SimNetwork network(scheduler, std::move(latency), {}, 1);
  SimTransport transport(network);
  ScopedGroup group(transport, 2);
  const ScopeId scope = group.members[0]->open_scope("a");
  scheduler.run();
  group.members[1]->send_scoped(scope, "straggler", {});  // slow to reach 0
  scheduler.run_until(scheduler.now() + 2000);
  group.members[0]->close_scope(scope, "d");  // closer never saw straggler
  scheduler.run();
  for (std::size_t i = 0; i < 2; ++i) {
    const auto labels = group.labels(i);
    EXPECT_NE(std::find(labels.begin(), labels.end(), "straggler"),
              labels.end())
        << "member " << i;
  }
}

// Property: many submitters, random scopes — app release order of covered
// messages identical at all members.
TEST(ScopedOrder, RandomizedScopesAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 3000;
    config.seed = seed;
    SimEnv env(config);
    const std::size_t n = 4;
    ScopedGroup group(env.transport, n);
    Rng rng(seed * 5 + 1);
    for (int round = 0; round < 4; ++round) {
      const std::size_t opener = rng.next_below(n);
      const ScopeId scope = group.members[opener]->open_scope(
          "open" + std::to_string(round));
      env.run();
      const int submissions = 1 + static_cast<int>(rng.next_below(4));
      for (int s = 0; s < submissions; ++s) {
        group.members[rng.next_below(n)]->send_scoped(
            scope, "m" + std::to_string(round) + "." + std::to_string(s), {});
      }
      env.run();
      group.members[opener]->close_scope(scope,
                                         "close" + std::to_string(round));
      env.run();
    }
    const auto reference = group.labels(0);
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_EQ(group.labels(i), reference) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cbc
