// Wire-frame robustness sweep: every parser that faces untrusted datagram
// bytes (serde primitives, reliable framing, batch framing, ordering-layer
// envelopes) is fed systematically truncated and bit-flipped inputs. The
// contract under test: corrupt input is dropped and COUNTED — never an
// abort, never an unbounded allocation, and the endpoint keeps working
// afterwards.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "causal/osend.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "fault/checkpoint.h"
#include "fault/state_transfer.h"
#include "graph/dep_spec.h"
#include "graph/message_id.h"
#include "kv/wire.h"
#include "time/vector_clock.h"
#include "transport/batching.h"
#include "transport/reliable.h"
#include "util/serde.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

// ---------- Serde primitives ----------

TEST(FrameFuzz, U64VecWithCorruptCountFailsBeforeAllocating) {
  // A 4-byte length prefix of ~4 billion followed by nothing: the reader
  // must bounds-check BEFORE reserving, or corrupt input turns into a
  // multi-gigabyte allocation.
  Writer writer;
  writer.u32(0xFFFF'FFFF);
  writer.u64(1);  // 8 bytes present, 32 GiB claimed
  const std::vector<std::uint8_t> bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW(reader.u64_vec(), SerdeError);
}

TEST(FrameFuzz, EveryTruncationOfEveryPrimitiveThrows) {
  Writer writer;
  writer.u8(7);
  writer.u32(42);
  writer.u64(1ull << 40);
  writer.str("label");
  writer.u64_vec({1, 2, 3});
  const std::vector<std::uint8_t> full = writer.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> sliced(full.begin(), full.begin() + cut);
    Reader reader(sliced);
    EXPECT_THROW(
        {
          reader.u8();
          reader.u32();
          reader.u64();
          reader.str();
          reader.u64_vec();
        },
        SerdeError)
        << "prefix of " << cut << " bytes parsed fully";
  }
}

// ---------- ReliableEndpoint framing ----------

TEST(FrameFuzz, SlicedControlFramesAreCountedNotFatal) {
  SimEnv env;
  const NodeId raw =
      env.transport.add_endpoint([](NodeId, const WireFrame&) {});
  ReliableEndpoint endpoint(env.transport,
                            [](NodeId, const WireFrame&) {});
  // A well-formed control frame: type, cumulative ack, 3-entry NACK list.
  Writer writer;
  writer.u8(2);
  writer.u64(5);
  writer.u64_vec({7, 9, 11});
  const std::vector<std::uint8_t> full = writer.take();
  std::uint64_t expected_malformed = 0;
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    env.transport.send(raw, endpoint.id(),
                       std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() + cut));
    expected_malformed += 1;
    EXPECT_NO_THROW(env.run());
  }
  EXPECT_EQ(endpoint.stats().malformed_frames, expected_malformed);
}

TEST(FrameFuzz, UnknownTypeAndShortDataFramesAreCountedNotFatal) {
  SimEnv env;
  const NodeId raw =
      env.transport.add_endpoint([](NodeId, const WireFrame&) {});
  std::vector<std::uint64_t> delivered;
  ReliableEndpoint endpoint(env.transport,
                            [&](NodeId, const WireFrame& frame) {
                              Reader reader(frame.bytes());
                              delivered.push_back(reader.u64());
                            });
  for (std::uint8_t type = 0; type < 8; ++type) {
    if (type >= 1 && type <= 5) {
      continue;  // valid types: data, control, heartbeat, window-base, oob
    }
    Writer writer;
    writer.u8(type);
    writer.u64(1);
    env.transport.send(raw, endpoint.id(), writer.take());
    EXPECT_NO_THROW(env.run());
  }
  // Data frames shorter than the 9-byte header are malformed too.
  env.transport.send(raw, endpoint.id(), {1});
  env.transport.send(raw, endpoint.id(), {1, 0, 0, 0});
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(endpoint.stats().malformed_frames, 5u);
  // The endpoint still accepts a healthy frame afterwards.
  Writer good;
  good.u8(1);
  good.u64(1);
  good.u64(99);
  env.transport.send(raw, endpoint.id(), good.take());
  env.run();
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{99}));
}

// ---------- Heartbeat / window-base / oob frames ----------

TEST(FrameFuzz, TruncatedWindowBaseFramesAreCountedNotFatal) {
  SimEnv env;
  const NodeId raw =
      env.transport.add_endpoint([](NodeId, const WireFrame&) {});
  ReliableEndpoint endpoint(env.transport,
                            [](NodeId, const WireFrame&) {});
  // Well-formed: [u8 kWindowBase][u64 base]. Every strict prefix is
  // missing bytes of the base and must land in the malformed counter.
  Writer writer;
  writer.u8(4);
  writer.u64(3);
  const std::vector<std::uint8_t> full = writer.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    env.transport.send(raw, endpoint.id(),
                       std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() + cut));
    EXPECT_NO_THROW(env.run());
  }
  // Semantically invalid bases are malformed too: base 0, and a base
  // beyond the receiver's forward window (a corrupt fast-forward must not
  // wipe the receive state).
  Writer zero;
  zero.u8(4);
  zero.u64(0);
  env.transport.send(raw, endpoint.id(), zero.take());
  Writer huge;
  huge.u8(4);
  huge.u64(1ull << 60);
  env.transport.send(raw, endpoint.id(), huge.take());
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(endpoint.stats().malformed_frames, full.size() + 2);
  EXPECT_EQ(endpoint.stats().window_resyncs, 0u);
}

TEST(FrameFuzz, HeartbeatAndOobFramesTolerateTruncationAndFlips) {
  SimEnv env;
  const NodeId raw =
      env.transport.add_endpoint([](NodeId, const WireFrame&) {});
  std::vector<std::vector<std::uint8_t>> oob_seen;
  ReliableEndpoint::Options options;
  options.oob_handler = [&](NodeId, std::span<const std::uint8_t> payload) {
    oob_seen.emplace_back(payload.begin(), payload.end());
  };
  ReliableEndpoint endpoint(env.transport, [](NodeId, const WireFrame&) {},
                            options);
  // The empty frame (heartbeat truncated to nothing) is malformed; a bare
  // [u8 kHeartbeat] is the valid frame, and trailing garbage after the
  // type byte is ignored rather than fatal.
  env.transport.send(raw, endpoint.id(), std::vector<std::uint8_t>{});
  env.transport.send(raw, endpoint.id(), {3});
  env.transport.send(raw, endpoint.id(), {3, 0xDE, 0xAD});
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(endpoint.stats().malformed_frames, 1u);
  EXPECT_EQ(endpoint.stats().heartbeats_received, 2u);
  // Oob frames pass any payload through opaquely — including an empty one
  // — and flipping payload bits must reach the handler, not the parser.
  env.transport.send(raw, endpoint.id(), {5});
  for (std::uint8_t flip = 0; flip < 8; ++flip) {
    env.transport.send(
        raw, endpoint.id(),
        {5, static_cast<std::uint8_t>(0xAA ^ (1u << flip)), 0x55});
  }
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(endpoint.stats().oob_frames, 9u);
  EXPECT_EQ(oob_seen.size(), 9u);
  EXPECT_TRUE(oob_seen.front().empty());
}

// ---------- State-transfer oob payloads ----------

TEST(FrameFuzz, EveryTruncationOfAStateRequestParsesToNullopt) {
  const std::vector<std::uint8_t> full =
      fault::encode_state_request({.requester = 2, .have = 7});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> sliced(full.begin(), full.begin() + cut);
    EXPECT_EQ(fault::parse_state_request(sliced), std::nullopt)
        << "prefix of " << cut << " bytes parsed";
  }
  const auto parsed = fault::parse_state_request(full);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->requester, 2u);
  EXPECT_EQ(parsed->have, 7u);
}

TEST(FrameFuzz, TruncatedAndBitFlippedStateResponsesNeverAbort) {
  fault::Checkpoint snapshot;
  snapshot.node = 1;
  snapshot.cycles = 2;
  snapshot.stable_digests = {0x1111, 0x2222};
  snapshot.last_sync = MessageId{0, 9};
  snapshot.frontier = VectorClock(3);
  snapshot.app_state = {1, 2, 3, 4};
  const std::vector<std::uint8_t> full =
      fault::encode_state_response(snapshot);
  // Truncations: nullopt, never a throw or a huge allocation (the digest
  // vector's length prefix is bounds-checked before reserving).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> sliced(full.begin(), full.begin() + cut);
    EXPECT_EQ(fault::parse_state_response(sliced), std::nullopt)
        << "prefix of " << cut << " bytes parsed";
  }
  // Bit flips: a flip may corrupt a field into another valid value, but
  // it must parse-or-nullopt, never abort.
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<std::uint8_t> mutated = full;
    mutated[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_NO_THROW((void)fault::parse_state_response(mutated))
        << "bit flip in byte " << i;
  }
  const auto parsed = fault::parse_state_response(full);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stable_digests, snapshot.stable_digests);
  EXPECT_EQ(parsed->app_state, snapshot.app_state);
}

// ---------- Batch framing ----------

TEST(FrameFuzz, SlicedBatchDeliversDecodablePrefixAndCountsTheRest) {
  SimEnv env;
  BatchingTransport batching(env.transport);
  std::vector<std::size_t> lengths;
  const NodeId receiver = batching.add_endpoint(
      [&](NodeId, const WireFrame& frame) {
        lengths.push_back(frame.bytes().size());
      });
  const NodeId raw =
      env.transport.add_endpoint([](NodeId, const WireFrame&) {});

  // A batch claiming 3 inner frames, truncated inside the third: the two
  // complete frames are handed up, the tail is one decode error.
  Writer writer;
  writer.u32(3);
  writer.blob(std::vector<std::uint8_t>(4, 0xAA));
  writer.blob(std::vector<std::uint8_t>(6, 0xBB));
  writer.blob(std::vector<std::uint8_t>(8, 0xCC));
  std::vector<std::uint8_t> full = writer.take();
  std::vector<std::uint8_t> sliced(full.begin(), full.end() - 5);
  env.transport.send(raw, receiver, std::move(sliced));
  env.run();
  EXPECT_EQ(lengths, (std::vector<std::size_t>{4, 6}));
  EXPECT_EQ(batching.stats().decode_errors, 1u);

  // Every other strict prefix: never a crash, never more than 3 frames.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    lengths.clear();
    env.transport.send(raw, receiver,
                       std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() + cut));
    EXPECT_NO_THROW(env.run());
    EXPECT_LE(lengths.size(), 3u);
  }
}

// ---------- Ordering-layer envelopes ----------

/// A well-formed OSend wire frame for view 1 as member 0 would send it.
std::vector<std::uint8_t> osend_frame(SeqNo seq, const std::string& label) {
  Writer writer;
  writer.u64(1);                   // view id
  VectorClock(2).encode(writer);   // delivered-prefix prelude
  MessageId{0, seq}.encode(writer);
  writer.str(label);
  DepSpec::none().encode(writer);
  writer.i64(0);  // sent_at
  return writer.take();
}

TEST(FrameFuzz, EveryTruncationOfAnOSendFrameIsCounted) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  const std::vector<std::uint8_t> full = osend_frame(1, "op");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    env.transport.send(0, 1,
                       std::vector<std::uint8_t>(full.begin(),
                                                 full.begin() + cut));
    EXPECT_NO_THROW(env.run());
  }
  // Short prefixes (< 8 bytes) cannot even yield a view id; longer ones
  // fail later in the parse. All must land in the malformed counter.
  EXPECT_EQ(group[1].stats().malformed, full.size());
  EXPECT_EQ(group[1].stats().delivered, 0u);
}

// ---------- kv client wire messages ----------

/// A representative OpRequest with a non-trivial context token: 2 shards
/// x 3 replicas, non-zero frontier entries, so the sweep crosses every
/// nested length prefix (key, value, token shards, frontier seqs).
kv::OpRequest sample_op_request() {
  kv::OpRequest request;
  request.type = kv::MsgType::kPut;
  request.session = 3;
  request.request = 17;
  request.key = "s0_k1";
  request.value = "r2v4";
  request.token = kv::ContextToken::zero(2, 3);
  request.token.shards[0].seqs = {5, 0, 2};
  request.token.shards[1].seqs = {1, 9, 0};
  return request;
}

kv::OpResponse sample_op_response() {
  kv::OpResponse response;
  response.session = 3;
  response.request = 17;
  response.status = kv::Status::kOk;
  response.present = true;
  response.value = "r2v4";
  response.fence_digest = 0xDEADBEEF12345678ull;
  response.shard = 1;
  response.frontier.seqs = {7, 3, 11};
  return response;
}

TEST(FrameFuzz, EveryTruncationOfEveryKvMessageParsesToNullopt) {
  const std::vector<std::vector<std::uint8_t>> messages = {
      kv::encode_map_request({.nonce = 0xA5A5A5A5ull}),
      kv::encode_map_response(
          {.nonce = 1, .shards = 4, .replicas = 3, .shard = 2, .rank = 1}),
      kv::encode_op_request(sample_op_request()),
      kv::encode_op_response(sample_op_response()),
  };
  for (const std::vector<std::uint8_t>& full : messages) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::vector<std::uint8_t> sliced(full.begin(),
                                             full.begin() + cut);
      EXPECT_EQ(kv::parse_map_request(sliced), std::nullopt);
      EXPECT_EQ(kv::parse_map_response(sliced), std::nullopt);
      EXPECT_EQ(kv::parse_op_request(sliced), std::nullopt)
          << "op-request prefix of " << cut << " bytes parsed";
      EXPECT_EQ(kv::parse_op_response(sliced), std::nullopt);
    }
  }
  // The full encodings round-trip (the sweep above proves strict prefixes
  // never do).
  const auto request = kv::parse_op_request(messages[2]);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->token, sample_op_request().token);
  const auto response = kv::parse_op_response(messages[3]);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->frontier, sample_op_response().frontier);
}

TEST(FrameFuzz, BitFlippedKvMessagesNeverAbort) {
  // Each parser is fed every single-bit corruption of every message kind
  // — including cross-kind (an op-request fed to the op-response parser
  // via a flipped type byte). Parse-or-nullopt, never a throw; a length
  // prefix flipped to ~4 billion must bounds-check before reserving.
  const std::vector<std::vector<std::uint8_t>> messages = {
      kv::encode_map_request({.nonce = 7}),
      kv::encode_map_response(
          {.nonce = 1, .shards = 4, .replicas = 3, .shard = 2, .rank = 1}),
      kv::encode_op_request(sample_op_request()),
      kv::encode_op_response(sample_op_response()),
  };
  for (const std::vector<std::uint8_t>& full : messages) {
    for (std::size_t i = 0; i < full.size(); ++i) {
      for (std::uint8_t bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = full;
        mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_NO_THROW({
          (void)kv::peek_type(mutated);
          (void)kv::parse_map_request(mutated);
          (void)kv::parse_map_response(mutated);
          (void)kv::parse_op_request(mutated);
          (void)kv::parse_op_response(mutated);
        }) << "bit " << int(bit) << " of byte " << i;
      }
    }
  }
}

TEST(FrameFuzz, KvPeekTypeBoundsUnknownAndEmptyPayloads) {
  EXPECT_EQ(kv::peek_type(std::vector<std::uint8_t>{}), std::nullopt);
  for (int type = 0; type < 256; ++type) {
    const std::vector<std::uint8_t> payload = {
        static_cast<std::uint8_t>(type)};
    const auto peeked = kv::peek_type(payload);
    if (type >= 1 && type <= 7) {
      ASSERT_TRUE(peeked.has_value()) << "type " << type;
      EXPECT_EQ(static_cast<std::uint8_t>(*peeked), type);
    } else {
      EXPECT_EQ(peeked, std::nullopt) << "type " << type;
    }
  }
}

TEST(FrameFuzz, BitFlippedOSendFramesNeverCrashTheMember) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  const std::vector<std::uint8_t> full = osend_frame(1, "op");
  // Deterministic sweep: flip bit (i % 8) of byte i, one frame per flip.
  // Depending on where the flip lands the frame may parse as malformed,
  // buffer for a future view, dedupe, or even deliver — all acceptable;
  // aborting the member is not.
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::vector<std::uint8_t> mutated = full;
    mutated[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    env.transport.send(0, 1, std::move(mutated));
    EXPECT_NO_THROW(env.run()) << "bit flip in byte " << i;
  }
  // The member still works: a clean broadcast from member 0 delivers.
  group[0].broadcast("after-fuzz", {}, DepSpec::none());
  env.run();
  EXPECT_GE(group[1].stats().delivered, 1u);
}

}  // namespace
}  // namespace cbc
