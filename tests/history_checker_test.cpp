// The offline consistency oracle: hand-built SiteHistories through
// HistoryChecker — clean concurrent executions must pass CC/CM/CCv, and
// each seeded violation class (missing dependency, reordered causal
// pair, tampered response, diverging arbitration of a non-commuting
// pair) must be rejected with the matching property failing. Also the
// history file format's load error paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "apps/counter.h"
#include "apps/install.h"
#include "check/history.h"
#include "check/history_checker.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {
namespace {

using check::HistoryChecker;
using check::HistoryOp;
using check::SiteHistory;
using object::Op;
using object::SequentialSpec;

/// An op as carried on the wire — no response yet.
HistoryOp wire_op(MessageId id, const Op& op,
                  std::vector<MessageId> deps = {}) {
  HistoryOp out;
  out.id = id;
  out.origin = id.sender;
  out.label = op.kind;
  out.args = op.args;
  out.deps = std::move(deps);
  return out;
}

/// One site's history: the given delivery order, with each response
/// filled in by replaying the sequential spec — exactly what a correct
/// replica would have recorded.
SiteHistory replay_site(const SequentialSpec& spec, NodeId site,
                        std::vector<HistoryOp> ops) {
  const auto state = spec.make();
  for (HistoryOp& op : ops) {
    Reader args(op.args);
    op.response = state->apply(CommutativitySpec::kind_of(op.label), args);
  }
  SiteHistory history;
  history.object = "counter";
  history.site = site;
  history.ops = std::move(ops);
  return history;
}

HistoryChecker counter_checker() {
  apps::install_objects();
  const auto entry = object::Catalog::instance().find("counter");
  require(entry.has_value(), "counter not installed");
  return HistoryChecker(entry->spec(),
                        object::derive_commutativity(entry->spec()));
}

TEST(HistoryChecker, CleanConcurrentExecutionPassesAllThree) {
  // Two sites, concurrent inc/dec delivered in opposite orders, then a
  // sync rd that causally follows both. inc and dec commute, so both
  // orders are legal and both replicas converge on the same value.
  const HistoryOp inc = wire_op({0, 1}, apps::Counter::inc(3));
  const HistoryOp dec = wire_op({1, 1}, apps::Counter::dec(1));
  const HistoryOp rd =
      wire_op({0, 2}, apps::Counter::rd(), {{0, 1}, {1, 1}});
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result = checker.check({
      replay_site(spec, 0, {inc, dec, rd}),
      replay_site(spec, 1, {dec, inc, rd}),
  });
  EXPECT_TRUE(result.cc) << result.summary();
  EXPECT_TRUE(result.cm) << result.summary();
  EXPECT_TRUE(result.ccv) << result.summary();
  EXPECT_TRUE(result.violations.empty());
}

TEST(HistoryChecker, MissingDependencyFailsCC) {
  const HistoryOp rd = wire_op({0, 1}, apps::Counter::rd(), {{1, 5}});
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result =
      checker.check({replay_site(spec, 0, {rd})});
  EXPECT_FALSE(result.cc) << result.summary();
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("no site delivered"),
            std::string::npos);
}

TEST(HistoryChecker, DeliveryBeforeDependencyFailsCC) {
  // Site 1 delivers the rd BEFORE the inc it declares a dependency on —
  // a broken causal-delivery rule, even though site 0 is fine.
  const HistoryOp inc = wire_op({0, 1}, apps::Counter::inc(1));
  const HistoryOp rd = wire_op({1, 1}, apps::Counter::rd(), {{0, 1}});
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result = checker.check({
      replay_site(spec, 0, {inc, rd}),
      replay_site(spec, 1, {rd, inc}),
  });
  EXPECT_FALSE(result.cc) << result.summary();
  // Site 1's rd also observed 0 where the recorded response (replayed on
  // the declared order at site 0... ) — here site 1's own replay is
  // internally consistent, so CM on its own order still holds.
  EXPECT_TRUE(result.cm) << result.summary();
}

TEST(HistoryChecker, TamperedResponseFailsCM) {
  const HistoryOp inc = wire_op({0, 1}, apps::Counter::inc(2));
  const HistoryOp rd = wire_op({0, 2}, apps::Counter::rd(), {{0, 1}});
  const SequentialSpec spec = apps::Counter::seq_spec();
  SiteHistory site = replay_site(spec, 0, {inc, rd});
  // Claim the rd observed 7 instead of the true 2.
  Writer lie;
  lie.i64(7);
  site.ops[1].response = lie.take();
  const HistoryChecker checker = counter_checker();
  const HistoryChecker::Result result = checker.check({site});
  EXPECT_FALSE(result.cm) << result.summary();
  EXPECT_TRUE(result.cc) << result.summary();
}

TEST(HistoryChecker, DivergingArbitrationOfNonCommutingPairFailsCCv) {
  // Two concurrent sets — non-commuting — applied in opposite orders:
  // each site's own replay is self-consistent (CM holds; sets return no
  // response), causal delivery is respected (no deps — CC holds), but
  // the replicas end in different states and the arbitration diverged.
  const HistoryOp set1 = wire_op({0, 1}, apps::Counter::set(1));
  const HistoryOp set2 = wire_op({1, 1}, apps::Counter::set(2));
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result = checker.check({
      replay_site(spec, 0, {set1, set2}),
      replay_site(spec, 1, {set2, set1}),
  });
  EXPECT_TRUE(result.cc) << result.summary();
  EXPECT_TRUE(result.cm) << result.summary();
  EXPECT_FALSE(result.ccv) << result.summary();
}

TEST(HistoryChecker, MissingOperationAtOneSiteFailsCCv) {
  const HistoryOp inc = wire_op({0, 1}, apps::Counter::inc(1));
  const HistoryOp dec = wire_op({1, 1}, apps::Counter::dec(1));
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result = checker.check({
      replay_site(spec, 0, {inc, dec}),
      replay_site(spec, 1, {dec}),  // never saw the inc
  });
  EXPECT_FALSE(result.ccv) << result.summary();
}

TEST(HistoryChecker, SitesDisagreeingOnContentAreRejected) {
  const HistoryOp original = wire_op({0, 1}, apps::Counter::inc(1));
  HistoryOp forged = wire_op({0, 1}, apps::Counter::inc(9));
  const HistoryChecker checker = counter_checker();
  const SequentialSpec spec = apps::Counter::seq_spec();
  const HistoryChecker::Result result = checker.check({
      replay_site(spec, 0, {original}),
      replay_site(spec, 1, {forged}),
  });
  EXPECT_FALSE(result.cc) << result.summary();
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("disagree"), std::string::npos);
}

// ---------- History file format ----------

TEST(HistoryFile, SaveLoadRoundTrip) {
  const SequentialSpec spec = apps::Counter::seq_spec();
  const SiteHistory history = replay_site(
      spec, 2,
      {wire_op({2, 1}, apps::Counter::inc(4)),
       wire_op({2, 2}, apps::Counter::rd(), {{2, 1}})});
  const std::string path = testing::TempDir() + "history_roundtrip.bin";
  history.save(path);
  const SiteHistory loaded = SiteHistory::load(path);
  EXPECT_EQ(loaded.object, history.object);
  EXPECT_EQ(loaded.site, history.site);
  EXPECT_EQ(loaded.ops, history.ops);
  std::remove(path.c_str());
}

TEST(HistoryFile, LoadErrorsThrowNotAbort) {
  EXPECT_THROW((void)SiteHistory::load("/nonexistent/history.bin"),
               InvalidArgument);

  const SequentialSpec spec = apps::Counter::seq_spec();
  const SiteHistory history =
      replay_site(spec, 0, {wire_op({0, 1}, apps::Counter::inc(1))});
  const std::string path = testing::TempDir() + "history_truncated.bin";
  history.save(path);
  // Every strict prefix of the file must be a clean load error.
  std::ifstream in(path, std::ios::binary);
  const std::vector<char> full((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                full.size() / 2, full.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW((void)SiteHistory::load(path), InvalidArgument)
        << "prefix of " << cut << " bytes loaded";
  }
  // Version bump: magic intact, version unsupported.
  {
    std::vector<char> bumped = full;
    bumped[4] = 99;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bumped.data(), static_cast<std::streamsize>(bumped.size()));
  }
  EXPECT_THROW((void)SiteHistory::load(path), InvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbc
