// Tests for the §6.2 decentralized lock arbitration protocol.
#include <gtest/gtest.h>

#include <memory>

#include "common/sim_env.h"
#include "lock/lock_arbiter.h"

namespace cbc {
namespace {

using testkit::SimEnv;

/// Group of arbiters whose critical sections auto-release and record the
/// grant order; includes a live mutual-exclusion checker.
struct LockGroup {
  LockGroup(Transport& transport, std::size_t n, LockArbiter::Options options)
      : view(testkit::make_view(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      arbiters.push_back(std::make_unique<LockArbiter>(
          transport, view,
          [this, i](std::uint64_t cycle) {
            acquisitions.emplace_back(static_cast<NodeId>(i), cycle);
            // Mutual exclusion: no other member may currently hold.
            for (std::size_t j = 0; j < arbiters.size(); ++j) {
              if (j != i && arbiters[j] && arbiters[j]->holds_lock()) {
                ++violations;
              }
            }
            arbiters[i]->release();
          },
          options));
    }
  }

  GroupView view;
  std::vector<std::unique_ptr<LockArbiter>> arbiters;
  std::vector<std::pair<NodeId, std::uint64_t>> acquisitions;
  int violations = 0;
};

TEST(Lock, SingleCycleGrantsEveryRequesterOnce) {
  SimEnv env;
  LockGroup group(env.transport, 3, {});
  for (auto& arbiter : group.arbiters) {
    arbiter->request();
  }
  env.run();
  // Each member acquired exactly once in cycle 1, in rank order.
  ASSERT_EQ(group.acquisitions.size(), 3u);
  EXPECT_EQ(group.acquisitions[0], (std::pair<NodeId, std::uint64_t>{0, 1}));
  EXPECT_EQ(group.acquisitions[1], (std::pair<NodeId, std::uint64_t>{1, 1}));
  EXPECT_EQ(group.acquisitions[2], (std::pair<NodeId, std::uint64_t>{2, 1}));
  EXPECT_EQ(group.violations, 0);
}

TEST(Lock, GrantHistoryIdenticalAtEveryMember) {
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = 3;
  SimEnv env(config);
  LockGroup group(env.transport, 4, {});
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (auto& arbiter : group.arbiters) {
      arbiter->request();
    }
  }
  env.run();
  // "All the members choose the same next lock holder" — consensus with
  // zero extra rounds: every member's grant history is identical.
  const auto& reference = group.arbiters[0]->grant_history();
  EXPECT_EQ(reference.size(), 20u);  // 4 members x 5 cycles
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(group.arbiters[i]->grant_history(), reference);
  }
  EXPECT_EQ(group.violations, 0);
}

TEST(Lock, MutualExclusionUnderJitterManySeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 6000;
    config.seed = seed;
    SimEnv env(config);
    LockGroup group(env.transport, 3, {});
    for (int cycle = 0; cycle < 4; ++cycle) {
      for (auto& arbiter : group.arbiters) {
        arbiter->request();
      }
    }
    env.run();
    EXPECT_EQ(group.violations, 0) << "seed " << seed;
    EXPECT_EQ(group.acquisitions.size(), 12u) << "seed " << seed;
  }
}

TEST(Lock, CyclesAdvanceInOrder) {
  SimEnv env;
  LockGroup group(env.transport, 2, {});
  for (int cycle = 0; cycle < 3; ++cycle) {
    group.arbiters[0]->request();
    group.arbiters[1]->request();
  }
  env.run();
  // Acquisitions ordered by cycle: 1,1,2,2,3,3.
  ASSERT_EQ(group.acquisitions.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(group.acquisitions[i].second, i / 2 + 1);
  }
  EXPECT_EQ(group.arbiters[0]->cycle(), 4u);
}

TEST(Lock, RotatingPolicyMovesFirstHolder) {
  SimEnv env;
  LockArbiter::Options options;
  options.policy = ArbitrationPolicy::kRotating;
  LockGroup group(env.transport, 3, options);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (auto& arbiter : group.arbiters) {
      arbiter->request();
    }
  }
  env.run();
  ASSERT_EQ(group.acquisitions.size(), 9u);
  // First holder of each cycle rotates (cycle S shifts the rank order).
  const NodeId first_c1 = group.acquisitions[0].first;
  const NodeId first_c2 = group.acquisitions[3].first;
  const NodeId first_c3 = group.acquisitions[6].first;
  EXPECT_NE(first_c1, first_c2);
  EXPECT_NE(first_c2, first_c3);
  EXPECT_EQ(group.violations, 0);
}

TEST(Lock, PartialRequesterCycle) {
  // Only 2 of 4 members request per cycle (requesters_per_cycle = 2).
  SimEnv env;
  LockArbiter::Options options;
  options.requesters_per_cycle = 2;
  LockGroup group(env.transport, 4, options);
  group.arbiters[3]->request();
  group.arbiters[1]->request();
  env.run();
  ASSERT_EQ(group.acquisitions.size(), 2u);
  // kByRank: member 1 before member 3.
  EXPECT_EQ(group.acquisitions[0].first, 1u);
  EXPECT_EQ(group.acquisitions[1].first, 3u);
}

TEST(Lock, ReleaseWithoutHoldingRejected) {
  SimEnv env;
  const GroupView view = testkit::make_view(2);
  LockArbiter a(env.transport, view, [](std::uint64_t) {});
  LockArbiter b(env.transport, view, [](std::uint64_t) {});
  EXPECT_THROW(a.release(), InvalidArgument);
}

TEST(Lock, HoldsLockTrueOnlyDuringGrant) {
  SimEnv env;
  const GroupView view = testkit::make_view(2);
  std::unique_ptr<LockArbiter> a;
  std::unique_ptr<LockArbiter> b;
  bool a_held_during_callback = false;
  a = std::make_unique<LockArbiter>(env.transport, view,
                                    [&](std::uint64_t) {
                                      a_held_during_callback = a->holds_lock();
                                      a->release();
                                    });
  b = std::make_unique<LockArbiter>(env.transport, view, [&](std::uint64_t) {
    b->release();
  });
  a->request();
  b->request();
  env.run();
  EXPECT_TRUE(a_held_during_callback);
  EXPECT_FALSE(a->holds_lock());
  EXPECT_FALSE(b->holds_lock());
}

TEST(Lock, ManyMembersManyCycles) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 9;
  SimEnv env(config);
  const std::size_t n = 7;
  LockGroup group(env.transport, n, {});
  const int cycles = 6;
  for (int c = 0; c < cycles; ++c) {
    for (auto& arbiter : group.arbiters) {
      arbiter->request();
    }
  }
  env.run();
  EXPECT_EQ(group.acquisitions.size(), n * cycles);
  EXPECT_EQ(group.violations, 0);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(group.arbiters[i]->grant_history(),
              group.arbiters[0]->grant_history());
  }
}

}  // namespace
}  // namespace cbc
