// Unit tests for logical clocks (Lamport, vector, matrix).
#include <gtest/gtest.h>

#include "time/lamport_clock.h"
#include "time/matrix_clock.h"
#include "time/vector_clock.h"
#include "util/ensure.h"

namespace cbc {
namespace {

// ---------- Lamport ----------

TEST(LamportClock, TickIncrements) {
  LamportClock clock;
  EXPECT_EQ(clock.time(), 0u);
  EXPECT_EQ(clock.tick(), 1u);
  EXPECT_EQ(clock.tick(), 2u);
}

TEST(LamportClock, ObserveJumpsPastRemote) {
  LamportClock clock;
  clock.tick();
  EXPECT_EQ(clock.observe(10), 11u);
  EXPECT_EQ(clock.observe(3), 12u);  // smaller remote still ticks
}

// ---------- VectorClock ----------

TEST(VectorClock, StartsAtZero) {
  VectorClock clock(3);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(clock.at(i), 0u);
  }
}

TEST(VectorClock, TickAndSet) {
  VectorClock clock(3);
  clock.tick(1);
  clock.tick(1);
  clock.set(2, 7);
  EXPECT_EQ(clock.at(0), 0u);
  EXPECT_EQ(clock.at(1), 2u);
  EXPECT_EQ(clock.at(2), 7u);
}

TEST(VectorClock, CompareEqual) {
  VectorClock a(2);
  VectorClock b(2);
  EXPECT_EQ(a.compare(b), ClockOrder::kEqual);
  a.tick(0);
  b.tick(0);
  EXPECT_EQ(a.compare(b), ClockOrder::kEqual);
  EXPECT_EQ(a, b);
}

TEST(VectorClock, CompareBeforeAfter) {
  VectorClock a(2);
  VectorClock b(2);
  b.tick(0);
  EXPECT_EQ(a.compare(b), ClockOrder::kBefore);
  EXPECT_EQ(b.compare(a), ClockOrder::kAfter);
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
}

TEST(VectorClock, CompareConcurrent) {
  VectorClock a(2);
  VectorClock b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_EQ(a.compare(b), ClockOrder::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.happens_before(b));
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3);
  VectorClock b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.at(0), 5u);
  EXPECT_EQ(a.at(1), 4u);
  EXPECT_EQ(a.at(2), 2u);
}

TEST(VectorClock, MergeMakesOtherHappenBefore) {
  VectorClock a(2);
  VectorClock b(2);
  b.tick(1);
  a.merge(b);
  a.tick(0);
  EXPECT_TRUE(b.happens_before(a));
}

TEST(VectorClock, WidthMismatchRejected) {
  VectorClock a(2);
  VectorClock b(3);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW((void)a.compare(b), InvalidArgument);
}

TEST(VectorClock, OutOfRangeRejected) {
  VectorClock a(2);
  EXPECT_THROW((void)a.at(2), InvalidArgument);
  EXPECT_THROW(a.tick(5), InvalidArgument);
  EXPECT_THROW(VectorClock(0), InvalidArgument);
}

TEST(VectorClock, EncodeDecodeRoundTrip) {
  VectorClock a(4);
  a.set(0, 1);
  a.set(3, 99);
  Writer writer;
  a.encode(writer);
  Reader reader(writer.bytes());
  const VectorClock b = VectorClock::decode(reader);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(reader.exhausted());
}

TEST(VectorClock, ToStringFormat) {
  VectorClock a(3);
  a.set(1, 2);
  EXPECT_EQ(a.to_string(), "[0,2,0]");
}

// Property: happens_before is transitive and antisymmetric over a chain of
// merged clocks (simulating message passing).
TEST(VectorClock, HappensBeforeTransitiveAlongMessageChain) {
  const std::size_t n = 4;
  std::vector<VectorClock> events;
  VectorClock node0(n);
  node0.tick(0);
  events.push_back(node0);  // e0 at node 0
  VectorClock node1(n);
  node1.merge(node0);
  node1.tick(1);
  events.push_back(node1);  // e1 at node 1 after receiving from 0
  VectorClock node2(n);
  node2.merge(node1);
  node2.tick(2);
  events.push_back(node2);  // e2 at node 2 after receiving from 1
  EXPECT_TRUE(events[0].happens_before(events[1]));
  EXPECT_TRUE(events[1].happens_before(events[2]));
  EXPECT_TRUE(events[0].happens_before(events[2]));  // transitivity
  EXPECT_FALSE(events[2].happens_before(events[0]));
}

// ---------- MatrixClock ----------

TEST(MatrixClock, StartsAllZero) {
  MatrixClock m(3);
  EXPECT_EQ(m.stable_count(0), 0u);
  EXPECT_EQ(m.stable_cut(), VectorClock(3));
}

TEST(MatrixClock, StableCountIsColumnMinimum) {
  MatrixClock m(3);
  VectorClock v0(3);
  v0.set(0, 5);
  VectorClock v1(3);
  v1.set(0, 3);
  VectorClock v2(3);
  v2.set(0, 4);
  m.observe_row(0, v0);
  m.observe_row(1, v1);
  m.observe_row(2, v2);
  EXPECT_EQ(m.stable_count(0), 3u);
  EXPECT_TRUE(m.is_stable(0, 3));
  EXPECT_FALSE(m.is_stable(0, 4));
}

TEST(MatrixClock, ObserveRowOnlyGrows) {
  MatrixClock m(2);
  VectorClock high(2);
  high.set(0, 9);
  m.observe_row(0, high);
  VectorClock low(2);
  low.set(0, 2);
  m.observe_row(0, low);
  EXPECT_EQ(m.row(0).at(0), 9u);
}

TEST(MatrixClock, MergeCombinesKnowledge) {
  MatrixClock a(2);
  MatrixClock b(2);
  VectorClock va(2);
  va.set(0, 4);
  a.observe_row(0, va);
  VectorClock vb(2);
  vb.set(0, 4);
  b.observe_row(1, vb);
  a.merge(b);
  EXPECT_EQ(a.stable_count(0), 4u);
}

TEST(MatrixClock, EncodeDecodeRoundTrip) {
  MatrixClock m(3);
  VectorClock v(3);
  v.set(1, 7);
  m.observe_row(2, v);
  Writer writer;
  m.encode(writer);
  Reader reader(writer.bytes());
  const MatrixClock copy = MatrixClock::decode(reader);
  EXPECT_EQ(m, copy);
}

TEST(MatrixClock, ValidationErrors) {
  EXPECT_THROW(MatrixClock(0), InvalidArgument);
  MatrixClock m(2);
  EXPECT_THROW((void)m.row(5), InvalidArgument);
  EXPECT_THROW(m.observe_row(0, VectorClock(3)), InvalidArgument);
  MatrixClock other(3);
  EXPECT_THROW(m.merge(other), InvalidArgument);
}

}  // namespace
}  // namespace cbc
