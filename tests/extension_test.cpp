// Tests for the extension features: stability-driven garbage collection,
// the causal-activity builder, lazy-replication baseline, and dynamic
// view changes via the flush protocol.
#include <gtest/gtest.h>

#include <memory>

#include "activity/activity_builder.h"
#include "apps/counter.h"
#include "apps/registry.h"
#include "baseline/lazy_replication.h"
#include "causal/flush.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "replica/dynamic_replica.h"
#include "total/scoped_order.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

// ---------- Garbage collection (prune_stable) ----------

TEST(Gc, PruneRemovesStableMessagesAndKeepsCorrectness) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 3);
  // Round 1 of traffic, then a full extra round so round-1 becomes stable.
  std::vector<MessageId> round1;
  for (std::size_t i = 0; i < 3; ++i) {
    round1.push_back(group[i].osend("r1", {}, DepSpec::none()));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    group[i].osend("r2", {}, DepSpec::none());
  }
  env.run();

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(group[i].is_stable(round1[0]));
    const std::size_t graph_before = group[i].graph().size();
    const std::size_t pruned = group[i].prune_stable();
    EXPECT_GE(pruned, 3u);  // at least all of round 1
    EXPECT_LT(group[i].graph().size(), graph_before);
    // has_delivered still answers true via the stable floor.
    EXPECT_TRUE(group[i].has_delivered(round1[0]));
  }
}

TEST(Gc, DependencyOnPrunedMessageIsSatisfiedByFloor) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  const MessageId old_msg = group[0].osend("old", {}, DepSpec::none());
  env.run();
  group[0].osend("ack1", {}, DepSpec::none());
  group[1].osend("ack2", {}, DepSpec::none());
  env.run();
  ASSERT_TRUE(group[1].is_stable(old_msg));
  group[1].prune_stable();
  // A new message naming the pruned id as dependency must deliver.
  group[0].osend("depends-on-old", {}, DepSpec::after(old_msg));
  env.run();
  EXPECT_EQ(group[1].log().back().label(), "depends-on-old");
  EXPECT_EQ(group[1].holdback_depth(), 0u);
}

TEST(Gc, BoundedMemoryUnderLongRunWithPeriodicPrune) {
  SimEnv env;
  OSendMember::Options options;
  options.keep_delivery_log = false;
  Group<OSendMember> group(env.transport, 3, options);
  std::size_t max_graph = 0;
  for (int round = 0; round < 60; ++round) {
    for (std::size_t i = 0; i < 3; ++i) {
      group[i].osend("op", {}, DepSpec::none());
    }
    env.run();
    for (std::size_t i = 0; i < 3; ++i) {
      group[i].prune_stable();
      max_graph = std::max(max_graph, group[i].graph().size());
      EXPECT_LE(group[i].log().size(), 1u);  // log bounded
    }
  }
  // 180 messages total, but the graph never held more than ~2 rounds.
  EXPECT_LE(max_graph, 12u);
  EXPECT_EQ(group[0].stats().delivered, 180u);
}

// ---------- ActivityBuilder ----------

TEST(ActivityBuilder, EmitsTheCanonicalPattern) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  ActivityBuilder builder(group[0]);
  const MessageId mo = builder.open("mo");
  const MessageId m1 = builder.concurrent("m1");
  const MessageId m2 = builder.concurrent("m2");
  EXPECT_TRUE(builder.activity_open());
  EXPECT_EQ(builder.current_set().size(), 2u);
  const MessageId close = builder.close("m3");
  EXPECT_FALSE(builder.activity_open());
  EXPECT_EQ(builder.activities_completed(), 1u);
  env.run();

  const MessageGraph& graph = group[1].graph();
  EXPECT_TRUE(graph.reaches(mo, m1));
  EXPECT_TRUE(graph.reaches(mo, m2));
  EXPECT_TRUE(graph.concurrent(m1, m2));
  EXPECT_TRUE(graph.reaches(m1, close));
  EXPECT_TRUE(graph.reaches(m2, close));
}

TEST(ActivityBuilder, ChainsActivitiesThroughCloses) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  ActivityBuilder builder(group[0]);
  builder.concurrent("a1.c1");
  const MessageId close1 = builder.close("a1.close");
  const MessageId c2 = builder.concurrent("a2.c1");  // anchored on close1
  const MessageId close2 = builder.close("a2.close");
  env.run();
  const MessageGraph& graph = group[1].graph();
  EXPECT_TRUE(graph.reaches(close1, c2));
  EXPECT_TRUE(graph.reaches(close1, close2));
  EXPECT_EQ(builder.activities_completed(), 2u);
}

TEST(ActivityBuilder, OpenTwiceRejected) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  ActivityBuilder builder(group[0]);
  builder.open("mo");
  EXPECT_THROW(builder.open("again"), InvalidArgument);
}

TEST(ActivityBuilder, EmptyCloseChainsSyncMessages) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  ActivityBuilder builder(group[0]);
  const MessageId s1 = builder.close("sync1");
  const MessageId s2 = builder.close("sync2");
  env.run();
  EXPECT_TRUE(group[1].graph().reaches(s1, s2));
}

// ---------- Lazy replication baseline ----------

TEST(LazyReplication, LocalApplyIsImmediateRemoteIsLazy) {
  SimEnv env;
  const GroupView view = testkit::make_view(3);
  std::vector<std::unique_ptr<LazyReplicaNode<apps::Counter>>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<LazyReplicaNode<apps::Counter>>(
        env.transport, view));
  }
  nodes[0]->submit(apps::Counter::inc(5));
  EXPECT_EQ(nodes[0]->state().value(), 5);   // applied locally at once
  EXPECT_EQ(nodes[1]->state().value(), 0);   // not yet propagated
  env.run();                                 // gossip runs
  EXPECT_EQ(nodes[1]->state().value(), 5);
  EXPECT_EQ(nodes[2]->state().value(), 5);
  EXPECT_GT(nodes[0]->stats().gossip_msgs, 0u);
}

TEST(LazyReplication, ConvergesUnderConcurrentWriters) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 9;
  SimEnv env(config);
  const GroupView view = testkit::make_view(4);
  std::vector<std::unique_ptr<LazyReplicaNode<apps::Counter>>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<LazyReplicaNode<apps::Counter>>(
        env.transport, view));
  }
  Rng rng(5);
  std::int64_t expected = 0;
  for (int k = 0; k < 60; ++k) {
    const std::int64_t delta = rng.next_in(1, 4);
    expected += delta;
    nodes[rng.next_below(4)]->submit(apps::Counter::inc(delta));
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  for (const auto& node : nodes) {
    EXPECT_EQ(node->state().value(), expected);
  }
  EXPECT_EQ(env.scheduler.pending(), 0u);  // gossip timers disarmed
}

TEST(LazyReplication, VersionVectorTracksOrigins) {
  SimEnv env;
  const GroupView view = testkit::make_view(2);
  LazyReplicaNode<apps::Counter> a(env.transport, view);
  LazyReplicaNode<apps::Counter> b(env.transport, view);
  a.submit(apps::Counter::inc(1));
  a.submit(apps::Counter::inc(1));
  b.submit(apps::Counter::inc(1));
  env.run();
  EXPECT_EQ(a.version().at(0), 2u);
  EXPECT_EQ(a.version().at(1), 1u);
  EXPECT_EQ(a.version(), b.version());
}

// ---------- Flush protocol / dynamic views ----------

struct FlushGroup {
  FlushGroup(Transport& transport, const GroupView& initial, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<FlushCoordinator>(
          transport, initial,
          [this, i](const Delivery& delivery) {
            app_logs.resize(std::max(app_logs.size(), i + 1));
            app_logs[i].push_back(delivery.label());
          },
          [this, i](const GroupView& view) {
            installed.resize(std::max(installed.size(), i + 1));
            installed[i].push_back(view.id());
          }));
    }
    app_logs.resize(n);
    installed.resize(n);
  }
  std::vector<std::unique_ptr<FlushCoordinator>> members;
  std::vector<std::vector<std::string>> app_logs;
  std::vector<std::vector<ViewId>> installed;
};

TEST(Flush, LeaveInstallsNewViewAtAllSurvivors) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 7;
  SimEnv env(config);
  const GroupView view1(1, {0, 1, 2});
  FlushGroup group(env.transport, view1, 3);

  // Traffic in view 1.
  group.members[0]->member().broadcast("before", {}, DepSpec::none());
  group.members[2]->member().broadcast("bye", {}, DepSpec::none());
  // Member 2 leaves: member 0 (the authority) proposes view 2.
  const GroupView view2(2, {0, 1});
  group.members[0]->propose(view2);
  env.run();

  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(group.installed[i].size(), 1u) << "member " << i;
    EXPECT_EQ(group.installed[i][0], 2u);
    EXPECT_EQ(group.members[i]->view().id(), 2u);
    EXPECT_EQ(group.members[i]->view().size(), 2u);
    // Both old-view app messages were delivered before installation.
    EXPECT_EQ(group.app_logs[i].size(), 2u);
  }
  // Departed member also flushed and saw the messages (it installs too,
  // in our model it simply stops being addressed afterwards — view 2
  // doesn't contain it, so install_view would reject; it stays in view 1).
  EXPECT_EQ(group.members[2]->view().id(), 1u);

  // Post-install traffic flows between the survivors with resized clocks.
  group.members[0]->member().broadcast("after", {}, DepSpec::none());
  env.run();
  EXPECT_EQ(group.app_logs[1].back(), "after");
  EXPECT_EQ(group.members[1]->member().delivered_prefix().width(), 2u);
}

TEST(Flush, NoMessageStraddlesTheViewBoundary) {
  // Messages sent in view 1 must be delivered at every survivor BEFORE the
  // new view is installed there (virtual synchrony's core guarantee).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 4000;
    config.seed = seed;
    SimEnv env(config);
    const GroupView view1(1, {0, 1, 2});
    FlushGroup group(env.transport, view1, 3);

    std::vector<std::size_t> log_sizes_at_install(3, SIZE_MAX);
    // Count app messages delivered when each member installs.
    for (std::size_t i = 0; i < 3; ++i) {
      // Re-register the install hook by wrapping: simplest is to sample
      // after the run using installed flags + app log ordering; instead
      // drive a marker: send 6 messages, then propose.
      (void)i;
    }
    for (int k = 0; k < 6; ++k) {
      group.members[static_cast<std::size_t>(k) % 3]->member().broadcast(
          "v1msg", {}, DepSpec::none());
    }
    const GroupView view2(2, {0, 1, 2});  // same membership, id bump
    group.members[1]->propose(view2);
    env.run();
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(group.installed[i].size(), 1u) << "seed " << seed;
      // All 6 view-1 messages delivered everywhere (flush completed).
      EXPECT_EQ(group.app_logs[i].size(), 6u) << "seed " << seed;
    }
    (void)log_sizes_at_install;
  }
}

TEST(Flush, JoinerReceivesPostInstallTraffic) {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 4;
  SimEnv env(config);
  const GroupView view1(1, {0, 1});
  FlushGroup group(env.transport, view1, 2);
  group.members[0]->member().broadcast("old-world", {}, DepSpec::none());
  env.run();

  // The joiner is constructed directly in view 2 (id 2 = next endpoint).
  const GroupView view2(2, {0, 1, 2});
  std::vector<std::string> joiner_log;
  FlushCoordinator joiner(
      env.transport, view2,
      [&](const Delivery& delivery) { joiner_log.push_back(delivery.label()); },
      nullptr);
  EXPECT_EQ(joiner.member().id(), 2u);

  group.members[0]->propose(view2);
  env.run();
  EXPECT_EQ(group.members[0]->view().id(), 2u);
  EXPECT_EQ(group.members[1]->view().id(), 2u);

  // New-view traffic reaches everyone, including the joiner.
  group.members[1]->member().broadcast("new-world", {}, DepSpec::none());
  joiner.member().broadcast("hello", {}, DepSpec::none());
  env.run();
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(joiner_log),
            (std::vector<std::string>{"hello", "new-world"}));
  ASSERT_GE(group.app_logs[0].size(), 3u);  // old-world + both new msgs
  EXPECT_EQ(sorted({group.app_logs[0].end() - 2, group.app_logs[0].end()}),
            (std::vector<std::string>{"hello", "new-world"}));
}

TEST(Flush, SendsSuspendedDuringFlushAreRejected) {
  SimEnv env;  // fixed latency: proposal takes a hop to reach member 1
  const GroupView view1(1, {0, 1});
  FlushGroup group(env.transport, view1, 2);
  const GroupView view2(2, {0, 1});
  group.members[0]->propose(view2);
  // Proposer delivered its own proposal synchronously -> suspended.
  EXPECT_TRUE(group.members[0]->view_change_in_progress());
  EXPECT_THROW(group.members[0]->member().broadcast("app", {}, DepSpec::none()),
               InvalidArgument);
  env.run();
  EXPECT_FALSE(group.members[0]->view_change_in_progress());
  EXPECT_NO_THROW(group.members[0]->member().broadcast("app", {}, DepSpec::none()));
}

TEST(Flush, ProposalMustAdvanceViewIdByOne) {
  SimEnv env;
  const GroupView view1(1, {0, 1});
  FlushGroup group(env.transport, view1, 2);
  EXPECT_THROW(group.members[0]->propose(GroupView(5, {0, 1})),
               InvalidArgument);
  EXPECT_THROW(group.members[0]->propose(GroupView(2, {1})),  // drops self
               InvalidArgument);
}

// ---------- Dynamic replica groups with state transfer ----------

TEST(DynamicReplica, JoinerAdoptsSnapshotAndParticipates) {
  SimEnv::Config config;
  config.jitter_us = 1500;
  config.seed = 23;
  SimEnv env(config);
  const GroupView view1(1, {0, 1});
  std::vector<std::unique_ptr<DynamicReplicaNode<apps::Counter>>> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
        env.transport, view1, apps::Counter::spec()));
  }
  // Pre-join history the joiner will NEVER see as messages.
  nodes[0]->submit(apps::Counter::inc(7));
  nodes[1]->submit(apps::Counter::inc(5));
  env.run();
  nodes[0]->submit(apps::Counter::rd());
  env.run();
  EXPECT_EQ(nodes[1]->state().value(), 12);

  // Node 2 joins view 2 and receives the snapshot in the welcome.
  const GroupView view2(2, {0, 1, 2});
  nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
      env.transport, view2, apps::Counter::spec()));
  nodes[0]->propose_view(view2);
  env.run();
  EXPECT_EQ(nodes[2]->view().id(), 2u);
  EXPECT_EQ(nodes[2]->state().value(), 12);  // snapshot adopted

  // The joiner both observes and originates post-join traffic.
  nodes[2]->submit(apps::Counter::inc(3));
  nodes[0]->submit(apps::Counter::inc(1));
  env.run();
  nodes[2]->submit(apps::Counter::rd());
  env.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->state().value(), 16)
        << "node " << i;
    EXPECT_TRUE(nodes[static_cast<std::size_t>(i)]->last_stable_state()
                    .has_value());
  }
  // The post-join stable point agrees everywhere (16 at all members).
  EXPECT_EQ(nodes[0]->last_stable_state()->value(), 16);
  EXPECT_EQ(nodes[2]->last_stable_state()->value(), 16);
}

TEST(DynamicReplica, JoinWithRegistrySnapshot) {
  SimEnv env;
  const GroupView view1(1, {0, 1});
  std::vector<std::unique_ptr<DynamicReplicaNode<apps::Registry>>> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Registry>>(
        env.transport, view1, apps::Registry::spec()));
  }
  nodes[0]->submit(apps::Registry::upd("svc", "host-1"));
  nodes[1]->submit(apps::Registry::upd("db", "host-9"));
  env.run();

  const GroupView view2(2, {0, 1, 2});
  nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Registry>>(
      env.transport, view2, apps::Registry::spec()));
  nodes[0]->propose_view(view2);
  env.run();
  EXPECT_EQ(nodes[2]->state().lookup("svc"), "host-1");
  EXPECT_EQ(nodes[2]->state().lookup("db"), "host-9");
  EXPECT_EQ(nodes[2]->state().update_count("svc"), 1u);

  nodes[2]->submit(apps::Registry::upd("svc", "host-2"));
  env.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->state().lookup("svc"),
              "host-2");
  }
}

TEST(DynamicReplica, LeaveShrinksGroupAndTrafficContinues) {
  SimEnv env;
  const GroupView view1(1, {0, 1, 2});
  std::vector<std::unique_ptr<DynamicReplicaNode<apps::Counter>>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
        env.transport, view1, apps::Counter::spec()));
  }
  nodes[2]->submit(apps::Counter::inc(4));
  env.run();
  nodes[0]->propose_view(GroupView(2, {0, 1}));
  env.run();
  EXPECT_EQ(nodes[0]->view().id(), 2u);
  EXPECT_EQ(nodes[1]->view().id(), 2u);
  nodes[1]->submit(apps::Counter::inc(6));
  env.run();
  nodes[0]->submit(apps::Counter::rd());
  env.run();
  EXPECT_EQ(nodes[0]->state().value(), 10);
  EXPECT_EQ(nodes[1]->state().value(), 10);
  EXPECT_EQ(nodes[2]->state().value(), 4);  // departed before the inc(6)
}

TEST(DynamicReplica, SnapshotCarriesFrontEndContext) {
  // The joiner's first sync op must cover commutative requests that were
  // open at the join cut (the snapshot restores {Cid} and Ncid).
  SimEnv env;
  const GroupView view1(1, {0, 1});
  std::vector<std::unique_ptr<DynamicReplicaNode<apps::Counter>>> nodes;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
        env.transport, view1, apps::Counter::spec()));
  }
  nodes[0]->submit(apps::Counter::inc(1));  // open commutative set
  env.run();
  const GroupView view2(2, {0, 1, 2});
  nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
      env.transport, view2, apps::Counter::spec()));
  nodes[0]->propose_view(view2);
  env.run();
  // Joiner issues the cycle-closing read; its AND-set must cover the
  // pre-join inc (known only via the snapshot's restored context).
  nodes[2]->submit(apps::Counter::rd());
  env.run();
  ASSERT_FALSE(nodes[0]->detector().history().empty());
  EXPECT_TRUE(nodes[0]->detector().history().back().coverage_complete);
  EXPECT_EQ(nodes[0]->last_stable_state()->value(), 1);
  EXPECT_EQ(nodes[2]->last_stable_state()->value(), 1);
}

TEST(DynamicReplica, ChainedViewChangesStayConsistent) {
  // Epochs: {0,1} -> join 2 -> join 3 -> leave 1; traffic in every epoch.
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 29;
  SimEnv env(config);
  std::vector<std::unique_ptr<DynamicReplicaNode<apps::Counter>>> nodes;
  const GroupView view1(1, {0, 1});
  for (int i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
        env.transport, view1, apps::Counter::spec()));
  }
  std::int64_t expected = 0;
  auto write_and_settle = [&](std::size_t who, std::int64_t delta) {
    expected += delta;
    nodes[who]->submit(apps::Counter::inc(delta));
    env.run();
  };
  write_and_settle(0, 1);

  const GroupView view2(2, {0, 1, 2});
  nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
      env.transport, view2, apps::Counter::spec()));
  nodes[0]->propose_view(view2);
  env.run();
  write_and_settle(2, 10);

  const GroupView view3(3, {0, 1, 2, 3});
  nodes.push_back(std::make_unique<DynamicReplicaNode<apps::Counter>>(
      env.transport, view3, apps::Counter::spec()));
  nodes[1]->propose_view(view3);
  env.run();
  write_and_settle(3, 100);

  const GroupView view4(4, {0, 2, 3});  // node 1 leaves
  nodes[0]->propose_view(view4);
  env.run();
  write_and_settle(0, 1000);

  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(nodes[i]->view().id(), 4u) << "node " << i;
    EXPECT_EQ(nodes[i]->state().value(), expected) << "node " << i;
  }
  // Node 1 stopped at view 3 with the state as of its departure cut.
  EXPECT_EQ(nodes[1]->view().id(), 3u);
  EXPECT_EQ(nodes[1]->state().value(), expected - 1000);
}

TEST(Flush, PruneStableWorksAcrossViewChange) {
  // GC interacts with view installation: clocks are remapped, and the
  // stable cut keeps certifying correctly in the new view.
  SimEnv env;
  const GroupView view1(1, {0, 1, 2});
  FlushGroup group(env.transport, view1, 3);
  for (int round = 0; round < 3; ++round) {
    for (auto& member : group.members) {
      member->member().broadcast("pre", {}, DepSpec::none());
    }
    env.run();
  }
  group.members[0]->propose(GroupView(2, {0, 1}));
  env.run();
  // Traffic + an ack round in the new (smaller) view to move stability.
  for (int round = 0; round < 2; ++round) {
    group.members[0]->member().broadcast("post", {}, DepSpec::none());
    group.members[1]->member().broadcast("post", {}, DepSpec::none());
    env.run();
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const std::size_t before = group.members[i]->osend().graph().size();
    const std::size_t pruned = group.members[i]->osend().prune_stable();
    EXPECT_GT(pruned, 0u) << "member " << i;
    EXPECT_LT(group.members[i]->osend().graph().size(), before);
  }
  // Protocol still functional post-prune.
  group.members[1]->member().broadcast("after-gc", {}, DepSpec::none());
  env.run();
  EXPECT_EQ(group.app_logs[0].back(), "after-gc");
}

TEST(ScopedOrderRobustness, SurvivesLossyNetwork) {
  SimEnv::Config config;
  config.drop_probability = 0.25;
  config.jitter_us = 2000;
  config.seed = 33;
  SimEnv env(config);
  const GroupView view = testkit::make_view(3);
  ScopedOrderMember::Options options;
  options.member.reliability = {.control_interval_us = 3000, .enabled = true};
  std::vector<std::unique_ptr<ScopedOrderMember>> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<ScopedOrderMember>(
        env.transport, view, [](const Delivery&) {}, options));
  }
  const ScopeId scope = members[0]->open_scope("a");
  env.run();
  members[1]->send_scoped(scope, "x", {});
  members[2]->send_scoped(scope, "y", {});
  env.run();
  members[0]->close_scope(scope, "d");
  env.run();
  auto labels = [&](int i) {
    std::vector<std::string> out;
    for (const Delivery& delivery :
         members[static_cast<std::size_t>(i)]->app_log()) {
      out.push_back(delivery.label());
    }
    return out;
  };
  ASSERT_EQ(labels(0).size(), 4u);
  EXPECT_EQ(labels(1), labels(0));
  EXPECT_EQ(labels(2), labels(0));
}

}  // namespace
}  // namespace cbc
