// FlightRecorder unit surface: ring wrap-around keeps the newest
// records, concurrent writers never publish a torn record (run under
// TSan in CI), dumps decode into trace events cbc_trace_merge accepts,
// and the decoder survives systematic truncation and bit-flip damage —
// the same robustness bar the wire-frame parsers meet in
// frame_fuzz_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "graph/message_id.h"
#include "obs/flight_recorder.h"
#include "obs/json_lite.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "util/ensure.h"

namespace cbc::obs {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return {bytes.begin(), bytes.end()};
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "flight_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

TEST(FlightRecorder, RingWrapAroundKeepsTheNewestRecords) {
  FlightRecorder recorder({.capacity = 8, .node_id = 3});
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.record(FlightEvent::kSubmit, MessageId{3, i}, i);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);
  EXPECT_EQ(recorder.capacity(), 8u);

  const FlightDump dump = decode_flight_dump(recorder.snapshot_bytes());
  EXPECT_EQ(dump.node_id, 3u);
  EXPECT_EQ(dump.total_recorded, 20u);
  EXPECT_EQ(dump.torn, 0u);
  ASSERT_EQ(dump.records.size(), 8u);
  // Only the last capacity records survive, in claim order.
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    EXPECT_EQ(dump.records[i].ticket, 12 + i);
    EXPECT_EQ(dump.records[i].id.seq, 12 + i);
    EXPECT_EQ(dump.records[i].arg, 12 + i);
    EXPECT_EQ(dump.records[i].event, FlightEvent::kSubmit);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwo) {
  FlightRecorder recorder({.capacity = 100});
  EXPECT_EQ(recorder.capacity(), 128u);
}

TEST(FlightRecorder, ConcurrentWritersNeverPublishATornRecord) {
  // Each writer stamps its thread index into the sender and a per-thread
  // sequence into seq/arg; any mixed-up field combination in the decode
  // is a torn record the seqlock failed to suppress.
  FlightRecorder recorder({.capacity = 1 << 10});
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        recorder.record(FlightEvent::kDeliver, MessageId{t, i}, i);
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(recorder.total_recorded(), kThreads * kPerThread);

  const FlightDump dump = decode_flight_dump(recorder.snapshot_bytes());
  EXPECT_LE(dump.records.size(), recorder.capacity());
  std::set<std::uint64_t> tickets;
  for (const FlightRecord& record : dump.records) {
    EXPECT_EQ(record.event, FlightEvent::kDeliver);
    EXPECT_LT(record.id.sender, kThreads);
    // seq and arg were written together; divergence means tearing.
    EXPECT_EQ(record.id.seq, record.arg);
    EXPECT_LT(record.id.seq, kPerThread);
    EXPECT_TRUE(tickets.insert(record.ticket).second)
        << "duplicate ticket " << record.ticket;
  }
}

TEST(FlightRecorder, FileBackedRingPersistsWithoutADumpStep) {
  const std::string path = temp_path("mmap");
  {
    FlightRecorder recorder(
        {.capacity = 64, .node_id = 7, .role = 1, .path = path});
    EXPECT_TRUE(recorder.file_backed());
    recorder.record(FlightEvent::kSubmit, MessageId{7, 1});
    recorder.record(FlightEvent::kDeliver, MessageId{7, 1}, 250);
    // No dump() — destruction unmaps; the file alone must decode.
  }
  const FlightDump dump = decode_flight_dump(read_file(path));
  EXPECT_EQ(dump.node_id, 7u);
  EXPECT_EQ(dump.role, 1u);
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records[1].event, FlightEvent::kDeliver);
  EXPECT_EQ(dump.records[1].arg, 250u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, InMemoryDumpWritesTheConfiguredPathAtomically) {
  const std::string path = temp_path("dump");
  FlightRecorder recorder({.capacity = 16, .node_id = 2, .dump_path = path});
  EXPECT_FALSE(recorder.file_backed());
  recorder.record(FlightEvent::kMark, MessageId{2, 9}, 42);
  ASSERT_TRUE(recorder.dump());
  const FlightDump dump = decode_flight_dump(read_file(path));
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.records[0].event, FlightEvent::kMark);
  EXPECT_EQ(dump.records[0].arg, 42u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, GlobalInjectionPointRoutesRecords) {
  FlightRecorder recorder({.capacity = 16, .node_id = 5});
  install_flight_recorder(&recorder);
  flight_record(FlightEvent::kKvPark, MessageId{5, 3}, 11);
  install_flight_recorder(nullptr);
  flight_record(FlightEvent::kKvPark, MessageId{5, 4}, 12);  // dropped

  const FlightDump dump = decode_flight_dump(recorder.snapshot_bytes());
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.records[0].id.seq, 3u);
}

TEST(FlightRecorder, DecodedDumpMergesWithLiveTraces) {
  // The postmortem path end to end: a dump becomes trace events, those
  // render as a Chrome trace document, and cbc_trace_merge's loader
  // accepts it next to a live Tracer file.
  FlightRecorder recorder({.capacity = 32, .node_id = 1});
  recorder.record(FlightEvent::kSubmit, MessageId{1, 1});
  recorder.record(FlightEvent::kWireTx, MessageId{1, 1}, 2);
  recorder.record(FlightEvent::kDeliver, MessageId{1, 1}, 120);

  const FlightDump dump = decode_flight_dump(recorder.snapshot_bytes());
  const std::string postmortem =
      render_trace_events(flight_to_trace_events(dump));

  Tracer tracer({.pid = 2, .process_name = "live"});
  tracer.instant("submit", "flight", 10, R"("msg":"s2:1")");
  const std::string live = tracer.render_chrome_json();

  std::vector<JsonValue> docs;
  docs.push_back(parse_chrome_trace(postmortem));
  docs.push_back(parse_chrome_trace(live));
  const std::string merged = merge_trace_docs(docs);
  const TraceSummary summary = summarize_chrome_trace(parse_chrome_trace(merged));
  // 3 flight events (one a deliver span) + metadata + live instant.
  EXPECT_GE(summary.events, 4u);
  EXPECT_EQ(summary.deliver_events.at(1), 1u);
}

TEST(FlightRecorder, DecoderSurvivesEveryTruncation) {
  FlightRecorder recorder({.capacity = 8, .node_id = 4});
  for (std::uint64_t i = 0; i < 8; ++i) {
    recorder.record(FlightEvent::kEncode, MessageId{4, i}, i);
  }
  const std::vector<std::uint8_t> full = recorder.snapshot_bytes();
  std::size_t threw = 0;
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> sliced(full.data(), cut);
    try {
      const FlightDump dump = decode_flight_dump(sliced);
      EXPECT_LE(dump.records.size(), 8u);
    } catch (const InvalidArgument&) {
      ++threw;
    }
  }
  // Anything shorter than the header must be structurally rejected.
  EXPECT_GE(threw, 64u);
}

TEST(FlightRecorder, DecoderSurvivesEverySingleByteFlip) {
  FlightRecorder recorder({.capacity = 8, .node_id = 4});
  for (std::uint64_t i = 0; i < 8; ++i) {
    recorder.record(FlightEvent::kEncode, MessageId{4, i}, i);
  }
  const std::vector<std::uint8_t> full = recorder.snapshot_bytes();
  for (std::size_t at = 0; at < full.size(); ++at) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      std::vector<std::uint8_t> damaged = full;
      damaged[at] ^= mask;
      try {
        const FlightDump dump = decode_flight_dump(damaged);
        // Accepted: damage was confined to skippable records (or a
        // field whose corruption is indistinguishable from real data).
        EXPECT_LE(dump.records.size(), 8u);
        EXPECT_LE(dump.torn, 8u);
      } catch (const InvalidArgument&) {
        // Rejected structurally — equally acceptable; never a crash.
      }
    }
  }
}

TEST(FlightRecorder, EventNamesCoverTheEnumAndRejectStrays) {
  EXPECT_STREQ(flight_event_name(FlightEvent::kSubmit), "submit");
  EXPECT_STREQ(flight_event_name(FlightEvent::kKvDrain), "kv_drain");
  EXPECT_STREQ(flight_event_name(static_cast<FlightEvent>(200)), "?");
}

}  // namespace
}  // namespace cbc::obs
