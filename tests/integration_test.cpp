// Cross-module integration tests: the full stack under realistic fault
// envelopes, the paper's end-to-end scenarios, and the thread transport.
#include <gtest/gtest.h>

#include <memory>

#include "apps/card_game.h"
#include "apps/counter.h"
#include "apps/document.h"
#include "activity/transition_check.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "lock/lock_arbiter.h"
#include "replica/replica_group.h"
#include "transport/thread_transport.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

// ---------- Figure 2 end-to-end, validated by the formal checker ----------

TEST(Integration, Figure2DeliveredStateIsTransitionPreserving) {
  // Run the Fig.2 scenario through the real stack, then validate the
  // delivered graph with the §4.1 transition-preservation checker on a
  // counter: mk=set(10), m1'=inc(1), m2'=inc(2), m3'=rd.
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 5;
  SimEnv env(config);
  ReplicaGroup<apps::Counter> group(env.transport, 3, apps::Counter::spec());
  group.node(2).submit(apps::Counter::set(10));
  env.run();
  group.node(0).submit(apps::Counter::inc(1));
  group.node(0).submit(apps::Counter::inc(2));
  env.run();
  group.node(1).submit(apps::Counter::rd());
  env.run();

  EXPECT_TRUE(group.stable_states_agree());
  EXPECT_EQ(group.node(0).state().value(), 13);

  // Validate against the formal definition: all allowed sequences of the
  // observed graph converge.
  const MessageGraph& graph = group.node(0).osend().graph();
  const auto result = check_transition_preserving(
      graph, apps::Counter{},
      [](apps::Counter& state, const GraphNode& node) {
        const std::string kind = CommutativitySpec::kind_of(node.label);
        Writer writer;
        if (kind == "set") writer.i64(10);
        // Node 0's first submission was inc(1), its second inc(2).
        if (kind == "inc") {
          writer.i64(node.label.find("#0.1") != std::string::npos ? 1 : 2);
        }
        Reader reader(writer.bytes());
        state.apply(kind, reader);
      });
  EXPECT_TRUE(result.transition_preserving);
}

// ---------- Full stack under loss + duplication + jitter ----------

TEST(Integration, ReplicaGroupSurvivesHostileNetwork) {
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.1;
  config.seed = 23;
  SimEnv env(config);
  typename ReplicaNode<apps::Counter>::Options options;
  options.member.reliability = {.control_interval_us = 3000, .enabled = true};
  ReplicaGroup<apps::Counter> group(env.transport, 4, apps::Counter::spec(),
                                    options);
  Rng rng(17);
  std::int64_t expected = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int k = 0; k < 6; ++k) {
      const std::int64_t delta = rng.next_in(1, 5);
      expected += delta;
      group.node(rng.next_below(4)).submit(apps::Counter::inc(delta));
    }
    env.run();
    group.node(rng.next_below(4)).submit(apps::Counter::rd());
    env.run();
  }
  EXPECT_TRUE(group.states_agree());
  EXPECT_TRUE(group.stable_states_agree());
  EXPECT_EQ(group.node(0).state().value(), expected);
  for (std::size_t i = 0; i < 4; ++i) {
    for (const StablePoint& point : group.node(i).detector().history()) {
      EXPECT_TRUE(point.coverage_complete);
    }
  }
}

// ---------- Conferencing document over the replica protocol ----------

TEST(Integration, ConferencingDocumentConverges) {
  SimEnv::Config config;
  config.jitter_us = 5000;
  config.seed = 31;
  SimEnv env(config);
  ReplicaGroup<apps::Document> group(env.transport, 3, apps::Document::spec());
  group.node(0).submit(apps::Document::annotate("intro", "tighten claim"));
  group.node(1).submit(apps::Document::annotate("intro", "add citation"));
  group.node(2).submit(apps::Document::annotate("eval", "rerun with N=8"));
  env.run();
  group.node(0).submit(apps::Document::publish());
  env.run();
  EXPECT_TRUE(group.stable_states_agree());
  EXPECT_EQ(group.node(1).state().annotations("intro").size(), 2u);
  EXPECT_EQ(group.node(2).state().publish_count(), 1u);
}

// ---------- Card game (§5.1): relaxed deps through raw OSend ----------

TEST(Integration, CardGameRelaxedOrderStillConverges) {
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = 37;
  SimEnv env(config);
  const std::size_t players = 4;
  const apps::TurnPlan plan = apps::TurnPlan::relaxed({0, 0, 1, 0});
  Group<OSendMember> group(env.transport, players);
  std::vector<apps::CardGame> states(players);
  // Deliveries apply to each player's local game state.
  // (Group's members use a no-op deliver callback; apply from logs after.)
  std::vector<MessageId> play_ids(players);
  for (std::uint32_t l = 0; l < players; ++l) {
    const auto op = apps::CardGame::card(0, l, static_cast<std::int64_t>(l) * 10);
    DepSpec deps;
    if (l > 0) {
      deps = DepSpec::after(play_ids[plan.dependency(l)]);
    }
    play_ids[l] = group[l].osend(op.kind + "#" + std::to_string(l), op.args,
                                 deps);
    env.run_until(env.scheduler.now() + 500);
  }
  env.run();
  for (std::uint32_t p = 0; p < players; ++p) {
    ASSERT_EQ(group[p].log().size(), players);
    apps::CardGame game;
    for (const Delivery& delivery : group[p].log()) {
      Reader reader(delivery.payload());
      game.apply(CommutativitySpec::kind_of(delivery.label()), reader);
    }
    states[p] = game;
    // Dependency edges were honoured locally.
    EXPECT_TRUE(group[p].graph().is_valid_delivery_order(
        delivered_ids(group[p].log())));
  }
  for (std::uint32_t p = 1; p < players; ++p) {
    EXPECT_EQ(states[p], states[0]);
  }
}

// ---------- Locks guarding a replicated counter ----------

TEST(Integration, LockSerializedCriticalSectionsNeverOverlap) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 41;
  SimEnv env(config);
  const std::size_t n = 3;
  const GroupView view = testkit::make_view(n);
  int in_critical_section = 0;
  int max_concurrent = 0;
  int sections = 0;
  std::vector<std::unique_ptr<LockArbiter>> arbiters;
  for (std::size_t i = 0; i < n; ++i) {
    arbiters.push_back(std::make_unique<LockArbiter>(
        env.transport, view, [&, i](std::uint64_t) {
          ++in_critical_section;
          max_concurrent = std::max(max_concurrent, in_critical_section);
          ++sections;
          // Simulate work: release after a delay.
          env.transport.schedule(500, [&, i] {
            --in_critical_section;
            arbiters[i]->release();
          });
        }));
  }
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (auto& arbiter : arbiters) {
      arbiter->request();
    }
  }
  env.run();
  EXPECT_EQ(sections, 9);
  EXPECT_EQ(max_concurrent, 1);  // never two holders at once
}

// ---------- Whole stack on real threads ----------

TEST(Integration, ReplicaGroupOnThreadTransport) {
  ThreadTransport::Options toptions;
  toptions.max_jitter_us = 1000;
  toptions.seed = 3;
  ThreadTransport transport(toptions);
  ReplicaGroup<apps::Counter> group(transport, 3, apps::Counter::spec());
  group.node(0).submit(apps::Counter::inc(2));
  group.node(1).submit(apps::Counter::inc(3));
  group.node(2).submit(apps::Counter::inc(5));
  transport.drain();
  group.node(0).submit(apps::Counter::rd());
  transport.drain();
  EXPECT_TRUE(group.states_agree());
  EXPECT_TRUE(group.stable_states_agree());
  EXPECT_EQ(group.node(2).state().value(), 10);
}

TEST(Integration, ASendOnThreadTransportTotalOrder) {
  ThreadTransport::Options toptions;
  toptions.max_jitter_us = 2000;
  toptions.seed = 9;
  ThreadTransport transport(toptions);
  const GroupView view = testkit::make_view(3);
  std::vector<std::unique_ptr<ASendMember>> members;
  for (std::size_t i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<ASendMember>(
        transport, view, [](const Delivery&) {}));
  }
  for (int k = 0; k < 10; ++k) {
    members[static_cast<std::size_t>(k) % 3]->asend("m" + std::to_string(k),
                                                    {});
  }
  transport.drain();
  const auto reference = delivered_ids(members[0]->log());
  EXPECT_EQ(reference.size(), 10u);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(delivered_ids(members[i]->log()), reference);
  }
}

}  // namespace
}  // namespace cbc
