// Tests for the §5.2 application-specific consistency name service.
#include <gtest/gtest.h>

#include <memory>

#include "appcons/name_service.h"
#include "common/sim_env.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::SimEnv;

struct ServiceGroup {
  ServiceGroup(Transport& transport, std::size_t n)
      : view(testkit::make_view(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<NameServiceMember>(transport, view));
    }
  }
  GroupView view;
  std::vector<std::unique_ptr<NameServiceMember>> members;
};

TEST(NameService, UpdatePropagatesToAllMembers) {
  SimEnv env;
  ServiceGroup group(env.transport, 3);
  group.members[0]->update("printer", "host-a");
  env.run();
  for (const auto& member : group.members) {
    EXPECT_EQ(member->registry().lookup("printer"), "host-a");
    EXPECT_EQ(member->stats().updates_applied, 1u);
  }
}

TEST(NameService, QuiescentQueryConsistentEverywhere) {
  SimEnv env;
  ServiceGroup group(env.transport, 3);
  group.members[0]->update("svc", "v1");
  env.run();
  std::optional<QueryOutcome> outcome;
  group.members[1]->query(
      "svc", [&](const QueryOutcome& result) { outcome = result; });
  env.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->discarded);
  EXPECT_EQ(outcome->value, "v1");
  // No member saw a context mismatch.
  for (const auto& member : group.members) {
    EXPECT_EQ(member->stats().queries_discarded, 0u);
    EXPECT_EQ(member->stats().queries_processed, 1u);
  }
}

TEST(NameService, QueryOnUnboundNameConsistent) {
  SimEnv env;
  ServiceGroup group(env.transport, 2);
  std::optional<QueryOutcome> outcome;
  group.members[0]->query(
      "ghost", [&](const QueryOutcome& result) { outcome = result; });
  env.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->discarded);
  EXPECT_EQ(outcome->value, std::nullopt);
}

TEST(NameService, ConcurrentUpdateCausesRemoteDiscard) {
  // The §5.2 scenario: member 1 queries while member 0's concurrent
  // update is still in flight — members whose update view differs from
  // the query's context discard the query.
  SimEnv env;  // fixed latency 1000us
  ServiceGroup group(env.transport, 3);
  group.members[0]->update("svc", "v1");  // in flight until t=1000
  group.members[1]->query("svc", nullptr);  // context: no updates seen
  env.run();
  // Members 0 and 2 process the query after (or racing with) the update.
  // Member 0 definitely applied its own update at t=0, so the query's
  // empty context mismatches there.
  EXPECT_GE(group.members[0]->stats().queries_discarded, 1u);
}

TEST(NameService, StaleContextDiscardedEvenAtIssuerAfterReorder) {
  // Craft the paper's exact interleaving with a slow link: upd1 -> qry
  // at the issuer, but another member sees upd2 first.
  sim::Scheduler scheduler;
  auto latency = std::make_unique<sim::MatrixLatency>(3, 1000, 0);
  latency->set(0, 2, 30000);  // member0's traffic to member2 is very slow
  sim::SimNetwork network(scheduler, std::move(latency), {}, 1);
  SimTransport transport(network);
  ServiceGroup group(transport, 3);

  group.members[0]->update("svc", "v1");
  scheduler.run_until(2000);  // v1 reached member 1, not member 2
  std::optional<QueryOutcome> outcome;
  group.members[1]->query(
      "svc", [&](const QueryOutcome& result) { outcome = result; });
  scheduler.run();
  // Member 2 processed the query before seeing upd v1: mismatch there.
  EXPECT_GE(group.members[2]->stats().queries_discarded, 1u);
  // The issuer's own processing was consistent.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->discarded);
  EXPECT_EQ(outcome->value, "v1");
}

TEST(NameService, MatchingContextsAcceptEvenWithConcurrentOtherNames) {
  SimEnv env;
  ServiceGroup group(env.transport, 2);
  group.members[0]->update("a", "1");
  env.run();
  // Concurrent update to a DIFFERENT name must not disturb queries on "a".
  group.members[1]->update("b", "2");
  group.members[0]->query("a", nullptr);
  env.run();
  for (const auto& member : group.members) {
    EXPECT_EQ(member->stats().queries_discarded, 0u);
  }
}

TEST(NameService, DiscardRateGrowsWithConcurrency) {
  // Claim C4: inconsistencies are infrequent at low concurrency and grow
  // with racing update traffic.
  auto run_workload = [](double update_rate, std::uint64_t seed) {
    SimEnv::Config config;
    config.jitter_us = 3000;
    config.seed = seed;
    SimEnv env(config);
    ServiceGroup group(env.transport, 4);
    Rng rng(seed);
    for (int step = 0; step < 100; ++step) {
      const std::size_t who = rng.next_below(4);
      if (rng.next_bool(update_rate)) {
        group.members[who]->update("hot", "v" + std::to_string(step));
      } else {
        group.members[who]->query("hot", nullptr);
      }
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(1500)));
    }
    env.run();
    std::uint64_t discarded = 0;
    std::uint64_t processed = 0;
    for (const auto& member : group.members) {
      discarded += member->stats().queries_discarded;
      processed += member->stats().queries_processed;
    }
    return std::pair<std::uint64_t, std::uint64_t>{discarded, processed};
  };
  const auto [calm_discards, calm_total] = run_workload(0.05, 3);
  const auto [hot_discards, hot_total] = run_workload(0.7, 3);
  EXPECT_GT(calm_total, 0u);
  EXPECT_GT(hot_total, 0u);
  const double calm_rate =
      static_cast<double>(calm_discards) / static_cast<double>(calm_total);
  const double hot_rate =
      static_cast<double>(hot_discards) / static_cast<double>(hot_total);
  EXPECT_LT(calm_rate, hot_rate);
}

TEST(NameService, AcceptedAnswersAgreeAcrossMembers) {
  // Property: whenever two members both ACCEPT the same query, the value
  // they would answer is identical — the §5.2 correctness criterion.
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = 11;
  SimEnv env(config);
  const std::size_t n = 3;
  const GroupView view = testkit::make_view(n);
  std::vector<std::unique_ptr<NameServiceMember>> members;
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(std::make_unique<NameServiceMember>(env.transport, view));
  }
  // Drive traffic; afterwards compare registry-derived answers indirectly:
  // when no member discarded a query, all members had identical last-update
  // for the name at processing time, hence identical answers. We assert
  // the aggregate invariant: discards + accepts == processed.
  Rng rng(5);
  for (int step = 0; step < 60; ++step) {
    const std::size_t who = rng.next_below(n);
    if (rng.next_bool(0.4)) {
      members[who]->update("k", "v" + std::to_string(step));
    } else {
      members[who]->query("k", nullptr);
    }
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& stats = members[i]->stats();
    EXPECT_LE(stats.queries_discarded, stats.queries_processed);
  }
  // Every update was applied everywhere...
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(members[i]->registry().update_count("k"),
              members[0]->registry().update_count("k"));
    EXPECT_EQ(members[i]->stats().updates_applied,
              members[0]->stats().updates_applied);
  }
  // ...yet final bindings MAY legitimately differ: spontaneous updates
  // carry no ordering, so "last writer" is a local notion — exactly the
  // §5.2 inconsistency the context-carrying queries detect. (With this
  // seed the members do end up divergent; the invariant that matters is
  // that no query claiming consistency was answered from divergent state,
  // which the discard logic enforces by construction.)
  EXPECT_GT(members[0]->registry().update_count("k"), 0u);
}

}  // namespace
}  // namespace cbc
