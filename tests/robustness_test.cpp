// Failure-injection and robustness tests: malformed frames, partitions
// with healing, combined fault envelopes on every ordering discipline.
#include <gtest/gtest.h>

#include "apps/counter.h"
#include "causal/flush.h"
#include "causal/osend.h"
#include "causal/vc_causal.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "replica/replica_group.h"
#include "total/asend.h"
#include "total/sequencer.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

// ---------- Malformed wire frames ----------

TEST(Robustness, GarbageFrameAtOSendEndpointDroppedAndCounted) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  // Inject a raw garbage frame directly at member 1's endpoint by sending
  // from member 0's transport id without going through the protocol. A
  // datagram network delivers such frames for real, so the member must
  // drop and count them — never abort (see OrderingStats::malformed).
  env.transport.send(0, 1, {0xDE, 0xAD});
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(group[1].stats().malformed, 1u);
  // The member still works after the bad frame.
  group[0].broadcast("after", {}, DepSpec::none());
  env.run();
  EXPECT_EQ(group[1].stats().delivered, 1u);
}

TEST(Robustness, TruncatedFrameDroppedAndCounted) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  // A valid-looking prefix (view id + message id) then truncation
  // mid-label.
  Writer writer;
  writer.u64(1);  // view id
  VectorClock(2).encode(writer);  // delivered-prefix prelude
  MessageId{0, 1}.encode(writer);
  writer.u32(1000);  // label length much larger than remaining bytes
  env.transport.send(0, 1, writer.take());
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(group[1].stats().malformed, 1u);
  EXPECT_EQ(group[1].stats().delivered, 0u);
}

TEST(Robustness, ForeignSenderIsBufferedNotFatal) {
  // A frame from an endpoint outside the view must not crash the member —
  // it is buffered for a potential future view (see flush protocol).
  SimEnv env;
  const GroupView view = testkit::make_view(2);
  OSendMember a(env.transport, view, [](const Delivery&) {});
  OSendMember b(env.transport, view, [](const Delivery&) {});
  // A third endpoint, not in the view, sends a well-formed OSend frame.
  const NodeId outsider = env.transport.add_endpoint(
      [](NodeId, const WireFrame&) {});
  Writer frame;
  frame.u64(1);  // same view id, but the sender is not a member
  VectorClock(2).encode(frame);
  MessageId{outsider, 1}.encode(frame);
  frame.str("intruder");
  DepSpec::none().encode(frame);
  frame.i64(0);
  frame.blob({});
  env.transport.send(outsider, b.id(), frame.take());
  EXPECT_NO_THROW(env.run());
  EXPECT_EQ(b.log().size(), 0u);  // not delivered, just buffered
}

TEST(Robustness, UnknownSequencerFrameTypeIsProtocolViolation) {
  SimEnv env;
  Group<SequencerMember> group(env.transport, 2);
  env.transport.send(0, 1, {99});  // bogus frame type
  EXPECT_THROW(env.run(), ProtocolViolation);
}

TEST(Robustness, RequestAtNonSequencerIsProtocolViolation) {
  SimEnv env;
  Group<SequencerMember> group(env.transport, 3);
  // Hand-craft a kRequest frame and deliver it to member 2 (not the
  // sequencer).
  Writer writer;
  writer.u8(1);  // FrameType::kRequest
  MessageId{1, 1}.encode(writer);
  writer.str("m");
  DepSpec::none().encode(writer);
  writer.i64(0);
  writer.blob({});
  env.transport.send(1, 2, writer.take());
  EXPECT_THROW(env.run(), ProtocolViolation);
}

// ---------- Partitions and healing ----------

TEST(Robustness, ReplicaGroupConvergesAfterPartitionHeals) {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 3;
  SimEnv env(config);
  typename ReplicaNode<apps::Counter>::Options options;
  options.member.reliability = {.control_interval_us = 3000, .enabled = true};
  ReplicaGroup<apps::Counter> group(env.transport, 4, apps::Counter::spec(),
                                    options);

  // Healthy traffic first.
  group.node(0).submit(apps::Counter::inc(1));
  env.run();

  // Partition {0,1} | {2,3}; both sides keep writing.
  env.network.set_partitions({{0, 1}, {2, 3}});
  group.node(0).submit(apps::Counter::inc(10));
  group.node(3).submit(apps::Counter::inc(100));
  env.run_until(env.scheduler.now() + 30000);
  // Sides have diverged: each saw only its own partition's writes.
  EXPECT_EQ(group.node(1).state().value(), 11);
  EXPECT_EQ(group.node(2).state().value(), 101);

  // Heal; the reliability layer's retransmit timers re-deliver everything.
  env.network.heal();
  env.run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(group.node(i).state().value(), 111) << "member " << i;
  }
  EXPECT_TRUE(group.states_agree());
}

TEST(Robustness, AsendTotalOrderSurvivesPartitionHeal) {
  SimEnv::Config config;
  config.seed = 5;
  SimEnv env(config);
  ASendMember::Options options;
  options.reliability = {.control_interval_us = 3000, .enabled = true};
  Group<ASendMember> group(env.transport, 3, options);

  group[0].asend("before", {});
  env.run();
  env.network.set_partitions({{0}, {1, 2}});
  group[1].asend("during", {});  // cannot complete its round yet
  env.run_until(env.scheduler.now() + 20000);
  EXPECT_EQ(group[1].log().size(), 1u);  // only "before" delivered
  env.network.heal();
  env.run();
  // After healing, the round completes identically everywhere.
  EXPECT_EQ(group[0].log().size(), 2u);
  EXPECT_TRUE(group.all_delivered_same_sequence());
}

// ---------- Combined fault envelope, every discipline ----------

template <typename MemberT>
void hostile_run(std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.1;
  config.seed = seed;
  SimEnv env(config);
  typename MemberT::Options options;
  options.reliability = {.control_interval_us = 3000, .enabled = true};
  Group<MemberT> group(env.transport, 3, options);
  Rng rng(seed);
  const int total = 30;
  for (int k = 0; k < total; ++k) {
    group[rng.next_below(3)].broadcast("m" + std::to_string(k), {},
                                       DepSpec::none());
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group[i].log().size(), static_cast<std::size_t>(total))
        << "seed " << seed;
  }
  EXPECT_TRUE(group.all_delivered_same_set()) << "seed " << seed;
}

class HostileNetwork : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostileNetwork, OSendDeliversEverything) {
  hostile_run<OSendMember>(GetParam());
}
TEST_P(HostileNetwork, VcCausalDeliversEverything) {
  hostile_run<VcCausalMember>(GetParam());
}
TEST_P(HostileNetwork, ASendDeliversEverythingInTotalOrder) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.1;
  config.seed = GetParam();
  SimEnv env(config);
  ASendMember::Options options;
  options.reliability = {.control_interval_us = 3000, .enabled = true};
  Group<ASendMember> group(env.transport, 3, options);
  Rng rng(GetParam());
  for (int k = 0; k < 30; ++k) {
    group[rng.next_below(3)].asend("m" + std::to_string(k), {});
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  EXPECT_EQ(group[0].log().size(), 30u);
  EXPECT_TRUE(group.all_delivered_same_sequence());
}

TEST_P(HostileNetwork, SequencerDeliversEverythingInTotalOrder) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.1;
  config.seed = GetParam();
  SimEnv env(config);
  SequencerMember::Options options;
  options.reliability = {.control_interval_us = 3000, .enabled = true};
  Group<SequencerMember> group(env.transport, 3, options);
  Rng rng(GetParam());
  for (int k = 0; k < 30; ++k) {
    group[rng.next_below(3)].broadcast("m" + std::to_string(k), {},
                                       DepSpec::none());
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  EXPECT_EQ(group[0].log().size(), 30u);
  EXPECT_TRUE(group.all_delivered_same_sequence());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileNetwork,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------- Conflicting view proposals ----------

TEST(Robustness, ConflictingConcurrentProposalsRaiseProtocolViolation) {
  SimEnv env;
  const GroupView view1 = testkit::make_view(3);
  std::vector<std::unique_ptr<FlushCoordinator>> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(std::make_unique<FlushCoordinator>(
        env.transport, view1, [](const Delivery&) {}, nullptr));
  }
  // Two different authorities propose DIFFERENT successor views at once —
  // the single-membership-authority assumption is violated and must be
  // surfaced, not silently resolved.
  members[0]->propose(GroupView(2, {0, 1}));
  members[1]->propose(GroupView(2, {0, 1, 2}));
  EXPECT_THROW(env.run(), ProtocolViolation);
}

TEST(Robustness, DuplicateIdenticalProposalIsHarmless) {
  SimEnv env;
  const GroupView view1 = testkit::make_view(2);
  std::vector<std::unique_ptr<FlushCoordinator>> members;
  std::vector<int> installs(2, 0);
  for (int i = 0; i < 2; ++i) {
    members.push_back(std::make_unique<FlushCoordinator>(
        env.transport, view1, [](const Delivery&) {},
        [&installs, i](const GroupView&) { ++installs[i]; }));
  }
  const GroupView view2(2, {0, 1});
  members[0]->propose(view2);
  members[1]->propose(view2);  // same view: benign duplicate
  env.run();
  EXPECT_EQ(installs, (std::vector<int>{1, 1}));
  EXPECT_EQ(members[0]->view().id(), 2u);
}

// ---------- Serde fuzzing ----------

TEST(Robustness, RandomBytesNeverCrashDecoders) {
  Rng rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(64));
    for (auto& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    Reader reader(bytes);
    // Any structured decode either succeeds or throws SerdeError /
    // InvalidArgument — never UB or other exception types.
    try {
      (void)MessageId::decode(reader);
      (void)DepSpec::decode(reader);
      (void)VectorClock::decode(reader);
      (void)reader.str();
      (void)reader.blob();
    } catch (const InvalidArgument&) {
      // expected failure mode (SerdeError derives from InvalidArgument)
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace cbc
