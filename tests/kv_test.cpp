// Unit tests for the sharded KV service's building blocks: the KvStore
// state machine and its derived commutativity classes, the shard map and
// layout parsing, the client wire protocol with its §5.2 context token,
// and — the heart of the subsystem — KvService's context rule: a request
// whose token this shard's frontier does not cover yet is parked and
// served only after the frontier catches up; past its deadline it is
// refused (kRetry), never served stale.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/install.h"
#include "apps/kv_store.h"
#include "common/sim_env.h"
#include "kv/kv_service.h"
#include "kv/shard_map.h"
#include "kv/wire.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "replica/replica_group.h"
#include "util/serde.h"

namespace cbc {
namespace {

using testkit::SimEnv;

/// The catalog's derived commutativity table for the "kv" object — what
/// every cbc_kv replica actually runs with.
CommutativitySpec derived_kv_spec() {
  apps::install_objects();
  const auto entry = object::Catalog::instance().find("kv");
  require(entry.has_value(), "catalog is missing 'kv'");
  return object::derive_commutativity(entry->spec());
}

// ---------- KvStore state machine ----------

TEST(KvStore, PutGetFenceSemantics) {
  apps::KvStore store;
  {
    const auto op = apps::KvStore::put("alpha", "1");
    Reader args(op.args);
    EXPECT_TRUE(store.apply("put", args).empty());
  }
  {
    const auto op = apps::KvStore::get("alpha");
    Reader args(op.args);
    const std::vector<std::uint8_t> bytes = store.apply("get", args);
    Reader response(bytes);
    EXPECT_TRUE(response.boolean());
    EXPECT_EQ(response.str(), "1");
  }
  {
    const auto op = apps::KvStore::get("missing");
    Reader args(op.args);
    const std::vector<std::uint8_t> bytes = store.apply("get", args);
    Reader response(bytes);
    EXPECT_FALSE(response.boolean());
    EXPECT_EQ(response.str(), "");
  }
  EXPECT_EQ(store.lookup("alpha"), "1");
  EXPECT_EQ(store.lookup("missing"), std::nullopt);
  // Fence observes but never mutates: same digest twice, state unchanged.
  const auto fence = apps::KvStore::fence();
  Reader args1(fence.args);
  const std::vector<std::uint8_t> first_bytes = store.apply("fence", args1);
  Reader args2(fence.args);
  const std::vector<std::uint8_t> second_bytes = store.apply("fence", args2);
  EXPECT_EQ(Reader(first_bytes).u64(), Reader(second_bytes).u64());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, FenceDigestIsBucketScoped) {
  // A fence over bucket b of N digests ONLY the keys hashing into b: a
  // put landing in another bucket must not change this bucket's digest —
  // that independence is what lets each shard fence its own sub-map and
  // still replay identically in a merged multi-shard history.
  const std::uint64_t buckets = 4;
  apps::KvStore store;
  std::map<std::uint64_t, std::uint64_t> before;
  for (std::uint64_t b = 0; b < buckets; ++b) {
    const auto op = apps::KvStore::fence(b, buckets);
    Reader args(op.args);
    const std::vector<std::uint8_t> bytes = store.apply("fence", args);
    before[b] = Reader(bytes).u64();
  }
  // Find the bucket "probe" hashes into by checking which digest moves.
  {
    const auto op = apps::KvStore::put("probe", "x");
    Reader args(op.args);
    store.apply("put", args);
  }
  std::size_t changed = 0;
  for (std::uint64_t b = 0; b < buckets; ++b) {
    const auto op = apps::KvStore::fence(b, buckets);
    Reader args(op.args);
    const std::vector<std::uint8_t> bytes = store.apply("fence", args);
    if (Reader(bytes).u64() != before[b]) {
      ++changed;
    }
  }
  EXPECT_EQ(changed, 1u);
}

TEST(KvStore, EqualityIgnoresBookkeepingAndSnapshotRoundTrips) {
  apps::KvStore a;
  apps::KvStore b;
  {
    const auto op = apps::KvStore::put("k", "v");
    Reader args(op.args);
    a.apply("put", args);
  }
  {
    // Same entries via a different op sequence: equal states.
    const auto put = apps::KvStore::put("k", "v");
    Reader args(put.args);
    b.apply("put", args);
    const auto get = apps::KvStore::get("k");
    Reader get_args(get.args);
    b.apply("get", get_args);
  }
  EXPECT_EQ(a, b);
  EXPECT_NE(a.ops_applied(), b.ops_applied());
  Writer writer;
  a.encode(writer);
  const std::vector<std::uint8_t> bytes = writer.take();
  Reader reader(bytes);
  const apps::KvStore decoded = apps::KvStore::decode(reader);
  EXPECT_EQ(decoded, a);
}

TEST(KvStore, DerivedClassesPutNopCommutativeGetFenceSync) {
  // The derived table is the §6.1 split the whole service relies on:
  // puts (distinct keys) and nops relax, gets and fences close activities.
  const CommutativitySpec spec = derived_kv_spec();
  EXPECT_TRUE(spec.is_commutative("put"));
  EXPECT_TRUE(spec.is_commutative("nop"));
  EXPECT_FALSE(spec.is_commutative("get"));
  EXPECT_FALSE(spec.is_commutative("fence"));
}

// ---------- ShardMap / KvLayout ----------

TEST(ShardMap, DeterministicAndInRange) {
  const kv::ShardMap map(4);
  std::map<std::size_t, std::size_t> histogram;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "session" + std::to_string(i);
    const std::size_t shard = map.shard_of(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, kv::ShardMap(4).shard_of(key));  // stable across maps
    histogram[shard] += 1;
  }
  // FNV-1a over 64 distinct keys must not collapse to one shard.
  EXPECT_GT(histogram.size(), 1u);
  const kv::ShardMap single(1);
  EXPECT_EQ(single.shard_of("anything"), 0u);
}

TEST(KvLayout, EncodeParseRoundTripAndConfigShape) {
  const kv::KvLayout layout = kv::KvLayout::localhost(
      2, 2, {9000, 9001, 9002, 9100, 9101, 9102});
  const kv::KvLayout reparsed = kv::KvLayout::parse(layout.encode_text());
  EXPECT_EQ(reparsed.shards, 2u);
  EXPECT_EQ(reparsed.replicas, 2u);
  ASSERT_EQ(reparsed.addresses.size(), 2u);
  ASSERT_EQ(reparsed.addresses[0].size(), 3u);  // replicas + router slot
  EXPECT_EQ(reparsed.addresses[1][2].port, 9102);
  EXPECT_EQ(reparsed.router_slot(), 2u);
  // Each shard's ClusterConfig covers ranks 0..replicas (router last).
  const net::ClusterConfig config = reparsed.shard_config(1);
  EXPECT_EQ(config.size(), 3u);
}

TEST(KvLayout, MalformedLayoutsNameTheProblem) {
  EXPECT_THROW((void)kv::KvLayout::parse("shards 2\nreplicas 1\n"),
               InvalidArgument);  // no member lines at all
  EXPECT_THROW((void)kv::KvLayout::parse(
                   "shards 1\nreplicas 1\n"
                   "member 0 0 127.0.0.1:9000\n"),
               InvalidArgument);  // missing the router slot (rank 1)
  EXPECT_THROW((void)kv::KvLayout::parse(
                   "shards 1\nreplicas 1\n"
                   "member 0 0 127.0.0.1:9000\n"
                   "member 0 1 not-an-address\n"),
               InvalidArgument);
  EXPECT_THROW((void)kv::KvLayout::parse(
                   "replicas 1\n"
                   "member 0 0 127.0.0.1:9000\n"
                   "member 0 1 127.0.0.1:9001\n"),
               InvalidArgument);  // shard count missing
}

// ---------- Context token ----------

TEST(ContextToken, CoversIsPointwiseAndMergeIsMax) {
  kv::ShardFrontier have;
  have.seqs = {3, 1, 4};
  kv::ShardFrontier want;
  want.seqs = {2, 1, 4};
  EXPECT_TRUE(have.covers(want));
  want.seqs[1] = 2;
  EXPECT_FALSE(have.covers(want));
  have.merge(want);
  EXPECT_EQ(have.seqs, (std::vector<std::uint64_t>{3, 2, 4}));
  EXPECT_TRUE(have.covers(want));

  kv::ContextToken a = kv::ContextToken::zero(2, 3);
  kv::ContextToken b = kv::ContextToken::zero(2, 3);
  b.shards[1].seqs = {0, 5, 0};
  a.merge(b);
  EXPECT_EQ(a.shards[1].seqs[1], 5u);
  EXPECT_EQ(a.shards[0], kv::ShardFrontier({{0, 0, 0}}));
  a.merge_shard(0, kv::ShardFrontier{{7, 0, 0}});
  EXPECT_EQ(a.shards[0].seqs[0], 7u);
}

TEST(KvWire, AllMessageKindsRoundTrip) {
  const kv::MapRequest map_request{.nonce = 99};
  const auto parsed_map_request =
      kv::parse_map_request(kv::encode_map_request(map_request));
  ASSERT_TRUE(parsed_map_request.has_value());
  EXPECT_EQ(parsed_map_request->nonce, 99u);

  const kv::MapResponse map_response{
      .nonce = 99, .shards = 4, .replicas = 3, .shard = 2, .rank = 1};
  const auto parsed_map_response =
      kv::parse_map_response(kv::encode_map_response(map_response));
  ASSERT_TRUE(parsed_map_response.has_value());
  EXPECT_EQ(parsed_map_response->shards, 4u);
  EXPECT_EQ(parsed_map_response->rank, 1u);

  kv::OpRequest request;
  request.type = kv::MsgType::kGet;
  request.session = 2;
  request.request = 5;
  request.key = "k";
  request.token = kv::ContextToken::zero(1, 2);
  request.token.shards[0].seqs = {4, 2};
  const auto parsed_request =
      kv::parse_op_request(kv::encode_op_request(request));
  ASSERT_TRUE(parsed_request.has_value());
  EXPECT_EQ(parsed_request->type, kv::MsgType::kGet);
  EXPECT_EQ(parsed_request->token, request.token);

  kv::OpResponse response;
  response.session = 2;
  response.request = 5;
  response.status = kv::Status::kRetry;
  response.shard = 3;
  response.frontier.seqs = {8, 8};
  const auto parsed_response =
      kv::parse_op_response(kv::encode_op_response(response));
  ASSERT_TRUE(parsed_response.has_value());
  EXPECT_EQ(parsed_response->status, kv::Status::kRetry);
  EXPECT_EQ(parsed_response->frontier, response.frontier);
}

// ---------- KvService context rule ----------

/// One simulated 2-replica shard with a KvService at rank 0: requests go
/// in through handle(), replies come out into `replies`, time is a
/// manually advanced microsecond counter, and deliveries are announced
/// exactly the way cbc_kv does (after env.run() settles the group).
struct ServiceFixture {
  explicit ServiceFixture(std::int64_t wait_timeout_us = 50'000)
      : group(env.transport, 2, derived_kv_spec(), replica_options()) {
    kv::KvService::Options options;
    options.shard = 0;
    options.shards = 2;
    options.replicas = 2;
    options.rank = 0;
    options.wait_timeout_us = wait_timeout_us;
    options.record_get = [this](check::HistoryOp op) {
      recorded_gets.push_back(std::move(op));
    };
    service = std::make_unique<kv::KvService>(
        group.node(0),
        [this](NodeId to, std::vector<std::uint8_t> bytes) {
          replies.emplace_back(to, std::move(bytes));
        },
        [this] { return now_us; }, options);
  }

  static ReplicaNode<object::Value>::Options replica_options() {
    // Runs before derived_kv_spec() when the ctor arguments evaluate
    // right-to-left, so the catalog install cannot be left to it.
    apps::install_objects();
    ReplicaNode<object::Value>::Options options;
    options.front_end.fifo_chain = true;
    options.initial =
        object::Value(object::Catalog::instance().find("kv")->make());
    return options;
  }

  /// Sends one op request to the service as client node 1 (any NodeId
  /// works — the reply path is captured, not routed).
  void send(const kv::OpRequest& request) {
    const std::vector<std::uint8_t> bytes = kv::encode_op_request(request);
    service->handle(1, bytes);
  }

  [[nodiscard]] kv::OpResponse last_reply() const {
    require(!replies.empty(), "no reply captured");
    const auto parsed = kv::parse_op_response(replies.back().second);
    require(parsed.has_value(), "reply did not parse");
    return *parsed;
  }

  SimEnv env;
  ReplicaGroup<object::Value> group;
  std::unique_ptr<kv::KvService> service;
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> replies;
  std::vector<check::HistoryOp> recorded_gets;
  std::int64_t now_us = 0;
};

kv::OpRequest get_request(std::string key, kv::ContextToken token,
                          std::uint64_t request_id = 1) {
  kv::OpRequest request;
  request.type = kv::MsgType::kGet;
  request.session = 7;
  request.request = request_id;
  request.key = std::move(key);
  request.token = std::move(token);
  return request;
}

TEST(KvService, CoveredRequestsServeImmediately) {
  ServiceFixture fx;
  kv::OpRequest put;
  put.type = kv::MsgType::kPut;
  put.session = 7;
  put.request = 1;
  put.key = "k";
  put.value = "v";
  put.token = kv::ContextToken::zero(2, 2);
  fx.send(put);
  ASSERT_EQ(fx.replies.size(), 1u);
  const kv::OpResponse put_reply = fx.last_reply();
  EXPECT_EQ(put_reply.status, kv::Status::kOk);
  // The response frontier covers the put itself (local delivery is
  // synchronous): an immediate same-session read-your-write is covered.
  EXPECT_GE(put_reply.frontier.seqs[0], 1u);
  kv::ContextToken token = kv::ContextToken::zero(2, 2);
  token.merge_shard(0, put_reply.frontier);
  fx.send(get_request("k", token, 2));
  ASSERT_EQ(fx.replies.size(), 2u);
  const kv::OpResponse get_reply = fx.last_reply();
  EXPECT_EQ(get_reply.status, kv::Status::kOk);
  EXPECT_TRUE(get_reply.present);
  EXPECT_EQ(get_reply.value, "v");
  EXPECT_EQ(fx.service->stats().context_waits, 0u);
  // The served get was recorded with its same-shard context deps.
  ASSERT_EQ(fx.recorded_gets.size(), 1u);
  EXPECT_FALSE(fx.recorded_gets[0].deps.empty());
  EXPECT_GE(fx.recorded_gets[0].origin, kv::kGetOriginBase);
}

TEST(KvService, StaleReadParksUntilTheFrontierCoversIt) {
  ServiceFixture fx;
  // The session's token says replica 1 of this shard delivered one op —
  // observed through ANOTHER session (cross-shard adoption); this replica
  // has seen nothing yet, so the read must wait, not serve stale.
  kv::ContextToken token = kv::ContextToken::zero(2, 2);
  token.shards[0].seqs = {0, 1};
  fx.send(get_request("k", token));
  EXPECT_EQ(fx.replies.size(), 0u);
  EXPECT_EQ(fx.service->parked(), 1u);
  EXPECT_EQ(fx.service->stats().context_waits, 1u);
  // Replica 1 broadcasts the put the token promised; once it reaches this
  // replica, on_delivery() wakes the parked read — which now observes it.
  fx.group.node(1).submit(apps::KvStore::put("k", "fresh"));
  fx.env.run();
  fx.service->on_delivery();
  ASSERT_EQ(fx.replies.size(), 1u);
  const kv::OpResponse reply = fx.last_reply();
  EXPECT_EQ(reply.status, kv::Status::kOk);
  EXPECT_TRUE(reply.present);
  EXPECT_EQ(reply.value, "fresh");
  EXPECT_EQ(fx.service->parked(), 0u);
  EXPECT_EQ(fx.service->stats().context_timeouts, 0u);
}

TEST(KvService, ExpiredParkIsRefusedNeverServed) {
  ServiceFixture fx(/*wait_timeout_us=*/1000);
  kv::ContextToken token = kv::ContextToken::zero(2, 2);
  token.shards[0].seqs = {0, 5};  // a frontier this shard may never reach
  fx.send(get_request("k", token));
  EXPECT_EQ(fx.service->parked(), 1u);
  // Before the deadline, poll() keeps it parked.
  fx.now_us = 999;
  fx.service->poll();
  EXPECT_EQ(fx.service->parked(), 1u);
  EXPECT_TRUE(fx.replies.empty());
  // Past the deadline: kRetry, not a stale value — and nothing recorded.
  fx.now_us = 2000;
  fx.service->poll();
  EXPECT_EQ(fx.service->parked(), 0u);
  ASSERT_EQ(fx.replies.size(), 1u);
  EXPECT_EQ(fx.last_reply().status, kv::Status::kRetry);
  EXPECT_EQ(fx.service->stats().context_timeouts, 1u);
  EXPECT_TRUE(fx.recorded_gets.empty());
  EXPECT_EQ(fx.service->stats().gets, 0u);
}

TEST(KvService, TokensAboutOtherShardsNeverBlockThisShard) {
  // §5.2: no causal metadata crosses shards. A token demanding an
  // arbitrarily advanced frontier on ANOTHER shard is this shard's
  // business only through its own entry — the request serves immediately.
  ServiceFixture fx;
  kv::ContextToken token = kv::ContextToken::zero(2, 2);
  token.shards[1].seqs = {1000, 1000};
  fx.send(get_request("k", token));
  ASSERT_EQ(fx.replies.size(), 1u);
  EXPECT_EQ(fx.last_reply().status, kv::Status::kOk);
  EXPECT_FALSE(fx.last_reply().present);
  EXPECT_EQ(fx.service->stats().context_waits, 0u);
}

TEST(KvService, MalformedAndClientBoundPayloadsAreCountedNotFatal) {
  ServiceFixture fx;
  fx.service->handle(1, std::vector<std::uint8_t>{});
  fx.service->handle(1, std::vector<std::uint8_t>{0xFF, 0x00});
  // A response type on the server socket is malformed by direction.
  fx.service->handle(1, kv::encode_op_response(kv::OpResponse{}));
  EXPECT_EQ(fx.service->stats().malformed, 3u);
  EXPECT_TRUE(fx.replies.empty());
  // Map exchange still answers with this replica's identity afterwards.
  fx.service->handle(1, kv::encode_map_request({.nonce = 5}));
  ASSERT_EQ(fx.replies.size(), 1u);
  const auto parsed = kv::parse_map_response(fx.replies.back().second);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->nonce, 5u);
  EXPECT_EQ(parsed->shards, 2u);
  EXPECT_EQ(parsed->replicas, 2u);
}

TEST(KvService, ShutdownWaitsForItsTokenToo) {
  ServiceFixture fx;
  kv::OpRequest shutdown;
  shutdown.type = kv::MsgType::kShutdown;
  shutdown.session = 7;
  shutdown.request = 1;
  shutdown.token = kv::ContextToken::zero(2, 2);
  shutdown.token.shards[0].seqs = {0, 1};
  fx.send(shutdown);
  // Context-consistent shutdown: the drain flag must not raise before
  // every op the session observed has been delivered here.
  EXPECT_FALSE(fx.service->drain_requested());
  EXPECT_EQ(fx.service->parked(), 1u);
  fx.group.node(1).submit(apps::KvStore::put("k", "v"));
  fx.env.run();
  fx.service->on_delivery();
  EXPECT_TRUE(fx.service->drain_requested());
  ASSERT_EQ(fx.replies.size(), 1u);
  EXPECT_EQ(fx.last_reply().status, kv::Status::kOk);
}

}  // namespace
}  // namespace cbc
