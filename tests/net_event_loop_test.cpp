// TimerWheel and EventLoop unit tests. The loop tests run on both
// backends (epoll and poll) via a bool parameter — identical observable
// behavior is part of the EventLoop contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "net/event_loop.h"
#include "net/timer_wheel.h"
#include "util/ensure.h"

namespace cbc::net {
namespace {

// ---------- TimerWheel ----------

TEST(TimerWheel, FiresInDeadlineOrderWithSubmissionTiebreak) {
  TimerWheel wheel({.granularity_us = 100, .slot_count = 8});
  std::vector<int> fired;
  wheel.schedule_at(500, [&] { fired.push_back(1); });
  wheel.schedule_at(200, [&] { fired.push_back(2); });
  wheel.schedule_at(500, [&] { fired.push_back(3); });  // same due as #1
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_EQ(wheel.advance(1000), 3u);
  // Due order first; equal deadlines fire in submission order.
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, LaterRevolutionEntriesDoNotFireEarly) {
  // slot_count * granularity = 800us per revolution; an entry 3 revolutions
  // out hashes into an early slot but must wait for its real deadline.
  TimerWheel wheel({.granularity_us = 100, .slot_count = 8});
  int fired = 0;
  wheel.schedule_at(2500, [&] { fired += 1; });
  EXPECT_EQ(wheel.advance(800), 0u);
  EXPECT_EQ(wheel.advance(1600), 0u);
  EXPECT_EQ(wheel.advance(2400), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance(2500), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, AdvanceAcrossManyRevolutionsFiresEverything) {
  TimerWheel wheel({.granularity_us = 10, .slot_count = 4});
  std::vector<int> fired;
  for (int i = 0; i < 50; ++i) {
    wheel.schedule_at(i * 37, [&fired, i] { fired.push_back(i); });
  }
  // One giant jump far past every deadline: every entry fires, in order.
  EXPECT_EQ(wheel.advance(1'000'000), 50u);
  ASSERT_EQ(fired.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(TimerWheel, NextDueHintNeverLaterThanTrueDeadline) {
  TimerWheel wheel({.granularity_us = 100, .slot_count = 8});
  EXPECT_FALSE(wheel.next_due_hint().has_value());
  wheel.schedule_at(950, [] {});
  const auto hint = wheel.next_due_hint();
  ASSERT_TRUE(hint.has_value());
  // The hint may be conservative (early) but must never overshoot — an
  // overshoot would make the loop sleep past a due timer.
  EXPECT_LE(*hint, 950);
  EXPECT_EQ(wheel.advance(*hint), *hint >= 950 ? 1u : 0u);
}

TEST(TimerWheel, ScheduledDuringFireRunsOnNextAdvance) {
  TimerWheel wheel({.granularity_us = 100, .slot_count = 8});
  int chained = 0;
  wheel.schedule_at(100, [&] {
    wheel.schedule_at(200, [&] { chained += 1; });
  });
  wheel.advance(100);
  EXPECT_EQ(chained, 0);
  wheel.advance(200);
  EXPECT_EQ(chained, 1);
}

// ---------- EventLoop (both backends) ----------

class EventLoopTest : public ::testing::TestWithParam<bool> {
 protected:
  EventLoop::Options options() const {
    return {.force_poll = GetParam(), .wheel = {}};
  }
};

TEST_P(EventLoopTest, BackendMatchesRequest) {
  EventLoop loop(options());
  if (GetParam()) {
    EXPECT_FALSE(loop.uses_epoll());
  }
  // Without force_poll the backend is epoll where available (Linux CI);
  // either way the rest of this suite must pass identically.
}

TEST_P(EventLoopTest, PostedTaskRunsAndStopExits) {
  EventLoop loop(options());
  bool ran = false;
  loop.post([&] {
    ran = true;
    loop.stop();
  });
  loop.run();  // returns only because the posted task stopped it
  EXPECT_TRUE(ran);
}

TEST_P(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop(options());
  std::vector<int> fired;
  loop.schedule(20'000, [&] {
    fired.push_back(2);
    loop.stop();
  });
  loop.schedule(5'000, [&] { fired.push_back(1); });
  const auto start = std::chrono::steady_clock::now();
  loop.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  // 20ms timer actually waited (generous lower bound for CI jitter).
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            15'000);
}

TEST_P(EventLoopTest, CrossThreadPostAndScheduleAreDelivered) {
  EventLoop loop(options());
  std::atomic<int> count{0};
  std::thread producer;
  loop.post([&] {
    // Spawn the producer once the loop is live; it posts from off-thread.
    producer = std::thread([&] {
      for (int i = 0; i < 100; ++i) {
        loop.post([&] { count.fetch_add(1); });
      }
      loop.schedule(1'000, [&] {
        count.fetch_add(1);
        loop.stop();
      });
    });
  });
  loop.run();
  producer.join();
  EXPECT_EQ(count.load(), 101);
}

TEST_P(EventLoopTest, FdReadabilityDispatchesHandler) {
  EventLoop loop(options());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::vector<char> got;
  loop.add_fd(fds[0], [&] {
    char byte = 0;
    while (::read(fds[0], &byte, 1) == 1) {
      got.push_back(byte);
    }
    if (got.size() >= 3) {
      loop.stop();
    }
  });
  loop.post([&] {
    ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  });
  loop.run();
  EXPECT_EQ(got, (std::vector<char>{'a', 'b', 'c'}));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventLoopTest, RemoveFdStopsDispatch) {
  EventLoop loop(options());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int dispatched = 0;
  loop.add_fd(fds[0], [&] {
    dispatched += 1;
    char buffer[16];
    while (::read(fds[0], buffer, sizeof(buffer)) > 0) {
    }
    // Remove ourselves mid-dispatch — must be safe (tombstone, not erase).
    loop.remove_fd(fds[0]);
  });
  loop.post([&] { ASSERT_EQ(::write(fds[1], "x", 1), 1); });
  // Second write after removal must not dispatch; a timer ends the test.
  loop.schedule(10'000, [&] { ASSERT_EQ(::write(fds[1], "y", 1), 1); });
  loop.schedule(40'000, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(dispatched, 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventLoopTest, NowUsAdvancesMonotonically) {
  EventLoop loop(options());
  const SimTime a = loop.now_us();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const SimTime b = loop.now_us();
  EXPECT_GE(b - a, 1'000);
}

TEST_P(EventLoopTest, InLoopThreadIsAccurate) {
  EventLoop loop(options());
  EXPECT_FALSE(loop.in_loop_thread());
  bool inside = false;
  loop.post([&] {
    inside = loop.in_loop_thread();
    loop.stop();
  });
  loop.run();
  EXPECT_TRUE(inside);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "epoll";
                         });

}  // namespace
}  // namespace cbc::net
