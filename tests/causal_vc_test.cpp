// Tests for VcCausalMember (BSS CBCAST) and its contrast with OSend.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "causal/osend.h"
#include "causal/vc_causal.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

std::vector<std::uint8_t> bytes(std::uint8_t v) { return {v}; }

TEST(VcCausal, SelfDeliveryImmediate) {
  SimEnv env;
  Group<VcCausalMember> group(env.transport, 3);
  group[0].broadcast("m", bytes(1), DepSpec::none());
  EXPECT_EQ(group[0].log().size(), 1u);
  env.run();
  EXPECT_EQ(group[1].log().size(), 1u);
  EXPECT_EQ(group[2].log().size(), 1u);
}

TEST(VcCausal, FifoPerSenderEnforced) {
  // Same-sender messages are causally ordered by definition under CBCAST;
  // jitter that swaps them on the wire must be masked.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 5000;
    config.seed = seed;
    SimEnv env(config);
    Group<VcCausalMember> group(env.transport, 2);
    const MessageId a = group[0].broadcast("a", bytes(1), DepSpec::none());
    const MessageId b = group[0].broadcast("b", bytes(2), DepSpec::none());
    env.run();
    const auto ids = delivered_ids(group[1].log());
    ASSERT_EQ(ids.size(), 2u) << "seed " << seed;
    EXPECT_EQ(ids[0], a) << "seed " << seed;
    EXPECT_EQ(ids[1], b) << "seed " << seed;
  }
}

TEST(VcCausal, CrossSenderCausalityEnforced) {
  // Node 1 broadcasts only after delivering node 0's message; every member
  // must see them in that order, for every seed.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 5000;
    config.seed = seed;
    SimEnv env(config);
    const GroupView view = testkit::make_view(3);
    std::vector<std::unique_ptr<VcCausalMember>> members;
    MessageId cause{};
    bool reacted = false;
    for (std::size_t i = 0; i < 3; ++i) {
      members.push_back(std::make_unique<VcCausalMember>(
          env.transport, view, [](const Delivery&) {}));
    }
    // React to the delivery by broadcasting from node 1 the moment node
    // 1 delivers node 0's message (callback can't be replaced after
    // construction, so poll via a scheduled probe instead).
    cause = members[0]->broadcast("cause", bytes(1), DepSpec::none());
    std::function<void()> probe = [&] {
      if (!reacted && !members[1]->log().empty()) {
        reacted = true;
        members[1]->broadcast("effect", bytes(2), DepSpec::none());
        return;
      }
      if (!reacted) {
        env.scheduler.after(100, probe);
      }
    };
    env.scheduler.after(100, probe);
    env.run();
    ASSERT_TRUE(reacted) << "seed " << seed;
    for (std::size_t i = 0; i < 3; ++i) {
      const auto labels = delivered_labels(members[i]->log());
      const auto cause_pos = std::find(labels.begin(), labels.end(), "cause");
      const auto effect_pos = std::find(labels.begin(), labels.end(), "effect");
      ASSERT_NE(cause_pos, labels.end());
      ASSERT_NE(effect_pos, labels.end());
      EXPECT_LT(cause_pos - labels.begin(), effect_pos - labels.begin())
          << "member " << i << " seed " << seed;
    }
  }
}

TEST(VcCausal, ConcurrentBroadcastsMayDeliverInDifferentOrders) {
  // Find a seed where two concurrent messages are delivered in different
  // orders at different members — causal order deliberately permits this.
  bool divergence_seen = false;
  for (std::uint64_t seed = 1; seed <= 40 && !divergence_seen; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 4000;
    config.seed = seed;
    SimEnv env(config);
    Group<VcCausalMember> group(env.transport, 4);
    group[0].broadcast("x", bytes(1), DepSpec::none());
    group[1].broadcast("y", bytes(2), DepSpec::none());
    env.run();
    std::vector<std::vector<std::string>> orders;
    for (std::size_t i = 2; i < 4; ++i) {
      orders.push_back(delivered_labels(group[i].log()));
    }
    divergence_seen = orders[0] != orders[1];
  }
  EXPECT_TRUE(divergence_seen);
}

TEST(VcCausal, AllMembersDeliverEverythingExactlyOnce) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 77;
  SimEnv env(config);
  Group<VcCausalMember> group(env.transport, 5);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 5; ++i) {
      group[i].broadcast("r" + std::to_string(round), bytes(0),
                         DepSpec::none());
    }
    env.run_until(env.scheduler.now() + 2000);
  }
  env.run();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(group[i].log().size(), 50u);
    EXPECT_EQ(group[i].holdback_depth(), 0u);
  }
  EXPECT_TRUE(group.all_delivered_same_set());
}

TEST(VcCausal, DeliveryOrderRespectsVectorClockOrder) {
  // Property: for any two deliveries at a member, if the VC of one
  // happens-before the other, the delivery order agrees. Reconstructed
  // clocks: we use sent_at chains via a deterministic workload instead —
  // simpler: same-sender seq must be increasing in each member's log.
  SimEnv::Config config;
  config.jitter_us = 6000;
  config.seed = 5;
  SimEnv env(config);
  Group<VcCausalMember> group(env.transport, 4);
  Rng rng(42);
  for (int k = 0; k < 40; ++k) {
    group[rng.next_below(4)].broadcast("m", bytes(0), DepSpec::none());
    env.run_until(env.scheduler.now() + static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  for (std::size_t i = 0; i < 4; ++i) {
    std::map<NodeId, SeqNo> last_seq;
    for (const Delivery& delivery : group[i].log()) {
      EXPECT_GT(delivery.id.seq, last_seq[delivery.sender]);
      last_seq[delivery.sender] = delivery.id.seq;
    }
  }
}

TEST(VcCausalVsOSend, ExplicitDepsAvoidFifoHoldbacks) {
  // The same workload — one sender emitting independent messages under
  // jitter — run under both disciplines. CBCAST must hold back swapped
  // arrivals (FIFO is potential causality); OSend with empty deps never
  // holds anything back. This is the paper's core asynchronism argument.
  std::uint64_t vc_holdbacks = 0;
  std::uint64_t osend_holdbacks = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 8000;
    config.seed = seed;
    {
      SimEnv env(config);
      Group<VcCausalMember> group(env.transport, 3);
      for (int k = 0; k < 20; ++k) {
        group[0].broadcast("m", bytes(0), DepSpec::none());
      }
      env.run();
      for (std::size_t i = 0; i < 3; ++i) {
        vc_holdbacks += group[i].stats().held_back;
      }
    }
    {
      SimEnv env(config);
      Group<OSendMember> group(env.transport, 3);
      for (int k = 0; k < 20; ++k) {
        group[0].osend("m", bytes(0), DepSpec::none());
      }
      env.run();
      for (std::size_t i = 0; i < 3; ++i) {
        osend_holdbacks += group[i].stats().held_back;
      }
    }
  }
  EXPECT_EQ(osend_holdbacks, 0u);
  EXPECT_GT(vc_holdbacks, 0u);
}

}  // namespace
}  // namespace cbc
