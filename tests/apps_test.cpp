// Tests for the application state machines in src/apps.
#include <gtest/gtest.h>

#include "apps/card_game.h"
#include "apps/counter.h"
#include "apps/document.h"
#include "apps/registry.h"
#include "util/ensure.h"

namespace cbc::apps {
namespace {

Reader reader_of(const std::vector<std::uint8_t>& bytes) {
  return Reader(bytes);
}

// ---------- Counter ----------

TEST(Counter, IncDecSetRd) {
  Counter counter;
  auto op = Counter::inc(5);
  Reader r1 = reader_of(op.args);
  counter.apply(op.kind, r1);
  EXPECT_EQ(counter.value(), 5);

  op = Counter::dec(2);
  Reader r2 = reader_of(op.args);
  counter.apply(op.kind, r2);
  EXPECT_EQ(counter.value(), 3);

  op = Counter::set(100);
  Reader r3 = reader_of(op.args);
  counter.apply(op.kind, r3);
  EXPECT_EQ(counter.value(), 100);

  op = Counter::rd();
  Reader r4 = reader_of(op.args);
  counter.apply(op.kind, r4);
  EXPECT_EQ(counter.value(), 100);  // read is a no-op on state
  EXPECT_EQ(counter.ops_applied(), 4u);
}

TEST(Counter, EqualityIgnoresOpCount) {
  Counter a;
  Counter b;
  auto inc = Counter::inc(1);
  Reader r1 = reader_of(inc.args);
  a.apply(inc.kind, r1);
  auto dec = Counter::dec(1);
  Reader r2 = reader_of(dec.args);
  a.apply(dec.kind, r2);
  EXPECT_EQ(a, b);  // both value 0, despite different op counts
}

TEST(Counter, UnknownOpRejected) {
  Counter counter;
  Reader reader(std::span<const std::uint8_t>{});
  EXPECT_THROW(counter.apply("frobnicate", reader), InvalidArgument);
}

TEST(Counter, SpecClassifiesOps) {
  const CommutativitySpec spec = Counter::spec();
  EXPECT_TRUE(spec.is_commutative("inc#1"));
  EXPECT_TRUE(spec.is_commutative("dec#2"));
  EXPECT_FALSE(spec.is_commutative("rd#1"));
  EXPECT_FALSE(spec.is_commutative("set#1"));
  EXPECT_TRUE(spec.commute("rd#1", "rd#2"));  // explicit pair
}

// ---------- Registry ----------

TEST(Registry, UpdateAndLookup) {
  Registry registry;
  auto op = Registry::upd("printer", "host-a:631");
  Reader r1 = reader_of(op.args);
  registry.apply(op.kind, r1);
  EXPECT_EQ(registry.lookup("printer"), "host-a:631");
  EXPECT_EQ(registry.lookup("missing"), std::nullopt);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.update_count("printer"), 1u);
}

TEST(Registry, LastUpdateWins) {
  Registry registry;
  for (const char* value : {"v1", "v2", "v3"}) {
    auto op = Registry::upd("svc", value);
    Reader reader = reader_of(op.args);
    registry.apply(op.kind, reader);
  }
  EXPECT_EQ(registry.lookup("svc"), "v3");
  EXPECT_EQ(registry.update_count("svc"), 3u);
}

TEST(Registry, QueryIsStateless) {
  Registry registry;
  auto op = Registry::qry("svc");
  Reader reader = reader_of(op.args);
  registry.apply(op.kind, reader);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, SpecMarksQryCommutative) {
  const CommutativitySpec spec = Registry::spec();
  EXPECT_TRUE(spec.is_commutative("qry#1"));
  EXPECT_FALSE(spec.is_commutative("upd#1"));
}

TEST(Registry, EqualityOnBindings) {
  Registry a;
  Registry b;
  auto op = Registry::upd("x", "1");
  Reader r1 = reader_of(op.args);
  a.apply(op.kind, r1);
  EXPECT_FALSE(a == b);
  Reader r2 = reader_of(op.args);
  b.apply(op.kind, r2);
  EXPECT_TRUE(a == b);
}

// ---------- Document ----------

TEST(Document, AnnotationsAccumulateAsSet) {
  Document doc;
  for (const char* remark : {"typo in fig", "cite X", "typo in fig"}) {
    auto op = Document::annotate("intro", remark);
    Reader reader = reader_of(op.args);
    doc.apply(op.kind, reader);
  }
  EXPECT_EQ(doc.annotations("intro").size(), 2u);  // set semantics
  EXPECT_TRUE(doc.annotations("intro").count("cite X"));
  EXPECT_TRUE(doc.annotations("unknown").empty());
}

TEST(Document, AnnotationOrderIrrelevant) {
  Document a;
  Document b;
  auto op1 = Document::annotate("s", "r1");
  auto op2 = Document::annotate("s", "r2");
  {
    Reader r = reader_of(op1.args);
    a.apply(op1.kind, r);
  }
  {
    Reader r = reader_of(op2.args);
    a.apply(op2.kind, r);
  }
  {
    Reader r = reader_of(op2.args);
    b.apply(op2.kind, r);
  }
  {
    Reader r = reader_of(op1.args);
    b.apply(op1.kind, r);
  }
  EXPECT_EQ(a, b);  // the formal commutativity the protocol relies on
}

TEST(Document, RewriteAndPublish) {
  Document doc;
  auto rewrite = Document::rewrite("intro", "new text");
  Reader r1 = reader_of(rewrite.args);
  doc.apply(rewrite.kind, r1);
  EXPECT_EQ(doc.body("intro"), "new text");
  EXPECT_EQ(doc.body("other"), "");
  auto publish = Document::publish();
  Reader r2 = reader_of(publish.args);
  doc.apply(publish.kind, r2);
  EXPECT_EQ(doc.publish_count(), 1u);
}

TEST(Document, SpecMarksAnnotateCommutative) {
  const CommutativitySpec spec = Document::spec();
  EXPECT_TRUE(spec.is_commutative("annotate#1"));
  EXPECT_FALSE(spec.is_commutative("rewrite#1"));
  EXPECT_FALSE(spec.is_commutative("publish#1"));
}

// ---------- CardGame ----------

TEST(CardGame, PlaysRecordedPerTurnAndPlayer) {
  CardGame game;
  auto op = CardGame::card(1, 2, 77);
  Reader r1 = reader_of(op.args);
  game.apply(op.kind, r1);
  EXPECT_EQ(game.card_at(1, 2), 77);
  EXPECT_EQ(game.card_at(1, 0), -1);
  EXPECT_EQ(game.plays(), 1u);
}

TEST(CardGame, ConcurrentPlaysCommute) {
  CardGame a;
  CardGame b;
  auto p1 = CardGame::card(0, 0, 10);
  auto p2 = CardGame::card(0, 1, 20);
  {
    Reader r = reader_of(p1.args);
    a.apply(p1.kind, r);
  }
  {
    Reader r = reader_of(p2.args);
    a.apply(p2.kind, r);
  }
  {
    Reader r = reader_of(p2.args);
    b.apply(p2.kind, r);
  }
  {
    Reader r = reader_of(p1.args);
    b.apply(p1.kind, r);
  }
  EXPECT_EQ(a, b);
}

TEST(CardGame, RoundEndCounts) {
  CardGame game;
  auto op = CardGame::round_end(0);
  Reader reader = reader_of(op.args);
  game.apply(op.kind, reader);
  EXPECT_EQ(game.rounds_ended(), 1u);
}

TEST(TurnPlan, StrictChainHasFullCriticalPath) {
  const TurnPlan plan = TurnPlan::strict(5);
  EXPECT_EQ(plan.players(), 5u);
  for (std::uint32_t l = 1; l < 5; ++l) {
    EXPECT_EQ(plan.dependency(l), l - 1);
  }
  EXPECT_EQ(plan.critical_path(), 5u);
}

TEST(TurnPlan, RelaxedPlanShortensCriticalPath) {
  // Everyone depends only on player 0: critical path 2, regardless of r.
  const TurnPlan plan = TurnPlan::relaxed({0, 0, 0, 0, 0, 0});
  EXPECT_EQ(plan.critical_path(), 2u);
}

// ---------- Snapshot serialization round trips ----------

TEST(Snapshots, CounterRoundTrip) {
  Counter counter;
  auto op = Counter::inc(42);
  Reader r = reader_of(op.args);
  counter.apply(op.kind, r);
  Writer writer;
  counter.encode(writer);
  Reader reader(writer.bytes());
  const Counter copy = Counter::decode(reader);
  EXPECT_EQ(copy, counter);
  EXPECT_EQ(copy.value(), 42);
  EXPECT_EQ(copy.ops_applied(), 1u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Snapshots, RegistryRoundTrip) {
  Registry registry;
  for (const auto& [name, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"a", "1"}, {"b", "2"}, {"a", "3"}}) {
    auto op = Registry::upd(name, value);
    Reader r = reader_of(op.args);
    registry.apply(op.kind, r);
  }
  Writer writer;
  registry.encode(writer);
  Reader reader(writer.bytes());
  const Registry copy = Registry::decode(reader);
  EXPECT_EQ(copy, registry);
  EXPECT_EQ(copy.lookup("a"), "3");
  EXPECT_EQ(copy.update_count("a"), 2u);
}

TEST(Snapshots, DocumentRoundTrip) {
  Document document;
  for (const auto* remark : {"r1", "r2"}) {
    auto op = Document::annotate("intro", remark);
    Reader r = reader_of(op.args);
    document.apply(op.kind, r);
  }
  auto rewrite = Document::rewrite("body", "text");
  Reader r1 = reader_of(rewrite.args);
  document.apply(rewrite.kind, r1);
  auto publish = Document::publish();
  Reader r2 = reader_of(publish.args);
  document.apply(publish.kind, r2);

  Writer writer;
  document.encode(writer);
  Reader reader(writer.bytes());
  const Document copy = Document::decode(reader);
  EXPECT_EQ(copy, document);
  EXPECT_EQ(copy.annotations("intro").size(), 2u);
  EXPECT_EQ(copy.body("body"), "text");
  EXPECT_EQ(copy.publish_count(), 1u);
}

TEST(Snapshots, CardGameRoundTrip) {
  CardGame game;
  auto play = CardGame::card(3, 1, 55);
  Reader r1 = reader_of(play.args);
  game.apply(play.kind, r1);
  auto end = CardGame::round_end(3);
  Reader r2 = reader_of(end.args);
  game.apply(end.kind, r2);

  Writer writer;
  game.encode(writer);
  Reader reader(writer.bytes());
  const CardGame copy = CardGame::decode(reader);
  EXPECT_EQ(copy, game);
  EXPECT_EQ(copy.card_at(3, 1), 55);
  EXPECT_EQ(copy.rounds_ended(), 1u);
}

TEST(Snapshots, EmptyStatesRoundTrip) {
  {
    Writer writer;
    Counter{}.encode(writer);
    Reader reader(writer.bytes());
    EXPECT_EQ(Counter::decode(reader), Counter{});
  }
  {
    Writer writer;
    Registry{}.encode(writer);
    Reader reader(writer.bytes());
    EXPECT_EQ(Registry::decode(reader), Registry{});
  }
  {
    Writer writer;
    Document{}.encode(writer);
    Reader reader(writer.bytes());
    EXPECT_EQ(Document::decode(reader), Document{});
  }
  {
    Writer writer;
    CardGame{}.encode(writer);
    Reader reader(writer.bytes());
    EXPECT_EQ(CardGame::decode(reader), CardGame{});
  }
}

TEST(TurnPlan, InvalidPlansRejected) {
  EXPECT_THROW(TurnPlan::relaxed({}), InvalidArgument);
  EXPECT_THROW(TurnPlan::relaxed({0, 2}), InvalidArgument);  // deps[1] >= 1
  const TurnPlan plan = TurnPlan::strict(3);
  EXPECT_THROW((void)plan.dependency(0), InvalidArgument);
  EXPECT_THROW((void)plan.dependency(3), InvalidArgument);
}

}  // namespace
}  // namespace cbc::apps
