// Unit + property tests for MessageId, DepSpec, and MessageGraph.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dep_spec.h"
#include "graph/message_graph.h"
#include "graph/message_id.h"
#include "util/ensure.h"
#include "util/rng.h"

namespace cbc {
namespace {

MessageId id(NodeId sender, SeqNo seq) { return MessageId{sender, seq}; }

// ---------- MessageId ----------

TEST(MessageId, NullProperties) {
  EXPECT_TRUE(MessageId::null().is_null());
  EXPECT_FALSE(id(0, 1).is_null());
  EXPECT_EQ(MessageId::null().to_string(), "null");
}

TEST(MessageId, OrderingAndEquality) {
  EXPECT_LT(id(0, 1), id(0, 2));
  EXPECT_LT(id(0, 9), id(1, 1));
  EXPECT_EQ(id(2, 3), id(2, 3));
}

TEST(MessageId, EncodeDecodeRoundTrip) {
  Writer writer;
  id(7, 12345).encode(writer);
  Reader reader(writer.bytes());
  EXPECT_EQ(MessageId::decode(reader), id(7, 12345));
}

TEST(MessageId, HashDistinguishes) {
  std::hash<MessageId> hasher;
  EXPECT_NE(hasher(id(0, 1)), hasher(id(1, 0)));
  EXPECT_NE(hasher(id(0, 1)), hasher(id(0, 2)));
}

// ---------- DepSpec ----------

TEST(DepSpec, NoneIsEmpty) {
  EXPECT_TRUE(DepSpec::none().empty());
  EXPECT_EQ(DepSpec::none().to_string(), "after(null)");
}

TEST(DepSpec, NullIdsIgnored) {
  const DepSpec spec = DepSpec::after(MessageId::null());
  EXPECT_TRUE(spec.empty());
}

TEST(DepSpec, DuplicatesCollapsed) {
  const DepSpec spec = DepSpec::after_all({id(0, 1), id(0, 1), id(1, 2)});
  EXPECT_EQ(spec.size(), 2u);
  EXPECT_TRUE(spec.depends_on(id(0, 1)));
  EXPECT_TRUE(spec.depends_on(id(1, 2)));
  EXPECT_FALSE(spec.depends_on(id(2, 2)));
}

TEST(DepSpec, IdsSorted) {
  const DepSpec spec = DepSpec::after_all({id(3, 1), id(0, 5), id(1, 2)});
  EXPECT_TRUE(std::is_sorted(spec.ids().begin(), spec.ids().end()));
}

TEST(DepSpec, EncodeDecodeRoundTrip) {
  const DepSpec spec = DepSpec::after_all({id(0, 1), id(2, 9)});
  Writer writer;
  spec.encode(writer);
  Reader reader(writer.bytes());
  EXPECT_EQ(DepSpec::decode(reader), spec);
}

// ---------- MessageGraph: Figure 3 of the paper ----------
// Msg with two descendants m1, m2 (many-to-one shown in the paper as
// Occurs_After(m1, Msg); Occurs_After(m2, Msg)).

class Fig3Graph : public ::testing::Test {
 protected:
  void SetUp() override {
    msg_ = id(0, 1);
    m1_ = id(1, 1);
    m2_ = id(2, 1);
    graph_.add(msg_, "Msg", DepSpec::none());
    graph_.add(m1_, "m1", DepSpec::after(msg_));
    graph_.add(m2_, "m2", DepSpec::after(msg_));
  }
  MessageGraph graph_;
  MessageId msg_, m1_, m2_;
};

TEST_F(Fig3Graph, ReachabilityFollowsEdges) {
  EXPECT_TRUE(graph_.reaches(msg_, m1_));
  EXPECT_TRUE(graph_.reaches(msg_, m2_));
  EXPECT_FALSE(graph_.reaches(m1_, msg_));
  EXPECT_FALSE(graph_.reaches(m1_, m2_));
}

TEST_F(Fig3Graph, ManyToOneDescendantsAreConcurrent) {
  EXPECT_TRUE(graph_.concurrent(m1_, m2_));
  EXPECT_FALSE(graph_.concurrent(msg_, m1_));
}

TEST_F(Fig3Graph, RootsAndLeaves) {
  EXPECT_EQ(graph_.roots(), (std::vector<MessageId>{msg_}));
  EXPECT_EQ(graph_.leaves(), (std::vector<MessageId>{m1_, m2_}));
}

TEST_F(Fig3Graph, AncestorsAndDescendants) {
  EXPECT_EQ(graph_.ancestors(m1_), (std::vector<MessageId>{msg_}));
  std::vector<MessageId> expected{m1_, m2_};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(graph_.descendants(msg_), expected);
  EXPECT_TRUE(graph_.ancestors(msg_).empty());
}

TEST_F(Fig3Graph, AllTopologicalOrders) {
  const auto orders = graph_.all_topological_orders();
  // Msg first, then m1/m2 in either order: exactly 2 sequences.
  EXPECT_EQ(orders.size(), 2u);
  for (const auto& order : orders) {
    EXPECT_EQ(order.front(), msg_);
    EXPECT_TRUE(graph_.is_valid_delivery_order(order));
  }
}

TEST_F(Fig3Graph, InvalidDeliveryOrdersRejected) {
  EXPECT_FALSE(graph_.is_valid_delivery_order({m1_, msg_, m2_}));
  EXPECT_FALSE(graph_.is_valid_delivery_order({msg_, m1_}));         // missing
  EXPECT_FALSE(graph_.is_valid_delivery_order({msg_, m1_, m1_}));    // dup
  EXPECT_FALSE(graph_.is_valid_delivery_order({msg_, m1_, m2_, id(9, 9)}));
}

TEST_F(Fig3Graph, DotContainsNodesAndEdges) {
  const std::string dot = graph_.to_dot("fig3");
  EXPECT_NE(dot.find("digraph fig3"), std::string::npos);
  EXPECT_NE(dot.find("Msg"), std::string::npos);
  EXPECT_NE(dot.find("\"s0:1\" -> \"s1:1\""), std::string::npos);
  EXPECT_NE(dot.find("\"s0:1\" -> \"s2:1\""), std::string::npos);
}

// ---------- AND dependency (one-to-many, eq. 3) ----------

TEST(MessageGraph, AndDependencyOrdersAfterAll) {
  MessageGraph graph;
  graph.add(id(0, 1), "m1", DepSpec::none());
  graph.add(id(1, 1), "m2", DepSpec::none());
  graph.add(id(2, 1), "Msg", DepSpec::after_all({id(0, 1), id(1, 1)}));
  const auto orders = graph.all_topological_orders();
  EXPECT_EQ(orders.size(), 2u);  // m1,m2 or m2,m1 — Msg always last
  for (const auto& order : orders) {
    EXPECT_EQ(order.back(), id(2, 1));
  }
  EXPECT_TRUE(graph.closed());
}

TEST(MessageGraph, DanglingDependencyDetected) {
  MessageGraph graph;
  graph.add(id(0, 1), "m", DepSpec::after(id(5, 5)));
  EXPECT_FALSE(graph.closed());
  // The dangling edge does not constrain topological order of inserted
  // nodes.
  EXPECT_EQ(graph.topological_order(), (std::vector<MessageId>{id(0, 1)}));
}

TEST(MessageGraph, LateInsertionWiresSuccessors) {
  MessageGraph graph;
  graph.add(id(1, 1), "b", DepSpec::after(id(0, 1)));  // dep not present yet
  graph.add(id(0, 1), "a", DepSpec::none());           // arrives later
  EXPECT_TRUE(graph.closed());
  EXPECT_TRUE(graph.reaches(id(0, 1), id(1, 1)));
  EXPECT_EQ(graph.direct_successors(id(0, 1)),
            (std::vector<MessageId>{id(1, 1)}));
}

TEST(MessageGraph, DuplicateAndNullInsertionRejected) {
  MessageGraph graph;
  graph.add(id(0, 1), "a", DepSpec::none());
  EXPECT_THROW(graph.add(id(0, 1), "again", DepSpec::none()), InvalidArgument);
  EXPECT_THROW(graph.add(MessageId::null(), "null", DepSpec::none()),
               InvalidArgument);
}

TEST(MessageGraph, TransitiveReachabilityThroughChain) {
  MessageGraph graph;
  for (SeqNo i = 1; i <= 10; ++i) {
    graph.add(id(0, i), "m",
              i == 1 ? DepSpec::none() : DepSpec::after(id(0, i - 1)));
  }
  EXPECT_TRUE(graph.reaches(id(0, 1), id(0, 10)));
  EXPECT_FALSE(graph.reaches(id(0, 10), id(0, 1)));
  EXPECT_EQ(graph.all_topological_orders().size(), 1u);  // a chain
}

TEST(MessageGraph, AllOrdersCapRespected) {
  MessageGraph graph;
  for (SeqNo i = 1; i <= 8; ++i) {
    graph.add(id(static_cast<NodeId>(i), 1), "c", DepSpec::none());
  }
  // 8! = 40320 total orders; cap at 100.
  const auto orders = graph.all_topological_orders(100);
  EXPECT_EQ(orders.size(), 100u);
}

// Property test: for random DAGs, every enumerated order is a valid
// delivery order, and the deterministic topological_order is among the
// valid ones.
TEST(MessageGraphProperty, RandomDagsProduceOnlyValidOrders) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    MessageGraph graph;
    std::vector<MessageId> inserted;
    const std::size_t n = 2 + rng.next_below(5);
    for (std::size_t i = 0; i < n; ++i) {
      const MessageId node = id(static_cast<NodeId>(i), 1);
      DepSpec deps;
      for (const MessageId& candidate : inserted) {
        if (rng.next_bool(0.4)) {
          deps.add(candidate);
        }
      }
      graph.add(node, "n", deps);
      inserted.push_back(node);
    }
    EXPECT_TRUE(graph.closed());
    const auto single = graph.topological_order();
    EXPECT_TRUE(graph.is_valid_delivery_order(single));
    const auto orders = graph.all_topological_orders(200);
    EXPECT_FALSE(orders.empty());
    for (const auto& order : orders) {
      EXPECT_TRUE(graph.is_valid_delivery_order(order));
    }
    // A random shuffle that differs from every enumeration must be invalid
    // (when it violates some edge) — verify the checker catches reversals.
    if (orders.size() > 1) {
      std::vector<MessageId> reversed = single;
      std::reverse(reversed.begin(), reversed.end());
      if (reversed != single &&
          std::find(orders.begin(), orders.end(), reversed) == orders.end()) {
        EXPECT_FALSE(graph.is_valid_delivery_order(reversed));
      }
    }
  }
}

// Property: concurrency is symmetric and exclusive with reachability.
TEST(MessageGraphProperty, ConcurrencyConsistentWithReachability) {
  Rng rng(7);
  MessageGraph graph;
  std::vector<MessageId> nodes;
  for (std::size_t i = 0; i < 12; ++i) {
    const MessageId node = id(static_cast<NodeId>(i), 1);
    DepSpec deps;
    for (const MessageId& candidate : nodes) {
      if (rng.next_bool(0.25)) {
        deps.add(candidate);
      }
    }
    graph.add(node, "n", deps);
    nodes.push_back(node);
  }
  for (const MessageId& a : nodes) {
    for (const MessageId& b : nodes) {
      if (a == b) continue;
      const bool reach = graph.reaches(a, b) || graph.reaches(b, a);
      EXPECT_EQ(graph.concurrent(a, b), !reach);
      EXPECT_EQ(graph.concurrent(a, b), graph.concurrent(b, a));
    }
  }
}

}  // namespace
}  // namespace cbc
