// Protocol-stack tests: OrderingStats counter semantics across every
// ordering discipline under adversarial transport, the zero-copy
// regression guard on the envelope message path, and the send-side
// batching transport decorator.
#include <gtest/gtest.h>


#include "causal/osend.h"
#include "causal/vc_causal.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "total/asend.h"
#include "total/sequencer.h"
#include "transport/batching.h"
#include "util/buffer.h"
#include "util/serde.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

// ---------- OrderingStats under reordering + duplication ----------

// Drives a 3-member group of the given discipline through a duplicated,
// jittered network and returns the members for counter assertions.
template <typename MemberT>
struct HostileStatsRun {
  HostileStatsRun()
      : env(SimEnv::Config{.jitter_us = 4000,
                           .duplicate_probability = 0.5,
                           .seed = 21}),
        group(env.transport, 3) {
    MessageId prev = MessageId::null();
    for (int k = 0; k < 24; ++k) {
      // Chained dependencies: under jitter a successor regularly lands
      // before its dependency, exercising the hold-back queue in the
      // causal disciplines (total disciplines ignore `deps`).
      const MessageId id = group[static_cast<std::size_t>(k) % 3].broadcast(
          "m" + std::to_string(k), {},
          prev.is_null() ? DepSpec::none() : DepSpec::after(prev));
      prev = id;
      env.run_until(env.scheduler.now() + 500);
    }
    env.run();
  }

  [[nodiscard]] std::uint64_t total(
      std::uint64_t OrderingStats::*field) const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      sum += group[i].stats().*field;
    }
    return sum;
  }

  SimEnv env;
  mutable Group<MemberT> group;
};

template <typename MemberT>
void expect_counters_converged(HostileStatsRun<MemberT>& run) {
  // Every member delivered all 24 messages exactly once.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(run.group[i].log().size(), 24u) << "member " << i;
    EXPECT_EQ(run.group[i].stats().delivered, 24u) << "member " << i;
    EXPECT_EQ(run.group[i].stats().broadcasts, 8u) << "member " << i;
  }
  EXPECT_TRUE(run.group.all_delivered_same_set());
  // 50% duplication must surface in the duplicate counter somewhere.
  EXPECT_GT(run.total(&OrderingStats::duplicates), 0u);
}

TEST(OrderingStatsCounters, OSendCountsDuplicatesAndHoldback) {
  HostileStatsRun<OSendMember> run;
  expect_counters_converged(run);
  // The chained dependency under 4ms jitter must have held something back.
  EXPECT_GT(run.total(&OrderingStats::held_back), 0u);
  EXPECT_GT(run.total(&OrderingStats::max_holdback_depth), 0u);
}

TEST(OrderingStatsCounters, VcCausalCountsDuplicatesAndHoldback) {
  HostileStatsRun<VcCausalMember> run;
  expect_counters_converged(run);
  EXPECT_GT(run.total(&OrderingStats::held_back), 0u);
  EXPECT_GT(run.total(&OrderingStats::max_holdback_depth), 0u);
}

TEST(OrderingStatsCounters, ASendCountsDuplicates) {
  HostileStatsRun<ASendMember> run;
  expect_counters_converged(run);
  EXPECT_TRUE(run.group.all_delivered_same_sequence());
}

TEST(OrderingStatsCounters, SequencerCountsDuplicatesAndHoldback) {
  // The raw sequencer protocol cannot deduplicate REQUEST frames (a
  // duplicated request is re-stamped — the reliability layer owns wire
  // dedup), so this run uses jitter only and injects the duplicate
  // ordered frame by hand.
  SimEnv env(SimEnv::Config{.jitter_us = 4000, .seed = 21});
  Group<SequencerMember> group(env.transport, 3);
  for (int k = 0; k < 24; ++k) {
    group[static_cast<std::size_t>(k) % 3].broadcast(
        "m" + std::to_string(k), {}, DepSpec::none());
    env.run_until(env.scheduler.now() + 500);
  }
  env.run();
  std::uint64_t max_depth = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group[i].log().size(), 24u) << "member " << i;
    max_depth = std::max(max_depth, group[i].stats().max_holdback_depth);
  }
  EXPECT_TRUE(group.all_delivered_same_sequence());
  // Jittered ordered frames arrive out of stamp order at some member.
  EXPECT_GT(max_depth, 0u);

  // Replay an already-delivered ordered frame (stamp 1) at member 1: it
  // must be dropped and counted, not re-delivered.
  Writer writer;
  writer.u8(2);  // FrameType::kOrdered
  writer.u64(1);
  Envelope::encode_section(writer, MessageId{0, 1}, "m0", DepSpec::none(),
                           0, {});
  env.transport.send(0, 1, writer.take());
  env.run();
  EXPECT_EQ(group[1].log().size(), 24u);
  EXPECT_EQ(group[1].stats().duplicates, 1u);
}

// ---------- Zero-copy regression guard ----------

TEST(ZeroCopy, OSendPathNeverCopiesBuffers) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 3);
  const std::vector<std::uint8_t> payload(256, 0x5C);

  Buffer::reset_copy_count();
  MessageId prev = MessageId::null();
  for (int k = 0; k < 16; ++k) {
    prev = group[static_cast<std::size_t>(k) % 3].broadcast(
        "op" + std::to_string(k), payload,
        prev.is_null() ? DepSpec::none() : DepSpec::after(prev));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(group[i].log().size(), 16u);
  }
  // One encode per broadcast; the frame is then SHARED across every
  // destination, self-delivery, the hold-back queue, and the log — the
  // instrumented Buffer must never see a copy.
  EXPECT_EQ(Buffer::copy_count(), 0u);
}

TEST(ZeroCopy, DeliveredPayloadAliasesWireFrame) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  group[0].broadcast("op", std::vector<std::uint8_t>(64, 0xEE),
                     DepSpec::none());
  env.run();
  ASSERT_EQ(group[1].log().size(), 1u);
  const Delivery& delivery = group[1].log()[0];
  const SharedBuffer& frame = delivery.envelope().frame();
  ASSERT_NE(frame, nullptr);
  const auto payload = delivery.payload();
  ASSERT_EQ(payload.size(), 64u);
  // The payload span points INTO the wire frame, not at a copy.
  EXPECT_GE(payload.data(), frame->data());
  EXPECT_LE(payload.data() + payload.size(), frame->data() + frame->size());
}

TEST(ZeroCopy, SequencerReframeIsTheOnlyCopylikeStep) {
  SimEnv env;
  Group<SequencerMember> group(env.transport, 3);
  Buffer::reset_copy_count();
  for (int k = 0; k < 8; ++k) {
    group[static_cast<std::size_t>(k) % 3].broadcast(
        "op" + std::to_string(k), std::vector<std::uint8_t>(32, 1),
        DepSpec::none());
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(group[i].log().size(), 8u);
  }
  // The request→ordered splice goes through Writer::raw (a byte append,
  // not a Buffer copy): the instrumented counter still reads zero.
  EXPECT_EQ(Buffer::copy_count(), 0u);
}

// ---------- BatchingTransport ----------

struct BatchFixture {
  explicit BatchFixture(BatchingTransport::Options options)
      : batching(env.transport, options) {
    a = batching.add_endpoint([this](NodeId from, const WireFrame& frame) {
      a_received.emplace_back(from, std::vector<std::uint8_t>(
                                        frame.bytes().begin(),
                                        frame.bytes().end()));
    });
    b = batching.add_endpoint([this](NodeId from, const WireFrame& frame) {
      b_received.emplace_back(from, std::vector<std::uint8_t>(
                                        frame.bytes().begin(),
                                        frame.bytes().end()));
    });
  }

  SimEnv env;
  BatchingTransport batching;
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> a_received;
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> b_received;
};

TEST(Batching, FullBatchFlushesWithoutTimer) {
  BatchFixture fx(BatchingTransport::Options{.max_batch = 4});
  for (std::uint8_t k = 0; k < 4; ++k) {
    fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{k, k});
  }
  fx.env.run();
  ASSERT_EQ(fx.b_received.size(), 4u);
  for (std::uint8_t k = 0; k < 4; ++k) {
    EXPECT_EQ(fx.b_received[k].first, fx.a);
    EXPECT_EQ(fx.b_received[k].second, (std::vector<std::uint8_t>{k, k}));
  }
  const auto stats = fx.batching.stats();
  EXPECT_EQ(stats.messages_in, 4u);
  EXPECT_EQ(stats.batches_out, 1u);
  EXPECT_EQ(stats.full_flushes, 1u);
  EXPECT_EQ(stats.tick_flushes, 0u);
  // One wire message carried all four frames.
  EXPECT_EQ(fx.env.network.stats().sent, 1u);
}

TEST(Batching, PartialBatchFlushedByTick) {
  BatchFixture fx(BatchingTransport::Options{.max_batch = 100,
                                             .flush_interval_us = 500});
  fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{7});
  fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{8});
  EXPECT_TRUE(fx.b_received.empty());
  fx.env.run();  // the tick at t=500 flushes, then the system quiesces
  ASSERT_EQ(fx.b_received.size(), 2u);
  const auto stats = fx.batching.stats();
  EXPECT_EQ(stats.batches_out, 1u);
  EXPECT_EQ(stats.tick_flushes, 1u);
  EXPECT_EQ(fx.env.scheduler.pending(), 0u);  // timer disarmed
}

TEST(Batching, LinksBatchIndependently) {
  BatchFixture fx(BatchingTransport::Options{.max_batch = 2});
  fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{1});
  fx.batching.send(fx.b, fx.a, std::vector<std::uint8_t>{2});
  // Neither link reached max_batch: nothing sent until the tick.
  EXPECT_EQ(fx.env.network.stats().sent, 0u);
  fx.env.run();
  EXPECT_EQ(fx.b_received.size(), 1u);
  EXPECT_EQ(fx.a_received.size(), 1u);
  EXPECT_EQ(fx.batching.stats().batches_out, 2u);
}

TEST(Batching, UnpackIsZeroCopy) {
  BatchFixture fx(BatchingTransport::Options{.max_batch = 3});
  Buffer::reset_copy_count();
  for (std::uint8_t k = 0; k < 3; ++k) {
    fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{k});
  }
  fx.env.run();
  ASSERT_EQ(fx.b_received.size(), 3u);
  // Receivers get WireFrame windows into the one batch buffer.
  EXPECT_EQ(Buffer::copy_count(), 0u);
}

TEST(Batching, ExplicitFlushDrainsEverything) {
  BatchFixture fx(BatchingTransport::Options{.max_batch = 100,
                                             .flush_interval_us = 100000});
  fx.batching.send(fx.a, fx.b, std::vector<std::uint8_t>{3});
  fx.batching.flush();
  fx.env.run_until(5000);  // before the (now moot) timer interval
  EXPECT_EQ(fx.b_received.size(), 1u);
}

TEST(Batching, OSendGroupRunsOverBatchedTransport) {
  SimEnv env;
  BatchingTransport batching(env.transport,
                             BatchingTransport::Options{
                                 .max_batch = 4, .flush_interval_us = 200});
  Group<OSendMember> group(batching, 3);
  MessageId prev = MessageId::null();
  for (int k = 0; k < 12; ++k) {
    prev = group[static_cast<std::size_t>(k) % 3].broadcast(
        "op" + std::to_string(k), {},
        prev.is_null() ? DepSpec::none() : DepSpec::after(prev));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group[i].log().size(), 12u) << "member " << i;
  }
  EXPECT_TRUE(group.all_delivered_same_set());
  const auto stats = batching.stats();
  EXPECT_EQ(stats.messages_in, 24u);  // 12 broadcasts x 2 remote members
  // Batching actually coalesced: fewer wire messages than frames.
  EXPECT_LT(stats.batches_out, stats.messages_in);
  EXPECT_EQ(env.network.stats().sent, stats.batches_out);
}

}  // namespace
}  // namespace cbc
