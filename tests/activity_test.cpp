// Tests for commutativity specs, the transition-preservation checker, and
// the stable-point detector.
#include <gtest/gtest.h>

#include "activity/commutativity.h"
#include "activity/stable_point.h"
#include "activity/transition_check.h"
#include "apps/card_game.h"
#include "apps/counter.h"
#include "apps/document.h"
#include "apps/registry.h"
#include "graph/message_graph.h"

namespace cbc {
namespace {

MessageId id(NodeId sender, SeqNo seq) { return MessageId{sender, seq}; }

// ---------- CommutativitySpec ----------

TEST(Commutativity, KindExtraction) {
  EXPECT_EQ(CommutativitySpec::kind_of("inc"), "inc");
  EXPECT_EQ(CommutativitySpec::kind_of("inc(x)"), "inc");
  EXPECT_EQ(CommutativitySpec::kind_of("inc#3"), "inc");
  EXPECT_EQ(CommutativitySpec::kind_of("inc(x)#12"), "inc");
  EXPECT_EQ(CommutativitySpec::kind_of(""), "");
}

TEST(Commutativity, MarkedKindsAreCommutative) {
  CommutativitySpec spec;
  spec.mark_commutative("inc");
  spec.mark_commutative("dec");
  EXPECT_TRUE(spec.is_commutative("inc#4"));
  EXPECT_TRUE(spec.is_commutative("dec(x)"));
  EXPECT_FALSE(spec.is_commutative("rd"));
  EXPECT_TRUE(spec.commute("inc#1", "dec#2"));
  EXPECT_FALSE(spec.commute("inc#1", "rd#1"));
}

TEST(Commutativity, ExplicitPairsOverrideDefault) {
  CommutativitySpec spec;
  spec.mark_commuting_pair("rd", "rd");
  EXPECT_FALSE(spec.is_commutative("rd"));
  EXPECT_TRUE(spec.commute("rd#1", "rd#2"));
  EXPECT_FALSE(spec.commute("rd#1", "wr#1"));
}

TEST(Commutativity, AllAndNonePresets) {
  const CommutativitySpec all = CommutativitySpec::all_commutative();
  EXPECT_TRUE(all.is_commutative("anything"));
  EXPECT_TRUE(all.commute("a", "b"));
  const CommutativitySpec none = CommutativitySpec::none_commutative();
  EXPECT_FALSE(none.is_commutative("anything"));
  EXPECT_FALSE(none.commute("a", "b"));
}

// ---------- Transition-preservation checker (§4.1) ----------

// Counter ops as graph nodes; apply maps labels to transitions.
void apply_counter(apps::Counter& state, const GraphNode& node) {
  const std::string kind = CommutativitySpec::kind_of(node.label);
  Writer writer;
  if (kind == "inc" || kind == "dec" || kind == "set") {
    writer.i64(kind == "set" ? 100 : 1);
  }
  Reader reader(writer.bytes());
  state.apply(kind, reader);
}

TEST(TransitionCheck, ConcurrentIncrementsAreTransitionPreserving) {
  // mo -> ||{inc, inc, dec} -> (implicit close): all 3! interleavings of
  // the commutative set reach the same value.
  MessageGraph graph;
  graph.add(id(0, 1), "set", DepSpec::none());
  graph.add(id(1, 1), "inc#a", DepSpec::after(id(0, 1)));
  graph.add(id(2, 1), "inc#b", DepSpec::after(id(0, 1)));
  graph.add(id(3, 1), "dec#c", DepSpec::after(id(0, 1)));
  const auto result =
      check_transition_preserving(graph, apps::Counter{}, apply_counter);
  EXPECT_TRUE(result.transition_preserving);
  EXPECT_EQ(result.sequences_checked, 6u);  // 3! orders of the antichain
  EXPECT_EQ(result.canonical.value(), 100 + 1 + 1 - 1);
  EXPECT_FALSE(result.truncated);
}

TEST(TransitionCheck, ConcurrentSetAndIncIsNotPreserving) {
  // set(100) || inc(1): order matters (101 vs 100) -> not a stable point.
  MessageGraph graph;
  graph.add(id(0, 1), "set", DepSpec::none());
  graph.add(id(1, 1), "inc", DepSpec::none());
  const auto result =
      check_transition_preserving(graph, apps::Counter{}, apply_counter);
  EXPECT_FALSE(result.transition_preserving);
}

TEST(TransitionCheck, ChainIsTriviallyPreserving) {
  MessageGraph graph;
  graph.add(id(0, 1), "set", DepSpec::none());
  graph.add(id(0, 2), "inc", DepSpec::after(id(0, 1)));
  graph.add(id(0, 3), "dec", DepSpec::after(id(0, 2)));
  const auto result =
      check_transition_preserving(graph, apps::Counter{}, apply_counter);
  EXPECT_TRUE(result.transition_preserving);
  EXPECT_EQ(result.sequences_checked, 1u);
}

TEST(TransitionCheck, CapTruncatesWideAntichains) {
  MessageGraph graph;
  for (SeqNo i = 1; i <= 7; ++i) {
    graph.add(id(static_cast<NodeId>(i), 1), "inc", DepSpec::none());
  }
  const auto result = check_transition_preserving(graph, apps::Counter{},
                                                  apply_counter, /*cap=*/50);
  EXPECT_TRUE(result.transition_preserving);
  EXPECT_EQ(result.sequences_checked, 50u);
  EXPECT_TRUE(result.truncated);
}

// Formal validation of each app's claimed commutativity: the ops the spec
// calls commutative really are transition-preserving; a non-commutative
// pairing really is not. This ties the CommutativitySpec declarations to
// the §4.1 definition mechanically.

TEST(TransitionCheck, RegistryConcurrentQueriesPreserveButUpdatesDoNot) {
  const auto apply_registry = [](apps::Registry& state, const GraphNode& node) {
    const std::string kind = CommutativitySpec::kind_of(node.label);
    apps::Registry::Op op = kind == "upd"
                                ? apps::Registry::upd("k", node.label)
                                : apps::Registry::qry("k");
    Reader reader(op.args);
    state.apply(kind, reader);
  };
  {
    MessageGraph graph;  // upd -> ||{qry, qry}
    graph.add(id(0, 1), "upd#seed", DepSpec::none());
    graph.add(id(1, 1), "qry#a", DepSpec::after(id(0, 1)));
    graph.add(id(2, 1), "qry#b", DepSpec::after(id(0, 1)));
    EXPECT_TRUE(check_transition_preserving(graph, apps::Registry{},
                                            apply_registry)
                    .transition_preserving);
  }
  {
    MessageGraph graph;  // ||{upd#x, upd#y}: last writer differs per order
    graph.add(id(0, 1), "upd#x", DepSpec::none());
    graph.add(id(1, 1), "upd#y", DepSpec::none());
    EXPECT_FALSE(check_transition_preserving(graph, apps::Registry{},
                                             apply_registry)
                     .transition_preserving);
  }
}

TEST(TransitionCheck, DocumentAnnotationsPreserveRewritesDoNot) {
  const auto apply_doc = [](apps::Document& state, const GraphNode& node) {
    const std::string kind = CommutativitySpec::kind_of(node.label);
    apps::Document::Op op =
        kind == "annotate" ? apps::Document::annotate("s", node.label)
                           : apps::Document::rewrite("s", node.label);
    Reader reader(op.args);
    state.apply(kind, reader);
  };
  {
    MessageGraph graph;  // ||{annotate, annotate, annotate}
    graph.add(id(0, 1), "annotate#1", DepSpec::none());
    graph.add(id(1, 1), "annotate#2", DepSpec::none());
    graph.add(id(2, 1), "annotate#3", DepSpec::none());
    const auto result =
        check_transition_preserving(graph, apps::Document{}, apply_doc);
    EXPECT_TRUE(result.transition_preserving);
    EXPECT_EQ(result.sequences_checked, 6u);
  }
  {
    MessageGraph graph;  // ||{rewrite#a, rewrite#b}
    graph.add(id(0, 1), "rewrite#a", DepSpec::none());
    graph.add(id(1, 1), "rewrite#b", DepSpec::none());
    EXPECT_FALSE(check_transition_preserving(graph, apps::Document{},
                                             apply_doc)
                     .transition_preserving);
  }
}

TEST(TransitionCheck, CardPlaysOnDistinctSlotsPreserve) {
  const auto apply_game = [](apps::CardGame& state, const GraphNode& node) {
    // Encode the player in the label suffix: "card#<p>".
    const std::uint32_t player = static_cast<std::uint32_t>(
        std::stoul(node.label.substr(node.label.find('#') + 1)));
    apps::CardGame::Op op = apps::CardGame::card(0, player, player * 10);
    Reader reader(op.args);
    state.apply("card", reader);
  };
  MessageGraph graph;  // ||{card#0..card#3}, the §5.1 relaxed round
  for (NodeId p = 0; p < 4; ++p) {
    graph.add(id(p, 1), "card#" + std::to_string(p), DepSpec::none());
  }
  const auto result =
      check_transition_preserving(graph, apps::CardGame{}, apply_game);
  EXPECT_TRUE(result.transition_preserving);
  EXPECT_EQ(result.sequences_checked, 24u);  // 4!
}

// ---------- StablePointDetector ----------

Delivery make_delivery(MessageId message_id, std::string label, DepSpec deps,
                       SimTime at = 0) {
  return Delivery::synthetic(message_id, std::move(label), std::move(deps),
                             at);
}

TEST(StablePointDetector, InitialStateIsStable) {
  StablePointDetector detector(apps::Counter::spec(), nullptr);
  EXPECT_TRUE(detector.at_stable_point());
  EXPECT_EQ(detector.open_cycle(), 1u);
  EXPECT_TRUE(detector.open_set().empty());
}

TEST(StablePointDetector, CommutativeMessagesOpenACycle) {
  StablePointDetector detector(apps::Counter::spec(), nullptr);
  detector.on_delivery(make_delivery(id(0, 1), "inc#1", DepSpec::none()));
  detector.on_delivery(make_delivery(id(1, 1), "dec#1", DepSpec::none()));
  EXPECT_FALSE(detector.at_stable_point());
  EXPECT_EQ(detector.open_set().size(), 2u);
  EXPECT_TRUE(detector.history().empty());
}

TEST(StablePointDetector, SyncMessageClosesCycleWithCoverage) {
  std::vector<StablePoint> points;
  StablePointDetector detector(
      apps::Counter::spec(),
      [&points](const StablePoint& point) { points.push_back(point); });
  detector.on_delivery(make_delivery(id(0, 1), "inc#1", DepSpec::none()));
  detector.on_delivery(make_delivery(id(1, 1), "inc#2", DepSpec::none()));
  detector.on_delivery(make_delivery(
      id(2, 1), "rd#1", DepSpec::after_all({id(0, 1), id(1, 1)}), 500));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].cycle, 1u);
  EXPECT_EQ(points[0].sync_message, id(2, 1));
  EXPECT_EQ(points[0].commutative_set.size(), 2u);
  EXPECT_TRUE(points[0].coverage_complete);
  EXPECT_EQ(points[0].at, 500);
  EXPECT_TRUE(detector.at_stable_point());
  EXPECT_TRUE(detector.open_set().empty());
  EXPECT_EQ(detector.open_cycle(), 2u);
}

TEST(StablePointDetector, IncompleteCoverageFlagged) {
  StablePointDetector detector(apps::Counter::spec(), nullptr);
  detector.on_delivery(make_delivery(id(0, 1), "inc#1", DepSpec::none()));
  detector.on_delivery(make_delivery(id(1, 1), "inc#2", DepSpec::none()));
  // Sync message only names one of the two open commutative messages.
  detector.on_delivery(
      make_delivery(id(2, 1), "rd#1", DepSpec::after(id(0, 1))));
  ASSERT_EQ(detector.history().size(), 1u);
  EXPECT_FALSE(detector.history()[0].coverage_complete);
}

TEST(StablePointDetector, RepeatedCyclesCount) {
  StablePointDetector detector(apps::Counter::spec(), nullptr);
  SeqNo seq = 1;
  for (std::uint64_t cycle = 1; cycle <= 5; ++cycle) {
    std::vector<MessageId> cids;
    for (int k = 0; k < 3; ++k) {
      const MessageId c = id(0, seq++);
      cids.push_back(c);
      detector.on_delivery(make_delivery(c, "inc#x", DepSpec::none()));
    }
    detector.on_delivery(
        make_delivery(id(1, seq++), "rd#y", DepSpec::after_all(cids)));
    EXPECT_EQ(detector.history().size(), cycle);
    EXPECT_TRUE(detector.history().back().coverage_complete);
  }
  EXPECT_EQ(detector.open_cycle(), 6u);
}

TEST(StablePointDetector, BackToBackSyncMessagesFormEmptyCycles) {
  StablePointDetector detector(apps::Counter::spec(), nullptr);
  detector.on_delivery(make_delivery(id(0, 1), "rd#1", DepSpec::none()));
  detector.on_delivery(make_delivery(id(0, 2), "rd#2", DepSpec::after(id(0, 1))));
  ASSERT_EQ(detector.history().size(), 2u);
  EXPECT_TRUE(detector.history()[0].commutative_set.empty());
  EXPECT_TRUE(detector.history()[0].coverage_complete);  // vacuous
  EXPECT_TRUE(detector.history()[1].commutative_set.empty());
}

}  // namespace
}  // namespace cbc
