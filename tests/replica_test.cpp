// Tests for the §6.1 replicated data access protocol: FrontEndManager,
// ReplicaNode, ReplicaGroup — agreement at stable points.
#include <gtest/gtest.h>

#include "activity/consistency_check.h"
#include "apps/counter.h"
#include "apps/registry.h"
#include "common/sim_env.h"
#include "replica/replica_group.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::SimEnv;

// ---------- FrontEndManager label/dependency generation ----------

TEST(FrontEnd, CommutativeOpsOrderAfterLastSyncOnly) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  auto& node = group.node(0);
  const MessageId rd = node.submit(apps::Counter::rd());
  env.run();
  const MessageId inc1 = node.submit(apps::Counter::inc(1));
  const MessageId inc2 = node.submit(apps::Counter::inc(1));
  // Both commutative requests depend exactly on the sync message — they
  // stay concurrent with each other.
  const auto& graph = node.osend().graph();
  EXPECT_EQ(graph.direct_deps(inc1), std::vector<MessageId>{rd});
  EXPECT_EQ(graph.direct_deps(inc2), std::vector<MessageId>{rd});
  EXPECT_TRUE(graph.concurrent(inc1, inc2));
}

TEST(FrontEnd, SyncOpCoversOpenCommutativeSet) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  auto& node = group.node(0);
  const MessageId inc1 = node.submit(apps::Counter::inc(1));
  const MessageId inc2 = node.submit(apps::Counter::inc(2));
  env.run();
  const MessageId rd = node.submit(apps::Counter::rd());
  const auto deps = node.osend().graph().direct_deps(rd);
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_TRUE(node.osend().graph().reaches(inc1, rd));
  EXPECT_TRUE(node.osend().graph().reaches(inc2, rd));
}

TEST(FrontEnd, SyncWithoutOpenSetDependsOnPreviousSync) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  auto& node = group.node(0);
  const MessageId rd1 = node.submit(apps::Counter::rd());
  env.run();
  const MessageId rd2 = node.submit(apps::Counter::rd());
  EXPECT_EQ(node.osend().graph().direct_deps(rd2),
            std::vector<MessageId>{rd1});
}

TEST(FrontEnd, ObservesRemoteTrafficIntoCidSet) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  const MessageId remote_inc = group.node(1).submit(apps::Counter::inc(5));
  env.run();
  // Node 0's front end saw node 1's commutative request; node 0's next
  // sync op must cover it.
  const MessageId rd = group.node(0).submit(apps::Counter::rd());
  EXPECT_TRUE(group.node(0).osend().graph().reaches(remote_inc, rd));
  EXPECT_EQ(group.node(0).front_end().c_submitted(), 0u);
  EXPECT_EQ(group.node(0).front_end().nc_submitted(), 1u);
}

// ---------- The paper's cycle (§6.1) and agreement at stable points ----

TEST(Replica, SingleNodeCycleProducesExpectedValue) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 3, apps::Counter::spec());
  auto& node = group.node(0);
  node.submit(apps::Counter::inc(4));
  node.submit(apps::Counter::dec(1));
  node.submit(apps::Counter::rd());
  env.run();
  EXPECT_TRUE(group.states_agree());
  EXPECT_TRUE(group.stable_states_agree());
  EXPECT_EQ(group.node(2).state().value(), 3);
  EXPECT_EQ(group.node(1).last_stable_state()->value(), 3);
}

TEST(Replica, DeferredReadReturnsAgreedValueAtStablePoint) {
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 7;
  SimEnv env(config);
  ReplicaGroup<apps::Counter> group(env.transport, 3, apps::Counter::spec());
  group.node(0).submit(apps::Counter::inc(10));
  group.node(1).submit(apps::Counter::dec(4));
  env.run();

  std::vector<std::int64_t> observed;
  std::vector<std::uint64_t> cycles;
  for (std::size_t i = 0; i < 3; ++i) {
    group.node(i).read_at_next_stable(
        [&](const apps::Counter& state, const StablePoint& point) {
          observed.push_back(state.value());
          cycles.push_back(point.cycle);
        });
  }
  // A sync operation from any member closes the cycle everywhere.
  group.node(2).submit(apps::Counter::rd());
  env.run();
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], 6);
  EXPECT_EQ(observed[1], 6);
  EXPECT_EQ(observed[2], 6);
  EXPECT_EQ(cycles, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Replica, SubmitWithResultObservesSerializationPoint) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  group.node(0).submit(apps::Counter::inc(7));
  env.run();
  std::optional<std::int64_t> read_value;
  group.node(1).submit_with_result(
      apps::Counter::rd(),
      [&](const apps::Counter& state) { read_value = state.value(); });
  env.run();
  ASSERT_TRUE(read_value.has_value());
  EXPECT_EQ(*read_value, 7);
  // The read's value equals every member's stable snapshot.
  EXPECT_EQ(group.node(0).last_stable_state()->value(), 7);
}

TEST(Replica, StableHistoryAgreesAcrossMembersWithCleanCycles) {
  // Drive the exact cycle structure rqst_nc(r-1) -> ||{rqst_c} ->
  // rqst_nc(r) with quiescence before each sync op, under jitter: the
  // snapshots at every stable point must agree member-by-member.
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = 17;
  SimEnv env(config);
  ReplicaGroup<apps::Counter> group(env.transport, 4, apps::Counter::spec());
  Rng rng(99);
  std::int64_t expected = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (int k = 0; k < 5; ++k) {
      const std::size_t submitter = rng.next_below(4);
      const std::int64_t delta = rng.next_in(-3, 3);
      expected += delta;
      if (delta >= 0) {
        group.node(submitter).submit(apps::Counter::inc(delta));
      } else {
        group.node(submitter).submit(apps::Counter::dec(-delta));
      }
    }
    env.run();  // commutative phase settles
    group.node(rng.next_below(4)).submit(apps::Counter::rd());
    env.run();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(group.node(i).stable_history().size(), 6u) << "member " << i;
    for (const StablePoint& point : group.node(i).detector().history()) {
      EXPECT_TRUE(point.coverage_complete);
    }
    EXPECT_EQ(group.node(i).stable_history(), group.node(0).stable_history());
  }
  EXPECT_EQ(group.node(0).state().value(), expected);
}

// Property test: writers race freely (no barriers); a single reader issues
// sync ops at random times. Final states agree; and for every cycle whose
// coverage was complete at ALL members, the per-cycle snapshots agree.
class ReplicaRacingWorkload : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReplicaRacingWorkload, AgreementHoldsWhereCoverageComplete) {
  const std::uint64_t seed = GetParam();
  SimEnv::Config config;
  config.jitter_us = 5000;
  config.seed = seed;
  SimEnv env(config);
  const std::size_t n = 4;
  ReplicaGroup<apps::Counter> group(env.transport, n, apps::Counter::spec());
  Rng rng(seed * 31 + 5);
  std::int64_t expected = 0;
  for (int step = 0; step < 60; ++step) {
    const std::size_t who = rng.next_below(n);
    if (who == 0 && rng.next_bool(0.3)) {
      // Single reader: node 0. Half the reads are issued into a quiet
      // network (clean cycle, coverage complete everywhere), half race
      // with in-flight writes (coverage may be incomplete somewhere).
      if (rng.next_bool(0.5)) {
        env.run();
      }
      group.node(0).submit(apps::Counter::rd());
    } else {
      const std::int64_t delta = rng.next_in(1, 4);
      expected += delta;
      group.node(who).submit(apps::Counter::inc(delta));
    }
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2500)));
  }
  env.run();
  // Two back-to-back quiesced reads: the first flushes any straggling
  // cycle attribution, the second is then guaranteed coverage-complete at
  // every member (its open set is empty everywhere).
  group.node(0).submit(apps::Counter::rd());
  env.run();
  group.node(0).submit(apps::Counter::rd());
  env.run();

  // All operations delivered everywhere: final values agree.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(group.node(i).state().value(), expected) << "seed " << seed;
  }
  // Sync ops all come from node 0, so every member sees the same cycle
  // sequence; where coverage was complete at all members, snapshots agree.
  const std::size_t cycles = group.node(0).detector().history().size();
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_EQ(group.node(i).detector().history().size(), cycles);
  }
  std::size_t agreed_cycles = 0;
  for (std::size_t c = 0; c < cycles; ++c) {
    bool covered_everywhere = true;
    for (std::size_t i = 0; i < n; ++i) {
      const StablePoint& point = group.node(i).detector().history()[c];
      EXPECT_EQ(point.sync_message,
                group.node(0).detector().history()[c].sync_message);
      covered_everywhere &= point.coverage_complete;
    }
    if (covered_everywhere) {
      ++agreed_cycles;
      for (std::size_t i = 1; i < n; ++i) {
        EXPECT_EQ(group.node(i).stable_history()[c],
                  group.node(0).stable_history()[c])
            << "cycle " << c << " seed " << seed;
      }
    }
  }
  // The workload is racy, but at least some cycles should be clean.
  if (cycles > 0) {
    EXPECT_GT(agreed_cycles, 0u) << "seed " << seed;
  }

  // The library's own oracle must reach the same verdict.
  const ConsistencyVerdict verdict = check_stable_points(
      n,
      [&](std::size_t i) -> const std::vector<apps::Counter>& {
        return group.node(i).stable_history();
      },
      [&](std::size_t i) -> const StablePointDetector& {
        return group.node(i).detector();
      });
  EXPECT_TRUE(verdict.consistent) << verdict.problem << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaRacingWorkload,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Replica, NoneCommutativeSpecMakesEveryMessageAStablePoint) {
  SimEnv env;
  ReplicaGroup<apps::Counter> group(env.transport, 2,
                                    CommutativitySpec::none_commutative());
  group.node(0).submit(apps::Counter::inc(1));
  group.node(0).submit(apps::Counter::inc(1));
  env.run();
  EXPECT_EQ(group.node(1).detector().history().size(), 2u);
  EXPECT_EQ(group.node(1).stable_history().size(), 2u);
}

TEST(Replica, RegistryStateMachineWorksThroughProtocol) {
  SimEnv env;
  ReplicaGroup<apps::Registry> group(env.transport, 3, apps::Registry::spec());
  group.node(0).submit(apps::Registry::upd("svc", "host-1"));
  env.run();
  group.node(1).submit(apps::Registry::qry("svc"));
  env.run();
  group.node(2).submit(apps::Registry::upd("svc", "host-2"));
  env.run();
  EXPECT_TRUE(group.states_agree());
  EXPECT_EQ(group.node(0).state().lookup("svc"), "host-2");
  // upd is non-commutative: each one closed a cycle.
  EXPECT_EQ(group.node(0).detector().history().size(), 2u);
}

TEST(Replica, GroupValidation) {
  SimEnv env;
  EXPECT_THROW(
      ReplicaGroup<apps::Counter>(env.transport, 0, apps::Counter::spec()),
      InvalidArgument);
  ReplicaGroup<apps::Counter> group(env.transport, 2, apps::Counter::spec());
  EXPECT_THROW((void)group.node(5), InvalidArgument);
  // A second group over the same transport must be rejected.
  EXPECT_THROW(
      ReplicaGroup<apps::Counter>(env.transport, 2, apps::Counter::spec()),
      InvalidArgument);
}

TEST(Replica, WorksOverLossyNetworkWithReliability) {
  SimEnv::Config config;
  config.drop_probability = 0.25;
  config.jitter_us = 2000;
  config.seed = 13;
  SimEnv env(config);
  typename ReplicaNode<apps::Counter>::Options options;
  options.member.reliability = {.control_interval_us = 3000, .enabled = true};
  ReplicaGroup<apps::Counter> group(env.transport, 3, apps::Counter::spec(),
                                    options);
  group.node(0).submit(apps::Counter::inc(5));
  group.node(1).submit(apps::Counter::inc(6));
  env.run();
  group.node(2).submit(apps::Counter::rd());
  env.run();
  EXPECT_TRUE(group.states_agree());
  EXPECT_EQ(group.node(0).state().value(), 11);
  EXPECT_TRUE(group.stable_states_agree());
}

}  // namespace
}  // namespace cbc
