// Tests for the comparison baselines: total-order data access and
// explicit per-message agreement.
#include <gtest/gtest.h>

#include <memory>

#include "apps/counter.h"
#include "baseline/explicit_agreement.h"
#include "baseline/total_replica.h"
#include "common/sim_env.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::SimEnv;

template <typename NodeT>
struct BaselineGroup {
  template <typename... Args>
  BaselineGroup(Transport& transport, std::size_t n, Args&&... args)
      : view(testkit::make_view(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<NodeT>(transport, view, args...));
    }
  }
  GroupView view;
  std::vector<std::unique_ptr<NodeT>> nodes;
};

// ---------- TotalReplicaNode ----------

TEST(TotalReplica, ASendEngineConvergesEveryMessage) {
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = 2;
  SimEnv env(config);
  BaselineGroup<TotalReplicaNode<apps::Counter>> group(env.transport, 3);
  Rng rng(1);
  std::int64_t expected = 0;
  for (int k = 0; k < 20; ++k) {
    const std::int64_t delta = rng.next_in(1, 5);
    expected += delta;
    group.nodes[rng.next_below(3)]->submit(apps::Counter::inc(delta));
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(2000)));
  }
  env.run();
  for (const auto& node : group.nodes) {
    EXPECT_EQ(node->state().value(), expected);
  }
}

TEST(TotalReplica, SequencerEngineConverges) {
  SimEnv env;
  TotalReplicaNode<apps::Counter>::Options options;
  options.engine = TotalOrderEngine::kSequencer;
  BaselineGroup<TotalReplicaNode<apps::Counter>> group(env.transport, 3,
                                                       options);
  group.nodes[1]->submit(apps::Counter::inc(4));
  group.nodes[2]->submit(apps::Counter::dec(1));
  env.run();
  for (const auto& node : group.nodes) {
    EXPECT_EQ(node->state().value(), 3);
  }
}

TEST(TotalReplica, NonCommutativeOpsStillAgree) {
  // set() does not commute with inc(); total order handles it anyway —
  // the baseline's strength that the paper's protocol pays for with
  // stable-point granularity.
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 8;
  SimEnv env(config);
  BaselineGroup<TotalReplicaNode<apps::Counter>> group(env.transport, 4);
  group.nodes[0]->submit(apps::Counter::set(100));
  group.nodes[1]->submit(apps::Counter::inc(1));
  group.nodes[2]->submit(apps::Counter::set(50));
  group.nodes[3]->submit(apps::Counter::dec(2));
  env.run();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(group.nodes[i]->state(), group.nodes[0]->state());
  }
}

// ---------- ExplicitAgreementNode ----------

TEST(ExplicitAgreement, CommitsAfterFullAckRound) {
  SimEnv env;
  BaselineGroup<ExplicitAgreementNode<apps::Counter>> group(env.transport, 3);
  std::optional<SimTime> latency;
  group.nodes[0]->submit(apps::Counter::inc(5).kind,
                         apps::Counter::inc(5).args,
                         [&](MessageId, SimTime us) { latency = us; });
  env.run();
  for (const auto& node : group.nodes) {
    EXPECT_EQ(node->state().value(), 5);
  }
  // PROPOSE (1 hop) + ACK (1 hop) = commit known at origin after 2 hops.
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 2000);
}

TEST(ExplicitAgreement, MessageCostIsThreePhases) {
  SimEnv env;
  const std::size_t n = 4;
  BaselineGroup<ExplicitAgreementNode<apps::Counter>> group(env.transport, n);
  group.nodes[0]->submit(apps::Counter::inc(1));
  env.run();
  // 3 * (n-1) unicasts on the wire for one operation.
  EXPECT_EQ(env.network.stats().sent, 3 * (n - 1));
  EXPECT_EQ(group.nodes[1]->stats().acks_sent, 1u);
  EXPECT_EQ(group.nodes[0]->stats().rounds_completed, 1u);
}

TEST(ExplicitAgreement, CommutativeWorkloadConverges) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 6;
  SimEnv env(config);
  BaselineGroup<ExplicitAgreementNode<apps::Counter>> group(env.transport, 3);
  Rng rng(4);
  std::int64_t expected = 0;
  for (int k = 0; k < 15; ++k) {
    const std::int64_t delta = rng.next_in(1, 3);
    expected += delta;
    group.nodes[rng.next_below(3)]->submit(apps::Counter::inc(delta));
  }
  env.run();
  for (const auto& node : group.nodes) {
    EXPECT_EQ(node->state().value(), expected);
    EXPECT_EQ(node->stats().committed, 15u);
  }
}

TEST(ExplicitAgreement, SingleNodeGroupCommitsLocally) {
  SimEnv env;
  BaselineGroup<ExplicitAgreementNode<apps::Counter>> group(env.transport, 1);
  group.nodes[0]->submit(apps::Counter::inc(9));
  EXPECT_EQ(group.nodes[0]->state().value(), 9);  // no network needed
}

}  // namespace
}  // namespace cbc
