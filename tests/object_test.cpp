// The replicated-object layer: spec-derived commutativity for every app
// object (no hand-labelled bits anywhere), the type-erased Value handle,
// the catalog, and the workload/sync hooks the cluster binary runs on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "apps/card_game.h"
#include "apps/counter.h"
#include "apps/document.h"
#include "apps/fifo_queue.h"
#include "apps/install.h"
#include "apps/registry.h"
#include "apps/replicated_set.h"
#include "common/sim_env.h"
#include "object/catalog.h"
#include "object/replicated_object.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "replica/replica_group.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {
namespace {

using object::Catalog;
using object::Op;
using object::SequentialSpec;
using object::Value;
using object::derive_commutativity;

/// The C-class of a derived spec, asserted kind by kind.
void expect_c_class(const CommutativitySpec& spec,
                    const std::vector<std::string>& commutative,
                    const std::vector<std::string>& sync) {
  for (const std::string& kind : commutative) {
    EXPECT_TRUE(spec.is_commutative(kind)) << kind << " should be C-class";
  }
  for (const std::string& kind : sync) {
    EXPECT_FALSE(spec.is_commutative(kind)) << kind << " should be sync";
  }
}

// ---------- Derived commutativity per object ----------

TEST(ObjectSpec, CounterDerivesIncDecNopCommutative) {
  const CommutativitySpec spec = derive_commutativity(apps::Counter::seq_spec());
  expect_c_class(spec, {"inc", "dec", "nop"}, {"rd", "set"});
  // Reads commute with each other even outside the C-class.
  EXPECT_TRUE(spec.commute("rd", "rd"));
  EXPECT_FALSE(spec.commute("set", "rd"));
  EXPECT_FALSE(spec.commute("set", "set"));
}

TEST(ObjectSpec, RegistryDerivesQueriesCommutativeUpdatesSync) {
  const CommutativitySpec spec =
      derive_commutativity(apps::Registry::seq_spec());
  // §5.2: "name queries commute with each other"; same-name upds conflict.
  expect_c_class(spec, {"qry", "nop"}, {"upd"});
  EXPECT_FALSE(spec.commute("upd", "qry"));
}

TEST(ObjectSpec, DocumentDerivesAnnotateCommutative) {
  const CommutativitySpec spec =
      derive_commutativity(apps::Document::seq_spec());
  expect_c_class(spec, {"annotate", "nop"}, {"rewrite", "publish", "snap"});
}

TEST(ObjectSpec, CardGameDerivesPlaysCommutative) {
  const CommutativitySpec spec =
      derive_commutativity(apps::CardGame::seq_spec());
  // §5.1: distinct (turn, player) plays commute — the probe set encodes
  // the game's one-play-per-key rule, so no hand label is needed.
  expect_c_class(spec, {"card", "nop"}, {"round_end", "peek"});
}

TEST(ObjectSpec, SetDerivesAddCommutativeRemSync) {
  const CommutativitySpec spec =
      derive_commutativity(apps::ReplicatedSet::seq_spec());
  // add(x);add(x) is idempotent-commutative, but rem races add on the
  // same element — the base state {add(c)} exposes the conflict.
  expect_c_class(spec, {"add", "nop"}, {"rem", "has", "snap"});
}

TEST(ObjectSpec, QueueDerivesEnqCommutativeDeqSync) {
  const CommutativitySpec spec =
      derive_commutativity(apps::FifoQueue::seq_spec());
  // Unique-tag enqueues commute; two dequeues from a 2-element base pop
  // different elements depending on order, so deq is a sync op.
  expect_c_class(spec, {"enq", "nop"}, {"deq", "len"});
}

TEST(ObjectSpec, DerivationIsDeterministic) {
  // Every member derives its table independently — two derivations of the
  // same spec must agree kind-for-kind or cycle membership diverges.
  for (const char* raw : {"counter", "registry", "document", "card_game",
                          "set", "queue"}) {
    const std::string name = raw;
    apps::install_objects();
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value()) << name;
    const SequentialSpec spec = entry->spec();
    const CommutativitySpec first = derive_commutativity(spec);
    const CommutativitySpec second = derive_commutativity(spec);
    for (const Op& probe : spec.probes()) {
      EXPECT_EQ(first.is_commutative(probe.kind),
                second.is_commutative(probe.kind))
          << name << "/" << probe.kind;
    }
  }
}

// ---------- Nop and sync-op inertness ----------

TEST(ObjectSpec, NopIsInertOnEveryObject) {
  apps::install_objects();
  for (const std::string& name : Catalog::instance().names()) {
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    const std::unique_ptr<object::ReplicatedObject> fresh = entry->make();
    const std::unique_ptr<object::ReplicatedObject> probed = entry->make();
    const Op nop = object::nop(42);
    Reader args(nop.args);
    probed->apply(nop.kind, args);
    EXPECT_TRUE(probed->equals(*fresh)) << name;
  }
}

TEST(ObjectSpec, SyncOpInertnessMatchesCheckpointEligibility) {
  // Checkpoint-enabled cluster runs capture state at the sync's delivery
  // tap, before the replica applies it — sound only for state-inert sync
  // ops. The registry is the documented exception: its C-class IS its
  // reads, so its sync op must mutate (an upd), and cbc_node refuses
  // --checkpoint for it.
  apps::install_objects();
  for (const std::string& name : Catalog::instance().names()) {
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    const std::unique_ptr<object::ReplicatedObject> fresh = entry->make();
    const std::unique_ptr<object::ReplicatedObject> probed = entry->make();
    Reader args(entry->sync_op.args);
    probed->apply(entry->sync_op.kind, args);
    EXPECT_EQ(probed->equals(*fresh), name != "registry") << name;
  }
}

// ---------- Value handle ----------

TEST(ObjectValue, EncodeDecodeRoundTripsEveryObject) {
  apps::install_objects();
  for (const std::string& name : Catalog::instance().names()) {
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    Value value(entry->make());
    // A little deterministic workload so the state is non-trivial.
    for (std::uint64_t k = 0; k < 5; ++k) {
      const Op op = entry->workload_op(0, 0, k);
      Reader args(op.args);
      value.apply(op.kind, args);
    }
    Writer writer;
    value.encode(writer);
    const std::vector<std::uint8_t> bytes = writer.take();
    Reader reader(bytes);
    const Value decoded = Value::decode(reader);
    EXPECT_TRUE(decoded == value) << name;
    EXPECT_EQ(decoded.to_string(), value.to_string()) << name;
  }
}

TEST(ObjectValue, CopyIsDeepAndEmptyApplyThrows) {
  apps::install_objects();
  const auto entry = Catalog::instance().find("counter");
  ASSERT_TRUE(entry.has_value());
  Value original(entry->make());
  Value copy = original;
  const Op inc = apps::Counter::inc(5);
  Reader args(inc.args);
  copy.apply(inc.kind, args);
  EXPECT_FALSE(copy == original) << "copy must not share state";

  Value empty;
  Reader again(inc.args);
  EXPECT_THROW(empty.apply(inc.kind, again), InvalidArgument);
}

TEST(ObjectValue, DecodeOfUnknownTypeNameThrows) {
  Writer writer;
  writer.str("no_such_object");
  writer.blob({});
  const std::vector<std::uint8_t> bytes = writer.take();
  Reader reader(bytes);
  EXPECT_THROW((void)Value::decode(reader), InvalidArgument);
}

// ---------- Catalog and workload hooks ----------

TEST(ObjectCatalog, InstallIsIdempotentAndListsAllSix) {
  apps::install_objects();
  apps::install_objects();
  const std::vector<std::string> names = Catalog::instance().names();
  for (const char* expected : {"counter", "registry", "document",
                               "card_game", "set", "queue"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from catalog";
  }
  EXPECT_FALSE(Catalog::instance().find("no_such_object").has_value());
  EXPECT_THROW((void)Catalog::instance().make_value("no_such_object"),
               InvalidArgument);
}

TEST(ObjectCatalog, WorkloadOpsAreDeterministicAndCClass) {
  // Round workloads feed the open causal cycle, so every generated op
  // must be C-class under the object's own derived table — and identical
  // across invocations (members must be able to re-derive each other's
  // traffic in tests).
  apps::install_objects();
  for (const std::string& name : Catalog::instance().names()) {
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    const CommutativitySpec spec = derive_commutativity(entry->spec());
    for (NodeId node = 0; node < 3; ++node) {
      for (std::uint64_t k = 0; k < 4; ++k) {
        const Op op = entry->workload_op(node, 2, k);
        const Op again = entry->workload_op(node, 2, k);
        EXPECT_EQ(op.kind, again.kind);
        EXPECT_EQ(op.args, again.args);
        EXPECT_TRUE(spec.is_commutative(op.kind))
            << name << " workload emits sync op " << op.kind;
      }
    }
    // The sync op must NOT be C-class, or it could never close a cycle.
    EXPECT_FALSE(spec.is_commutative(entry->sync_op.kind)) << name;
  }
}

// ---------- The generalized replica protocol, per object ----------

TEST(ObjectReplica, GroupConvergesAtStablePointForEveryObject) {
  // The exact acceptance shape of the refactor: the SAME ReplicaNode
  // code, instantiated on the type-erased Value, runs every catalog
  // object through the §6.1 cycle — commutative workload burst, one sync
  // — and agrees at the stable point, with the commutativity table
  // derived from the spec rather than hand-labelled.
  apps::install_objects();
  for (const std::string& name : object::Catalog::instance().names()) {
    testkit::SimEnv env;
    const auto entry = Catalog::instance().find(name);
    ASSERT_TRUE(entry.has_value());
    ReplicaNode<Value>::Options options;
    options.initial = Value(entry->make());
    ReplicaGroup<Value> group(env.transport, 3,
                              derive_commutativity(entry->spec()), options);
    for (std::uint64_t round = 0; round < 2; ++round) {
      for (std::size_t node = 0; node < 3; ++node) {
        for (std::uint64_t k = 0; k < 3; ++k) {
          group.node(node).submit(
              entry->workload_op(static_cast<NodeId>(node), round, k));
        }
      }
      env.run();
      group.node(0).submit(entry->sync_op);
      env.run();
    }
    EXPECT_TRUE(group.states_agree()) << name;
    EXPECT_TRUE(group.stable_states_agree()) << name;
    // The stable snapshot is a deep copy, not an alias of live state.
    group.node(0).submit(entry->workload_op(0, 9, 0));
    env.run();
    EXPECT_TRUE(group.stable_states_agree()) << name;
  }
}

}  // namespace
}  // namespace cbc
