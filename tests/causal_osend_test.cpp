// Tests for OSendMember: explicit-dependency causal broadcast (§3).
#include <gtest/gtest.h>

#include <algorithm>

#include "activity/consistency_check.h"
#include "causal/osend.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

std::vector<std::uint8_t> bytes(std::uint8_t v) { return {v}; }

TEST(OSend, SenderDeliversOwnMessageImmediately) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 3);
  const MessageId id = group[0].osend("m", bytes(1), DepSpec::none());
  // Local delivery is synchronous inside osend().
  ASSERT_EQ(group[0].log().size(), 1u);
  EXPECT_EQ(group[0].log()[0].id, id);
  EXPECT_TRUE(group[0].has_delivered(id));
  EXPECT_TRUE(group[1].log().empty());  // network not yet run
  env.run();
  EXPECT_EQ(group[1].log().size(), 1u);
  EXPECT_EQ(group[2].log().size(), 1u);
}

TEST(OSend, UnconstrainedMessagesReachEveryMember) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    group[i].osend("m" + std::to_string(i), bytes(static_cast<std::uint8_t>(i)),
                   DepSpec::none());
  }
  env.run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(group[i].log().size(), 4u);
    EXPECT_EQ(group[i].stats().delivered, 4u);
  }
  EXPECT_TRUE(group.all_delivered_same_set());
}

TEST(OSend, DeliveryCarriesLabelDepsPayloadTimes) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  const MessageId first = group[0].osend("first", bytes(7), DepSpec::none());
  group[0].osend("second", bytes(9), DepSpec::after(first));
  env.run();
  ASSERT_EQ(group[1].log().size(), 2u);
  const Delivery& delivery = group[1].log()[1];
  EXPECT_EQ(delivery.label(), "second");
  EXPECT_EQ(std::vector<std::uint8_t>(delivery.payload().begin(),
                                      delivery.payload().end()),
            bytes(9));
  EXPECT_TRUE(delivery.deps().depends_on(first));
  EXPECT_EQ(delivery.sender, 0u);
  EXPECT_GE(delivery.delivered_at, delivery.sent_at);
}

TEST(OSend, DependencyEnforcedUnderHeavyJitter) {
  // The declared edge m1 -> m2 must hold at every member for every seed,
  // no matter how the network reorders the wire messages.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 5000;
    config.seed = seed;
    SimEnv env(config);
    Group<OSendMember> group(env.transport, 3);
    const MessageId m1 = group[0].osend("m1", bytes(1), DepSpec::none());
    const MessageId m2 = group[1].osend("m2", bytes(2), DepSpec::after(m1));
    env.run();
    for (std::size_t i = 0; i < 3; ++i) {
      const auto ids = delivered_ids(group[i].log());
      const auto pos1 = std::find(ids.begin(), ids.end(), m1);
      const auto pos2 = std::find(ids.begin(), ids.end(), m2);
      ASSERT_NE(pos1, ids.end()) << "seed " << seed;
      ASSERT_NE(pos2, ids.end()) << "seed " << seed;
      EXPECT_LT(pos1 - ids.begin(), pos2 - ids.begin()) << "seed " << seed;
    }
  }
}

TEST(OSend, SemanticOrderingOnly_NoFifoImposedOnIndependentMessages) {
  // Two independent messages from the SAME sender: OSend must be willing
  // to deliver them in arrival order (no incidental FIFO promotion) —
  // the paper's semantic-ordering stance. With jitter, some member sees
  // them swapped, and neither is ever held back.
  bool saw_swap = false;
  for (std::uint64_t seed = 1; seed <= 30 && !saw_swap; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 4000;
    config.seed = seed;
    SimEnv env(config);
    Group<OSendMember> group(env.transport, 2);
    const MessageId a = group[0].osend("a", bytes(1), DepSpec::none());
    const MessageId b = group[0].osend("b", bytes(2), DepSpec::none());
    env.run();
    EXPECT_EQ(group[1].stats().held_back, 0u);
    const auto ids = delivered_ids(group[1].log());
    ASSERT_EQ(ids.size(), 2u);
    saw_swap = (ids[0] == b && ids[1] == a);
  }
  EXPECT_TRUE(saw_swap) << "jitter never produced a swapped arrival";
}

TEST(OSend, Figure2Scenario) {
  // R(M) = mk -> ||{m1', m2'} -> m3' (paper Figure 2): mk from a_k, two
  // concurrent messages from a_i, and a closing sync message.
  SimEnv::Config config;
  config.jitter_us = 3000;
  config.seed = 11;
  SimEnv env(config);
  Group<OSendMember> group(env.transport, 3);
  const MessageId mk = group[2].osend("mk", bytes(0), DepSpec::none());
  const MessageId m1 = group[0].osend("m1'", bytes(1), DepSpec::after(mk));
  const MessageId m2 = group[0].osend("m2'", bytes(2), DepSpec::after(mk));
  const MessageId m3 =
      group[1].osend("m3'", bytes(3), DepSpec::after_all({m1, m2}));
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto ids = delivered_ids(group[i].log());
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids.front(), mk);  // mk precedes everything
    EXPECT_EQ(ids.back(), m3);   // the sync message closes the activity
    // The member's own graph validates its own delivery order.
    EXPECT_TRUE(group[i].graph().is_valid_delivery_order(ids));
    EXPECT_TRUE(group[i].graph().concurrent(m1, m2));
  }
}

TEST(OSend, GraphIdenticalAtAllMembers) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 3;
  SimEnv env(config);
  Group<OSendMember> group(env.transport, 3);
  const MessageId a = group[0].osend("a", bytes(1), DepSpec::none());
  const MessageId b = group[1].osend("b", bytes(2), DepSpec::after(a));
  group[2].osend("c", bytes(3), DepSpec::after_all({a, b}));
  env.run();
  // The *stable form* of the dependency graph (§3.2): same nodes, same
  // edges at every member, regardless of local delivery order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group[i].graph().size(), 3u);
    EXPECT_TRUE(group[i].graph().closed());
    for (const MessageId& id : group[0].graph().insertion_order()) {
      ASSERT_TRUE(group[i].graph().contains(id));
      EXPECT_EQ(group[i].graph().direct_deps(id),
                group[0].graph().direct_deps(id));
    }
  }
}

TEST(OSend, HoldbackCascadeDrainsInOneArrival) {
  // A chain m1 -> m2 -> m3 where m2, m3 arrive long before m1 (m1's links
  // are slow): both wait, then one arrival releases the whole chain.
  sim::Scheduler scheduler;
  auto latency = std::make_unique<sim::MatrixLatency>(3, 1000, 0);
  latency->set(0, 2, 50000);  // node0 -> node2 is very slow
  sim::SimNetwork network(scheduler, std::move(latency), {}, 1);
  SimTransport transport(network);
  Group<OSendMember> group(transport, 3);
  const MessageId m1 = group[0].osend("m1", bytes(1), DepSpec::none());
  const MessageId m2 = group[1].osend("m2", bytes(2), DepSpec::after(m1));
  const MessageId m3 = group[1].osend("m3", bytes(3), DepSpec::after(m2));
  scheduler.run();
  const auto ids = delivered_ids(group[2].log());
  EXPECT_EQ(ids, (std::vector<MessageId>{m1, m2, m3}));
  EXPECT_EQ(group[2].stats().held_back, 2u);  // m2 and m3 waited
  EXPECT_EQ(group[2].holdback_depth(), 0u);   // drained
}

TEST(OSend, DependencyOnNotYetSentMessageHolds) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 2);
  // Node 0 names a message that does not exist yet (sender 1, seq 1).
  const MessageId future{1, 1};
  group[0].osend("needs-future", bytes(9), DepSpec::after(future));
  env.run();
  EXPECT_EQ(group[1].log().size(), 0u);  // held everywhere
  EXPECT_EQ(group[0].log().size(), 0u);  // even at its own sender
  EXPECT_EQ(group[0].holdback_depth(), 1u);
  // Now the awaited message appears.
  group[1].osend("the-dep", bytes(1), DepSpec::none());
  env.run();
  EXPECT_EQ(group[0].log().size(), 2u);
  EXPECT_EQ(group[1].log().size(), 2u);
  EXPECT_EQ(group[1].log()[0].label(), "the-dep");
}

TEST(OSend, RawDuplicatesDroppedById) {
  SimEnv::Config config;
  config.duplicate_probability = 1.0;
  config.seed = 4;
  SimEnv env(config);
  Group<OSendMember> group(env.transport, 2);
  group[0].osend("m", bytes(1), DepSpec::none());
  env.run();
  EXPECT_EQ(group[1].log().size(), 1u);
  EXPECT_GE(group[1].stats().duplicates, 1u);
}

TEST(OSend, StabilityAdvancesWithPiggybackedKnowledge) {
  SimEnv env;
  Group<OSendMember> group(env.transport, 3);
  const MessageId early = group[0].osend("early", bytes(1), DepSpec::none());
  env.run();
  // Everyone delivered it, but member 0 cannot yet KNOW that others did.
  EXPECT_FALSE(group[0].is_stable(early));
  // A second round of traffic piggybacks everyone's delivered prefixes.
  for (std::size_t i = 0; i < 3; ++i) {
    group[i].osend("ack-round", bytes(2), DepSpec::none());
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(group[i].is_stable(early)) << "member " << i;
  }
}

TEST(OSend, WorksWithReliabilityOverLossyNetwork) {
  SimEnv::Config config;
  config.drop_probability = 0.3;
  config.jitter_us = 2000;
  config.seed = 21;
  SimEnv env(config);
  OSendMember::Options options;
  options.reliability = {.control_interval_us = 3000, .enabled = true};
  Group<OSendMember> group(env.transport, 3, options);
  std::vector<MessageId> chain;
  for (int i = 0; i < 10; ++i) {
    const std::size_t sender = static_cast<std::size_t>(i) % 3;
    DepSpec deps = chain.empty() ? DepSpec::none() : DepSpec::after(chain.back());
    chain.push_back(group[sender].osend("op" + std::to_string(i),
                                        bytes(static_cast<std::uint8_t>(i)),
                                        deps));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    // The chain is totally ordered by deps, so all logs equal the chain.
    EXPECT_EQ(delivered_ids(group[i].log()), chain) << "member " << i;
  }
}

// Property: a random causally-well-formed workload (every dependency names
// an already-delivered message at its sender) delivers at every member in
// some valid topological order of the closed graph.
class OSendRandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OSendRandomWorkload, EveryMemberDeliversAValidTopologicalOrder) {
  const std::uint64_t seed = GetParam();
  SimEnv::Config config;
  config.jitter_us = 4000;
  config.seed = seed;
  SimEnv env(config);
  const std::size_t n = 4;
  Group<OSendMember> group(env.transport, n);
  Rng rng(seed * 977 + 1);

  const int total = 30;
  for (int k = 0; k < total; ++k) {
    const std::size_t sender = rng.next_below(n);
    // Sender picks 0-3 dependencies from messages it has delivered.
    const auto& log = group[sender].log();
    DepSpec deps;
    if (!log.empty()) {
      const std::size_t count = rng.next_below(3);
      for (std::size_t d = 0; d < count; ++d) {
        deps.add(log[rng.next_below(log.size())].id);
      }
    }
    group[sender].osend("op" + std::to_string(k),
                        bytes(static_cast<std::uint8_t>(k)), deps);
    // Let the network make partial progress so logs diverge realistically.
    env.run_until(env.scheduler.now() + static_cast<SimTime>(rng.next_below(3000)));
  }
  env.run();

  std::vector<const OSendMember*> members;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(group[i].log().size(), static_cast<std::size_t>(total));
    EXPECT_TRUE(group[i].graph().closed());
    EXPECT_TRUE(group[i].graph().is_valid_delivery_order(
        delivered_ids(group[i].log())))
        << "member " << i << " seed " << seed;
    EXPECT_EQ(group[i].holdback_depth(), 0u);
    members.push_back(&group[i]);
  }
  EXPECT_TRUE(group.all_delivered_same_set());
  const ConsistencyVerdict verdict = check_causal_delivery(members);
  EXPECT_TRUE(verdict.consistent) << verdict.problem;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OSendRandomWorkload,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cbc
