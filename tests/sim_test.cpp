// Unit tests for the discrete-event scheduler and simulated network.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/latency.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/ensure.h"

namespace cbc::sim {
namespace {

// ---------- Scheduler ----------

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.at(30, [&] { order.push_back(3); });
  scheduler.at(10, [&] { order.push_back(1); });
  scheduler.at(20, [&] { order.push_back(2); });
  EXPECT_EQ(scheduler.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30);
}

TEST(Scheduler, TiesBreakInInsertionOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.at(5, [&order, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Scheduler, AfterSchedulesRelativeToNow) {
  Scheduler scheduler;
  SimTime seen = -1;
  scheduler.at(100, [&] {
    scheduler.after(50, [&] { seen = scheduler.now(); });
  });
  scheduler.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, RejectsPastScheduling) {
  Scheduler scheduler;
  scheduler.at(10, [] {});
  scheduler.run();
  EXPECT_THROW(scheduler.at(5, [] {}), InvalidArgument);
  EXPECT_THROW(scheduler.after(-1, [] {}), InvalidArgument);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.at(1, [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenEmpty) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.run_until(500), 0u);
  EXPECT_EQ(scheduler.now(), 500);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  scheduler.at(10, [&] { fired.push_back(10); });
  scheduler.at(20, [&] { fired.push_back(20); });
  scheduler.at(30, [&] { fired.push_back(30); });
  scheduler.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(scheduler.pending(), 1u);
  EXPECT_EQ(scheduler.now(), 20);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler scheduler;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      scheduler.after(10, chain);
    }
  };
  scheduler.after(0, chain);
  scheduler.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(scheduler.now(), 40);
}

TEST(Scheduler, MaxEventsCapRespected) {
  Scheduler scheduler;
  for (int i = 0; i < 10; ++i) {
    scheduler.at(i, [] {});
  }
  EXPECT_EQ(scheduler.run(4), 4u);
  EXPECT_EQ(scheduler.pending(), 6u);
}

// ---------- Latency models ----------

TEST(Latency, FixedIsConstant) {
  FixedLatency model(250);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.sample(0, 1, rng), 250);
  }
}

TEST(Latency, UniformJitterWithinBounds) {
  UniformJitterLatency model(100, 50);
  Rng rng(2);
  bool varied = false;
  SimTime first = model.sample(0, 1, rng);
  for (int i = 0; i < 200; ++i) {
    const SimTime v = model.sample(0, 1, rng);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 150);
    varied |= (v != first);
  }
  EXPECT_TRUE(varied);
}

TEST(Latency, ExponentialTailAboveBase) {
  ExponentialTailLatency model(100, 30.0);
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const SimTime v = model.sample(0, 1, rng);
    EXPECT_GE(v, 100);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 5000.0, 130.0, 5.0);
}

TEST(Latency, MatrixOverridesAndDefaults) {
  MatrixLatency model(3, 100, 0);
  model.set(0, 1, 500);
  model.set_symmetric(1, 2, 700);
  Rng rng(4);
  EXPECT_EQ(model.sample(0, 1, rng), 500);
  EXPECT_EQ(model.sample(1, 0, rng), 100);  // unset direction -> default
  EXPECT_EQ(model.sample(1, 2, rng), 700);
  EXPECT_EQ(model.sample(2, 1, rng), 700);
  EXPECT_EQ(model.sample(0, 2, rng), 100);
}

TEST(Latency, ConstructorValidation) {
  EXPECT_THROW(FixedLatency(-1), InvalidArgument);
  EXPECT_THROW(UniformJitterLatency(-1, 0), InvalidArgument);
  EXPECT_THROW(UniformJitterLatency(0, -1), InvalidArgument);
  EXPECT_THROW(ExponentialTailLatency(0, 0.0), InvalidArgument);
  EXPECT_THROW(MatrixLatency(0, 10, 0), InvalidArgument);
}

// ---------- SimNetwork ----------

struct NetFixture {
  explicit NetFixture(FaultConfig faults = {}, SimTime jitter = 0,
                      std::uint64_t seed = 99)
      : network(scheduler,
                std::make_unique<UniformJitterLatency>(100, jitter), faults,
                seed) {}

  NodeId add_recorder() {
    const auto index = received.size();
    received.emplace_back();
    return network.add_node(
        [this, index](NodeId from, const WireFrame& frame) {
          const auto payload = frame.bytes();
          received[index].emplace_back(
              from, std::vector<std::uint8_t>(payload.begin(), payload.end()));
        });
  }

  Scheduler scheduler;
  SimNetwork network;
  std::vector<std::vector<std::pair<NodeId, std::vector<std::uint8_t>>>>
      received;
};

TEST(SimNetwork, DeliversWithLatency) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  fx.network.send(a, b, {1, 2, 3});
  EXPECT_TRUE(fx.received[b].empty());
  fx.scheduler.run();
  ASSERT_EQ(fx.received[b].size(), 1u);
  EXPECT_EQ(fx.received[b][0].first, a);
  EXPECT_EQ(fx.received[b][0].second, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(fx.scheduler.now(), 100);
}

TEST(SimNetwork, SelfSendDelivered) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  fx.network.send(a, a, {9});
  fx.scheduler.run();
  ASSERT_EQ(fx.received[a].size(), 1u);
}

TEST(SimNetwork, DropAllLosesEverything) {
  NetFixture fx(FaultConfig{.drop_probability = 1.0});
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  for (int i = 0; i < 10; ++i) {
    fx.network.send(a, b, std::vector<std::uint8_t>{0});
  }
  fx.scheduler.run();
  EXPECT_TRUE(fx.received[b].empty());
  EXPECT_EQ(fx.network.stats().dropped, 10u);
  EXPECT_EQ(fx.network.stats().delivered, 0u);
}

TEST(SimNetwork, DuplicationDeliversTwice) {
  NetFixture fx(FaultConfig{.duplicate_probability = 1.0});
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  fx.network.send(a, b, {5});
  fx.scheduler.run();
  EXPECT_EQ(fx.received[b].size(), 2u);
  EXPECT_EQ(fx.network.stats().duplicated, 1u);
}

TEST(SimNetwork, PartitionBlocksAndHealRestores) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  const NodeId c = fx.add_recorder();
  fx.network.set_partitions({{a}, {b, c}});
  EXPECT_FALSE(fx.network.connected(a, b));
  EXPECT_TRUE(fx.network.connected(b, c));
  fx.network.send(a, b, {1});
  fx.network.send(b, c, {2});
  fx.scheduler.run();
  EXPECT_TRUE(fx.received[b].empty());
  EXPECT_EQ(fx.received[c].size(), 1u);
  EXPECT_EQ(fx.network.stats().blocked, 1u);

  fx.network.heal();
  EXPECT_TRUE(fx.network.connected(a, b));
  fx.network.send(a, b, {3});
  fx.scheduler.run();
  EXPECT_EQ(fx.received[b].size(), 1u);
}

TEST(SimNetwork, PartitionRaisedInFlightBlocksDelivery) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  fx.network.send(a, b, {1});  // delivery at t=100
  fx.scheduler.run_until(50);
  fx.network.set_partitions({{a}, {b}});
  fx.scheduler.run();
  EXPECT_TRUE(fx.received[b].empty());
  EXPECT_EQ(fx.network.stats().blocked, 1u);
}

TEST(SimNetwork, StatsCountBytes) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  fx.network.send(a, b, std::vector<std::uint8_t>(37, 0));
  fx.scheduler.run();
  EXPECT_EQ(fx.network.stats().sent, 1u);
  EXPECT_EQ(fx.network.stats().bytes, 37u);
}

TEST(SimNetwork, DeliveryTapObservesTraffic) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  int taps = 0;
  fx.network.set_delivery_tap(
      [&](NodeId from, NodeId to, std::span<const std::uint8_t>, SimTime at) {
        ++taps;
        EXPECT_EQ(from, a);
        EXPECT_EQ(to, b);
        EXPECT_EQ(at, 100);
      });
  fx.network.send(a, b, {1});
  fx.scheduler.run();
  EXPECT_EQ(taps, 1);
}

TEST(SimNetwork, JitterReordersMessages) {
  // With large jitter, two messages sent back-to-back can arrive swapped.
  NetFixture fx({}, /*jitter=*/1000, /*seed=*/7);
  const NodeId a = fx.add_recorder();
  const NodeId b = fx.add_recorder();
  bool reordered = false;
  for (std::uint8_t round = 0; round < 20 && !reordered; ++round) {
    fx.received[b].clear();
    fx.network.send(a, b, {static_cast<std::uint8_t>(round * 2)});
    fx.network.send(a, b, {static_cast<std::uint8_t>(round * 2 + 1)});
    fx.scheduler.run();
    ASSERT_EQ(fx.received[b].size(), 2u);
    reordered = fx.received[b][0].second[0] > fx.received[b][1].second[0];
  }
  EXPECT_TRUE(reordered);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    NetFixture fx(FaultConfig{.drop_probability = 0.3}, 500, seed);
    const NodeId a = fx.add_recorder();
    const NodeId b = fx.add_recorder();
    for (std::uint8_t i = 0; i < 50; ++i) {
      fx.network.send(a, b, {i});
    }
    fx.scheduler.run();
    std::vector<std::uint8_t> order;
    for (const auto& [from, payload] : fx.received[b]) {
      order.push_back(payload[0]);
    }
    return order;
  };
  EXPECT_EQ(run_once(1234), run_once(1234));
  EXPECT_NE(run_once(1234), run_once(5678));
}

TEST(SimNetwork, RejectsUnknownNodes) {
  NetFixture fx;
  const NodeId a = fx.add_recorder();
  EXPECT_THROW(fx.network.send(a, 99, {1}), InvalidArgument);
  EXPECT_THROW(fx.network.send(99, a, {1}), InvalidArgument);
}

}  // namespace
}  // namespace cbc::sim
