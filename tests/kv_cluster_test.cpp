// Multi-process sharded KV tests: S x R forked cbc_kv replicas on
// loopback UDP plus the workload driver, exercising the §5.2 scaling
// story end-to-end — independent causal groups per shard, client-side
// context tokens carrying causality ACROSS shards, digest-equal replicas
// within each shard, and a merged multi-shard session history the
// offline oracle (cbc_check --kv-replicas) accepts. A ChaosTransport
// variant delays intra-shard broadcasts to force context waits and
// proves a causally-stale read is never served.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/kv_harness.h"
#include "obs/json_lite.h"

namespace cbc {
namespace {

using testkit::KvHarness;
using testkit::NodeReport;

/// Runs cbc_check --kv-replicas R --site-local get over the recorded
/// histories; returns its exit status (0 = CC, CM, and CCv all hold on
/// the merged per-rank histories).
int run_kv_check(const KvHarness& kv, std::size_t replicas) {
  std::vector<std::string> args = {
      CBC_CHECK_BIN, "--kv-replicas", std::to_string(replicas),
      "--site-local", "get"};
  for (const std::string& path : kv.history_paths()) {
    args.push_back(path);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Runs cbc_top --json with every replica's progress file as a
/// discovery input, stdout captured to `out_path`; returns exit status.
int run_top(const KvHarness& kv, const std::string& out_path) {
  std::vector<std::string> args = {CBC_TOP_BIN, "--json"};
  for (const std::string& path : kv.progress_paths()) {
    args.push_back("--report");
    args.push_back(path);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0) {
      std::_Exit(126);
    }
    ::dup2(fd, STDOUT_FILENO);
    ::close(fd);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(KvCluster, FourShardsTimesThreeReplicasServeAMixedWorkload) {
  // The issue's acceptance scenario: 4 shards x 3 replicas, 3 sessions
  // running mixed get/put rounds that read each other's keys across
  // shards through adopted context tokens, closed by a fence round.
  KvHarness kv({.shards = 4, .replicas = 3, .metrics_snapshots = true});
  kv.start_all();
  ASSERT_EQ(kv.run_driver(/*sessions=*/3, /*rounds=*/3, /*ops=*/4), 0);
  ASSERT_TRUE(kv.wait_for_all_reports());

  const NodeReport driver = *kv.driver_report();
  EXPECT_EQ(driver.at("done"), "1");
  // The client-side staleness oracle: every cross-shard read after token
  // adoption observed the current round's value.
  EXPECT_EQ(driver.at("value_mismatches"), "0");
  EXPECT_EQ(driver.at("failures"), "0");
  EXPECT_EQ(driver.at("shutdown_failures"), "0");

  for (std::size_t shard = 0; shard < 4; ++shard) {
    const NodeReport leader = *kv.report(shard, 0);
    EXPECT_EQ(leader.at("done"), "1");
    EXPECT_EQ(leader.at("violations"), "0");
    EXPECT_EQ(leader.at("malformed"), "0");
    // The driver's final fence produced a digest for this shard (its
    // value is the fence's sub-map digest, reported for the record).
    EXPECT_NE(driver.at("digest_shard" + std::to_string(shard)), "");
    // Within a shard every replica closed on the same stable digest chain.
    for (std::size_t rank = 1; rank < 3; ++rank) {
      const NodeReport report = *kv.report(shard, rank);
      EXPECT_EQ(report.at("done"), "1");
      EXPECT_EQ(report.at("violations"), "0");
      EXPECT_EQ(report.at("digest"), leader.at("digest"))
          << "shard " << shard << " rank " << rank;
      EXPECT_EQ(report.at("digest_count"), leader.at("digest_count"));
      EXPECT_EQ(report.at("delivered"), leader.at("delivered"));
    }
  }

  // The merged multi-shard session history passes the offline oracle:
  // CC, CM, and CCv over per-rank concatenations of all four shards.
  EXPECT_EQ(run_kv_check(kv, 3), 0);

  // Observability: the context-wait histogram is on the scrape, labelled
  // with the replica's shard identity.
  const std::string page = slurp(kv.metrics_snapshot_path(0, 0));
  EXPECT_NE(page.find("cbc_kv_context_wait_us_bucket"), std::string::npos);
  EXPECT_NE(page.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(page.find("cbc_kv_requests"), std::string::npos);
}

TEST(KvCluster, DelayedBroadcastsForceContextWaitsNeverStaleReads) {
  // Intra-shard broadcast links get 30-80ms of injected delay while
  // client traffic (router slot, node 3) stays fast: a session that puts
  // at one replica and whose neighbour immediately reads the key at
  // ANOTHER replica arrives before the broadcast does. The §5.2 rule
  // must park that read until the frontier covers the adopted token —
  // serving it stale would surface as a value mismatch at the driver.
  std::string plan;
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from != to) {
        plan += "link " + std::to_string(from) + " " + std::to_string(to) +
                " delay 30000 80000\n";
      }
    }
  }
  KvHarness kv({.shards = 2, .replicas = 3, .fault_plan = plan});
  kv.start_all();
  ASSERT_EQ(kv.run_driver(/*sessions=*/2, /*rounds=*/2, /*ops=*/2), 0);
  ASSERT_TRUE(kv.wait_for_all_reports());

  const NodeReport driver = *kv.driver_report();
  EXPECT_EQ(driver.at("done"), "1");
  // Never served stale — the whole point of the wait.
  EXPECT_EQ(driver.at("value_mismatches"), "0");
  EXPECT_EQ(driver.at("failures"), "0");

  std::uint64_t waits = 0;
  std::uint64_t timeouts = 0;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const NodeReport report = *kv.report(shard, rank);
      EXPECT_EQ(report.at("violations"), "0");
      waits += std::stoull(report.at("context_waits"));
      timeouts += std::stoull(report.at("context_timeouts"));
    }
  }
  // The delay makes at least one read causally stale on arrival: it
  // parked (and either got served after delivery or was refused and
  // retried — both counted, neither served stale).
  EXPECT_GE(waits, 1u);
  // Shards still converged under the chaos.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const NodeReport leader = *kv.report(shard, 0);
    for (std::size_t rank = 1; rank < 3; ++rank) {
      EXPECT_EQ(kv.report(shard, rank)->at("digest"), leader.at("digest"));
    }
  }
  // The oracle agrees: even with parks/retries the merged histories are
  // causally consistent.
  EXPECT_EQ(run_kv_check(kv, 3), 0);
  (void)timeouts;  // informational; may be 0 when every park drained
}

TEST(KvCluster, CbcTopAggregatesALiveFourByThreeCluster) {
  // The fleet view over a live 4x3 deployment: cbc_top discovers every
  // replica's ephemeral scrape port from its progress file, fetches
  // /metrics.json from all 12 processes mid-workload, and reports merged
  // cluster families plus per-shard context-wait percentiles.
  KvHarness kv({.shards = 4, .replicas = 3, .metrics_snapshots = true});
  kv.start_all();

  // Progress files (with metrics_port=) appear at server startup,
  // before the driver runs — every replica is guaranteed alive here.
  for (const std::string& path : kv.progress_paths()) {
    bool discovered = false;
    for (int waited = 0; waited < 30'000; waited += 20) {
      const auto progress = testkit::parse_kv_file(path);
      if (progress && progress->count("metrics_port") != 0 &&
          progress->at("metrics_port") != "none") {
        discovered = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(discovered) << path << " never published a metrics port";
  }

  // Drive the workload from a background thread and scrape while the
  // cluster is serving it.
  int driver_status = -1;
  std::thread driver([&kv, &driver_status] {
    driver_status = kv.run_driver(/*sessions=*/3, /*rounds=*/6, /*ops=*/4);
  });
  bool saw_request = false;
  for (int waited = 0; waited < 60'000 && !saw_request; waited += 20) {
    for (const std::string& path : kv.progress_paths()) {
      const auto progress = testkit::parse_kv_file(path);
      if (progress && progress->count("requests") != 0 &&
          std::stoull(progress->at("requests")) >= 1) {
        saw_request = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(saw_request) << "no replica ever served a client request";

  const std::string top_json = kv.dir() + "/top.json";
  const int top_status = run_top(kv, top_json);
  driver.join();
  ASSERT_EQ(driver_status, 0);
  ASSERT_EQ(top_status, 0) << slurp(top_json);

  const obs::JsonValue doc = obs::json_parse(slurp(top_json));
  EXPECT_EQ(doc.find("endpoints")->as_number(), 12.0);
  EXPECT_EQ(doc.find("up")->as_number(), 12.0);
  ASSERT_EQ(doc.find("nodes")->as_array().size(), 12u);

  // Merged cluster families: the whole fleet's request counters and the
  // always-on flight rings are visible in one place.
  const obs::JsonValue* cluster = doc.find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_GT(cluster->find("kv.requests")->as_number(), 0.0);
  EXPECT_GT(cluster->find("flight.records")->as_number(), 0.0);
  EXPECT_GT(cluster->find("osend.delivered")->as_number(), 0.0);

  // Per-shard context-wait percentiles: all four shards report the
  // summary (count summed over replicas, percentile upper bounds).
  const obs::JsonValue* shards = doc.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->as_object().size(), 4u);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const obs::JsonValue* entry = shards->find(std::to_string(shard));
    ASSERT_NE(entry, nullptr);
    for (const char* key : {"count", "p50", "p90", "p99"}) {
      ASSERT_NE(entry->find(key), nullptr)
          << "shard " << shard << " missing " << key;
      EXPECT_GE(entry->find(key)->as_number(), 0.0);
    }
  }

  ASSERT_TRUE(kv.wait_for_all_reports());
  EXPECT_EQ(kv.driver_report()->at("value_mismatches"), "0");
}

}  // namespace
}  // namespace cbc
