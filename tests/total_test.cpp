// Tests for the total-ordering layer: ASend (deterministic round merge)
// and the fixed-sequencer baseline.
#include <gtest/gtest.h>

#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "total/asend.h"
#include "total/sequencer.h"
#include "util/rng.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

std::vector<std::uint8_t> bytes(std::uint8_t v) { return {v}; }

// ---------- ASend ----------

TEST(ASend, SingleMessageDeliveredEverywhere) {
  SimEnv env;
  Group<ASendMember> group(env.transport, 3);
  const MessageId id = group[0].asend("m", bytes(1));
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(group[i].log().size(), 1u) << "member " << i;
    EXPECT_EQ(group[i].log()[0].id, id);
  }
}

TEST(ASend, IdenticalSequenceAtAllMembersUnderJitter) {
  // The whole point of eq. (5): "the sequence of state transitions is the
  // same at every member". Sweep seeds; any divergence is a failure.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 6000;
    config.seed = seed;
    SimEnv env(config);
    Group<ASendMember> group(env.transport, 4);
    Rng rng(seed);
    for (int k = 0; k < 25; ++k) {
      group[rng.next_below(4)].asend("m" + std::to_string(k), bytes(0));
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(3000)));
    }
    env.run();
    EXPECT_EQ(group[0].log().size(), 25u) << "seed " << seed;
    EXPECT_TRUE(group.all_delivered_same_sequence()) << "seed " << seed;
  }
}

TEST(ASend, ConcurrentSubmissionsMergedDeterministically) {
  // All members submit in the same round; delivery order within the round
  // is the deterministic (label, sender, seq) sort.
  SimEnv env;
  Group<ASendMember> group(env.transport, 3);
  group[2].asend("zeta", bytes(2));
  group[0].asend("alpha", bytes(0));
  group[1].asend("beta", bytes(1));
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(delivered_labels(group[i].log()),
              (std::vector<std::string>{"alpha", "beta", "zeta"}));
  }
}

TEST(ASend, SkipsLetSparseTrafficProgress) {
  // One member submits; the others contribute SKIPs; the round closes.
  SimEnv env;
  Group<ASendMember> group(env.transport, 5);
  group[3].asend("only", bytes(1));
  env.run();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(group[i].log().size(), 1u);
    EXPECT_EQ(group[i].current_round(), 1u);  // round 0 closed
    EXPECT_EQ(group[i].buffered_frames(), 0u);
  }
}

TEST(ASend, ManyRoundsFromOneSender) {
  SimEnv env;
  Group<ASendMember> group(env.transport, 3);
  for (int k = 0; k < 10; ++k) {
    group[0].asend("m" + std::to_string(k), bytes(static_cast<std::uint8_t>(k)));
  }
  env.run();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group[i].log().size(), 10u);
  }
  EXPECT_TRUE(group.all_delivered_same_sequence());
  // Messages from one sender occupy successive rounds, so they deliver in
  // submission order.
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(group[1].log()[static_cast<std::size_t>(k)].label(),
              "m" + std::to_string(k));
  }
}

TEST(ASend, StatsCountRealMessagesOnly) {
  SimEnv env;
  Group<ASendMember> group(env.transport, 4);
  group[0].asend("m", bytes(1));
  env.run();
  EXPECT_EQ(group[1].stats().delivered, 1u);  // skips are not deliveries
  EXPECT_EQ(group[0].stats().broadcasts, 1u);
}

TEST(ASend, TwoGroupSizesParameterized) {
  for (const std::size_t n : {2u, 3u, 6u, 9u}) {
    SimEnv::Config config;
    config.jitter_us = 2000;
    config.seed = n;
    SimEnv env(config);
    Group<ASendMember> group(env.transport, n);
    for (std::size_t i = 0; i < n; ++i) {
      group[i].asend("m" + std::to_string(i), bytes(0));
    }
    env.run();
    EXPECT_TRUE(group.all_delivered_same_sequence()) << "n=" << n;
    EXPECT_EQ(group[0].log().size(), n) << "n=" << n;
  }
}

// ---------- Sequencer ----------

TEST(Sequencer, MemberZeroIsSequencer) {
  SimEnv env;
  Group<SequencerMember> group(env.transport, 3);
  EXPECT_TRUE(group[0].is_sequencer());
  EXPECT_FALSE(group[1].is_sequencer());
}

TEST(Sequencer, IdenticalSequenceAtAllMembersUnderJitter) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 6000;
    config.seed = seed;
    SimEnv env(config);
    Group<SequencerMember> group(env.transport, 4);
    Rng rng(seed + 99);
    for (int k = 0; k < 25; ++k) {
      group[rng.next_below(4)].broadcast("m" + std::to_string(k), bytes(0),
                                         DepSpec::none());
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(3000)));
    }
    env.run();
    EXPECT_EQ(group[0].log().size(), 25u) << "seed " << seed;
    EXPECT_TRUE(group.all_delivered_same_sequence()) << "seed " << seed;
  }
}

TEST(Sequencer, SequencerLocalSubmissionOrderedImmediately) {
  SimEnv env;
  Group<SequencerMember> group(env.transport, 2);
  group[0].broadcast("a", bytes(1), DepSpec::none());
  // The sequencer applies its own stamp and delivers locally at once.
  EXPECT_EQ(group[0].log().size(), 1u);
  env.run();
  EXPECT_EQ(group[1].log().size(), 1u);
}

TEST(Sequencer, LatencyShapes_SequencerTwoHopsAsendOneHopWhenDense) {
  SimEnv env;  // fixed 1000us per hop
  Group<SequencerMember> group(env.transport, 3);
  group[1].broadcast("m", bytes(1), DepSpec::none());
  env.run();
  // request hop (1 -> 0) + order hop (0 -> 2): member 2 delivers at 2000.
  ASSERT_EQ(group[2].log().size(), 1u);
  EXPECT_EQ(group[2].log()[0].delivered_at, 2000);

  // ASend with a *dense* round (every member submits, as in the lock
  // protocol) completes in ONE hop: each member holds all N frames after
  // a single broadcast crossing.
  SimEnv env2;
  Group<ASendMember> group2(env2.transport, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    group2[i].asend("m" + std::to_string(i), bytes(1));
  }
  env2.run();
  ASSERT_EQ(group2[2].log().size(), 3u);
  EXPECT_EQ(group2[2].log()[0].delivered_at, 1000);

  // With a *sparse* round the skip exchange costs one extra hop (2 total):
  // the structural trade-off §5.2 alludes to for large/quiet groups.
  SimEnv env3;
  Group<ASendMember> group3(env3.transport, 3);
  group3[1].asend("m", bytes(1));
  env3.run();
  ASSERT_EQ(group3[2].log().size(), 1u);
  EXPECT_EQ(group3[2].log()[0].delivered_at, 2000);
}

TEST(Sequencer, ASendAndSequencerAgreeOnSetNotNecessarilyOrder) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = 12;
  SimEnv env(config);
  Group<SequencerMember> group(env.transport, 3);
  for (int k = 0; k < 9; ++k) {
    group[static_cast<std::size_t>(k) % 3].broadcast(
        "m" + std::to_string(k), bytes(0), DepSpec::none());
  }
  env.run();
  EXPECT_TRUE(group.all_delivered_same_set());
  EXPECT_TRUE(group.all_delivered_same_sequence());
}

}  // namespace
}  // namespace cbc
