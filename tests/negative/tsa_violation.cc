// Negative compile fixture for Clang -Wthread-safety (WILL_FAIL twin of
// tsan_canary): deliberate capability violations that the analysis MUST
// reject. If the `tsa_negative_compile` test ever starts "passing", the
// thread-safety job is no longer analyzing anything and its green build
// means nothing.
//
// Compiled with -DCBC_TSA_FIXTURE_CORRECT the same file is violation-free;
// the control test compiles that variant to prove the failure comes from
// the analysis, not a broken include path or flag.
#include "util/thread_annotations.h"

namespace fixture {

class Account {
 public:
  void deposit(int amount) {
#ifdef CBC_TSA_FIXTURE_CORRECT
    const cbc::LockGuard guard(mutex_);
#endif
    // Without the guard this writes a guarded member lock-free — the
    // exact class of bug the capability annotations exist to reject.
    balance_ += amount;
  }

  void audit() CBC_REQUIRES(mutex_) { last_audit_ = balance_; }

  void run_audit() {
#ifdef CBC_TSA_FIXTURE_CORRECT
    const cbc::LockGuard guard(mutex_);
#endif
    audit();  // REQUIRES(mutex_) called without holding it
  }

 private:
  cbc::Mutex mutex_{cbc::kRankLeaf, "fixture account"};
  int balance_ CBC_GUARDED_BY(mutex_) = 0;
  int last_audit_ CBC_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Account account;
  account.deposit(1);
  account.run_audit();
  return 0;
}
