// Observability layer tests: MetricsRegistry primitives and exposition,
// the Tracer and Chrome trace-event rendering, the JSON mini-parser and
// trace merger, the InstrumentationLayer decorator, and — the load-bearing
// ones — trace-context propagation through batching and through reliable
// retransmission (a retransmitted frame must never mint a second deliver
// span).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "causal/osend.h"
#include "common/group_fixture.h"
#include "common/sim_env.h"
#include "obs/collectors.h"
#include "obs/instrument_layer.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "transport/batching.h"
#include "util/ensure.h"

namespace cbc {
namespace {

using testkit::Group;
using testkit::SimEnv;

std::vector<std::uint8_t> bytes(std::uint8_t v) { return {v}; }

// ---------- MetricsRegistry ----------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.count");
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5u);
  // Same name resolves to the same primitive.
  EXPECT_EQ(&registry.counter("test.count"), &counter);

  obs::Gauge& gauge = registry.gauge("test.depth");
  gauge.set(7);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 5);
  gauge.record_max(3);
  EXPECT_EQ(gauge.value(), 5);  // 3 < 5: unchanged
  gauge.record_max(11);
  EXPECT_EQ(gauge.value(), 11);

  obs::LatencyHistogram& hist =
      registry.histogram("test.lat_us", {10.0, 100.0, 1000.0});
  hist.record(5);
  hist.record(50);
  hist.record(5000);  // +inf bucket
  EXPECT_EQ(hist.count(), 3u);
  const std::vector<std::uint64_t> buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);

  const std::map<std::string, double> snap = registry.snapshot();
  EXPECT_EQ(snap.at("test.count"), 5.0);
  EXPECT_EQ(snap.at("test.depth"), 11.0);
  EXPECT_EQ(snap.at("test.lat_us.count"), 3.0);
}

TEST(Metrics, LatencyHistogramPercentileEstimate) {
  obs::LatencyHistogram hist({10.0, 100.0, 1000.0});
  EXPECT_DOUBLE_EQ(hist.percentile_estimate(50), 0.0);  // empty
  for (int i = 0; i < 100; ++i) {
    hist.record(50.0);
  }
  const double p50 = hist.percentile_estimate(50);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::LatencyHistogram({5.0, 5.0}), InvalidArgument);
  EXPECT_THROW(obs::LatencyHistogram({10.0, 1.0}), InvalidArgument);
}

TEST(Metrics, CollectorsRunAtScrapeAndUnregisterViaHandle) {
  obs::MetricsRegistry registry;
  std::uint64_t source = 42;
  {
    const obs::CollectorHandle handle = registry.register_collector(
        [&source](obs::CollectorSink& sink) {
          sink.counter("ext.value", source);
          sink.gauge("ext.level", 1.5);
        });
    const auto snap = registry.snapshot();
    EXPECT_EQ(snap.at("ext.value"), 42.0);
    EXPECT_EQ(snap.at("ext.level"), 1.5);
    source = 43;
    EXPECT_EQ(registry.snapshot().at("ext.value"), 43.0);
  }
  // Handle destroyed: the collector no longer contributes.
  EXPECT_EQ(registry.snapshot().count("ext.value"), 0u);
}

TEST(Metrics, PrometheusRendering) {
  obs::MetricsRegistry registry;
  registry.counter("osend.delivered").inc(12);
  registry.gauge("osend.holdback_depth").set(3);
  registry.histogram("stack.lat_us", {10.0, 100.0}).record(42);
  const std::string page = registry.render_prometheus();
  EXPECT_NE(page.find("# TYPE cbc_osend_delivered counter"),
            std::string::npos);
  EXPECT_NE(page.find("cbc_osend_delivered 12"), std::string::npos);
  EXPECT_NE(page.find("# TYPE cbc_osend_holdback_depth gauge"),
            std::string::npos);
  EXPECT_NE(page.find("cbc_stack_lat_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("cbc_stack_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("cbc_stack_lat_us_count 1"), std::string::npos);
}

TEST(Metrics, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("osend.delivered"), "cbc_osend_delivered");
  EXPECT_EQ(obs::prometheus_name("a-b c"), "cbc_a_b_c");
}

// ---------- json_lite ----------

TEST(JsonLite, ParsesScalarsArraysObjects) {
  const obs::JsonValue doc = obs::json_parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\ny", "n": -3})");
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.5);
  EXPECT_EQ(doc.find("b")->as_array().size(), 3u);
  EXPECT_TRUE(doc.find("b")->as_array()[0].as_bool());
  EXPECT_TRUE(doc.find("b")->as_array()[2].is_null());
  EXPECT_EQ(doc.find("s")->as_string(), "x\ny");
  EXPECT_DOUBLE_EQ(doc.find("n")->as_number(), -3.0);
}

TEST(JsonLite, RejectsMalformedInput) {
  EXPECT_THROW(obs::json_parse("{"), InvalidArgument);
  EXPECT_THROW(obs::json_parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(obs::json_parse(R"({"a":})"), InvalidArgument);
  EXPECT_THROW(obs::json_parse(""), InvalidArgument);
}

TEST(JsonLite, DumpRoundTrips) {
  const std::string text = R"({"k":"v","list":[1,2]})";
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue again = obs::json_parse(doc.dump());
  EXPECT_EQ(again.find("k")->as_string(), "v");
  EXPECT_EQ(again.find("list")->as_array().size(), 2u);
}

// ---------- Tracer ----------

TEST(Trace, EventsRenderAsLoadableChromeJson) {
  obs::Tracer::Options options;
  options.pid = 7;
  options.process_name = "node 7";
  obs::Tracer tracer(options);
  const std::int64_t now = obs::Tracer::wall_now_us();
  tracer.instant("submit", "msg", now, "\"msg\":\"s7:1\"");
  tracer.complete("deliver", "msg", now + 10, 5, "\"msg\":\"s7:1\"");
  tracer.flow_start("msg", "msg", 0xABCD, now);
  tracer.flow_end("msg", "msg", 0xABCD, now + 10);

  const obs::JsonValue doc =
      obs::parse_chrome_trace(tracer.render_chrome_json());
  const obs::TraceSummary summary = obs::summarize_chrome_trace(doc);
  EXPECT_EQ(summary.events, 5u);  // 4 + process_name metadata
  EXPECT_EQ(summary.deliver_events.at(7), 1u);
  EXPECT_EQ(summary.message_flows, 1u);
  EXPECT_EQ(summary.unmatched_flows, 0u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer({});
  const std::size_t baseline = tracer.size();  // metadata only
  tracer.set_enabled(false);
  tracer.instant("x", "c", 1);
  EXPECT_EQ(tracer.size(), baseline);
  obs::Hooks hooks{nullptr, &tracer, "p"};
  EXPECT_FALSE(obs::tracing(hooks));
}

TEST(Trace, MaxEventsCapDropsAndCounts) {
  obs::Tracer::Options options;
  options.max_events = 3;
  obs::Tracer tracer(options);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("e", "c", i);
  }
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_GT(tracer.dropped(), 0u);
}

TEST(Trace, MergeStitchesPerProcessFilesIntoOneTimeline) {
  const std::string dir = ::testing::TempDir();
  std::vector<std::string> paths;
  const std::int64_t base = obs::Tracer::wall_now_us();
  for (std::uint32_t pid = 0; pid < 2; ++pid) {
    obs::Tracer::Options options;
    options.pid = pid;
    options.process_name = "node " + std::to_string(pid);
    obs::Tracer tracer(options);
    const MessageId id{0, 1};
    if (pid == 0) {
      tracer.instant("submit", "msg", base, "\"msg\":\"s0:1\"");
      tracer.flow_start("msg", "msg", obs::flow_id(id), base);
    } else {
      tracer.complete("deliver", "msg", base + 100, 4, "\"msg\":\"s0:1\"");
      tracer.flow_end("msg", "msg", obs::flow_id(id), base + 100);
    }
    const std::string path =
        dir + "/obs_merge_" + std::to_string(pid) + ".json";
    ASSERT_TRUE(tracer.write_file(path));
    paths.push_back(path);
  }
  const std::string merged = obs::merge_trace_files(paths);
  const obs::JsonValue doc = obs::parse_chrome_trace(merged);
  const obs::TraceSummary summary = obs::summarize_chrome_trace(doc);
  // The submit-side flow start and the deliver-side flow end only pair up
  // in the merged document — the cross-process arrow.
  EXPECT_EQ(summary.message_flows, 1u);
  EXPECT_EQ(summary.unmatched_flows, 0u);
  EXPECT_EQ(summary.deliver_events.at(1), 1u);

  // Merged output is itself a valid single trace; events are sorted.
  const auto& events = doc.find("traceEvents")->as_array();
  double last_ts = -2.0;
  for (const obs::JsonValue& event : events) {
    const double ts = event.find("ts")->as_number();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST(Trace, MergeRejectsMalformedInput) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/obs_bad_trace.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"traceEvents\":[{\"ph\":\"i\"}]}";  // missing name/ts/pid
  }
  EXPECT_THROW((void)obs::merge_trace_files({path}), InvalidArgument);
  EXPECT_THROW((void)obs::merge_trace_files({dir + "/does_not_exist.json"}),
               InvalidArgument);
}

// ---------- stack integration ----------

/// Hooks bundle for one in-process group (shared registry + tracer).
struct ObsFixture {
  obs::MetricsRegistry registry;
  obs::Tracer tracer{obs::Tracer::Options{}};

  [[nodiscard]] obs::Hooks hooks(std::string prefix) {
    return {&registry, &tracer, std::move(prefix)};
  }
};

/// Count of `deliver` complete events per traced message id string.
std::map<std::string, int> deliver_spans_by_msg(const obs::Tracer& tracer) {
  std::map<std::string, int> by_msg;
  for (const obs::TraceEvent& event : tracer.events_snapshot()) {
    if (event.ph != 'X' || event.name != "deliver") {
      continue;
    }
    const std::size_t at = event.args_json.find("\"msg\":\"");
    if (at == std::string::npos) {
      ADD_FAILURE() << "deliver span without msg arg: " << event.args_json;
      continue;
    }
    const std::size_t start = at + 7;
    const std::size_t end = event.args_json.find('"', start);
    by_msg[event.args_json.substr(start, end - start)] += 1;
  }
  return by_msg;
}

TEST(ObsStack, InstrumentationLayerMetersTheBoundary) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  SimEnv env;
  ObsFixture obs_fixture;
  const GroupView view = testkit::make_view(2);
  std::vector<std::unique_ptr<BroadcastMember>> stacks;
  for (std::size_t i = 0; i < 2; ++i) {
    auto member = std::make_unique<OSendMember>(
        env.transport, view, [](const Delivery&) {}, OSendMember::Options{});
    stacks.push_back(std::make_unique<obs::InstrumentationLayer>(
        std::move(member),
        obs::InstrumentationLayer::Options{obs_fixture.hooks("stack")}));
  }
  const MessageId first =
      stacks[0]->broadcast("a", bytes(1), DepSpec::none());
  stacks[1]->broadcast("b", bytes(2), DepSpec::after(first));
  env.run();

  const auto snap = obs_fixture.registry.snapshot();
  EXPECT_EQ(snap.at("stack.broadcasts"), 2.0);
  // 2 messages delivered at each of 2 members.
  EXPECT_EQ(snap.at("stack.deliveries"), 4.0);
  EXPECT_EQ(snap.at("stack.submit_to_deliver_us.count"), 4.0);
}

TEST(ObsStack, MemberStatsCollectorAdoptsUnhookedMember) {
  SimEnv env;
  obs::MetricsRegistry registry;
  Group<OSendMember> group(env.transport, 2);
  const obs::CollectorHandle handle =
      obs::attach_member_stats(registry, "m0", group[0]);
  group[0].osend("a", bytes(1), DepSpec::none());
  env.run();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.at("m0.broadcasts"), 1.0);
  EXPECT_EQ(snap.at("m0.delivered"), 1.0);
}

TEST(ObsStack, TraceContextSurvivesBatchUnbatching) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  // Messages ride shared batch frames; the deliver spans at every member
  // must still carry the originating MessageId and close its msg flow.
  SimEnv env;
  ObsFixture obs_fixture;
  BatchingTransport::Options batch_options;
  batch_options.max_batch = 4;
  batch_options.obs = obs_fixture.hooks("batch");
  BatchingTransport batching(env.transport, batch_options);

  OSendMember::Options member_options;
  member_options.obs = obs_fixture.hooks("osend");
  Group<OSendMember> group(batching, 2, member_options);
  std::vector<MessageId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(group[0].osend("m" + std::to_string(i),
                                 bytes(static_cast<std::uint8_t>(i)),
                                 DepSpec::none()));
  }
  env.run();
  ASSERT_EQ(group[1].log().size(), 8u);

  const auto snap = obs_fixture.registry.snapshot();
  EXPECT_EQ(snap.at("batch.messages_in"), snap.at("osend.broadcasts") * 1.0);
  EXPECT_GT(snap.at("batch.batches_out"), 0.0);
  // Batching actually batched: fewer wire messages than frames in.
  EXPECT_LT(snap.at("batch.batches_out"), snap.at("batch.messages_in"));
  EXPECT_GT(snap.at("batch.occupancy.count"), 0.0);

  const std::map<std::string, int> spans = deliver_spans_by_msg(
      obs_fixture.tracer);
  for (const MessageId& id : ids) {
    // Exactly one deliver span per id per member (sender + receiver).
    EXPECT_EQ(spans.at(id.to_string()), 2) << id.to_string();
  }
}

TEST(ObsStack, RetransmittedFramesMintNoDuplicateDeliverSpans) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  // A lossy+duplicating network forces the reliable layer to retransmit
  // and to suppress duplicates; the trace must still show exactly one
  // deliver span per (message, member), and the retransmission counters
  // must account for the recovery work.
  SimEnv::Config config;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.1;
  config.seed = 11;
  SimEnv env(config);
  ObsFixture obs_fixture;

  OSendMember::Options member_options;
  member_options.reliability.enabled = true;
  member_options.obs = obs_fixture.hooks("osend");
  member_options.reliability.obs = obs_fixture.hooks("reliable");
  Group<OSendMember> group(env.transport, 3, member_options);

  std::vector<MessageId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(group[static_cast<std::size_t>(i) % 3].osend(
        "m" + std::to_string(i), bytes(static_cast<std::uint8_t>(i)),
        DepSpec::none()));
  }
  env.run();
  for (std::size_t member = 0; member < 3; ++member) {
    ASSERT_EQ(group[member].log().size(), 20u) << "member " << member;
  }

  const auto snap = obs_fixture.registry.snapshot();
  // The network dropped frames, so recovery must have happened...
  EXPECT_GT(snap.at("reliable.retransmissions"), 0.0);
  // ...and duplicate data frames (network dups + spurious retransmits)
  // were suppressed before the ordering layer saw them.
  EXPECT_GT(snap.at("reliable.duplicates_suppressed"), 0.0);
  EXPECT_EQ(snap.at("osend.duplicates"), 0.0);

  const std::map<std::string, int> spans = deliver_spans_by_msg(
      obs_fixture.tracer);
  ASSERT_EQ(spans.size(), ids.size());
  for (const MessageId& id : ids) {
    // THE dedup claim: one deliver span per id per member, regardless of
    // how many times the frame crossed the wire.
    EXPECT_EQ(spans.at(id.to_string()), 3) << id.to_string();
  }
}

TEST(ObsStack, CausalHoldShowsUpAsOccursAfterEdges) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DCBC_OBS=OFF)";
  }
  SimEnv env;
  ObsFixture obs_fixture;
  OSendMember::Options member_options;
  member_options.obs = obs_fixture.hooks("osend");
  Group<OSendMember> group(env.transport, 2, member_options);
  const MessageId first = group[0].osend("first", bytes(1), DepSpec::none());
  group[0].osend("second", bytes(2), DepSpec::after(first));
  env.run();

  const obs::JsonValue doc =
      obs::parse_chrome_trace(obs_fixture.tracer.render_chrome_json());
  const obs::TraceSummary summary = obs::summarize_chrome_trace(doc);
  // Both members delivered `second` after `first` locally, each drawing
  // one Occurs_After edge.
  EXPECT_GE(summary.occurs_after_flows, 2u);
}

}  // namespace
}  // namespace cbc
