// Negative fixture for the ThreadSanitizer CI job: two threads increment
// a plain int with no synchronization — a textbook data race. The ctest
// registration (CBC_TSAN only, WILL_FAIL) asserts that TSan DETECTS the
// race: if this binary ever exits cleanly under -fsanitize=thread, the
// sanitizer job has stopped observing anything and the "TSan is green"
// signal on the real suite is meaningless.
#include <cstdio>
#include <thread>

namespace {

int racy_counter = 0;  // NOLINT: the race is the point

void hammer() {
  for (int i = 0; i < 100000; ++i) {
    racy_counter += 1;  // unsynchronized read-modify-write
  }
}

}  // namespace

int main() {
  std::thread first(hammer);
  std::thread second(hammer);
  first.join();
  second.join();
  // Without TSan this exits 0 (the canary is only registered under
  // CBC_TSAN); with TSan the race report forces a non-zero exit.
  std::printf("racy_counter=%d\n", racy_counter);
  return 0;
}
