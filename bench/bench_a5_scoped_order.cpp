// A5 — Ablation: scoped total order (eq. 5) vs whole-stream total order.
//
// ASendMember totally orders EVERY message; ScopedOrderMember pays the
// ordering cost only inside application-declared scopes and lets the rest
// flow causally. For a workload where only a fraction of messages needs
// total order, scoped ordering should deliver the unordered majority at
// causal latency.
#include <memory>

#include "bench_common.h"
#include "common/sim_env.h"
#include "total/asend.h"
#include "total/scoped_order.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr std::size_t kMembers = 4;

struct Result {
  double causal_mean_us = 0;   // latency of the unordered traffic
  double ordered_mean_us = 0;  // latency of the ordered traffic
  std::uint64_t wire_msgs = 0;
};

// Scoped: per "round", a burst of causal messages plus one 2-message
// ordered scope.
Result run_scoped(int rounds, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = seed;
  SimEnv env(config);
  const GroupView view = testkit::make_view(kMembers);
  // Track app-release time per label at member kMembers-1.
  Histogram causal_latency;
  Histogram ordered_latency;
  std::vector<std::unique_ptr<ScopedOrderMember>> members;
  for (std::size_t i = 0; i < kMembers; ++i) {
    const bool probe = i == kMembers - 1;
    members.push_back(std::make_unique<ScopedOrderMember>(
        env.transport, view, [&, probe](const Delivery& delivery) {
          if (!probe) {
            return;
          }
          const double latency =
              static_cast<double>(env.scheduler.now() - delivery.sent_at);
          if (delivery.label().rfind("bulk", 0) == 0) {
            causal_latency.add(latency);
          } else if (delivery.label().rfind("ord", 0) == 0) {
            ordered_latency.add(latency);
          }
        }));
  }
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < 8; ++k) {  // the unordered majority
      members[rng.next_below(kMembers)]->send_causal(
          "bulk" + std::to_string(round * 8 + k), {}, DepSpec::none());
    }
    const ScopeId scope = members[0]->open_scope("a" + std::to_string(round));
    env.run();
    members[1]->send_scoped(scope, "ord" + std::to_string(round) + ".1", {});
    members[2]->send_scoped(scope, "ord" + std::to_string(round) + ".2", {});
    env.run();
    members[0]->close_scope(scope, "d" + std::to_string(round));
    env.run();
  }
  Result result;
  result.causal_mean_us = causal_latency.mean();
  result.ordered_mean_us = ordered_latency.mean();
  result.wire_msgs = env.network.stats().sent;
  return result;
}

// Whole-stream: the identical workload where EVERYTHING rides ASend.
Result run_asend(int rounds, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 2000;
  config.seed = seed;
  SimEnv env(config);
  const GroupView view = testkit::make_view(kMembers);
  Histogram causal_latency;
  Histogram ordered_latency;
  std::vector<std::unique_ptr<ASendMember>> members;
  for (std::size_t i = 0; i < kMembers; ++i) {
    const bool probe = i == kMembers - 1;
    members.push_back(std::make_unique<ASendMember>(
        env.transport, view, [&, probe](const Delivery& delivery) {
          if (!probe) {
            return;
          }
          const double latency =
              static_cast<double>(delivery.delivered_at - delivery.sent_at);
          if (delivery.label().rfind("bulk", 0) == 0) {
            causal_latency.add(latency);
          } else if (delivery.label().rfind("ord", 0) == 0) {
            ordered_latency.add(latency);
          }
        }));
  }
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < 8; ++k) {
      members[rng.next_below(kMembers)]->asend(
          "bulk" + std::to_string(round * 8 + k), {});
    }
    members[0]->asend("a" + std::to_string(round), {});
    env.run();
    members[1]->asend("ord" + std::to_string(round) + ".1", {});
    members[2]->asend("ord" + std::to_string(round) + ".2", {});
    env.run();
    members[0]->asend("d" + std::to_string(round), {});
    env.run();
  }
  Result result;
  result.causal_mean_us = causal_latency.mean();
  result.ordered_mean_us = ordered_latency.mean();
  result.wire_msgs = env.network.stats().sent;
  return result;
}

int main_impl() {
  benchkit::banner("A5",
                   "scoped total order (eq. 5) vs whole-stream total order");
  const int rounds = 20;
  const Result scoped = run_scoped(rounds, 91);
  const Result whole = run_asend(rounds, 91);
  Table table({"protocol", "bulk_latency_us", "ordered_latency_us",
               "wire_msgs"});
  table.row({"scoped order (causal outside scopes)",
             benchkit::num(scoped.causal_mean_us),
             benchkit::num(scoped.ordered_mean_us),
             benchkit::num(scoped.wire_msgs)});
  table.row({"whole-stream ASend (order everything)",
             benchkit::num(whole.causal_mean_us),
             benchkit::num(whole.ordered_mean_us),
             benchkit::num(whole.wire_msgs)});
  table.print();
  benchkit::claim(
      "a total order can be defined over a SET of messages scoped by "
      "(lbl_a, lbl_d) on top of the OSend interface — total order on all "
      "messages is just the degenerate case (§5.2)");
  benchkit::measured(
      "unordered traffic flows at causal latency (" +
      benchkit::num(scoped.causal_mean_us) + "us vs " +
      benchkit::num(whole.causal_mean_us) +
      "us when everything is totally ordered) while the scoped set still "
      "releases identically everywhere");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::main_impl(); }
