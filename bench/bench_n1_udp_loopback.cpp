// n1: real-socket cost baseline — UDP loopback through UdpTransport.
//
// Everything else in bench/ runs over the simulated network; this binary
// measures what the kernel actually charges for the same abstraction:
// one-way datagram latency through the event loop, and per-frame cost
// when BatchingTransport amortizes the syscall across 1 vs 64 frames.
// The numbers feed the committed BENCH_n1.json baseline; compare.py gates
// regressions (a lost zero-copy path or an accidental extra syscall per
// frame shows up here first).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/udp_ports.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/udp_transport.h"
#include "transport/batching.h"

namespace cbc::net {
namespace {

constexpr std::size_t kPayloadBytes = 256;

/// Event loop + UdpTransport over two loopback sockets. The caller
/// registers endpoints (on the transport or a decorator over it), then
/// calls start(); the loop runs on a worker thread while the benchmark
/// thread sends and spins on its own delivery counter. One iteration
/// never overlaps the next, so the socket buffers cannot overflow and
/// loopback delivery is lossless.
struct LoopbackRig {
  LoopbackRig()
      : udp(loop, ClusterConfig::localhost(testkit::reserve_udp_ports(2))) {}

  ~LoopbackRig() {
    loop.stop();
    if (thread.joinable()) {
      thread.join();
    }
  }

  void start() {
    thread = std::thread([this] { loop.run(); });
    while (!loop.running()) {
      std::this_thread::yield();
    }
  }

  void wait_for(std::uint64_t target) {
    while (received.load(std::memory_order_acquire) < target) {
      // Busy-wait: sub-10us one-way times make any sleep dominate.
    }
  }

  EventLoop loop;
  UdpTransport udp;
  std::atomic<std::uint64_t> received{0};
  std::thread thread;
};

void BM_UdpLoopbackSingleFrame(benchmark::State& state) {
  LoopbackRig rig;
  rig.udp.add_endpoint([](NodeId, const WireFrame&) {});
  rig.udp.add_endpoint(
      [&rig](NodeId, const WireFrame&) { rig.received.fetch_add(1); });
  rig.start();
  const SharedBuffer frame =
      make_buffer(std::vector<std::uint8_t>(kPayloadBytes, 0x5A));
  std::uint64_t sent = 0;
  for (auto _ : state) {
    rig.udp.send(0, 1, frame);
    sent += 1;
    rig.wait_for(sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  state.SetBytesProcessed(static_cast<std::int64_t>(sent * kPayloadBytes));
}
BENCHMARK(BM_UdpLoopbackSingleFrame)->UseRealTime();

/// `frames` frames per iteration through BatchingTransport(max_batch ==
/// frames): frames == 1 sends one datagram per frame, frames == 64 packs
/// all 64 into one datagram — the spread is the syscall amortization.
void BM_UdpLoopbackBatched(benchmark::State& state) {
  const auto frames = static_cast<std::uint64_t>(state.range(0));
  LoopbackRig rig;
  BatchingTransport::Options options;
  options.max_batch = frames;
  BatchingTransport batching(rig.udp, options);
  batching.add_endpoint([](NodeId, const WireFrame&) {});
  batching.add_endpoint(  // counts unpacked frames, not datagrams
      [&rig](NodeId, const WireFrame&) { rig.received.fetch_add(1); });
  rig.start();
  const SharedBuffer frame =
      make_buffer(std::vector<std::uint8_t>(kPayloadBytes, 0x5A));
  std::uint64_t sent = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < frames; ++i) {
      batching.send(0, 1, frame);
    }
    batching.flush();  // no-op when max_batch already pushed the batch out
    sent += frames;
    rig.wait_for(sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  state.SetBytesProcessed(static_cast<std::int64_t>(sent * kPayloadBytes));
}
BENCHMARK(BM_UdpLoopbackBatched)->Arg(1)->Arg(64)->UseRealTime();

}  // namespace
}  // namespace cbc::net
