// C3 — Claim (§3.2, §7): agreement at stable points needs NO explicit
// agreement protocol — members "reach agreement without requiring
// separate message exchanges across entities" — and operates at the
// granularity of message SETS rather than individual messages.
//
// The same workload (30 cycles of 9 commutative ops + 1 sync op, the
// paper's 90% mix) runs under three protocols; we count wire messages,
// agreement events, and the latency until an operation is applied
// everywhere.
#include "apps/counter.h"
#include "baseline/explicit_agreement.h"
#include "baseline/total_replica.h"
#include "bench_common.h"
#include "replica/replica_group.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr std::size_t kMembers = 4;
constexpr int kCycles = 30;
constexpr int kCommutativePerCycle = 9;

SimEnv::Config config_for() {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 21;
  return config;
}

struct Costs {
  std::uint64_t wire_msgs = 0;
  std::uint64_t agreement_events = 0;  // stable points / commits / stamps
  std::uint64_t ops = 0;
  SimTime sim_time_us = 0;
};

Costs run_stable_point() {
  SimEnv env(config_for());
  ReplicaGroup<apps::Counter> group(env.transport, kMembers,
                                    apps::Counter::spec());
  Rng rng(3);
  Costs costs;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int k = 0; k < kCommutativePerCycle; ++k) {
      group.node(rng.next_below(kMembers)).submit(apps::Counter::inc(1));
      ++costs.ops;
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(250)));
    }
    group.node(0).submit(apps::Counter::rd());
    ++costs.ops;
    env.run();
  }
  costs.wire_msgs = env.network.stats().sent;
  costs.agreement_events = group.node(0).detector().history().size();
  costs.sim_time_us = env.scheduler.now();
  return costs;
}

Costs run_explicit_agreement() {
  SimEnv env(config_for());
  const GroupView view = testkit::make_view(kMembers);
  std::vector<std::unique_ptr<ExplicitAgreementNode<apps::Counter>>> nodes;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(std::make_unique<ExplicitAgreementNode<apps::Counter>>(
        env.transport, view));
  }
  Rng rng(3);
  Costs costs;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int k = 0; k < kCommutativePerCycle; ++k) {
      nodes[rng.next_below(kMembers)]->submit(apps::Counter::inc(1));
      ++costs.ops;
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(250)));
    }
    nodes[0]->submit(apps::Counter::rd());
    ++costs.ops;
    env.run();
  }
  costs.wire_msgs = env.network.stats().sent;
  std::uint64_t commits = 0;
  for (const auto& node : nodes) {
    commits += node->stats().rounds_completed;  // one ack round per op
  }
  costs.agreement_events = commits;
  costs.sim_time_us = env.scheduler.now();
  return costs;
}

Costs run_sequencer() {
  SimEnv env(config_for());
  const GroupView view = testkit::make_view(kMembers);
  TotalReplicaNode<apps::Counter>::Options options;
  options.engine = TotalOrderEngine::kSequencer;
  std::vector<std::unique_ptr<TotalReplicaNode<apps::Counter>>> nodes;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(std::make_unique<TotalReplicaNode<apps::Counter>>(
        env.transport, view, options));
  }
  Rng rng(3);
  Costs costs;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int k = 0; k < kCommutativePerCycle; ++k) {
      nodes[rng.next_below(kMembers)]->submit(apps::Counter::inc(1));
      ++costs.ops;
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(250)));
    }
    nodes[0]->submit(apps::Counter::rd());
    ++costs.ops;
    env.run();
  }
  costs.wire_msgs = env.network.stats().sent;
  costs.agreement_events = costs.ops;  // every message individually ordered
  costs.sim_time_us = env.scheduler.now();
  return costs;
}

int run() {
  benchkit::banner("C3", "agreement cost: stable points vs explicit protocols");
  const Costs sp = run_stable_point();
  const Costs ea = run_explicit_agreement();
  const Costs sq = run_sequencer();

  Table table({"protocol", "ops", "wire_msgs", "msgs_per_op",
               "agreement_events", "ops_per_agreement", "sim_time_ms"});
  auto add = [&table](const char* name, const Costs& costs) {
    table.row({name, benchkit::num(costs.ops), benchkit::num(costs.wire_msgs),
               benchkit::num(static_cast<double>(costs.wire_msgs) /
                             static_cast<double>(costs.ops)),
               benchkit::num(costs.agreement_events),
               benchkit::num(static_cast<double>(costs.ops) /
                             static_cast<double>(costs.agreement_events)),
               benchkit::num(static_cast<double>(costs.sim_time_us) / 1000.0)});
  };
  add("stable-point (OSend, no agreement msgs)", sp);
  add("explicit agreement (propose/ack/commit)", ea);
  add("sequencer total order (per-message)", sq);
  table.print();

  benchkit::claim(
      "agreement on the value of shared data is feasible at the higher "
      "granularity of message sets (stable points) rather than individual "
      "messages, without explicit agreement protocols (§3.2, §7)");
  benchkit::measured(
      "stable-point protocol: " +
      benchkit::num(static_cast<double>(sp.wire_msgs) /
                    static_cast<double>(sp.ops)) +
      " msgs/op and 1 agreement event per " +
      benchkit::num(static_cast<double>(sp.ops) /
                    static_cast<double>(sp.agreement_events)) +
      " ops, vs explicit agreement's " +
      benchkit::num(static_cast<double>(ea.wire_msgs) /
                    static_cast<double>(ea.ops)) +
      " msgs/op with one agreement round per op");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
