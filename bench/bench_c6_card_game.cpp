// C6 — Claim (§5.1): in the multiplayer card game, if player l's action
// depends only on player k (k < l-1), the relaxed ordering
//   card_k -> card_l,  ||{card_l, card_i} for i = k+1..l-1
// lets intermediate cards arrive in any order — "a relaxed ordering of
// the messages ... reflected in higher concurrency". A strict round-robin
// plan serializes every turn.
//
// Each player thinks for 400us after its dependency's card is visible in
// its window, then plays via OSend with exactly the §5.1 dependency edge.
// We measure wall-clock (simulated) duration per round for three plans.
#include <map>
#include <memory>

#include "apps/card_game.h"
#include "bench_common.h"
#include "causal/osend.h"
#include "common/sim_env.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr SimTime kThinkUs = 400;
constexpr std::uint64_t kRounds = 8;

struct GameRun {
  double total_ms = 0;
  double ms_per_round = 0;
  std::uint32_t critical_path = 0;
};

GameRun play(const apps::TurnPlan& plan, std::uint64_t seed) {
  SimEnv::Config config;
  config.base_latency_us = 1000;
  config.jitter_us = 1000;
  config.seed = seed;
  SimEnv env(config);
  const std::uint32_t players = plan.players();
  const GroupView view = testkit::make_view(players);

  struct PlayerState {
    std::unique_ptr<OSendMember> member;
    // (turn, player) -> message id of that card, as seen by THIS player.
    std::map<std::pair<std::uint64_t, std::uint32_t>, MessageId> seen;
    std::uint64_t prev_round_cards = 0;  // player 0: count for round chain
    std::uint64_t played_through = 0;    // rounds this player has played
  };
  std::vector<PlayerState> states(players);

  // Forward declaration of the play action so callbacks can schedule it.
  std::function<void(std::uint32_t, std::uint64_t, DepSpec)> play_card =
      [&](std::uint32_t player, std::uint64_t turn, DepSpec deps) {
        const auto op = apps::CardGame::card(
            turn, player, static_cast<std::int64_t>(turn * 100 + player));
        states[player].member->osend(
            "card(" + std::to_string(turn) + "," + std::to_string(player) + ")",
            op.args, deps);
      };

  for (std::uint32_t p = 0; p < players; ++p) {
    states[p].member = std::make_unique<OSendMember>(
        env.transport, view, [&, p](const Delivery& delivery) {
          // Parse "card(t,who)".
          Reader reader(delivery.payload());
          const std::uint64_t turn = reader.u64();
          const std::uint32_t who = reader.u32();
          states[p].seen[{turn, who}] = delivery.id;

          if (p == 0) {
            // Player 0 opens round t+1 after seeing ALL cards of round t.
            std::uint64_t complete = 0;
            while (true) {
              bool full = true;
              for (std::uint32_t q = 0; q < players; ++q) {
                if (states[p].seen.count({complete, q}) == 0) {
                  full = false;
                  break;
                }
              }
              if (!full) break;
              ++complete;
            }
            if (complete > states[p].played_through &&
                states[p].played_through < kRounds) {
              const std::uint64_t next_turn = states[p].played_through + 1;
              if (next_turn < kRounds) {
                states[p].played_through = next_turn;
                DepSpec deps;
                for (std::uint32_t q = 0; q < players; ++q) {
                  deps.add(states[p].seen.at({next_turn - 1, q}));
                }
                env.transport.schedule(kThinkUs, [&, next_turn, deps] {
                  play_card(0, next_turn, deps);
                });
              } else {
                states[p].played_through = next_turn;  // game over marker
              }
            }
            return;
          }
          // Player p (>0) plays turn `turn` after its dependency's card.
          if (who == plan.dependency(p) && turn == states[p].played_through) {
            states[p].played_through = turn + 1;
            const DepSpec deps = DepSpec::after(delivery.id);
            env.transport.schedule(kThinkUs, [&, p, turn, deps] {
              play_card(p, turn, deps);
            });
          }
        });
  }

  // Kick off round 0: player 0 plays unconditionally.
  states[0].played_through = 1;
  play_card(0, 0, DepSpec::none());
  env.run();

  GameRun result;
  result.total_ms = static_cast<double>(env.scheduler.now()) / 1000.0;
  result.ms_per_round = result.total_ms / static_cast<double>(kRounds);
  result.critical_path = plan.critical_path();
  return result;
}

int run() {
  benchkit::banner("C6", "card game: strict vs relaxed turn order (§5.1)");
  const std::uint32_t players = 6;
  struct PlanRow {
    const char* name;
    apps::TurnPlan plan;
  };
  std::vector<PlanRow> plans{
      {"strict round-robin (dep = l-1)", apps::TurnPlan::strict(players)},
      {"relaxed (dep = max(0, l-3))",
       apps::TurnPlan::relaxed({0, 0, 0, 0, 1, 2})},
      {"star (everyone deps on player 0)",
       apps::TurnPlan::relaxed({0, 0, 0, 0, 0, 0})},
  };
  Table table({"plan", "critical_path", "ms_per_round", "total_ms",
               "speedup_vs_strict"});
  double strict_ms = 0;
  double star_ms = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const GameRun result = play(plans[i].plan, 41);
    if (i == 0) strict_ms = result.ms_per_round;
    if (i == 2) star_ms = result.ms_per_round;
    table.row({plans[i].name, benchkit::num(static_cast<std::uint64_t>(result.critical_path)),
               benchkit::num(result.ms_per_round),
               benchkit::num(result.total_ms),
               benchkit::num(strict_ms / result.ms_per_round)});
  }
  table.print();
  benchkit::claim(
      "relaxed ordering of card messages (depend on player k, concurrent "
      "with intermediate players) yields higher concurrency than the "
      "strict turn pre-sequence (§5.1)");
  benchkit::measured(
      "rounds complete " + benchkit::num(strict_ms / star_ms) +
      "x faster under the fully relaxed plan; speedup tracks the "
      "dependency critical path, exactly as the causal model predicts");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
