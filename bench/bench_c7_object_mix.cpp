// C7 — per-object cost of the generalized replica path (google-benchmark).
//
// Three families, one leg per catalog object:
//   BM_DeriveCommutativity — the boot-time swap-test probe that replaces
//     hand-labelled C-class bits (runs once per member at startup).
//   BM_ValueRoundTrip      — serialize + deserialize of the type-erased
//     state handle (the checkpoint / state-transfer payload codec).
//   BM_ReplicaRound        — one full §6.1 cycle on a 3-member SimEnv
//     group: a commutative workload burst from every member, then the
//     object's sync op closing the cycle at a stable point.
//
// Gated in CI by bench/compare.py against the committed BENCH_c7.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/install.h"
#include "common/sim_env.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "replica/replica_group.h"
#include "util/serde.h"

namespace cbc {
namespace {

using object::Catalog;
using object::Op;
using object::Value;
using object::derive_commutativity;

void BM_DeriveCommutativity(benchmark::State& state,
                            const std::string& name) {
  const auto entry = Catalog::instance().find(name);
  const object::SequentialSpec spec = entry->spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(derive_commutativity(spec));
  }
}

void BM_ValueRoundTrip(benchmark::State& state, const std::string& name) {
  const auto entry = Catalog::instance().find(name);
  Value value(entry->make());
  for (std::uint64_t k = 0; k < 16; ++k) {
    const Op op = entry->workload_op(0, 0, k);
    Reader args(op.args);
    value.apply(op.kind, args);
  }
  for (auto _ : state) {
    Writer writer;
    value.encode(writer);
    Reader reader(writer.bytes());
    benchmark::DoNotOptimize(Value::decode(reader));
  }
}

void BM_ReplicaRound(benchmark::State& state, const std::string& name) {
  const auto entry = Catalog::instance().find(name);
  const CommutativitySpec spec = derive_commutativity(entry->spec());
  constexpr std::size_t kNodes = 3;
  constexpr std::uint64_t kOpsPerNode = 8;
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    testkit::SimEnv env;
    ReplicaNode<Value>::Options options;
    options.initial = Value(entry->make());
    ReplicaGroup<Value> group(env.transport, kNodes, spec, options);
    state.ResumeTiming();
    for (std::size_t node = 0; node < kNodes; ++node) {
      for (std::uint64_t k = 0; k < kOpsPerNode; ++k) {
        group.node(node).submit(
            entry->workload_op(static_cast<NodeId>(node), round, k));
      }
    }
    env.run();
    group.node(0).submit(entry->sync_op);
    env.run();
    benchmark::DoNotOptimize(group.node(0).last_stable_state());
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kNodes * kOpsPerNode + 1));
}

// Registration is data-driven off the catalog so a newly installed object
// automatically grows bench legs (compare.py ignores names missing from
// the committed baseline, so new legs never fail the gate).
const int kRegistered = [] {
  apps::install_objects();
  for (const std::string& name : Catalog::instance().names()) {
    benchmark::RegisterBenchmark(
        ("BM_DeriveCommutativity/" + name).c_str(), BM_DeriveCommutativity,
        name);
    benchmark::RegisterBenchmark(("BM_ValueRoundTrip/" + name).c_str(),
                                 BM_ValueRoundTrip, name);
    benchmark::RegisterBenchmark(("BM_ReplicaRound/" + name).c_str(),
                                 BM_ReplicaRound, name);
  }
  return 0;
}();

}  // namespace
}  // namespace cbc

BENCHMARK_MAIN();
