// C5 — Claim (§6.2): deterministic arbitration over totally-ordered LOCK
// messages gives consensus on the next holder with NO dedicated
// agreement traffic; total ordering "may be feasible when the group size
// is not large".
//
// Sweep group size; measure handoffs/sec of simulated time, wire messages
// per handoff, and mean wait (request -> grant). Baseline: a classic
// central lock server (REQ/GRANT/REL unicasts), which needs fewer
// messages but serializes through one coordinator.
#include <deque>
#include <memory>

#include "bench_common.h"
#include "common/sim_env.h"
#include "lock/lock_arbiter.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr int kCycles = 10;

struct LockResult {
  double handoffs_per_sec = 0;
  double msgs_per_handoff = 0;
  double mean_wait_us = 0;
};

LockResult run_arbiter(std::size_t n, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = seed;
  SimEnv env(config);
  const GroupView view = testkit::make_view(n);
  std::vector<std::unique_ptr<LockArbiter>> arbiters;
  std::vector<SimTime> requested_at(n, 0);
  Histogram wait;
  std::uint64_t grants = 0;
  for (std::size_t i = 0; i < n; ++i) {
    arbiters.push_back(std::make_unique<LockArbiter>(
        env.transport, view, [&, i](std::uint64_t) {
          ++grants;
          wait.add(static_cast<double>(env.scheduler.now() - requested_at[i]));
          arbiters[i]->release();
        }));
  }
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (std::size_t i = 0; i < n; ++i) {
      requested_at[i] = env.scheduler.now();
      arbiters[i]->request();
    }
    env.run();
  }
  LockResult result;
  result.handoffs_per_sec = 1e6 * static_cast<double>(grants) /
                            static_cast<double>(env.scheduler.now());
  result.msgs_per_handoff = static_cast<double>(env.network.stats().sent) /
                            static_cast<double>(grants);
  result.mean_wait_us = wait.mean();
  return result;
}

// Central lock server baseline: node 0 is the server; clients unicast REQ,
// server unicasts GRANT to the head of its FIFO queue, client unicasts REL.
LockResult run_central(std::size_t n, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = seed;
  SimEnv env(config);

  struct Server {
    std::deque<NodeId> queue;
    bool busy = false;
  } server;
  Histogram wait;
  std::uint64_t grants = 0;
  std::vector<SimTime> requested_at(n, 0);
  std::vector<NodeId> ids(n);

  // Frame: u8 type (1=REQ, 2=GRANT, 3=REL).
  auto& transport = env.transport;
  NodeId server_id = 0;
  auto grant_next = [&](auto&& self) -> void {
    if (server.busy || server.queue.empty()) {
      return;
    }
    server.busy = true;
    const NodeId next = server.queue.front();
    server.queue.pop_front();
    transport.send(server_id, next, {2});
    (void)self;
  };
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = transport.add_endpoint(
        [&, i](NodeId from, const WireFrame& frame) {
          const std::uint8_t type = frame.bytes()[0];
          if (type == 1) {  // REQ at server
            server.queue.push_back(from);
            grant_next(grant_next);
          } else if (type == 2) {  // GRANT at client i
            ++grants;
            wait.add(static_cast<double>(env.scheduler.now() -
                                         requested_at[i]));
            transport.send(ids[i], server_id, {3});  // REL
          } else {  // REL at server
            server.busy = false;
            grant_next(grant_next);
          }
        });
  }
  server_id = ids[0];
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (std::size_t i = 0; i < n; ++i) {
      requested_at[i] = env.scheduler.now();
      transport.send(ids[i], server_id, {1});  // REQ (self-send for i==0 ok)
    }
    env.run();
  }
  LockResult result;
  result.handoffs_per_sec = 1e6 * static_cast<double>(grants) /
                            static_cast<double>(env.scheduler.now());
  result.msgs_per_handoff = static_cast<double>(env.network.stats().sent) /
                            static_cast<double>(grants);
  result.mean_wait_us = wait.mean();
  return result;
}

int run() {
  benchkit::banner("C5", "lock arbitration throughput vs group size (§6.2)");
  Table table({"n", "protocol", "handoffs_per_sec", "msgs_per_handoff",
               "mean_wait_ms"});
  double arb_msgs_2 = 0;
  double arb_msgs_12 = 0;
  for (const std::size_t n : {2, 4, 6, 8, 12}) {
    const LockResult arb = run_arbiter(n, 31);
    const LockResult central = run_central(n, 31);
    table.row({benchkit::num(static_cast<std::uint64_t>(n)),
               "decentralized (ASend+deterministic)",
               benchkit::num(arb.handoffs_per_sec),
               benchkit::num(arb.msgs_per_handoff),
               benchkit::num(arb.mean_wait_us / 1000.0)});
    table.row({benchkit::num(static_cast<std::uint64_t>(n)),
               "central lock server",
               benchkit::num(central.handoffs_per_sec),
               benchkit::num(central.msgs_per_handoff),
               benchkit::num(central.mean_wait_us / 1000.0)});
    if (n == 2) arb_msgs_2 = arb.msgs_per_handoff;
    if (n == 12) arb_msgs_12 = arb.msgs_per_handoff;
  }
  table.print();
  benchkit::claim(
      "deterministic arbitration over total order reaches consensus on "
      "the holder with no extra agreement rounds, but total ordering is "
      "feasible (only) when the group size is not large (§5.2, §6.2)");
  benchkit::measured(
      "msgs/handoff grows from " + benchkit::num(arb_msgs_2) + " at n=2 to " +
      benchkit::num(arb_msgs_12) +
      " at n=12 (broadcast rounds scale with N), vs the central server's "
      "constant ~3 — the structural trade: no coordinator, no extra "
      "agreement messages, but O(N) fan-out");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
