// M1 — microbenchmarks of the hot data structures (google-benchmark).
//
// These sit on the per-message path of the delivery engines: vector/matrix
// clock updates and comparisons, dependency-graph maintenance, and wire
// serialization.
#include <benchmark/benchmark.h>

#include "causal/envelope.h"
#include "graph/message_graph.h"
#include "obs/flight_recorder.h"
#include "time/matrix_clock.h"
#include "time/vector_clock.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"

namespace cbc {
namespace {

void BM_VectorClockTickMerge(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  VectorClock a(width);
  VectorClock b(width);
  NodeId node = 0;
  for (auto _ : state) {
    a.tick(node);
    b.merge(a);
    node = static_cast<NodeId>((node + 1) % width);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_VectorClockTickMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  VectorClock a(width);
  VectorClock b(width);
  a.tick(0);
  b.tick(static_cast<NodeId>(width - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_MatrixClockStableCut(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  MatrixClock matrix(width);
  VectorClock clock(width);
  for (NodeId i = 0; i < width; ++i) {
    clock.tick(i);
    matrix.observe_row(i, clock);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.stable_cut());
  }
}
BENCHMARK(BM_MatrixClockStableCut)->Arg(4)->Arg(16);

void BM_GraphInsert(benchmark::State& state) {
  Rng rng(7);
  std::uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    MessageGraph graph;
    std::vector<MessageId> nodes;
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) {
      DepSpec deps;
      for (int d = 0; d < 2 && !nodes.empty(); ++d) {
        deps.add(nodes[rng.next_below(nodes.size())]);
      }
      const MessageId id{0, seq++};
      graph.add(id, "op", deps);
      nodes.push_back(id);
    }
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_GraphInsert);

void BM_GraphReachability(benchmark::State& state) {
  Rng rng(11);
  MessageGraph graph;
  std::vector<MessageId> nodes;
  for (std::uint64_t i = 1; i <= 512; ++i) {
    DepSpec deps;
    for (int d = 0; d < 2 && !nodes.empty(); ++d) {
      deps.add(nodes[rng.next_below(nodes.size())]);
    }
    const MessageId id{0, i};
    graph.add(id, "op", deps);
    nodes.push_back(id);
  }
  for (auto _ : state) {
    const MessageId a = nodes[rng.next_below(nodes.size())];
    const MessageId b = nodes[rng.next_below(nodes.size())];
    benchmark::DoNotOptimize(graph.reaches(a, b));
  }
}
BENCHMARK(BM_GraphReachability);

void BM_WireEncodeDecode(benchmark::State& state) {
  VectorClock clock(8);
  clock.tick(3);
  DepSpec deps = DepSpec::after_all({MessageId{0, 1}, MessageId{1, 5}});
  const std::vector<std::uint8_t> payload(128, 0xAB);
  for (auto _ : state) {
    Writer writer;
    MessageId{2, 99}.encode(writer);
    writer.str("op#2.99");
    deps.encode(writer);
    clock.encode(writer);
    writer.i64(123456);
    writer.blob(payload);
    Reader reader(writer.bytes());
    benchmark::DoNotOptimize(MessageId::decode(reader));
    benchmark::DoNotOptimize(reader.str());
    benchmark::DoNotOptimize(DepSpec::decode(reader));
    benchmark::DoNotOptimize(VectorClock::decode(reader));
    benchmark::DoNotOptimize(reader.i64());
    benchmark::DoNotOptimize(reader.blob());
  }
}
BENCHMARK(BM_WireEncodeDecode);

// ---------- Envelope message path ----------

// One encode, one in-place parse: the entire per-message codec cost of
// the zero-copy path (payload/label/deps stay views into the frame).
void BM_EnvelopeEncodeParse(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const DepSpec deps = DepSpec::after_all({MessageId{0, 1}, MessageId{1, 5}});
  for (auto _ : state) {
    Writer writer;
    Envelope::encode_section(writer, MessageId{2, 99}, "op#2.99", deps,
                             123456, payload);
    const Envelope envelope = Envelope::parse(writer.take_shared(), 0);
    benchmark::DoNotOptimize(envelope.payload().data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnvelopeEncodeParse)->Arg(64)->Arg(512)->Arg(4096);

// The pre-refactor per-hop cost: every hop re-decoded the frame into
// OWNED label/payload containers (one string + one vector copy per hop).
void BM_LegacyPerHopDecodeCopy(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const DepSpec deps = DepSpec::after_all({MessageId{0, 1}, MessageId{1, 5}});
  Writer writer;
  Envelope::encode_section(writer, MessageId{2, 99}, "op#2.99", deps, 123456,
                           payload);
  const std::vector<std::uint8_t> wire = writer.take();
  for (auto _ : state) {
    Reader reader(wire);
    benchmark::DoNotOptimize(MessageId::decode(reader));
    std::string label = reader.str();              // owned copy
    benchmark::DoNotOptimize(DepSpec::decode(reader));
    benchmark::DoNotOptimize(reader.i64());
    std::vector<std::uint8_t> body = reader.blob();  // owned copy
    benchmark::DoNotOptimize(label.data());
    benchmark::DoNotOptimize(body.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacyPerHopDecodeCopy)->Arg(64)->Arg(512)->Arg(4096);

// Fan-out to N destinations: the shared-frame path bumps a refcount per
// destination; the legacy path duplicated the wire bytes per destination.
void BM_FanoutSharedFrame(benchmark::State& state) {
  const std::size_t fanout = 16;
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    Writer writer;
    Envelope::encode_section(writer, MessageId{1, 7}, "op", DepSpec::none(),
                             0, payload);
    const SharedBuffer frame = writer.take_shared();
    for (std::size_t i = 0; i < fanout; ++i) {
      SharedBuffer destination = frame;  // refcount bump only
      benchmark::DoNotOptimize(destination->data());
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_FanoutSharedFrame)->Arg(64)->Arg(512)->Arg(4096);

void BM_FanoutCopiedFrames(benchmark::State& state) {
  const std::size_t fanout = 16;
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    Writer writer;
    Envelope::encode_section(writer, MessageId{1, 7}, "op", DepSpec::none(),
                             0, payload);
    const std::vector<std::uint8_t> wire = writer.take();
    for (std::size_t i = 0; i < fanout; ++i) {
      std::vector<std::uint8_t> destination = wire;  // per-destination copy
      benchmark::DoNotOptimize(destination.data());
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_FanoutCopiedFrames)->Arg(64)->Arg(512)->Arg(4096);

void BM_HistogramAddPercentile(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    Histogram histogram;
    for (int i = 0; i < 256; ++i) {
      histogram.add(rng.next_double());
    }
    benchmark::DoNotOptimize(histogram.percentile(99));
  }
}
BENCHMARK(BM_HistogramAddPercentile);

void BM_FlightRecord(benchmark::State& state) {
  // The always-on cost an instrumented site pays per event: one relaxed
  // ticket fetch_add plus a 40-byte seqlock-published store (the <5%
  // acceptance bar for the flight recorder rides on this number).
  obs::FlightRecorder recorder({.capacity = 1 << 14});
  std::uint64_t seq = 0;
  for (auto _ : state) {
    recorder.record(obs::FlightEvent::kDeliver, MessageId{1, ++seq}, seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecord);

void BM_FlightRecordNoRecorder(benchmark::State& state) {
  // The fast path with no recorder installed — a relaxed pointer load
  // and a branch (and nothing at all under -DCBC_OBS=OFF).
  obs::install_flight_recorder(nullptr);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    obs::flight_record(obs::FlightEvent::kDeliver, MessageId{1, ++seq}, seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordNoRecorder);

}  // namespace
}  // namespace cbc

BENCHMARK_MAIN();
