// M1 — microbenchmarks of the hot data structures (google-benchmark).
//
// These sit on the per-message path of the delivery engines: vector/matrix
// clock updates and comparisons, dependency-graph maintenance, and wire
// serialization.
#include <benchmark/benchmark.h>

#include "graph/message_graph.h"
#include "time/matrix_clock.h"
#include "time/vector_clock.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"

namespace cbc {
namespace {

void BM_VectorClockTickMerge(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  VectorClock a(width);
  VectorClock b(width);
  NodeId node = 0;
  for (auto _ : state) {
    a.tick(node);
    b.merge(a);
    node = static_cast<NodeId>((node + 1) % width);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_VectorClockTickMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  VectorClock a(width);
  VectorClock b(width);
  a.tick(0);
  b.tick(static_cast<NodeId>(width - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_MatrixClockStableCut(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  MatrixClock matrix(width);
  VectorClock clock(width);
  for (NodeId i = 0; i < width; ++i) {
    clock.tick(i);
    matrix.observe_row(i, clock);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.stable_cut());
  }
}
BENCHMARK(BM_MatrixClockStableCut)->Arg(4)->Arg(16);

void BM_GraphInsert(benchmark::State& state) {
  Rng rng(7);
  std::uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    MessageGraph graph;
    std::vector<MessageId> nodes;
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) {
      DepSpec deps;
      for (int d = 0; d < 2 && !nodes.empty(); ++d) {
        deps.add(nodes[rng.next_below(nodes.size())]);
      }
      const MessageId id{0, seq++};
      graph.add(id, "op", deps);
      nodes.push_back(id);
    }
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_GraphInsert);

void BM_GraphReachability(benchmark::State& state) {
  Rng rng(11);
  MessageGraph graph;
  std::vector<MessageId> nodes;
  for (std::uint64_t i = 1; i <= 512; ++i) {
    DepSpec deps;
    for (int d = 0; d < 2 && !nodes.empty(); ++d) {
      deps.add(nodes[rng.next_below(nodes.size())]);
    }
    const MessageId id{0, i};
    graph.add(id, "op", deps);
    nodes.push_back(id);
  }
  for (auto _ : state) {
    const MessageId a = nodes[rng.next_below(nodes.size())];
    const MessageId b = nodes[rng.next_below(nodes.size())];
    benchmark::DoNotOptimize(graph.reaches(a, b));
  }
}
BENCHMARK(BM_GraphReachability);

void BM_WireEncodeDecode(benchmark::State& state) {
  VectorClock clock(8);
  clock.tick(3);
  DepSpec deps = DepSpec::after_all({MessageId{0, 1}, MessageId{1, 5}});
  const std::vector<std::uint8_t> payload(128, 0xAB);
  for (auto _ : state) {
    Writer writer;
    MessageId{2, 99}.encode(writer);
    writer.str("op#2.99");
    deps.encode(writer);
    clock.encode(writer);
    writer.i64(123456);
    writer.blob(payload);
    Reader reader(writer.bytes());
    benchmark::DoNotOptimize(MessageId::decode(reader));
    benchmark::DoNotOptimize(reader.str());
    benchmark::DoNotOptimize(DepSpec::decode(reader));
    benchmark::DoNotOptimize(VectorClock::decode(reader));
    benchmark::DoNotOptimize(reader.i64());
    benchmark::DoNotOptimize(reader.blob());
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_HistogramAddPercentile(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    Histogram histogram;
    for (int i = 0; i < 256; ++i) {
      histogram.add(rng.next_double());
    }
    benchmark::DoNotOptimize(histogram.percentile(99));
  }
}
BENCHMARK(BM_HistogramAddPercentile);

}  // namespace
}  // namespace cbc

BENCHMARK_MAIN();
