// A1 — Ablation: causal broadcasting vs lazy replication (paper ref [1]).
//
// The paper contrasts its model with "existing models ... where
// application level message causality information is used only indirectly
// [1, 4]". Lazy replication applies an op at one replica and gossips it;
// causal broadcasting pushes every op to every member immediately. We
// measure the *staleness window* (time from submit until every replica
// reflects the op) and the wire cost, across gossip intervals.
#include <memory>

#include "apps/counter.h"
#include "baseline/lazy_replication.h"
#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr std::size_t kMembers = 4;
constexpr int kOps = 100;

SimEnv::Config config_for() {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 51;
  return config;
}

struct Result {
  double staleness_p50_us = 0;
  double staleness_p99_us = 0;
  double msgs_per_op = 0;
};

// Staleness for lazy replication: submit, then step the sim until every
// node's value reflects the op count; record the gap.
Result run_lazy(SimTime gossip_interval) {
  SimEnv env(config_for());
  const GroupView view = testkit::make_view(kMembers);
  LazyReplicaNode<apps::Counter>::Options options;
  options.gossip_interval_us = gossip_interval;
  std::vector<std::unique_ptr<LazyReplicaNode<apps::Counter>>> nodes;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(std::make_unique<LazyReplicaNode<apps::Counter>>(
        env.transport, view, options));
  }
  Rng rng(9);
  Histogram staleness;
  std::int64_t total = 0;
  for (int op = 0; op < kOps; ++op) {
    total += 1;
    const SimTime submitted = env.scheduler.now();
    nodes[rng.next_below(kMembers)]->submit(apps::Counter::inc(1));
    // Step until the op is visible everywhere.
    for (;;) {
      bool everywhere = true;
      for (const auto& node : nodes) {
        everywhere = everywhere && node->state().value() >= total;
      }
      if (everywhere) {
        break;
      }
      if (!env.scheduler.step()) {
        break;
      }
    }
    staleness.add(static_cast<double>(env.scheduler.now() - submitted));
  }
  env.run();
  Result result;
  result.staleness_p50_us = staleness.percentile(50);
  result.staleness_p99_us = staleness.percentile(99);
  result.msgs_per_op = static_cast<double>(env.network.stats().sent) / kOps;
  return result;
}

Result run_causal() {
  SimEnv env(config_for());
  testkit::Group<OSendMember> group(env.transport, kMembers);
  Rng rng(9);
  Histogram staleness;
  for (int op = 0; op < kOps; ++op) {
    const SimTime submitted = env.scheduler.now();
    const std::size_t who = rng.next_below(kMembers);
    const std::size_t expected = static_cast<std::size_t>(op) + 1;
    group[who].osend("inc", {}, DepSpec::none());
    for (;;) {
      bool everywhere = true;
      for (std::size_t i = 0; i < kMembers; ++i) {
        everywhere = everywhere && group[i].log().size() >= expected;
      }
      if (everywhere) {
        break;
      }
      if (!env.scheduler.step()) {
        break;
      }
    }
    staleness.add(static_cast<double>(env.scheduler.now() - submitted));
  }
  env.run();
  Result result;
  result.staleness_p50_us = staleness.percentile(50);
  result.staleness_p99_us = staleness.percentile(99);
  result.msgs_per_op = static_cast<double>(env.network.stats().sent) / kOps;
  return result;
}

int run() {
  benchkit::banner("A1", "causal broadcast vs lazy replication (ref [1])");
  Table table({"protocol", "staleness_p50_us", "staleness_p99_us",
               "msgs_per_op"});
  const Result causal = run_causal();
  table.row({"causal broadcast (OSend)", benchkit::num(causal.staleness_p50_us),
             benchkit::num(causal.staleness_p99_us),
             benchkit::num(causal.msgs_per_op)});
  for (const SimTime interval : {SimTime{2000}, SimTime{10000}, SimTime{50000}}) {
    const Result lazy = run_lazy(interval);
    table.row({"lazy replication, gossip " + std::to_string(interval / 1000) +
                   "ms",
               benchkit::num(lazy.staleness_p50_us),
               benchkit::num(lazy.staleness_p99_us),
               benchkit::num(lazy.msgs_per_op)});
  }
  table.print();
  benchkit::claim(
      "integrating message causality directly (rather than indirectly as "
      "in lazy replication [1]) lets entities agree at message-exchange "
      "points instead of waiting out an anti-entropy interval");
  benchkit::measured(
      "causal broadcast bounds staleness by one link delay (~" +
      benchkit::num(causal.staleness_p99_us / 1000.0) +
      "ms p99); lazy replication's staleness tracks its gossip interval "
      "and can save messages only when updates batch between rounds");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
