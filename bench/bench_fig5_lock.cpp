// F5 — Figure 5: "An arbitration protocol using total order".
//
// Three members A, B, C spontaneously issue LOCK requests; TFR messages
// hand the lock along the deterministically arbitrated sequence; after
// the last transfer the next acquisition cycle begins. This bench prints
// the Figure-5 timeline (events in simulated time at each member) for
// three cycles and checks that every member computed the same grant
// sequence without any extra agreement messages.
#include <memory>

#include "bench_common.h"
#include "common/sim_env.h"
#include "lock/lock_arbiter.h"
#include "sim/trace.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

int run() {
  benchkit::banner("F5", "Figure 5 — decentralized lock arbitration (LOCK/TFR)");

  SimEnv::Config config;
  config.jitter_us = 1000;
  config.seed = 5;
  SimEnv env(config);
  const std::size_t n = 3;
  const GroupView view = testkit::make_view(n);

  sim::Trace trace;
  std::vector<std::unique_ptr<LockArbiter>> arbiters;
  const char* names = "ABC";
  for (std::size_t i = 0; i < n; ++i) {
    arbiters.push_back(std::make_unique<LockArbiter>(
        env.transport, view, [&, i](std::uint64_t cycle) {
          trace.record(env.scheduler.now(), static_cast<NodeId>(i),
                       sim::TraceKind::kMark,
                       "granted (S=" + std::to_string(cycle) + ")");
          // Hold the page briefly, then transfer (TFR) to the next member
          // in the arbitration sequence.
          env.transport.schedule(700, [&, i] {
            trace.record(env.scheduler.now(), static_cast<NodeId>(i),
                         sim::TraceKind::kSend, "TFR");
            arbiters[i]->release();
          });
        }));
  }

  const int cycles = 3;
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      trace.record(env.scheduler.now(), static_cast<NodeId>(i),
                   sim::TraceKind::kSend, "LOCK(S=" + std::to_string(c + 1) + ")");
      arbiters[i]->request();
    }
  }
  env.run();

  std::cout << "Space-time diagram (columns A/B/C; * send, # milestone):\n"
            << trace.render(n, 18);

  // Consensus check: identical grant history everywhere.
  bool identical = true;
  for (std::size_t i = 1; i < n; ++i) {
    identical = identical &&
                arbiters[i]->grant_history() == arbiters[0]->grant_history();
  }
  std::cout << "\nGrant history (same object at every member): ";
  for (const auto& [holder, cycle] : arbiters[0]->grant_history()) {
    std::cout << names[holder] << "(S" << cycle << ") ";
  }
  std::cout << "\nWire messages total: " << env.network.stats().sent
            << " (LOCK/TFR frames + round skips; no dedicated agreement "
               "messages)\n";

  benchkit::claim(
      "since the arbitration algorithm is deterministic, all members "
      "choose the same next lock holder, ensuring consensus (§6.2)");
  benchkit::measured(std::string("grant histories identical at all members: ") +
                     (identical ? "yes" : "NO") + "; " +
                     std::to_string(cycles * n) + " grants over " +
                     std::to_string(cycles) + " cycles");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
