// A4 — Ablation: view-change flush cost.
//
// Installing a new view requires flushing all old-view traffic (so no
// message straddles the boundary). The flush blocks application sends for
// a window that grows with the amount of in-flight traffic; this bench
// quantifies that window across traffic volumes and jitter.
#include <memory>

#include "bench_common.h"
#include "causal/flush.h"
#include "common/sim_env.h"
#include "util/rng.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

struct Result {
  SimTime flush_window_us = 0;  // propose -> last member installed
  std::uint64_t wire_msgs = 0;
};

Result run(int in_flight_msgs, SimTime jitter, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = jitter;
  config.seed = seed;
  SimEnv env(config);
  const std::size_t n = 4;
  const GroupView view1(1, {0, 1, 2, 3});
  std::vector<std::unique_ptr<FlushCoordinator>> members;
  SimTime last_install = 0;
  std::size_t installs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(std::make_unique<FlushCoordinator>(
        env.transport, view1, [](const Delivery&) {},
        [&](const GroupView&) {
          last_install = env.scheduler.now();
          ++installs;
        }));
  }
  Rng rng(seed);
  // Load the network with in-flight traffic, then immediately propose.
  for (int k = 0; k < in_flight_msgs; ++k) {
    members[rng.next_below(n)]->member().broadcast("op", {}, DepSpec::none());
  }
  const SimTime proposed_at = env.scheduler.now();
  members[0]->propose(GroupView(2, {0, 1, 2, 3}));
  env.run();
  Result result;
  result.flush_window_us = installs == n ? last_install - proposed_at : -1;
  result.wire_msgs = env.network.stats().sent;
  return result;
}

int main_impl() {
  benchkit::banner("A4", "view-change flush window vs in-flight traffic");
  Table table({"in_flight_msgs", "jitter_us", "flush_window_ms", "wire_msgs"});
  for (const int load : {0, 20, 100, 400}) {
    for (const SimTime jitter : {SimTime{1000}, SimTime{5000}}) {
      const Result result = run(load, jitter, 81);
      table.row({benchkit::num(static_cast<std::uint64_t>(load)),
                 benchkit::num(static_cast<std::int64_t>(jitter)),
                 benchkit::num(static_cast<double>(result.flush_window_us) /
                               1000.0),
                 benchkit::num(result.wire_msgs)});
    }
  }
  table.print();
  benchkit::claim(
      "(implementation requirement, cf. ISIS virtual synchrony [2]): a "
      "view installs only after every member has delivered everything any "
      "member delivered in the old view");
  benchkit::measured(
      "the flush window is ~2-3 delivery rounds and tracks the network's "
      "worst-case delivery delay (jitter), not the traffic volume — "
      "in-flight messages flush concurrently, so the no-straddling "
      "guarantee costs latency, not throughput");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::main_impl(); }
