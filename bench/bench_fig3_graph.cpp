// F3 — Figure 3: message dependencies as a graph.
//
// Reproduces the figure's graph (many-to-one and one-to-many AND
// dependencies), prints its DOT form and the derived relations, and
// measures the throughput of the graph operations the delivery engine
// leans on (insert, reachability, concurrency, topological order).
#include <chrono>

#include "bench_common.h"
#include "graph/message_graph.h"
#include "util/rng.h"

namespace cbc {
namespace {

using benchkit::Table;

MessageId id(NodeId sender, SeqNo seq) { return MessageId{sender, seq}; }

void figure_graph() {
  benchkit::banner("F3", "Figure 3 — message dependencies as a graph");

  // Many-to-one: m1, m2 each Occurs_After(Msg)  (paper's first snippet);
  // one-to-many AND: Final Occurs_After(m1 AND m2)  (eq. 3).
  MessageGraph graph;
  graph.add(id(0, 1), "Msg", DepSpec::none());
  graph.add(id(1, 1), "m1", DepSpec::after(id(0, 1)));
  graph.add(id(2, 1), "m2", DepSpec::after(id(0, 1)));
  graph.add(id(3, 1), "Final", DepSpec::after_all({id(1, 1), id(2, 1)}));

  std::cout << graph.to_dot("fig3");

  Table relations({"relation", "value"});
  relations.row({"Msg -> m1 (reaches)", graph.reaches(id(0, 1), id(1, 1)) ? "true" : "false"});
  relations.row({"Msg -> Final (transitive)", graph.reaches(id(0, 1), id(3, 1)) ? "true" : "false"});
  relations.row({"||{m1, m2} (concurrent)", graph.concurrent(id(1, 1), id(2, 1)) ? "true" : "false"});
  relations.row({"allowed sequences |EvSeq|", benchkit::num(static_cast<std::uint64_t>(graph.all_topological_orders().size()))});
  relations.row({"roots", id(0, 1).to_string()});
  relations.row({"leaves", id(3, 1).to_string()});
  relations.print();
}

void op_throughput() {
  std::cout << "\nGraph operation throughput (random 2000-node DAG):\n";
  Rng rng(99);
  MessageGraph graph;
  std::vector<MessageId> nodes;
  const std::size_t n = 2000;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const MessageId node = id(static_cast<NodeId>(i % 8), i / 8 + 1);
    DepSpec deps;
    for (int d = 0; d < 3 && !nodes.empty(); ++d) {
      deps.add(nodes[rng.next_below(nodes.size())]);
    }
    graph.add(node, "op", deps);
    nodes.push_back(node);
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::uint64_t reach_hits = 0;
  const std::size_t queries = 20000;
  for (std::size_t q = 0; q < queries; ++q) {
    const MessageId a = nodes[rng.next_below(nodes.size())];
    const MessageId b = nodes[rng.next_below(nodes.size())];
    if (a != b && graph.reaches(a, b)) {
      ++reach_hits;
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  const auto topo = graph.topological_order();
  const auto t3 = std::chrono::steady_clock::now();

  const auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  };
  Table table({"operation", "count", "total_us", "per_op_us"});
  table.row({"insert", benchkit::num(static_cast<std::uint64_t>(n)),
             benchkit::num(static_cast<std::int64_t>(us(t0, t1))),
             benchkit::num(static_cast<double>(us(t0, t1)) / static_cast<double>(n), 3)});
  table.row({"reachability query", benchkit::num(static_cast<std::uint64_t>(queries)),
             benchkit::num(static_cast<std::int64_t>(us(t1, t2))),
             benchkit::num(static_cast<double>(us(t1, t2)) / static_cast<double>(queries), 3)});
  table.row({"topological order", "1",
             benchkit::num(static_cast<std::int64_t>(us(t2, t3))),
             benchkit::num(static_cast<double>(us(t2, t3)), 3)});
  table.print();
  std::cout << "  (reachability hit rate: "
            << benchkit::num(100.0 * static_cast<double>(reach_hits) /
                                 static_cast<double>(queries))
            << "%, topo length " << topo.size() << ")\n";
}

}  // namespace
}  // namespace cbc

int main() {
  cbc::figure_graph();
  cbc::op_throughput();
  cbc::benchkit::claim(
      "causal dependencies are representable as a stable graph with "
      "many-to-one and one-to-many (AND) dependencies (Fig. 3, eq. 2-3)");
  cbc::benchkit::measured(
      "graph reproduces the figure; operations are fast enough to sit on "
      "the per-message delivery path");
  return 0;
}
