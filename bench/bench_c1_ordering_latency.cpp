// C1 — Claim (§1, §7): integrating causality with data consistency
// "offers potential for increased performance" — causal (OSend) delivery
// is faster and holds back less than full-causality CBCAST and both total
// orders, with the gap growing with jitter and group size.
//
// Workload: every member broadcasts a stream of messages at random times;
// each message semantically depends only on the sender's previous message.
// The identical workload (same seeds, same submission instants) runs under
// four ordering disciplines; we report delivery latency and hold-back.
#include "bench_common.h"
#include "causal/osend.h"
#include "causal/vc_causal.h"
#include "common/group_fixture.h"
#include "total/asend.h"
#include "total/sequencer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

struct Result {
  Histogram latency;
  std::uint64_t held_back = 0;
  std::uint64_t max_holdback = 0;
  std::uint64_t wire_msgs = 0;
};

template <typename MemberT>
Result run_discipline(std::size_t n, SimTime jitter, std::uint64_t seed,
                      bool explicit_deps) {
  SimEnv::Config config;
  config.jitter_us = jitter;
  config.seed = seed;
  SimEnv env(config);
  Group<MemberT> group(env.transport, n);
  Rng rng(seed * 7 + 3);
  const int per_member = 25;
  std::vector<MessageId> last(n);
  for (int k = 0; k < per_member; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      DepSpec deps;
      if (explicit_deps && !last[i].is_null()) {
        deps = DepSpec::after(last[i]);
      }
      last[i] = group[i].broadcast("op", {}, deps);
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(400)));
    }
  }
  env.run();

  Result result;
  result.wire_msgs = env.network.stats().sent;
  for (std::size_t i = 0; i < n; ++i) {
    for (const Delivery& delivery : group[i].log()) {
      if (delivery.sender != group[i].id()) {  // remote deliveries only
        result.latency.add(
            static_cast<double>(delivery.delivered_at - delivery.sent_at));
      }
    }
    result.held_back += group[i].stats().held_back;
    result.max_holdback =
        std::max(result.max_holdback, group[i].stats().max_holdback_depth);
  }
  return result;
}

int run() {
  benchkit::banner("C1",
                   "delivery latency: OSend vs CBCAST vs ASend vs sequencer");
  Table table({"n", "jitter_us", "discipline", "mean_us", "p99_us",
               "held_back", "max_depth", "wire_msgs"});

  double osend_mean_12_8k = 0;
  double asend_mean_12_8k = 0;
  double seq_mean_12_8k = 0;

  for (const std::size_t n : {3, 6, 12}) {
    for (const SimTime jitter : {SimTime{0}, SimTime{2000}, SimTime{8000}}) {
      struct Row {
        const char* name;
        Result result;
      };
      std::vector<Row> rows;
      rows.push_back({"OSend (no semantic deps)",
                      run_discipline<OSendMember>(n, jitter, 42, false)});
      rows.push_back({"OSend (semantic deps)",
                      run_discipline<OSendMember>(n, jitter, 42, true)});
      rows.push_back({"VC-CBCAST (full causality)",
                      run_discipline<VcCausalMember>(n, jitter, 42, false)});
      rows.push_back({"ASend (merge total)",
                      run_discipline<ASendMember>(n, jitter, 42, false)});
      rows.push_back({"Sequencer (total)",
                      run_discipline<SequencerMember>(n, jitter, 42, false)});
      for (const Row& row : rows) {
        table.row({benchkit::num(static_cast<std::uint64_t>(n)),
                   benchkit::num(static_cast<std::int64_t>(jitter)), row.name,
                   benchkit::num(row.result.latency.mean()),
                   benchkit::num(row.result.latency.percentile(99)),
                   benchkit::num(row.result.held_back),
                   benchkit::num(row.result.max_holdback),
                   benchkit::num(row.result.wire_msgs)});
      }
      if (n == 12 && jitter == 8000) {
        osend_mean_12_8k = rows[1].result.latency.mean();
        asend_mean_12_8k = rows[3].result.latency.mean();
        seq_mean_12_8k = rows[4].result.latency.mean();
      }
    }
  }
  table.print();

  benchkit::claim(
      "ordering constraints weaker than strict total order give a higher "
      "degree of concurrency / more asynchronism in execution (§2.2, §7)");
  benchkit::measured(
      "at n=12, jitter=8ms: OSend mean " + benchkit::num(osend_mean_12_8k) +
      "us vs ASend " + benchkit::num(asend_mean_12_8k) + "us vs sequencer " +
      benchkit::num(seq_mean_12_8k) +
      "us — causal beats both total orders; gap widens with n and jitter");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
