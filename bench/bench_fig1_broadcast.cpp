// F1 — Figure 1: "Message exchanges to access shared data".
//
// One entity updates the shared data; the broadcast facility makes the
// access message visible to every entity. This bench reproduces the
// figure as a delivery trace (who saw VAL, when) and sweeps the group
// size to show the broadcast fan-out cost growing linearly.
#include "apps/counter.h"
#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

void trace_figure() {
  benchkit::banner("F1", "Figure 1 — a data access message seen by all entities");
  SimEnv::Config config;
  config.base_latency_us = 1000;
  config.jitter_us = 500;
  config.seed = 1;
  SimEnv env(config);
  const std::size_t n = 5;
  Group<OSendMember> group(env.transport, n);

  // Entity 0 writes VAL = 42 into the shared data.
  Writer payload;
  payload.i64(42);
  group[0].osend("write(VAL)", payload.take(), DepSpec::none());
  env.run();

  Table table({"entity", "message", "VAL", "delivered_at_us"});
  for (std::size_t i = 0; i < n; ++i) {
    const Delivery& delivery = group[i].log().at(0);
    Reader reader(delivery.payload());
    table.row({"a_" + std::to_string(i), delivery.label(),
               benchkit::num(reader.i64()),
               benchkit::num(static_cast<std::int64_t>(delivery.delivered_at))});
  }
  table.print();
}

void sweep_group_size() {
  std::cout << "\nBroadcast fan-out cost vs group size (one write):\n";
  Table table({"group_size", "wire_msgs", "bytes", "last_delivery_us"});
  for (const std::size_t n : {2, 4, 8, 16, 32}) {
    SimEnv::Config config;
    config.jitter_us = 500;
    config.seed = 7;
    SimEnv env(config);
    Group<OSendMember> group(env.transport, n);
    Writer payload;
    payload.i64(42);
    group[0].osend("write(VAL)", payload.take(), DepSpec::none());
    env.run();
    SimTime last = 0;
    for (std::size_t i = 0; i < n; ++i) {
      last = std::max(last, group[i].log().at(0).delivered_at);
    }
    table.row({benchkit::num(static_cast<std::uint64_t>(n)),
               benchkit::num(env.network.stats().sent),
               benchkit::num(env.network.stats().bytes),
               benchkit::num(static_cast<std::int64_t>(last))});
  }
  table.print();
}

}  // namespace
}  // namespace cbc

int main() {
  cbc::trace_figure();
  cbc::sweep_group_size();
  cbc::benchkit::claim(
      "a data access message is seen by ALL entities concerned with the "
      "data (Fig. 1)");
  cbc::benchkit::measured(
      "every member of the group delivers the write exactly once; wire "
      "cost grows as N-1 unicasts per broadcast");
  return 0;
}
