// F4 — Figure 4: "Functional layer for total ordering of messages and
// application-specific protocols".
//
// The same spontaneously generated messages are delivered (a) straight
// off the causal layer (no ordering constraints — arrival order) and
// (b) through the ASend total-ordering function interposed between the
// causal-broadcast and application layers. Under (a) member sequences
// diverge; under (b) every member sees the identical sequence.
#include <set>

#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"
#include "total/asend.h"
#include "util/rng.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

template <typename MemberT>
std::size_t distinct_sequences(const SimEnv::Config& config, std::size_t n,
                               int messages) {
  SimEnv env(config);
  Group<MemberT> group(env.transport, n);
  Rng rng(config.seed * 13 + 1);
  for (int k = 0; k < messages; ++k) {
    group[rng.next_below(n)].broadcast("spont#" + std::to_string(k), {},
                                       DepSpec::none());
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(1500)));
  }
  env.run();
  std::set<std::string> sequences;
  for (std::size_t i = 0; i < n; ++i) {
    std::string seq;
    for (const Delivery& delivery : group[i].log()) {
      seq += delivery.label() + ";";
    }
    sequences.insert(seq);
  }
  return sequences.size();
}

int run() {
  benchkit::banner("F4",
                   "Figure 4 — total-ordering layer between causal "
                   "broadcast and the application");
  Table table({"seed", "distinct_seqs_causal", "distinct_seqs_asend"});
  const int seeds = 10;
  std::size_t causal_diverged = 0;
  bool asend_always_one = true;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 4000;
    config.seed = seed;
    const std::size_t causal = distinct_sequences<OSendMember>(config, 4, 20);
    const std::size_t asend = distinct_sequences<ASendMember>(config, 4, 20);
    causal_diverged += causal > 1 ? 1 : 0;
    asend_always_one = asend_always_one && asend == 1;
    table.row({benchkit::num(seed), benchkit::num(static_cast<std::uint64_t>(causal)),
               benchkit::num(static_cast<std::uint64_t>(asend))});
  }
  table.print();
  benchkit::claim(
      "a function interposed between the causal broadcast and application "
      "layers imposes an arbitrary delivery order on spontaneous messages "
      "and enforces it identically at all members (§5.2, eq. 5)");
  benchkit::measured(
      "raw causal delivery diverged in " + std::to_string(causal_diverged) +
      "/" + std::to_string(seeds) + " seeds; ASend produced exactly one "
      "sequence in every seed: " + (asend_always_one ? "yes" : "NO"));
  return asend_always_one ? 0 : 1;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
