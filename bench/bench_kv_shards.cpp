// KV — §5.2 shard scaling (google-benchmark).
//
// The paper's scaling argument: instead of enlarging one causal group,
// partition the shared data so a SEPARATE group manages each partition —
// causal metadata stays sized by the group, not the deployment. This
// bench holds the fleet fixed at 12 replicas and re-arranges it as
// 1x12, 2x6, and 4x3 (shards x replicas), running the same mixed
// put/get session workload through the real kv path each time: ShardMap
// routing, KvService request handling, context-token adoption between
// sessions, broadcasts inside each shard's own SimEnv group. One
// broadcast costs O(group size) deliveries and every member applies
// every op of its group, so sharding must cut per-op work roughly
// linearly in the shard count.
//
// Gated in CI by bench/compare.py against the committed BENCH_kv.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/install.h"
#include "common/sim_env.h"
#include "kv/kv_service.h"
#include "kv/shard_map.h"
#include "kv/wire.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "replica/replica_group.h"
#include "util/ensure.h"

namespace cbc {
namespace {

using testkit::SimEnv;

constexpr std::size_t kFleet = 12;       // total replicas, every config
constexpr std::size_t kSessions = 4;
constexpr std::size_t kKeysPerSession = 8;

CommutativitySpec derived_kv_spec() {
  apps::install_objects();
  const auto entry = object::Catalog::instance().find("kv");
  require(entry.has_value(), "catalog is missing 'kv'");
  return object::derive_commutativity(entry->spec());
}

ReplicaNode<object::Value>::Options replica_options() {
  apps::install_objects();
  ReplicaNode<object::Value>::Options options;
  options.front_end.fifo_chain = true;
  options.initial =
      object::Value(object::Catalog::instance().find("kv")->make());
  return options;
}

/// One shard: its own simulated network, causal group, and a KvService
/// per replica (replies captured, time a simple counter).
struct ShardSim {
  ShardSim(std::size_t shard, std::size_t shards, std::size_t replicas,
           std::vector<kv::OpResponse>& replies)
      : group(env.transport, replicas, derived_kv_spec(),
              replica_options()) {
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      kv::KvService::Options options;
      options.shard = shard;
      options.shards = shards;
      options.replicas = replicas;
      options.rank = static_cast<NodeId>(rank);
      services.push_back(std::make_unique<kv::KvService>(
          group.node(rank),
          [&replies](NodeId, std::vector<std::uint8_t> bytes) {
            const auto parsed = kv::parse_op_response(bytes);
            require(parsed.has_value(), "bench reply did not parse");
            replies.push_back(*parsed);
          },
          [this] { return ++clock_us; }, options));
    }
  }

  void settle() {
    env.run();
    for (auto& service : services) {
      service->on_delivery();
    }
  }

  SimEnv env;
  ReplicaGroup<object::Value> group;
  std::vector<std::unique_ptr<kv::KvService>> services;
  std::int64_t clock_us = 0;
};

/// The whole deployment plus kSessions token-carrying client sessions.
class Deployment {
 public:
  Deployment(std::size_t shards, std::size_t replicas)
      : replicas_(replicas), map_(shards) {
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(
          std::make_unique<ShardSim>(s, shards, replicas, replies_));
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      tokens_.push_back(kv::ContextToken::zero(shards, replicas));
    }
  }

  /// One workload round: every session overwrites its keys, then reads
  /// its neighbour's keys under the neighbour's adopted context.
  void round(std::uint64_t round_id) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (std::size_t k = 0; k < kKeysPerSession; ++k) {
        kv::OpRequest request;
        request.type = kv::MsgType::kPut;
        request.key = key_of(s, k);
        request.value = "r" + std::to_string(round_id);
        send(s, std::move(request));
      }
    }
    for (auto& shard : shards_) {
      shard->settle();
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      const std::size_t neighbour = (s + 1) % kSessions;
      tokens_[s].merge(tokens_[neighbour]);
      for (std::size_t k = 0; k < kKeysPerSession; ++k) {
        kv::OpRequest request;
        request.type = kv::MsgType::kGet;
        request.key = key_of(neighbour, k);
        send(s, std::move(request));
      }
    }
    for (auto& shard : shards_) {
      shard->settle();
    }
  }

  [[nodiscard]] std::size_t replies() const { return replies_.size(); }

 private:
  [[nodiscard]] static std::string key_of(std::size_t session,
                                          std::size_t k) {
    return "s" + std::to_string(session) + "_k" + std::to_string(k);
  }

  void send(std::size_t session, kv::OpRequest request) {
    const std::size_t shard = map_.shard_of(request.key);
    const std::size_t rank = next_rank_++ % replicas_;
    request.session = session + 1;
    request.request = ++next_request_;
    request.token = tokens_[session];
    const std::size_t before = replies_.size();
    shards_[shard]->services[rank]->handle(
        static_cast<NodeId>(replicas_), kv::encode_op_request(request));
    // Puts and settled-context gets answer synchronously; merge the
    // returned frontier into the session's token (the §5.2 context).
    if (replies_.size() > before) {
      tokens_[session].merge_shard(replies_.back().shard,
                                   replies_.back().frontier);
    }
  }

  std::size_t replicas_;
  kv::ShardMap map_;
  std::vector<kv::OpResponse> replies_;
  std::vector<std::unique_ptr<ShardSim>> shards_;
  std::vector<kv::ContextToken> tokens_;
  std::size_t next_rank_ = 0;
  std::uint64_t next_request_ = 0;
};

void BM_KvShardRound(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  Deployment deployment(shards, kFleet / shards);
  std::uint64_t round_id = 0;
  for (auto _ : state) {
    deployment.round(++round_id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kSessions * kKeysPerSession * 2));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["group_size"] = static_cast<double>(kFleet / shards);
}

BENCHMARK(BM_KvShardRound)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Token plumbing microbench: the per-request cost a session pays for
/// carrying context, independent of any network.
void BM_ContextTokenMergeEncode(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  kv::ContextToken a = kv::ContextToken::zero(shards, 3);
  kv::ContextToken b = kv::ContextToken::zero(shards, 3);
  for (std::size_t s = 0; s < shards; ++s) {
    b.shards[s].seqs = {s + 1, 2 * s, s};
  }
  for (auto _ : state) {
    a.merge(b);
    Writer writer;
    a.encode(writer);
    benchmark::DoNotOptimize(writer.bytes());
  }
}

BENCHMARK(BM_ContextTokenMergeEncode)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace cbc

BENCHMARK_MAIN();
