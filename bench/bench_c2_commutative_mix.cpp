// C2 — Claim (§6.1): the access protocol exploits the cycle
//   rqst_nc(r-1) -> ||{rqst_c(r,k)} k=1..f̄ -> rqst_nc(r),
// "typically 90% of operations are commutative (f̄ = 20)". The more
// commutative the mix, the more the causal protocol wins over per-message
// total ordering: commutative requests cost one broadcast hop and no
// serialization, while every total-order message pays the ordering round.
//
// Sweep f̄ in {0, 1, 9, 20, 99} (commutative fraction 0%..99%) over the
// stable-point protocol and the two total-order baselines, with identical
// workloads.
#include "apps/counter.h"
#include "baseline/total_replica.h"
#include "bench_common.h"
#include "replica/replica_group.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

struct Result {
  SimTime total_sim_us = 0;
  double mean_read_latency_us = 0;
  std::uint64_t wire_msgs = 0;
  double coverage_pct = 100.0;
  std::uint64_t stable_points = 0;
};

constexpr std::size_t kMembers = 4;
constexpr int kCycles = 30;

SimEnv::Config config_for(std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 1500;
  config.seed = seed;
  return config;
}

Result run_stable_point(std::uint64_t f_bar, std::uint64_t seed) {
  SimEnv env(config_for(seed));
  ReplicaGroup<apps::Counter> group(env.transport, kMembers,
                                    apps::Counter::spec());
  Rng rng(seed + 1);
  Histogram read_latency;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (std::uint64_t k = 0; k < f_bar; ++k) {
      group.node(rng.next_below(kMembers)).submit(apps::Counter::inc(1));
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(300)));
    }
    // The front-end manager issues the sync op once the commutative burst
    // has mostly reached it (the paper's manager "generates an ordering of
    // the requests based on the knowledge available").
    env.run_until(env.scheduler.now() + 2500);
    const SimTime issued_at = env.scheduler.now();
    group.node(0).submit(apps::Counter::rd());
    env.run();  // the sync op's delivery everywhere is the stable point
    read_latency.add(static_cast<double>(env.scheduler.now() - issued_at));
  }
  Result result;
  result.total_sim_us = env.scheduler.now();
  result.mean_read_latency_us = read_latency.mean();
  result.wire_msgs = env.network.stats().sent;
  result.stable_points = group.node(0).detector().history().size();
  std::uint64_t covered = 0;
  std::uint64_t points = 0;
  for (std::size_t i = 0; i < kMembers; ++i) {
    for (const StablePoint& point : group.node(i).detector().history()) {
      ++points;
      covered += point.coverage_complete ? 1 : 0;
    }
  }
  result.coverage_pct =
      points == 0 ? 100.0
                  : 100.0 * static_cast<double>(covered) /
                        static_cast<double>(points);
  return result;
}

Result run_total(std::uint64_t f_bar, std::uint64_t seed,
                 TotalOrderEngine engine) {
  SimEnv env(config_for(seed));
  const GroupView view = testkit::make_view(kMembers);
  TotalReplicaNode<apps::Counter>::Options options;
  options.engine = engine;
  std::vector<std::unique_ptr<TotalReplicaNode<apps::Counter>>> nodes;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(std::make_unique<TotalReplicaNode<apps::Counter>>(
        env.transport, view, options));
  }
  Rng rng(seed + 1);
  Histogram read_latency;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (std::uint64_t k = 0; k < f_bar; ++k) {
      nodes[rng.next_below(kMembers)]->submit(apps::Counter::inc(1));
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(300)));
    }
    env.run_until(env.scheduler.now() + 2500);  // same think-time as above
    const SimTime issued_at = env.scheduler.now();
    nodes[0]->submit(apps::Counter::rd());
    env.run();
    read_latency.add(static_cast<double>(env.scheduler.now() - issued_at));
  }
  Result result;
  result.total_sim_us = env.scheduler.now();
  result.mean_read_latency_us = read_latency.mean();
  result.wire_msgs = env.network.stats().sent;
  return result;
}

int run() {
  benchkit::banner("C2", "commutative/non-commutative mix (f̄ sweep, §6.1)");
  Table table({"f_bar", "commutative%", "protocol", "sim_time_ms",
               "read_latency_us", "wire_msgs", "coverage%"});
  for (const std::uint64_t f_bar : {0, 1, 9, 20, 99}) {
    const double pct = 100.0 * static_cast<double>(f_bar) /
                       static_cast<double>(f_bar + 1);
    const Result sp = run_stable_point(f_bar, 11);
    table.row({benchkit::num(f_bar), benchkit::num(pct, 1),
               "stable-point (OSend)",
               benchkit::num(static_cast<double>(sp.total_sim_us) / 1000.0),
               benchkit::num(sp.mean_read_latency_us),
               benchkit::num(sp.wire_msgs), benchkit::num(sp.coverage_pct, 1)});
    const Result am = run_total(f_bar, 11, TotalOrderEngine::kASendMerge);
    table.row({benchkit::num(f_bar), benchkit::num(pct, 1),
               "total (ASend merge)",
               benchkit::num(static_cast<double>(am.total_sim_us) / 1000.0),
               benchkit::num(am.mean_read_latency_us),
               benchkit::num(am.wire_msgs), "-"});
    const Result sq = run_total(f_bar, 11, TotalOrderEngine::kSequencer);
    table.row({benchkit::num(f_bar), benchkit::num(pct, 1),
               "total (sequencer)",
               benchkit::num(static_cast<double>(sq.total_sim_us) / 1000.0),
               benchkit::num(sq.mean_read_latency_us),
               benchkit::num(sq.wire_msgs), "-"});
  }
  table.print();
  benchkit::claim(
      "commutative operations (typically ~90%, f̄≈20) can be processed in "
      "relaxed order; consistency need only be enforced at stable points, "
      "yielding higher concurrency than per-message total order (§5.1, §6.1)");
  benchkit::measured(
      "wire cost of the stable-point protocol stays at one broadcast per "
      "op for every f̄, while total-order baselines pay ordering overhead "
      "on all ops; see coverage%% for the racing-sync caveat (§5.2)");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
