// F2 — Figure 2: causal broadcast scenario R(M) = mk -> ||{m1',m2'} -> m3'.
//
// The paper's point: while the concurrent messages m1', m2' are in flight,
// entities may hold DIFFERENT views of the shared state; when the
// synchronization message m3' (causally after both) is delivered, all
// entities agree again. We run the exact scenario over many seeds,
// printing each member's delivery order, whether intermediate views
// diverged, and whether the view at m3' agreed — plus the dependency
// graph in DOT form.
#include <set>

#include "apps/counter.h"
#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

std::string order_string(const std::vector<Delivery>& log) {
  std::string out;
  for (const Delivery& delivery : log) {
    if (!out.empty()) out += " ";
    out += delivery.label();
  }
  return out;
}

int run() {
  benchkit::banner("F2", "Figure 2 — mk -> ||{m1',m2'} -> m3'");

  Table table({"seed", "order@a_i", "order@a_j", "order@a_k",
               "intermediate_diverged", "agree_at_m3"});
  int diverged_count = 0;
  int agree_count = 0;
  const int seeds = 12;
  std::string dot;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SimEnv::Config config;
    config.jitter_us = 3000;
    config.seed = seed;
    SimEnv env(config);
    Group<OSendMember> group(env.transport, 3);

    // mk = set(10) from a_k; m1' = inc(1), m2' = inc(2) from a_i;
    // m3' = rd from a_j.
    auto payload = [](std::int64_t v) {
      Writer writer;
      writer.i64(v);
      return writer.take();
    };
    const MessageId mk = group[2].osend("mk=set(10)", payload(10), DepSpec::none());
    env.run();
    const MessageId m1 = group[0].osend("m1'=inc(1)", payload(1), DepSpec::after(mk));
    const MessageId m2 = group[0].osend("m2'=inc(2)", payload(2), DepSpec::after(mk));
    // Let the concurrent messages race partway, then send the sync.
    env.run_until(env.scheduler.now() + 1500);
    group[1].osend("m3'=rd", {}, DepSpec::after_all({m1, m2}));
    env.run();

    // Replay each member's log onto a counter, capturing the intermediate
    // view right before m3' and the final view at m3'.
    std::vector<std::int64_t> at_sync(3);
    std::set<std::string> prefixes;
    for (std::size_t i = 0; i < 3; ++i) {
      apps::Counter counter;
      std::string prefix;
      for (const Delivery& delivery : group[i].log()) {
        if (delivery.label() == "m3'=rd") {
          at_sync[i] = counter.value();
          break;
        }
        Reader reader(delivery.payload());
        const std::string kind =
            delivery.label().find("set") != std::string::npos ? "set" : "inc";
        counter.apply(kind, reader);
        prefix += delivery.label() + ";";
      }
      prefixes.insert(prefix);
    }
    const bool diverged = prefixes.size() > 1;
    const bool agree = at_sync[0] == at_sync[1] && at_sync[1] == at_sync[2];
    diverged_count += diverged ? 1 : 0;
    agree_count += agree ? 1 : 0;
    table.row({benchkit::num(seed), order_string(group[0].log()),
               order_string(group[1].log()), order_string(group[2].log()),
               diverged ? "yes" : "no", agree ? "yes" : "no"});
    if (seed == 1) {
      dot = group[0].graph().to_dot("fig2");
    }
  }
  table.print();

  std::cout << "\nDependency graph R(M) (DOT, identical at all members):\n"
            << dot;

  benchkit::claim(
      "views may differ while ||{m1',m2'} are processed in different "
      "sequences, but when m3' (causally after both) is delivered, a_i, "
      "a_j, a_k have the same view — a synchronization point (§2.2)");
  benchkit::measured(
      "agreement at m3' in " + std::to_string(agree_count) + "/" +
      std::to_string(seeds) + " runs; intermediate orders diverged in " +
      std::to_string(diverged_count) + "/" + std::to_string(seeds) + " runs");
  return agree_count == seeds ? 0 : 1;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
