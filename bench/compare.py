#!/usr/bin/env python3
"""Compare a fresh Google-Benchmark JSON run against a committed baseline.

Usage:
    bench/compare.py BASELINE.json FRESH.json [--threshold 0.5]
    bench/compare.py --metrics BASELINE.prom FRESH.prom \
        [--key name[:slack]]... [--require-positive name]...

Exits non-zero when any benchmark present in the baseline

  * is missing from the fresh run (coverage silently lost), or
  * regressed by more than --threshold (fractional; 0.5 == +50% time).

Benchmarks new in the fresh run are reported but never fail the gate, so
adding benchmarks does not require touching the baseline in the same
change. The default threshold is deliberately loose: shared CI runners
jitter by tens of percent, and this gate exists to catch order-of-
magnitude regressions (an accidental O(n^2), a lost zero-copy path), not
single-digit noise. Tighten it when running on quiet hardware.

With --metrics the two inputs are Prometheus plaintext snapshots (as
written by `cbc_node --metrics-snapshot` or scraped from its endpoint)
and the gate is on counter *deltas*: for every --key name[:slack] the
fresh value may exceed the baseline by at most `slack` (absolute;
default 0). That is the right shape for recovery-work counters —
retransmissions, drops, batch flushes — where a committed baseline of
zeros plus a small slack says "this workload should need almost no
recovery". --require-positive names counters that must be strictly
positive in the fresh snapshot (traffic actually flowed).
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Returns {benchmark name: real_time in ns} for per-iteration entries."""
    with open(path) as fh:
        data = json.load(fh)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            continue
        times[bench["name"]] = bench["real_time"] * unit
    return times


def load_prom(path):
    """Returns {metric name: value} from a Prometheus plaintext page.

    Label decoration is stripped and same-name series are summed, so a
    gate on `cbc_kv_requests` sees the value whether the process exposes
    it bare or as `cbc_kv_requests{shard="0",replica="1"}`. Histogram
    bucket series aggregate under their `_bucket` name, which no gate
    targets.
    """
    values = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                continue  # labels with spaces, exemplars: not gated
            name = parts[0]
            brace = name.find("{")
            if brace != -1:
                name = name[:brace]
            try:
                values[name] = values.get(name, 0.0) + float(parts[1])
            except ValueError:
                continue
    return values


def compare_metrics(args):
    baseline = load_prom(args.baseline)
    fresh = load_prom(args.fresh)
    if not fresh:
        print(f"error: no series in fresh snapshot {args.fresh}")
        return 2

    failures = []
    gated = []
    for spec in args.key or []:
        name, _, slack_text = spec.partition(":")
        slack = float(slack_text) if slack_text else 0.0
        gated.append((name, slack))

    names = [name for name, _ in gated] + (args.require_positive or [])
    width = max((len(name) for name in names), default=10)
    for name, slack in gated:
        if name not in fresh:
            failures.append(f"{name}: missing from fresh snapshot")
            print(f"{name:<{width}}  MISSING")
            continue
        base = baseline.get(name, 0.0)
        delta = fresh[name] - base
        marker = ""
        if delta > slack:
            marker = "  EXCEEDED"
            failures.append(
                f"{name}: {base:g} -> {fresh[name]:g} "
                f"(delta {delta:+g}, slack {slack:g})"
            )
        print(
            f"{name:<{width}}  {base:12g}  ->  {fresh[name]:12g}  "
            f"(delta {delta:+g}, slack {slack:g}){marker}"
        )
    for name in args.require_positive or []:
        value = fresh.get(name, 0.0)
        ok = value > 0.0
        print(f"{name:<{width}}  {value:12g}  (required > 0)"
              f"{'' if ok else '  ZERO'}")
        if not ok:
            failures.append(f"{name}: required positive, got {value:g}")

    if failures:
        print(f"\n{len(failures)} metric gate(s) failed:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {len(gated) + len(args.require_positive or [])} "
          "metric gates passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="max tolerated fractional regression (default 0.5 == +50%%)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="inputs are Prometheus snapshots; gate on counter deltas",
    )
    parser.add_argument(
        "--key",
        action="append",
        metavar="NAME[:SLACK]",
        help="metrics mode: gate this series' delta (absolute slack)",
    )
    parser.add_argument(
        "--require-positive",
        action="append",
        metavar="NAME",
        help="metrics mode: series that must be > 0 in the fresh snapshot",
    )
    args = parser.parse_args()

    if args.metrics:
        return compare_metrics(args)

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    failures = []
    width = max(len(name) for name in baseline)
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            print(f"{name:<{width}}  {base_ns:12.1f} ns  ->  MISSING")
            continue
        fresh_ns = fresh[name]
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  REGRESSED"
            failures.append(
                f"{name}: {base_ns:.1f} ns -> {fresh_ns:.1f} ns "
                f"({(ratio - 1.0) * 100.0:+.1f}%, threshold "
                f"{args.threshold * 100.0:+.0f}%)"
            )
        print(
            f"{name:<{width}}  {base_ns:12.1f} ns  ->  {fresh_ns:12.1f} ns  "
            f"({(ratio - 1.0) * 100.0:+6.1f}%){marker}"
        )

    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  (new, not gated)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) beyond threshold:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {len(baseline)} baseline benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
