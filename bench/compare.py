#!/usr/bin/env python3
"""Compare a fresh Google-Benchmark JSON run against a committed baseline.

Usage:
    bench/compare.py BASELINE.json FRESH.json [--threshold 0.5]

Exits non-zero when any benchmark present in the baseline

  * is missing from the fresh run (coverage silently lost), or
  * regressed by more than --threshold (fractional; 0.5 == +50% time).

Benchmarks new in the fresh run are reported but never fail the gate, so
adding benchmarks does not require touching the baseline in the same
change. The default threshold is deliberately loose: shared CI runners
jitter by tens of percent, and this gate exists to catch order-of-
magnitude regressions (an accidental O(n^2), a lost zero-copy path), not
single-digit noise. Tighten it when running on quiet hardware.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Returns {benchmark name: real_time in ns} for per-iteration entries."""
    with open(path) as fh:
        data = json.load(fh)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            continue
        times[bench["name"]] = bench["real_time"] * unit
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="max tolerated fractional regression (default 0.5 == +50%%)",
    )
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    fresh = load_times(args.fresh)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2

    failures = []
    width = max(len(name) for name in baseline)
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            print(f"{name:<{width}}  {base_ns:12.1f} ns  ->  MISSING")
            continue
        fresh_ns = fresh[name]
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  REGRESSED"
            failures.append(
                f"{name}: {base_ns:.1f} ns -> {fresh_ns:.1f} ns "
                f"({(ratio - 1.0) * 100.0:+.1f}%, threshold "
                f"{args.threshold * 100.0:+.0f}%)"
            )
        print(
            f"{name:<{width}}  {base_ns:12.1f} ns  ->  {fresh_ns:12.1f} ns  "
            f"({(ratio - 1.0) * 100.0:+6.1f}%){marker}"
        )

    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  (new, not gated)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) beyond threshold:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {len(baseline)} baseline benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
