// A2 — Ablation (DESIGN.md decision 4): reliability below ordering.
//
// The ordering layers assume loss-free links ("dependencies eventually
// satisfiable at all members"); ReliableEndpoint provides that over a
// lossy network. Sweep the drop rate and measure what the recovery costs:
// end-to-end delivery latency of causally-chained traffic, retransmission
// and control-frame overhead.
#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

struct Result {
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t wire_msgs = 0;
  std::uint64_t delivered = 0;
};

Result run(double drop, std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = 1000;
  config.drop_probability = drop;
  config.seed = seed;
  SimEnv env(config);
  OSendMember::Options options;
  options.reliability = {.control_interval_us = 2000,
                         .retransmit_interval_us = 8000,
                         .enabled = true};
  const std::size_t n = 3;
  Group<OSendMember> group(env.transport, n, options);
  Rng rng(seed);
  std::vector<MessageId> last(n);
  const int per_member = 40;
  for (int k = 0; k < per_member; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      DepSpec deps =
          last[i].is_null() ? DepSpec::none() : DepSpec::after(last[i]);
      last[i] = group[i].osend("op", {}, deps);
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(500)));
    }
  }
  env.run();
  Result result;
  result.wire_msgs = env.network.stats().sent;
  Histogram latency;
  for (std::size_t i = 0; i < n; ++i) {
    result.delivered += group[i].stats().delivered;
    for (const Delivery& delivery : group[i].log()) {
      if (delivery.sender != group[i].id()) {
        latency.add(
            static_cast<double>(delivery.delivered_at - delivery.sent_at));
      }
    }
  }
  result.p50_us = latency.percentile(50);
  result.p99_us = latency.percentile(99);
  return result;
}

int main_impl() {
  benchkit::banner("A2", "reliability layer under packet loss");
  Table table({"drop_rate", "delivered", "p50_us", "p99_us", "wire_msgs",
               "overhead_vs_lossless"});
  std::uint64_t base_msgs = 0;
  double p99_half = 0;
  for (const double drop : {0.0, 0.1, 0.3, 0.5}) {
    const Result result = run(drop, 71);
    if (drop == 0.0) {
      base_msgs = result.wire_msgs;
    }
    if (drop == 0.5) {
      p99_half = result.p99_us;
    }
    table.row({benchkit::num(drop, 1), benchkit::num(result.delivered),
               benchkit::num(result.p50_us), benchkit::num(result.p99_us),
               benchkit::num(result.wire_msgs),
               benchkit::num(static_cast<double>(result.wire_msgs) /
                             static_cast<double>(base_msgs))});
  }
  table.print();
  benchkit::claim(
      "the model assumes every named dependency is eventually satisfiable "
      "at all members (§3.1) — i.e. reliable delivery beneath the ordering "
      "layers");
  benchkit::measured(
      "every message is delivered at every member even at 50% loss "
      "(complete delivery count at all drop rates); the cost is "
      "retransmission traffic and a heavy tail (p99 " +
      benchkit::num(p99_half / 1000.0) + "ms at 50% loss)");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::main_impl(); }
