// A3 — Ablation (DESIGN.md decision 5 + §3.2 "stable form of the graph"):
// stability-driven garbage collection.
//
// The dependency graph and delivered-id set grow with every message; the
// MatrixClock stable cut tells each member which prefix is delivered
// everywhere and can be dropped with zero protocol impact. Measure peak
// bookkeeping with and without periodic prune_stable() over a long run.
#include "bench_common.h"
#include "causal/osend.h"
#include "common/group_fixture.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::Group;
using testkit::SimEnv;

struct Result {
  std::size_t peak_graph = 0;
  std::size_t final_graph = 0;
  std::uint64_t delivered = 0;
  std::uint64_t pruned = 0;
};

Result run(bool gc, int rounds) {
  SimEnv::Config config;
  config.jitter_us = 500;
  config.seed = 61;
  SimEnv env(config);
  OSendMember::Options options;
  options.keep_delivery_log = !gc;
  const std::size_t n = 4;
  Group<OSendMember> group(env.transport, n, options);
  Result result;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      group[i].osend("op", {}, DepSpec::none());
    }
    env.run();
    for (std::size_t i = 0; i < n; ++i) {
      if (gc) {
        result.pruned += group[i].prune_stable();
      }
      result.peak_graph = std::max(result.peak_graph, group[i].graph().size());
    }
  }
  result.final_graph = group[0].graph().size();
  result.delivered = group[0].stats().delivered;
  return result;
}

int main_impl() {
  benchkit::banner("A3", "stability-driven GC of delivery bookkeeping");
  Table table({"mode", "rounds", "delivered_per_member", "peak_graph_nodes",
               "final_graph_nodes", "pruned_per_member"});
  for (const int rounds : {50, 200}) {
    const Result without = run(false, rounds);
    const Result with = run(true, rounds);
    table.row({"no GC", benchkit::num(static_cast<std::uint64_t>(rounds)),
               benchkit::num(without.delivered),
               benchkit::num(static_cast<std::uint64_t>(without.peak_graph)),
               benchkit::num(static_cast<std::uint64_t>(without.final_graph)),
               "0"});
    table.row({"prune_stable() each round",
               benchkit::num(static_cast<std::uint64_t>(rounds)),
               benchkit::num(with.delivered),
               benchkit::num(static_cast<std::uint64_t>(with.peak_graph)),
               benchkit::num(static_cast<std::uint64_t>(with.final_graph)),
               benchkit::num(with.pruned / 4)});
  }
  table.print();
  benchkit::claim(
      "a message known delivered everywhere can never be consulted by an "
      "ordering decision again; the stable cut certifies this locally "
      "without extra messages (matrix-clock stability)");
  benchkit::measured(
      "with per-round pruning the graph stays O(group size) regardless of "
      "run length, vs linear growth without GC — at identical delivery "
      "counts and identical delivery behaviour (same test oracle)");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::main_impl(); }
