// C4 — Claim (§5.2): when dependency tracking is too expensive, the
// application-level protocol (context-carrying queries + discard) "induces
// more complexity ... but provides more asynchronism in execution of the
// protocol when inconsistencies occur infrequently".
//
// Sweep the update fraction and network jitter; report the query discard
// rate and the latency to answer a query under (a) the spontaneous
// causal protocol (answered locally, zero ordering delay) and (b) a
// totally-ordered registry where every query waits for serialization.
#include "apps/registry.h"
#include "appcons/name_service.h"
#include "baseline/total_replica.h"
#include "bench_common.h"
#include "common/sim_env.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cbc {
namespace {

using benchkit::Table;
using testkit::SimEnv;

constexpr std::size_t kMembers = 4;
constexpr int kOps = 200;

struct SpontResult {
  double discard_pct = 0;
  double answer_latency_us = 0;  // issuer-side
};

SpontResult run_spontaneous(double update_fraction, SimTime jitter,
                            std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = jitter;
  config.seed = seed;
  SimEnv env(config);
  const GroupView view = testkit::make_view(kMembers);
  std::vector<std::unique_ptr<NameServiceMember>> members;
  for (std::size_t i = 0; i < kMembers; ++i) {
    members.push_back(std::make_unique<NameServiceMember>(env.transport, view));
  }
  Rng rng(seed + 17);
  for (int op = 0; op < kOps; ++op) {
    const std::size_t who = rng.next_below(kMembers);
    if (rng.next_bool(update_fraction)) {
      members[who]->update("hot", "v" + std::to_string(op));
    } else {
      members[who]->query("hot", nullptr);
    }
    env.run_until(env.scheduler.now() +
                  static_cast<SimTime>(rng.next_below(800)));
  }
  env.run();
  std::uint64_t discarded = 0;
  std::uint64_t processed = 0;
  for (const auto& member : members) {
    discarded += member->stats().queries_discarded;
    processed += member->stats().queries_processed;
  }
  SpontResult result;
  result.discard_pct = processed == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(discarded) /
                                 static_cast<double>(processed);
  result.answer_latency_us = 0.0;  // answered from the local replica at issue
  return result;
}

double run_total_order_query_latency(double update_fraction, SimTime jitter,
                                     std::uint64_t seed) {
  SimEnv::Config config;
  config.jitter_us = jitter;
  config.seed = seed;
  SimEnv env(config);
  const GroupView view = testkit::make_view(kMembers);
  std::vector<std::unique_ptr<TotalReplicaNode<apps::Registry>>> nodes;
  for (std::size_t i = 0; i < kMembers; ++i) {
    nodes.push_back(std::make_unique<TotalReplicaNode<apps::Registry>>(
        env.transport, view));
  }
  Rng rng(seed + 17);
  Histogram latency;
  for (int op = 0; op < kOps; ++op) {
    const std::size_t who = rng.next_below(kMembers);
    if (rng.next_bool(update_fraction)) {
      nodes[who]->submit(apps::Registry::upd("hot", "v" + std::to_string(op)));
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(800)));
    } else {
      // A totally-ordered query must wait for its serialization slot; the
      // answer is available when the query is delivered at its issuer.
      const SimTime issued = env.scheduler.now();
      nodes[who]->submit(apps::Registry::qry("hot"));
      const std::size_t before = nodes[who]->member().log().size();
      env.run_until(env.scheduler.now() +
                    static_cast<SimTime>(rng.next_below(800)));
      // Ensure delivery to measure (run to quiescence if still pending).
      if (nodes[who]->member().log().size() <= before) {
        env.run();
      }
      latency.add(static_cast<double>(env.scheduler.now() - issued));
    }
  }
  env.run();
  return latency.empty() ? 0.0 : latency.mean();
}

int run() {
  benchkit::banner("C4", "name service: context queries vs total order (§5.2)");
  Table table({"upd_fraction", "jitter_us", "discard%", "causal_qry_us",
               "totalorder_qry_us"});
  double calm_discard = 0;
  double hot_discard = 0;
  for (const double fraction : {0.05, 0.2, 0.5, 0.8}) {
    for (const SimTime jitter : {SimTime{1000}, SimTime{5000}}) {
      const SpontResult spont = run_spontaneous(fraction, jitter, 29);
      const double total_latency =
          run_total_order_query_latency(fraction, jitter, 29);
      table.row({benchkit::num(fraction), benchkit::num(static_cast<std::int64_t>(jitter)),
                 benchkit::num(spont.discard_pct, 1),
                 benchkit::num(spont.answer_latency_us),
                 benchkit::num(total_latency)});
      if (fraction == 0.05 && jitter == 1000) calm_discard = spont.discard_pct;
      if (fraction == 0.8 && jitter == 5000) hot_discard = spont.discard_pct;
    }
  }
  table.print();
  benchkit::claim(
      "application-level inconsistency handling adds complexity but more "
      "asynchronism when inconsistencies are infrequent: queries answer "
      "locally; only context-mismatched queries are discarded (§5.2)");
  benchkit::measured(
      "causal queries answer in ~0us vs the total-order round trip; "
      "discard rate " + benchkit::num(calm_discard, 1) +
      "% at 5% updates/low jitter rising to " + benchkit::num(hot_discard, 1) +
      "% at 80% updates/high jitter");
  return 0;
}

}  // namespace
}  // namespace cbc

int main() { return cbc::run(); }
