// Shared helpers for the claim/figure benchmark binaries.
//
// These benches are simulation studies: they run protocol stacks over the
// deterministic simulated network and print the series the paper's figures
// and prose claims correspond to (see DESIGN.md §4). Output is aligned
// text tables plus one "CLAIM"/"MEASURED" pair per experiment, which
// EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/sim_env.h"

namespace cbc::benchkit {

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      out << "  ";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
            << cells[c];
      }
      out << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    out << "  " << rule << "\n";
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
inline std::string num(double value, int precision = 2) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

inline std::string num(std::uint64_t value) { return std::to_string(value); }
inline std::string num(std::int64_t value) { return std::to_string(value); }

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n==================================================\n"
            << id << ": " << title << "\n"
            << "==================================================\n";
}

/// Prints the paper-claim / measured-result pair EXPERIMENTS.md quotes.
inline void claim(const std::string& paper_claim) {
  std::cout << "\nPAPER CLAIM : " << paper_claim << "\n";
}
inline void measured(const std::string& result) {
  std::cout << "MEASURED    : " << result << "\n";
}

}  // namespace cbc::benchkit
