file(REMOVE_RECURSE
  "CMakeFiles/appcons_test.dir/appcons_test.cpp.o"
  "CMakeFiles/appcons_test.dir/appcons_test.cpp.o.d"
  "appcons_test"
  "appcons_test.pdb"
  "appcons_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appcons_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
