# Empty dependencies file for appcons_test.
# This may be replaced when dependencies are built.
