file(REMOVE_RECURSE
  "CMakeFiles/causal_osend_test.dir/causal_osend_test.cpp.o"
  "CMakeFiles/causal_osend_test.dir/causal_osend_test.cpp.o.d"
  "causal_osend_test"
  "causal_osend_test.pdb"
  "causal_osend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_osend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
