# Empty compiler generated dependencies file for causal_osend_test.
# This may be replaced when dependencies are built.
