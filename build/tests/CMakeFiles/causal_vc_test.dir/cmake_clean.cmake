file(REMOVE_RECURSE
  "CMakeFiles/causal_vc_test.dir/causal_vc_test.cpp.o"
  "CMakeFiles/causal_vc_test.dir/causal_vc_test.cpp.o.d"
  "causal_vc_test"
  "causal_vc_test.pdb"
  "causal_vc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
