# Empty compiler generated dependencies file for causal_vc_test.
# This may be replaced when dependencies are built.
