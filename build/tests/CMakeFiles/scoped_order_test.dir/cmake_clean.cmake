file(REMOVE_RECURSE
  "CMakeFiles/scoped_order_test.dir/scoped_order_test.cpp.o"
  "CMakeFiles/scoped_order_test.dir/scoped_order_test.cpp.o.d"
  "scoped_order_test"
  "scoped_order_test.pdb"
  "scoped_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoped_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
