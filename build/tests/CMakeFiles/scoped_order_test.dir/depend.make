# Empty dependencies file for scoped_order_test.
# This may be replaced when dependencies are built.
