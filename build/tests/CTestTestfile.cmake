# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/time_test[1]_include.cmake")
include("/root/repo/build/tests/group_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/causal_osend_test[1]_include.cmake")
include("/root/repo/build/tests/causal_vc_test[1]_include.cmake")
include("/root/repo/build/tests/total_test[1]_include.cmake")
include("/root/repo/build/tests/activity_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/replica_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/appcons_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/scoped_order_test[1]_include.cmake")
