file(REMOVE_RECURSE
  "CMakeFiles/cbc_total.dir/asend.cpp.o"
  "CMakeFiles/cbc_total.dir/asend.cpp.o.d"
  "CMakeFiles/cbc_total.dir/scoped_order.cpp.o"
  "CMakeFiles/cbc_total.dir/scoped_order.cpp.o.d"
  "CMakeFiles/cbc_total.dir/sequencer.cpp.o"
  "CMakeFiles/cbc_total.dir/sequencer.cpp.o.d"
  "libcbc_total.a"
  "libcbc_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
