file(REMOVE_RECURSE
  "libcbc_total.a"
)
