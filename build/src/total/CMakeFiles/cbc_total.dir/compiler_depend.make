# Empty compiler generated dependencies file for cbc_total.
# This may be replaced when dependencies are built.
