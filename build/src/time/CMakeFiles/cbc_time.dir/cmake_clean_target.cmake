file(REMOVE_RECURSE
  "libcbc_time.a"
)
