file(REMOVE_RECURSE
  "CMakeFiles/cbc_time.dir/matrix_clock.cpp.o"
  "CMakeFiles/cbc_time.dir/matrix_clock.cpp.o.d"
  "CMakeFiles/cbc_time.dir/vector_clock.cpp.o"
  "CMakeFiles/cbc_time.dir/vector_clock.cpp.o.d"
  "libcbc_time.a"
  "libcbc_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
