# Empty dependencies file for cbc_time.
# This may be replaced when dependencies are built.
