file(REMOVE_RECURSE
  "CMakeFiles/cbc_appcons.dir/name_service.cpp.o"
  "CMakeFiles/cbc_appcons.dir/name_service.cpp.o.d"
  "libcbc_appcons.a"
  "libcbc_appcons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_appcons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
