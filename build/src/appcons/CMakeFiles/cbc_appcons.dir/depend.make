# Empty dependencies file for cbc_appcons.
# This may be replaced when dependencies are built.
