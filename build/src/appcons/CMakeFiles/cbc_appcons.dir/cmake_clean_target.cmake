file(REMOVE_RECURSE
  "libcbc_appcons.a"
)
