file(REMOVE_RECURSE
  "CMakeFiles/cbc_sim.dir/latency.cpp.o"
  "CMakeFiles/cbc_sim.dir/latency.cpp.o.d"
  "CMakeFiles/cbc_sim.dir/network.cpp.o"
  "CMakeFiles/cbc_sim.dir/network.cpp.o.d"
  "CMakeFiles/cbc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/cbc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/cbc_sim.dir/trace.cpp.o"
  "CMakeFiles/cbc_sim.dir/trace.cpp.o.d"
  "libcbc_sim.a"
  "libcbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
