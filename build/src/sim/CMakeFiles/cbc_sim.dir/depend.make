# Empty dependencies file for cbc_sim.
# This may be replaced when dependencies are built.
