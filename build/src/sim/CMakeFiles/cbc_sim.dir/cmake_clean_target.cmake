file(REMOVE_RECURSE
  "libcbc_sim.a"
)
