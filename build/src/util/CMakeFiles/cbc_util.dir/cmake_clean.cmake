file(REMOVE_RECURSE
  "CMakeFiles/cbc_util.dir/logging.cpp.o"
  "CMakeFiles/cbc_util.dir/logging.cpp.o.d"
  "CMakeFiles/cbc_util.dir/serde.cpp.o"
  "CMakeFiles/cbc_util.dir/serde.cpp.o.d"
  "CMakeFiles/cbc_util.dir/stats.cpp.o"
  "CMakeFiles/cbc_util.dir/stats.cpp.o.d"
  "libcbc_util.a"
  "libcbc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
