# Empty dependencies file for cbc_util.
# This may be replaced when dependencies are built.
