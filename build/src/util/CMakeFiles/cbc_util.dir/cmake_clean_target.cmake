file(REMOVE_RECURSE
  "libcbc_util.a"
)
