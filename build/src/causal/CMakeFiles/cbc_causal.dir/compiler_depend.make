# Empty compiler generated dependencies file for cbc_causal.
# This may be replaced when dependencies are built.
