file(REMOVE_RECURSE
  "libcbc_causal.a"
)
