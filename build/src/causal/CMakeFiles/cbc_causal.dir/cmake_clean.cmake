file(REMOVE_RECURSE
  "CMakeFiles/cbc_causal.dir/delivery.cpp.o"
  "CMakeFiles/cbc_causal.dir/delivery.cpp.o.d"
  "CMakeFiles/cbc_causal.dir/flush.cpp.o"
  "CMakeFiles/cbc_causal.dir/flush.cpp.o.d"
  "CMakeFiles/cbc_causal.dir/osend.cpp.o"
  "CMakeFiles/cbc_causal.dir/osend.cpp.o.d"
  "CMakeFiles/cbc_causal.dir/vc_causal.cpp.o"
  "CMakeFiles/cbc_causal.dir/vc_causal.cpp.o.d"
  "libcbc_causal.a"
  "libcbc_causal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
