# Empty dependencies file for cbc_group.
# This may be replaced when dependencies are built.
