file(REMOVE_RECURSE
  "libcbc_group.a"
)
