
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/group/group_view.cpp" "src/group/CMakeFiles/cbc_group.dir/group_view.cpp.o" "gcc" "src/group/CMakeFiles/cbc_group.dir/group_view.cpp.o.d"
  "/root/repo/src/group/membership.cpp" "src/group/CMakeFiles/cbc_group.dir/membership.cpp.o" "gcc" "src/group/CMakeFiles/cbc_group.dir/membership.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
