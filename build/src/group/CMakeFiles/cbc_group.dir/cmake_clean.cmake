file(REMOVE_RECURSE
  "CMakeFiles/cbc_group.dir/group_view.cpp.o"
  "CMakeFiles/cbc_group.dir/group_view.cpp.o.d"
  "CMakeFiles/cbc_group.dir/membership.cpp.o"
  "CMakeFiles/cbc_group.dir/membership.cpp.o.d"
  "libcbc_group.a"
  "libcbc_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
