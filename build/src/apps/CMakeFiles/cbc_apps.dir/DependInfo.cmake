
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/card_game.cpp" "src/apps/CMakeFiles/cbc_apps.dir/card_game.cpp.o" "gcc" "src/apps/CMakeFiles/cbc_apps.dir/card_game.cpp.o.d"
  "/root/repo/src/apps/counter.cpp" "src/apps/CMakeFiles/cbc_apps.dir/counter.cpp.o" "gcc" "src/apps/CMakeFiles/cbc_apps.dir/counter.cpp.o.d"
  "/root/repo/src/apps/document.cpp" "src/apps/CMakeFiles/cbc_apps.dir/document.cpp.o" "gcc" "src/apps/CMakeFiles/cbc_apps.dir/document.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/cbc_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/cbc_apps.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cbc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/cbc_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/causal/CMakeFiles/cbc_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/cbc_time.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/cbc_group.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cbc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cbc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cbc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
