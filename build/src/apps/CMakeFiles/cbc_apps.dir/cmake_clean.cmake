file(REMOVE_RECURSE
  "CMakeFiles/cbc_apps.dir/card_game.cpp.o"
  "CMakeFiles/cbc_apps.dir/card_game.cpp.o.d"
  "CMakeFiles/cbc_apps.dir/counter.cpp.o"
  "CMakeFiles/cbc_apps.dir/counter.cpp.o.d"
  "CMakeFiles/cbc_apps.dir/document.cpp.o"
  "CMakeFiles/cbc_apps.dir/document.cpp.o.d"
  "CMakeFiles/cbc_apps.dir/registry.cpp.o"
  "CMakeFiles/cbc_apps.dir/registry.cpp.o.d"
  "libcbc_apps.a"
  "libcbc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
