file(REMOVE_RECURSE
  "libcbc_apps.a"
)
