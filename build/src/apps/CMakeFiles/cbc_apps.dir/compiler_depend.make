# Empty compiler generated dependencies file for cbc_apps.
# This may be replaced when dependencies are built.
