file(REMOVE_RECURSE
  "CMakeFiles/cbc_graph.dir/dep_spec.cpp.o"
  "CMakeFiles/cbc_graph.dir/dep_spec.cpp.o.d"
  "CMakeFiles/cbc_graph.dir/message_graph.cpp.o"
  "CMakeFiles/cbc_graph.dir/message_graph.cpp.o.d"
  "CMakeFiles/cbc_graph.dir/message_id.cpp.o"
  "CMakeFiles/cbc_graph.dir/message_id.cpp.o.d"
  "libcbc_graph.a"
  "libcbc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
