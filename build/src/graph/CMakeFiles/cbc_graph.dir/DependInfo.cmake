
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dep_spec.cpp" "src/graph/CMakeFiles/cbc_graph.dir/dep_spec.cpp.o" "gcc" "src/graph/CMakeFiles/cbc_graph.dir/dep_spec.cpp.o.d"
  "/root/repo/src/graph/message_graph.cpp" "src/graph/CMakeFiles/cbc_graph.dir/message_graph.cpp.o" "gcc" "src/graph/CMakeFiles/cbc_graph.dir/message_graph.cpp.o.d"
  "/root/repo/src/graph/message_id.cpp" "src/graph/CMakeFiles/cbc_graph.dir/message_id.cpp.o" "gcc" "src/graph/CMakeFiles/cbc_graph.dir/message_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
