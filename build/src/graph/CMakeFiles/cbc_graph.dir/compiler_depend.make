# Empty compiler generated dependencies file for cbc_graph.
# This may be replaced when dependencies are built.
