file(REMOVE_RECURSE
  "libcbc_graph.a"
)
