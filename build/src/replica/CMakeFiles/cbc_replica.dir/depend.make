# Empty dependencies file for cbc_replica.
# This may be replaced when dependencies are built.
