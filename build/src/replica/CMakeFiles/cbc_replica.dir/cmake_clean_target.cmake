file(REMOVE_RECURSE
  "libcbc_replica.a"
)
