file(REMOVE_RECURSE
  "CMakeFiles/cbc_replica.dir/front_end.cpp.o"
  "CMakeFiles/cbc_replica.dir/front_end.cpp.o.d"
  "libcbc_replica.a"
  "libcbc_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
