file(REMOVE_RECURSE
  "CMakeFiles/cbc_lock.dir/lock_arbiter.cpp.o"
  "CMakeFiles/cbc_lock.dir/lock_arbiter.cpp.o.d"
  "libcbc_lock.a"
  "libcbc_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
