# Empty dependencies file for cbc_lock.
# This may be replaced when dependencies are built.
