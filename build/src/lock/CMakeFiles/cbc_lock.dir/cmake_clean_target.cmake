file(REMOVE_RECURSE
  "libcbc_lock.a"
)
