file(REMOVE_RECURSE
  "libcbc_transport.a"
)
