# Empty compiler generated dependencies file for cbc_transport.
# This may be replaced when dependencies are built.
