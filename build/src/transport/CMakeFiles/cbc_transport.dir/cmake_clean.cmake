file(REMOVE_RECURSE
  "CMakeFiles/cbc_transport.dir/reliable.cpp.o"
  "CMakeFiles/cbc_transport.dir/reliable.cpp.o.d"
  "CMakeFiles/cbc_transport.dir/sim_transport.cpp.o"
  "CMakeFiles/cbc_transport.dir/sim_transport.cpp.o.d"
  "CMakeFiles/cbc_transport.dir/thread_transport.cpp.o"
  "CMakeFiles/cbc_transport.dir/thread_transport.cpp.o.d"
  "libcbc_transport.a"
  "libcbc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
