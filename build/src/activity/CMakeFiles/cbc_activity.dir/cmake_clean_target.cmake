file(REMOVE_RECURSE
  "libcbc_activity.a"
)
