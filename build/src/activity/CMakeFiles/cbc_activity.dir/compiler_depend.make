# Empty compiler generated dependencies file for cbc_activity.
# This may be replaced when dependencies are built.
