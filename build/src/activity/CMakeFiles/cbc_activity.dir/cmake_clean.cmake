file(REMOVE_RECURSE
  "CMakeFiles/cbc_activity.dir/activity_builder.cpp.o"
  "CMakeFiles/cbc_activity.dir/activity_builder.cpp.o.d"
  "CMakeFiles/cbc_activity.dir/commutativity.cpp.o"
  "CMakeFiles/cbc_activity.dir/commutativity.cpp.o.d"
  "CMakeFiles/cbc_activity.dir/stable_point.cpp.o"
  "CMakeFiles/cbc_activity.dir/stable_point.cpp.o.d"
  "libcbc_activity.a"
  "libcbc_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbc_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
