file(REMOVE_RECURSE
  "CMakeFiles/example_membership.dir/membership.cpp.o"
  "CMakeFiles/example_membership.dir/membership.cpp.o.d"
  "example_membership"
  "example_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
