# Empty compiler generated dependencies file for example_name_service.
# This may be replaced when dependencies are built.
