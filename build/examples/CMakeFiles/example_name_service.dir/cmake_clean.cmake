file(REMOVE_RECURSE
  "CMakeFiles/example_name_service.dir/name_service.cpp.o"
  "CMakeFiles/example_name_service.dir/name_service.cpp.o.d"
  "example_name_service"
  "example_name_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_name_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
