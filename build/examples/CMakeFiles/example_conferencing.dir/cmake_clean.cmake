file(REMOVE_RECURSE
  "CMakeFiles/example_conferencing.dir/conferencing.cpp.o"
  "CMakeFiles/example_conferencing.dir/conferencing.cpp.o.d"
  "example_conferencing"
  "example_conferencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_conferencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
