# Empty dependencies file for example_conferencing.
# This may be replaced when dependencies are built.
