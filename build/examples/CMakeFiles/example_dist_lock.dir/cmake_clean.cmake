file(REMOVE_RECURSE
  "CMakeFiles/example_dist_lock.dir/dist_lock.cpp.o"
  "CMakeFiles/example_dist_lock.dir/dist_lock.cpp.o.d"
  "example_dist_lock"
  "example_dist_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dist_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
