# Empty dependencies file for example_dist_lock.
# This may be replaced when dependencies are built.
