file(REMOVE_RECURSE
  "CMakeFiles/example_card_game.dir/card_game.cpp.o"
  "CMakeFiles/example_card_game.dir/card_game.cpp.o.d"
  "example_card_game"
  "example_card_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_card_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
