# Empty compiler generated dependencies file for example_card_game.
# This may be replaced when dependencies are built.
