file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_flush.dir/bench_a4_flush.cpp.o"
  "CMakeFiles/bench_a4_flush.dir/bench_a4_flush.cpp.o.d"
  "bench_a4_flush"
  "bench_a4_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
