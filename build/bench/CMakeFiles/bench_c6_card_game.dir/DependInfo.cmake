
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c6_card_game.cpp" "bench/CMakeFiles/bench_c6_card_game.dir/bench_c6_card_game.cpp.o" "gcc" "bench/CMakeFiles/bench_c6_card_game.dir/bench_c6_card_game.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cbc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cbc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/cbc_time.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/cbc_group.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cbc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/cbc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/causal/CMakeFiles/cbc_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/total/CMakeFiles/cbc_total.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/cbc_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/cbc_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/cbc_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/appcons/CMakeFiles/cbc_appcons.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cbc_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
