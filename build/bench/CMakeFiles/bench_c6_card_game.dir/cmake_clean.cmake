file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_card_game.dir/bench_c6_card_game.cpp.o"
  "CMakeFiles/bench_c6_card_game.dir/bench_c6_card_game.cpp.o.d"
  "bench_c6_card_game"
  "bench_c6_card_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_card_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
