# Empty dependencies file for bench_c6_card_game.
# This may be replaced when dependencies are built.
