# Empty compiler generated dependencies file for bench_a3_gc.
# This may be replaced when dependencies are built.
