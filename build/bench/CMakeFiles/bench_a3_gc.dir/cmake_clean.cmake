file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_gc.dir/bench_a3_gc.cpp.o"
  "CMakeFiles/bench_a3_gc.dir/bench_a3_gc.cpp.o.d"
  "bench_a3_gc"
  "bench_a3_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
