file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_lazy_vs_causal.dir/bench_a1_lazy_vs_causal.cpp.o"
  "CMakeFiles/bench_a1_lazy_vs_causal.dir/bench_a1_lazy_vs_causal.cpp.o.d"
  "bench_a1_lazy_vs_causal"
  "bench_a1_lazy_vs_causal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_lazy_vs_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
