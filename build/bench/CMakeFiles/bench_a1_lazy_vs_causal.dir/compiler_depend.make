# Empty compiler generated dependencies file for bench_a1_lazy_vs_causal.
# This may be replaced when dependencies are built.
