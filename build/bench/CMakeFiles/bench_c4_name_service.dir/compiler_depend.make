# Empty compiler generated dependencies file for bench_c4_name_service.
# This may be replaced when dependencies are built.
