file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_name_service.dir/bench_c4_name_service.cpp.o"
  "CMakeFiles/bench_c4_name_service.dir/bench_c4_name_service.cpp.o.d"
  "bench_c4_name_service"
  "bench_c4_name_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_name_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
