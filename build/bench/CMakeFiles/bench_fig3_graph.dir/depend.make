# Empty dependencies file for bench_fig3_graph.
# This may be replaced when dependencies are built.
