# Empty compiler generated dependencies file for bench_fig4_total_layer.
# This may be replaced when dependencies are built.
