# Empty dependencies file for bench_c3_agreement_cost.
# This may be replaced when dependencies are built.
