file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_agreement_cost.dir/bench_c3_agreement_cost.cpp.o"
  "CMakeFiles/bench_c3_agreement_cost.dir/bench_c3_agreement_cost.cpp.o.d"
  "bench_c3_agreement_cost"
  "bench_c3_agreement_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_agreement_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
