# Empty dependencies file for bench_c2_commutative_mix.
# This may be replaced when dependencies are built.
