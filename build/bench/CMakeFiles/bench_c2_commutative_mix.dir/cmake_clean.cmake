file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_commutative_mix.dir/bench_c2_commutative_mix.cpp.o"
  "CMakeFiles/bench_c2_commutative_mix.dir/bench_c2_commutative_mix.cpp.o.d"
  "bench_c2_commutative_mix"
  "bench_c2_commutative_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_commutative_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
