# Empty dependencies file for bench_fig5_lock.
# This may be replaced when dependencies are built.
