file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lock.dir/bench_fig5_lock.cpp.o"
  "CMakeFiles/bench_fig5_lock.dir/bench_fig5_lock.cpp.o.d"
  "bench_fig5_lock"
  "bench_fig5_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
