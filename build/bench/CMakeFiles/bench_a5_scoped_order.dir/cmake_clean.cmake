file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_scoped_order.dir/bench_a5_scoped_order.cpp.o"
  "CMakeFiles/bench_a5_scoped_order.dir/bench_a5_scoped_order.cpp.o.d"
  "bench_a5_scoped_order"
  "bench_a5_scoped_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_scoped_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
