# Empty compiler generated dependencies file for bench_a5_scoped_order.
# This may be replaced when dependencies are built.
