# Empty dependencies file for bench_fig2_scenario.
# This may be replaced when dependencies are built.
