file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scenario.dir/bench_fig2_scenario.cpp.o"
  "CMakeFiles/bench_fig2_scenario.dir/bench_fig2_scenario.cpp.o.d"
  "bench_fig2_scenario"
  "bench_fig2_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
