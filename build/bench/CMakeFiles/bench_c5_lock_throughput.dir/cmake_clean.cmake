file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_lock_throughput.dir/bench_c5_lock_throughput.cpp.o"
  "CMakeFiles/bench_c5_lock_throughput.dir/bench_c5_lock_throughput.cpp.o.d"
  "bench_c5_lock_throughput"
  "bench_c5_lock_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_lock_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
