# Empty compiler generated dependencies file for bench_c5_lock_throughput.
# This may be replaced when dependencies are built.
