file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_reliability.dir/bench_a2_reliability.cpp.o"
  "CMakeFiles/bench_a2_reliability.dir/bench_a2_reliability.cpp.o.d"
  "bench_a2_reliability"
  "bench_a2_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
