file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_ordering_latency.dir/bench_c1_ordering_latency.cpp.o"
  "CMakeFiles/bench_c1_ordering_latency.dir/bench_c1_ordering_latency.cpp.o.d"
  "bench_c1_ordering_latency"
  "bench_c1_ordering_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_ordering_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
