# Empty compiler generated dependencies file for bench_c1_ordering_latency.
# This may be replaced when dependencies are built.
