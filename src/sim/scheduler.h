// Deterministic discrete-event scheduler.
//
// All protocol activity in simulation mode — message delivery, timers,
// workload arrivals — runs as events on one Scheduler. Events at equal
// times fire in insertion order (a strictly increasing tiebreak sequence),
// which makes whole-system runs bit-reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace cbc::sim {

/// Priority queue of timed callbacks with a virtual clock.
class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current virtual time (microseconds since simulation start).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  void at(SimTime when, Action action);

  /// Schedules `action` `delay` microseconds from now (delay >= 0).
  void after(SimTime delay, Action action);

  /// Runs the single earliest event. Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty (quiescence) or `max_events`
  /// have fired. Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with time <= `until`, advancing the clock to `until`
  /// even if the queue drains early. Returns events processed.
  std::size_t run_until(SimTime until);

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // insertion order; ties broken FIFO
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cbc::sim
