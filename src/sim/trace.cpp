#include "sim/trace.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/ensure.h"

namespace cbc::sim {

namespace {

char glyph_for(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return '*';
    case TraceKind::kDeliver:
      return 'o';
    case TraceKind::kMark:
      return '#';
  }
  return '?';
}

}  // namespace

void Trace::record(SimTime at, NodeId node, TraceKind kind,
                   std::string detail) {
  events_.push_back(TraceEvent{at, node, kind, std::move(detail)});
}

std::vector<TraceEvent> Trace::at_node(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.node == node) {
      out.push_back(event);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

bool Trace::happens_before(NodeId before_node,
                           const std::string& detail_substring,
                           NodeId after_node,
                           const std::string& after_substring) const {
  SimTime first = -1;
  SimTime second = -1;
  for (const TraceEvent& event : events_) {
    if (first < 0 && event.node == before_node &&
        event.detail.find(detail_substring) != std::string::npos) {
      first = event.at;
    }
    if (event.node == after_node &&
        event.detail.find(after_substring) != std::string::npos) {
      second = event.at;  // keep the LAST match for robustness
    }
  }
  return first >= 0 && second >= 0 && first <= second;
}

std::string Trace::render(std::size_t node_count,
                          std::size_t column_width) const {
  require(node_count > 0, "Trace::render: node_count must be positive");
  require(column_width >= 8, "Trace::render: column too narrow");
  std::vector<TraceEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  std::ostringstream out;
  // Header row.
  out << std::setw(10) << "time_us" << " |";
  for (std::size_t n = 0; n < node_count; ++n) {
    std::string header = "node " + std::to_string(n);
    header.resize(column_width, ' ');
    out << header << "|";
  }
  out << "\n" << std::string(10, '-') << "-+";
  for (std::size_t n = 0; n < node_count; ++n) {
    out << std::string(column_width, '-') << "+";
  }
  out << "\n";
  for (const TraceEvent& event : sorted) {
    out << std::setw(10) << event.at << " |";
    for (std::size_t n = 0; n < node_count; ++n) {
      std::string cell;
      if (event.node == n) {
        cell = std::string(1, glyph_for(event.kind)) + " " + event.detail;
        if (cell.size() > column_width) {
          cell.resize(column_width);
        }
      }
      cell.resize(column_width, ' ');
      out << cell << "|";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace cbc::sim
