// Protocol event tracing and space-time diagram rendering.
//
// A Trace collects (time, node, kind, detail) events — typically wired to
// SimNetwork's delivery tap plus protocol-level hooks — and renders them
// as an ASCII space-time diagram (one column per node, time flowing
// down), the visual language of the paper's Figures 2 and 5. Benches and
// examples use it to print faithful scenario traces; tests use it to
// assert event ordering compactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace cbc::sim {

/// Kind of traced event (affects diagram glyphs).
enum class TraceKind : std::uint8_t {
  kSend,     ///< a broadcast/unicast was initiated
  kDeliver,  ///< a message was delivered to the application
  kMark,     ///< protocol milestone (stable point, view install, grant...)
};

/// One traced event.
struct TraceEvent {
  SimTime at = 0;
  NodeId node = kNoNode;
  TraceKind kind = TraceKind::kMark;
  std::string detail;
};

/// Append-only event trace with rendering helpers.
class Trace {
 public:
  /// Records one event (events need not arrive in time order; rendering
  /// sorts stably).
  void record(SimTime at, NodeId node, TraceKind kind, std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events at one node, in time order.
  [[nodiscard]] std::vector<TraceEvent> at_node(NodeId node) const;

  /// True when an event with `detail_substring` at `before_node` precedes
  /// (in time) one with `after_substring` at `after_node`.
  [[nodiscard]] bool happens_before(NodeId before_node,
                                    const std::string& detail_substring,
                                    NodeId after_node,
                                    const std::string& after_substring) const;

  /// ASCII space-time diagram: one column per node 0..node_count-1, one
  /// row per event, time down the left margin. Glyphs: `*` send,
  /// `o` deliver, `#` mark.
  [[nodiscard]] std::string render(std::size_t node_count,
                                   std::size_t column_width = 22) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace cbc::sim
