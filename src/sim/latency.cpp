#include "sim/latency.h"

#include "util/ensure.h"

namespace cbc::sim {

FixedLatency::FixedLatency(SimTime delay) : delay_(delay) {
  require(delay >= 0, "FixedLatency: negative delay");
}

SimTime FixedLatency::sample(NodeId /*from*/, NodeId /*to*/, Rng& /*rng*/) {
  return delay_;
}

UniformJitterLatency::UniformJitterLatency(SimTime base, SimTime jitter)
    : base_(base), jitter_(jitter) {
  require(base >= 0, "UniformJitterLatency: negative base");
  require(jitter >= 0, "UniformJitterLatency: negative jitter");
}

SimTime UniformJitterLatency::sample(NodeId /*from*/, NodeId /*to*/, Rng& rng) {
  if (jitter_ == 0) {
    return base_;
  }
  return base_ + static_cast<SimTime>(rng.next_below(
                     static_cast<std::uint64_t>(jitter_) + 1));
}

ExponentialTailLatency::ExponentialTailLatency(SimTime base, double tail_mean_us)
    : base_(base), tail_mean_us_(tail_mean_us) {
  require(base >= 0, "ExponentialTailLatency: negative base");
  require(tail_mean_us > 0.0, "ExponentialTailLatency: non-positive tail mean");
}

SimTime ExponentialTailLatency::sample(NodeId /*from*/, NodeId /*to*/, Rng& rng) {
  return base_ + static_cast<SimTime>(rng.next_exponential(tail_mean_us_));
}

MatrixLatency::MatrixLatency(std::size_t node_count, SimTime default_delay,
                             SimTime jitter)
    : node_count_(node_count),
      default_delay_(default_delay),
      jitter_(jitter),
      matrix_(node_count * node_count, -1) {
  require(node_count > 0, "MatrixLatency: node_count must be positive");
  require(default_delay >= 0, "MatrixLatency: negative default delay");
  require(jitter >= 0, "MatrixLatency: negative jitter");
}

void MatrixLatency::set(NodeId from, NodeId to, SimTime delay) {
  require(from < node_count_ && to < node_count_, "MatrixLatency::set: node out of range");
  require(delay >= 0, "MatrixLatency::set: negative delay");
  matrix_[static_cast<std::size_t>(from) * node_count_ + to] = delay;
}

void MatrixLatency::set_symmetric(NodeId a, NodeId b, SimTime delay) {
  set(a, b, delay);
  set(b, a, delay);
}

SimTime MatrixLatency::sample(NodeId from, NodeId to, Rng& rng) {
  SimTime base = default_delay_;
  if (from < node_count_ && to < node_count_) {
    const SimTime configured =
        matrix_[static_cast<std::size_t>(from) * node_count_ + to];
    if (configured >= 0) {
      base = configured;
    }
  }
  if (jitter_ == 0) {
    return base;
  }
  return base + static_cast<SimTime>(rng.next_below(
                    static_cast<std::uint64_t>(jitter_) + 1));
}

}  // namespace cbc::sim
