// Link latency models for the simulated network.
//
// A LatencyModel maps (from, to) to a per-message delay sample. Jittery
// models are what create message reordering on the wire — the phenomenon
// the paper's ordering layers must mask — so benches sweep jitter to show
// how each ordering discipline degrades.
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace cbc::sim {

/// Samples a one-way link delay in microseconds for a (from, to) pair.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Returns the delay for one message; must be >= 0.
  [[nodiscard]] virtual SimTime sample(NodeId from, NodeId to, Rng& rng) = 0;
};

/// Constant delay on every link; yields FIFO, never-reordered delivery.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime delay);
  [[nodiscard]] SimTime sample(NodeId from, NodeId to, Rng& rng) override;

 private:
  SimTime delay_;
};

/// Base delay plus uniform jitter in [0, jitter]; jitter > 0 reorders
/// messages both within a link and across links.
class UniformJitterLatency final : public LatencyModel {
 public:
  UniformJitterLatency(SimTime base, SimTime jitter);
  [[nodiscard]] SimTime sample(NodeId from, NodeId to, Rng& rng) override;

 private:
  SimTime base_;
  SimTime jitter_;
};

/// Base delay plus exponentially distributed tail with the given mean;
/// models congested WAN-ish links with occasional stragglers.
class ExponentialTailLatency final : public LatencyModel {
 public:
  ExponentialTailLatency(SimTime base, double tail_mean_us);
  [[nodiscard]] SimTime sample(NodeId from, NodeId to, Rng& rng) override;

 private:
  SimTime base_;
  double tail_mean_us_;
};

/// Explicit per-pair delay matrix (e.g. to model one slow member). Pairs
/// not set fall back to a default delay. Jitter (uniform) applies on top.
class MatrixLatency final : public LatencyModel {
 public:
  MatrixLatency(std::size_t node_count, SimTime default_delay, SimTime jitter);

  /// Sets the base delay for the directed pair (from, to).
  void set(NodeId from, NodeId to, SimTime delay);

  /// Sets the base delay in both directions.
  void set_symmetric(NodeId a, NodeId b, SimTime delay);

  [[nodiscard]] SimTime sample(NodeId from, NodeId to, Rng& rng) override;

 private:
  std::size_t node_count_;
  SimTime default_delay_;
  SimTime jitter_;
  std::vector<SimTime> matrix_;  // node_count x node_count, -1 = unset
};

}  // namespace cbc::sim
