#include "sim/network.h"

#include "util/ensure.h"

namespace cbc::sim {

SimNetwork::SimNetwork(Scheduler& scheduler,
                       std::unique_ptr<LatencyModel> latency,
                       FaultConfig faults, std::uint64_t seed)
    : scheduler_(scheduler),
      latency_(std::move(latency)),
      faults_(faults),
      rng_(seed) {
  require(latency_ != nullptr, "SimNetwork: latency model required");
  require(faults.drop_probability >= 0.0 && faults.drop_probability <= 1.0,
          "SimNetwork: drop_probability out of range");
  require(faults.duplicate_probability >= 0.0 &&
              faults.duplicate_probability <= 1.0,
          "SimNetwork: duplicate_probability out of range");
}

NodeId SimNetwork::add_node(Handler handler) {
  require(static_cast<bool>(handler), "SimNetwork::add_node: empty handler");
  handlers_.push_back(std::move(handler));
  partition_of_.push_back(0);
  return static_cast<NodeId>(handlers_.size() - 1);
}

void SimNetwork::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(from < handlers_.size(), "SimNetwork::send: unknown sender");
  require(to < handlers_.size(), "SimNetwork::send: unknown receiver");
  require(frame != nullptr, "SimNetwork::send: null frame");
  stats_.sent += 1;
  stats_.bytes += frame->size();

  if (!connected(from, to)) {
    stats_.blocked += 1;
    return;
  }
  if (rng_.next_bool(faults_.drop_probability)) {
    stats_.dropped += 1;
    return;
  }
  schedule_delivery(from, to, frame);
  if (rng_.next_bool(faults_.duplicate_probability)) {
    stats_.duplicated += 1;
    schedule_delivery(from, to, std::move(frame));
  }
}

void SimNetwork::schedule_delivery(NodeId from, NodeId to, SharedBuffer frame) {
  const SimTime delay = latency_->sample(from, to, rng_);
  ensure(delay >= 0, "latency model produced a negative delay");
  scheduler_.after(delay, [this, from, to, frame = std::move(frame)] {
    // A partition raised after send() but before delivery also blocks the
    // message: the link is down when the bits would arrive.
    if (!connected(from, to)) {
      stats_.blocked += 1;
      return;
    }
    stats_.delivered += 1;
    if (tap_) {
      tap_(from, to, frame->bytes(), scheduler_.now());
    }
    handlers_[to](from, WireFrame(frame));
  });
}

void SimNetwork::set_partitions(const std::vector<std::vector<NodeId>>& groups) {
  // Group 0 is the implicit group of unlisted nodes; listed groups are 1..n.
  std::fill(partition_of_.begin(), partition_of_.end(), 0U);
  std::uint32_t group_id = 1;
  for (const auto& group : groups) {
    for (const NodeId node : group) {
      require(node < partition_of_.size(),
              "SimNetwork::set_partitions: node out of range");
      partition_of_[node] = group_id;
    }
    ++group_id;
  }
}

void SimNetwork::heal() {
  std::fill(partition_of_.begin(), partition_of_.end(), 0U);
}

bool SimNetwork::connected(NodeId a, NodeId b) const {
  require(a < partition_of_.size() && b < partition_of_.size(),
          "SimNetwork::connected: node out of range");
  return partition_of_[a] == partition_of_[b];
}

}  // namespace cbc::sim
