#include "sim/scheduler.h"

#include "util/ensure.h"

namespace cbc::sim {

void Scheduler::at(SimTime when, Action action) {
  require(when >= now_, "Scheduler::at: cannot schedule in the past");
  require(static_cast<bool>(action), "Scheduler::at: empty action");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

void Scheduler::after(SimTime delay, Action action) {
  require(delay >= 0, "Scheduler::after: negative delay");
  at(now_ + delay, std::move(action));
}

bool Scheduler::step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (shared_ptr-backed std::function copy).
  Event event = queue_.top();
  queue_.pop();
  ensure(event.when >= now_, "Scheduler: time went backwards");
  now_ = event.when;
  event.action();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) {
    ++processed;
  }
  return processed;
}

std::size_t Scheduler::run_until(SimTime until) {
  require(until >= now_, "Scheduler::run_until: target in the past");
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
    ++processed;
  }
  now_ = until;
  return processed;
}

}  // namespace cbc::sim
