// Simulated message-passing network over the discrete-event scheduler.
//
// Nodes register a receive handler and exchange immutable refcounted
// frames (util/buffer.h) — a broadcast shares one buffer across all
// destinations and duplicates, so the network never copies a payload.
// The network applies a latency model (reordering), optional loss and
// duplication, and partitions — the fault envelope the reliability layer
// in src/transport must mask before the ordering layers run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/latency.h"
#include "sim/scheduler.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/types.h"

namespace cbc::sim {

/// Fault-injection knobs applied per transmitted message.
struct FaultConfig {
  double drop_probability = 0.0;       ///< P(message silently lost)
  double duplicate_probability = 0.0;  ///< P(message delivered twice)
};

/// Aggregate traffic statistics, readable at any time.
struct NetStats {
  std::uint64_t sent = 0;       ///< send() calls accepted
  std::uint64_t delivered = 0;  ///< handler invocations
  std::uint64_t dropped = 0;    ///< lost to fault injection
  std::uint64_t duplicated = 0; ///< extra copies delivered
  std::uint64_t blocked = 0;    ///< lost to a partition
  std::uint64_t bytes = 0;      ///< frame bytes accepted by send()
};

/// The simulated network. Not thread-safe: it lives inside one Scheduler
/// run loop, which is single-threaded by construction.
class SimNetwork {
 public:
  /// Receive handler: (sender, frame). The frame's buffer is refcounted;
  /// handlers may retain it past the call (zero-copy hold-back).
  using Handler = std::function<void(NodeId from, const WireFrame& frame)>;

  /// Delivery observer for tracing: (from, to, frame bytes, deliver_time).
  using DeliveryTap = std::function<void(NodeId from, NodeId to,
                                         std::span<const std::uint8_t> payload,
                                         SimTime when)>;

  SimNetwork(Scheduler& scheduler, std::unique_ptr<LatencyModel> latency,
             FaultConfig faults, std::uint64_t seed);

  /// Registers a node and returns its id (dense, starting at 0).
  NodeId add_node(Handler handler);

  /// Number of registered nodes.
  [[nodiscard]] std::size_t node_count() const { return handlers_.size(); }

  /// Sends `frame` from `from` to `to`; delivery is scheduled after a
  /// sampled latency unless dropped or blocked by a partition.
  /// Self-sends are allowed and also traverse the latency model. The same
  /// SharedBuffer may be passed for any number of destinations.
  void send(NodeId from, NodeId to, SharedBuffer frame);

  /// Convenience for loose bytes (moves them into a frame, no copy).
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> payload) {
    send(from, to, make_buffer(std::move(payload)));
  }

  /// Splits nodes into isolated groups; traffic crosses groups only after
  /// heal(). Nodes not listed form an implicit extra group together.
  void set_partitions(const std::vector<std::vector<NodeId>>& groups);

  /// Removes any partition.
  void heal();

  /// True when `a` and `b` can currently exchange messages.
  [[nodiscard]] bool connected(NodeId a, NodeId b) const;

  /// Installs an observer called on every successful delivery.
  void set_delivery_tap(DeliveryTap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }

 private:
  void schedule_delivery(NodeId from, NodeId to, SharedBuffer frame);

  Scheduler& scheduler_;
  std::unique_ptr<LatencyModel> latency_;
  FaultConfig faults_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<std::uint32_t> partition_of_;  // parallel to handlers_
  DeliveryTap tap_;
  NetStats stats_;
};

}  // namespace cbc::sim
