#include "kv/session.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "transport/reliable.h"
#include "util/ensure.h"

namespace cbc::kv {

namespace {

using Clock = std::chrono::steady_clock;

/// Wraps an oob payload in the on-the-wire framing a shard's stack
/// expects: the batching layer's one-entry batch around a reliable kOob
/// frame (the fault::state_transfer client speaks the same dialect).
std::vector<std::uint8_t> frame_for_wire(
    std::span<const std::uint8_t> oob_payload) {
  Writer oob;
  oob.u8(ReliableEndpoint::kOobFrameType);
  oob.raw(oob_payload);
  Writer batch;
  batch.u32(1);
  batch.blob(oob.bytes());
  return batch.take();
}

/// Extracts every kOob inner payload from one received datagram. Non-oob
/// inner frames (a replica's endpoint may aim control traffic at the
/// router slot once it has seen oob from there) are skipped; non-batch
/// framing yields nothing.
std::vector<std::vector<std::uint8_t>> scan_datagram(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::vector<std::uint8_t>> payloads;
  try {
    Reader reader(bytes);
    const std::uint32_t count = reader.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::span<const std::uint8_t> inner = reader.blob_view();
      if (inner.empty() || inner[0] != ReliableEndpoint::kOobFrameType) {
        continue;
      }
      const std::span<const std::uint8_t> payload = inner.subspan(1);
      payloads.emplace_back(payload.begin(), payload.end());
    }
  } catch (const SerdeError&) {
    payloads.clear();  // not batch framing — stray traffic, drop whole
  }
  return payloads;
}

}  // namespace

KvClient::KvClient(KvLayout layout, Options options)
    : layout_(std::move(layout)),
      map_(layout_.shards == 0 ? 1 : layout_.shards),
      options_(options) {
  require(layout_.shards >= 1 && layout_.replicas >= 1,
          "kv client: layout must have at least one shard and one replica");
  require(options_.recv_timeout_ms > 0 && options_.resend_interval_ms > 0 &&
              options_.exchange_timeout_ms > 0,
          "kv client: timeouts must be positive");
  configs_.reserve(layout_.shards);
  fds_.reserve(layout_.shards);
  for (std::size_t shard = 0; shard < layout_.shards; ++shard) {
    configs_.push_back(layout_.shard_config(shard));
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      break;  // fall through to the cleanup + throw below
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in self = configs_[shard].sockaddr_of(layout_.router_slot());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&self), sizeof(self)) !=
        0) {
      ::close(fd);
      break;
    }
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    fds_.push_back(fd);
  }
  if (fds_.size() != layout_.shards) {
    for (const int fd : fds_) {
      ::close(fd);
    }
    fds_.clear();
    throw InvalidArgument(
        "kv client: cannot bind a shard's router slot (is another driver "
        "already attached to this deployment?)");
  }
}

KvClient::~KvClient() {
  for (const int fd : fds_) {
    ::close(fd);
  }
}

bool KvClient::map_exchange(std::size_t shard, std::size_t rank,
                            std::uint64_t nonce, std::int64_t timeout_ms) {
  MapRequest request;
  request.nonce = nonce;
  const std::vector<std::uint8_t> wire =
      frame_for_wire(encode_map_request(request));
  const sockaddr_in peer =
      configs_[shard].sockaddr_of(static_cast<NodeId>(rank));
  const int fd = fds_[shard];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::vector<std::uint8_t> buf(64 * 1024);
  auto next_request = Clock::now();
  while (Clock::now() < deadline) {
    if (Clock::now() >= next_request) {
      (void)::sendto(fd, wire.data(), wire.size(), 0,
                     reinterpret_cast<const sockaddr*>(&peer), sizeof(peer));
      next_request =
          Clock::now() + std::chrono::milliseconds(options_.resend_interval_ms);
    }
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      continue;  // recv timeout — loop re-checks the resend clock
    }
    for (const std::vector<std::uint8_t>& payload : scan_datagram(
             std::span<const std::uint8_t>(buf.data(),
                                           static_cast<std::size_t>(n)))) {
      const std::optional<MapResponse> response = parse_map_response(payload);
      if (!response.has_value() || response->nonce != nonce) {
        ++stats_.stray_datagrams;
        continue;
      }
      // Shape disagreement is a deployment bug, not a transient: fail.
      return response->shards == layout_.shards &&
             response->replicas == layout_.replicas &&
             response->shard == shard && response->rank == rank;
    }
  }
  return false;
}

bool KvClient::wait_ready(std::int64_t timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint64_t nonce = 1;
  for (std::size_t shard = 0; shard < layout_.shards; ++shard) {
    for (std::size_t rank = 0; rank < layout_.replicas; ++rank) {
      bool ready = false;
      while (!ready && Clock::now() < deadline) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - Clock::now())
                              .count();
        const std::int64_t slice =
            left < options_.exchange_timeout_ms ? left
                                                : options_.exchange_timeout_ms;
        if (slice <= 0) {
          break;
        }
        ready = map_exchange(shard, rank, nonce++, slice);
      }
      if (!ready) {
        return false;
      }
    }
  }
  return true;
}

std::optional<OpResponse> KvClient::exchange(std::size_t shard,
                                             std::size_t rank,
                                             const OpRequest& request) {
  ++stats_.exchanges;
  const std::vector<std::uint8_t> wire =
      frame_for_wire(encode_op_request(request));
  const sockaddr_in peer =
      configs_[shard].sockaddr_of(static_cast<NodeId>(rank));
  const int fd = fds_[shard];
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.exchange_timeout_ms);
  std::vector<std::uint8_t> buf(64 * 1024);
  bool sent_once = false;
  auto next_request = Clock::now();
  while (Clock::now() < deadline) {
    if (Clock::now() >= next_request) {
      (void)::sendto(fd, wire.data(), wire.size(), 0,
                     reinterpret_cast<const sockaddr*>(&peer), sizeof(peer));
      if (sent_once) {
        ++stats_.resends;
      }
      sent_once = true;
      next_request =
          Clock::now() + std::chrono::milliseconds(options_.resend_interval_ms);
    }
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      continue;
    }
    for (const std::vector<std::uint8_t>& payload : scan_datagram(
             std::span<const std::uint8_t>(buf.data(),
                                           static_cast<std::size_t>(n)))) {
      const std::optional<OpResponse> response = parse_op_response(payload);
      if (!response.has_value() || response->session != request.session ||
          response->request != request.request) {
        ++stats_.stray_datagrams;  // stale resend echo or foreign traffic
        continue;
      }
      return response;
    }
  }
  ++stats_.exchange_timeouts;
  return std::nullopt;
}

KvSession::KvSession(KvClient& client, std::uint64_t id)
    : client_(client),
      id_(id),
      token_(ContextToken::zero(client.layout().shards,
                                client.layout().replicas)) {}

std::optional<OpResponse> KvSession::run(OpRequest request, std::size_t shard,
                                         std::size_t rank) {
  request.session = id_;
  request.request = next_request_++;
  request.token = token_;
  // kRetry means the replica refused to serve a causally-stale request
  // before its wait deadline; keep re-sending (same request id, so late
  // duplicate refusals still match) until the shard catches up. The bound
  // only guards against a permanently wedged shard.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::optional<OpResponse> response =
        client_.exchange(shard, rank, request);
    if (!response.has_value()) {
      return std::nullopt;  // exchange() already re-sent until its deadline
    }
    if (response->status == Status::kRetry) {
      ++retries_;
      continue;
    }
    token_.merge_shard(static_cast<std::size_t>(response->shard),
                       response->frontier);
    return response;
  }
  return std::nullopt;
}

bool KvSession::put(const std::string& key, const std::string& value) {
  const std::size_t shard = client_.map().shard_of(key);
  const std::size_t rank = round_robin_++ % client_.layout().replicas;
  OpRequest request;
  request.type = MsgType::kPut;
  request.key = key;
  request.value = value;
  return run(std::move(request), shard, rank).has_value();
}

std::optional<KvSession::GetResult> KvSession::get(const std::string& key) {
  const std::size_t shard = client_.map().shard_of(key);
  const std::size_t rank = round_robin_++ % client_.layout().replicas;
  OpRequest request;
  request.type = MsgType::kGet;
  request.key = key;
  const std::optional<OpResponse> response =
      run(std::move(request), shard, rank);
  if (!response.has_value()) {
    return std::nullopt;
  }
  GetResult result;
  result.present = response->present;
  result.value = response->value;
  return result;
}

std::optional<std::uint64_t> KvSession::fence(std::size_t shard) {
  const std::size_t rank = round_robin_++ % client_.layout().replicas;
  OpRequest request;
  request.type = MsgType::kFence;
  const std::optional<OpResponse> response =
      run(std::move(request), shard, rank);
  if (!response.has_value()) {
    return std::nullopt;
  }
  return response->fence_digest;
}

bool KvSession::shutdown(std::size_t shard, std::size_t rank) {
  OpRequest request;
  request.type = MsgType::kShutdown;
  return run(std::move(request), shard, rank).has_value();
}

}  // namespace cbc::kv
