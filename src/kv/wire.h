// The kv client wire protocol — request/response messages and the §5.2
// context token, carried as kOob payloads through each shard's
// ReliableEndpoint.
//
// Clients are NOT group members: they bind the shard's router slot (see
// shard_map.h) and speak only unsequenced, unacked oob frames, so a
// client can neither stall a shard's causal window nor trigger
// retransmit storms. Everything here faces untrusted datagram bytes and
// follows the hardening contract (PR 3): parse_* returns nullopt on any
// malformed input — truncation, bit flips, absurd length prefixes —
// never throws out of the parser, never allocates unbounded memory.
//
// The context token is the paper's application-level *context*: one
// frontier per shard, each frontier a per-replica delivered-sequence
// vector (the shard's rank-indexed delivered prefix as the session last
// observed it). No causal metadata crosses shards inside the service;
// sessions carry the token with their requests, and a replica serves a
// request only once its own shard's frontier covers the token's entry
// for that shard.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/serde.h"

namespace cbc::kv {

/// One shard's delivered frontier: seqs[rank] = highest contiguous
/// broadcast sequence delivered from that replica rank.
struct ShardFrontier {
  std::vector<std::uint64_t> seqs;

  /// Pointwise: every entry of `want` is already delivered here.
  [[nodiscard]] bool covers(const ShardFrontier& want) const;

  /// Pointwise max (adopting what another observer has seen).
  void merge(const ShardFrontier& other);

  bool operator==(const ShardFrontier&) const = default;
};

/// Per-shard stable-point frontiers a session has observed — the
/// application-level context passed with the data (§5.2).
struct ContextToken {
  std::vector<ShardFrontier> shards;

  [[nodiscard]] static ContextToken zero(std::size_t shards,
                                         std::size_t replicas);

  /// Pointwise max over every shard (token adoption: receiving data from
  /// another session transfers its causal context).
  void merge(const ContextToken& other);
  void merge_shard(std::size_t shard, const ShardFrontier& frontier);

  void encode(Writer& writer) const;
  /// Throws SerdeError on truncation; bounds length prefixes before
  /// reserving (callers sit inside a parse_* guard).
  static ContextToken decode(Reader& reader);

  bool operator==(const ContextToken&) const = default;
};

/// Wire message types (first byte of every kv oob payload).
enum class MsgType : std::uint8_t {
  kMapRequest = 1,   ///< layout/readiness ping
  kMapResponse = 2,  ///< responder's view of the layout + its identity
  kPut = 3,
  kGet = 4,
  kFence = 5,
  kShutdown = 6,  ///< drain: wait for token, then report and exit
  kResponse = 7,
};

/// Shard-map exchange: the client confirms a replica is up and that both
/// sides agree on the deployment shape before routing ops to it.
struct MapRequest {
  std::uint64_t nonce = 0;
};

struct MapResponse {
  std::uint64_t nonce = 0;
  std::uint64_t shards = 0;
  std::uint64_t replicas = 0;
  std::uint64_t shard = 0;  ///< responder's shard
  std::uint64_t rank = 0;   ///< responder's rank within the shard
};

/// Response status: kRetry asks the client to re-send (context wait timed
/// out while the shard catches up — the causally-stale read is refused,
/// never served).
enum class Status : std::uint8_t { kOk = 0, kRetry = 1 };

/// One routed client operation (kPut/kGet/kFence/kShutdown).
struct OpRequest {
  MsgType type = MsgType::kPut;
  std::uint64_t session = 0;
  std::uint64_t request = 0;  ///< per-session counter (response matching)
  std::string key;            ///< put/get
  std::string value;          ///< put
  ContextToken token;
};

struct OpResponse {
  std::uint64_t session = 0;
  std::uint64_t request = 0;
  Status status = Status::kOk;
  bool present = false;            ///< get: key existed
  std::string value;               ///< get: observed value
  std::uint64_t fence_digest = 0;  ///< fence: shard sub-map digest
  std::uint64_t shard = 0;         ///< responder's shard
  ShardFrontier frontier;          ///< responder's updated shard frontier
};

[[nodiscard]] std::vector<std::uint8_t> encode_map_request(
    const MapRequest& message);
[[nodiscard]] std::vector<std::uint8_t> encode_map_response(
    const MapResponse& message);
[[nodiscard]] std::vector<std::uint8_t> encode_op_request(
    const OpRequest& message);
[[nodiscard]] std::vector<std::uint8_t> encode_op_response(
    const OpResponse& message);

/// First byte of a well-formed kv payload; nullopt when empty or unknown.
[[nodiscard]] std::optional<MsgType> peek_type(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::optional<MapRequest> parse_map_request(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<MapResponse> parse_map_response(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<OpRequest> parse_op_request(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<OpResponse> parse_op_response(
    std::span<const std::uint8_t> payload);

}  // namespace cbc::kv
