// KvService — the loop-side request server one kv replica runs.
//
// One instance sits next to one ReplicaNode inside one shard's causal
// group and turns client oob requests into replica operations:
//
//   put    -> front-end submit (C-class broadcast; local delivery is
//             synchronous, so the response frontier covers the put)
//   get    -> applied on a COPY of the replica state, never broadcast —
//             reads are session-local, recorded in this replica's history
//             at their true serve position
//   fence  -> front-end submit of the shard-scoped sync op; the response
//             digest is computed from the post-submit state
//   shutdown -> wait for the token, acknowledge, and raise the drain flag
//
// The §5.2 context rule: every request carries the session's token, and
// the service serves it only once this shard's delivered frontier covers
// the token's entry for this shard. A request that is not covered yet is
// *parked* — never served stale, never blocking the event loop — and
// retried after every delivery; past its deadline the client gets a
// kRetry status and re-sends. Wait durations land in the
// `kv.context_wait_us` histogram.
//
// The service is transport-agnostic on purpose: requests arrive through
// handle(), replies leave through a ReplyFn, deliveries are announced via
// on_delivery(), and time comes from a NowFn — unit tests drive all four
// directly, cbc_kv wires them to the oob handler, send_oob, the delivery
// tap, and the steady clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "check/history.h"
#include "kv/wire.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "object/value.h"
#include "replica/replica_node.h"
#include "util/types.h"

namespace cbc::kv {

/// Origin base for session-local get ops in recorded histories: keeps
/// their per-(session, shard, rank) origins disjoint from the remapped
/// broadcast origins (shard * replicas + rank).
inline constexpr NodeId kGetOriginBase = 1u << 20;

/// Remapped history origin of a broadcast op: shard-qualified rank, so
/// per-shard histories merge into one id space without collisions.
[[nodiscard]] constexpr NodeId shard_origin(std::size_t shard,
                                            std::size_t replicas,
                                            NodeId rank) {
  return static_cast<NodeId>(shard * replicas) + rank;
}

class KvService {
 public:
  using Replica = ReplicaNode<object::Value>;
  using ReplyFn = std::function<void(NodeId, std::vector<std::uint8_t>)>;
  using NowFn = std::function<std::int64_t()>;  // microseconds, monotonic
  using RecordGetFn = std::function<void(check::HistoryOp)>;

  struct Options {
    std::size_t shard = 0;
    std::size_t shards = 1;
    std::size_t replicas = 1;
    NodeId rank = 0;
    /// Parked requests past this age answer kRetry instead of waiting on.
    std::int64_t wait_timeout_us = 2'000'000;
    /// Sink for session-local get history ops (nullptr = not recording).
    RecordGetFn record_get;
    obs::Hooks obs;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t malformed = 0;
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t fences = 0;
    std::uint64_t context_waits = 0;     ///< requests that had to park
    std::uint64_t context_timeouts = 0;  ///< parked requests answered kRetry
    std::uint64_t shutdowns = 0;
  };

  KvService(Replica& replica, ReplyFn reply, NowFn now, Options options);

  /// One arrived oob payload (loop thread). Malformed input is counted
  /// and dropped, never fatal.
  void handle(NodeId from, std::span<const std::uint8_t> payload);

  /// Announce that deliveries advanced this shard's frontier: parked
  /// requests whose token is now covered get served.
  void on_delivery();

  /// Expire parked requests past their deadline (loop tick).
  void poll();

  /// This shard's current delivered frontier (rank-indexed seqs).
  [[nodiscard]] ShardFrontier frontier() const;

  /// True once a shutdown request's token was covered and acknowledged.
  [[nodiscard]] bool drain_requested() const { return drain_requested_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t parked() const { return parked_.size(); }

 private:
  struct Parked {
    NodeId from = kNoNode;
    OpRequest request;
    std::int64_t arrived_us = 0;
    std::int64_t deadline_us = 0;
  };

  [[nodiscard]] bool covered(const OpRequest& request) const;
  void serve(NodeId from, const OpRequest& request, std::int64_t arrived_us);
  void drain_parked();
  void record_wait(std::int64_t arrived_us);
  [[nodiscard]] check::HistoryOp get_history_op(
      const OpRequest& request, const object::Op& op,
      const std::vector<std::uint8_t>& response_bytes);

  Replica& replica_;
  ReplyFn reply_;
  NowFn now_;
  Options options_;
  Stats stats_;
  std::vector<Parked> parked_;
  /// Per-session serve counter for get history ids (seq is 1-based).
  std::map<std::uint64_t, SeqNo> session_get_seq_;
  bool drain_requested_ = false;
  bool draining_ = false;

  obs::LatencyHistogram* wait_hist_ = nullptr;
  obs::CollectorHandle collector_;
};

}  // namespace cbc::kv
