#include "kv/wire.h"

#include <algorithm>

namespace cbc::kv {

namespace {

/// A deployment sanity bound on shard counts inside wire tokens: a
/// corrupt count must fail before reserving, like Reader::u64_vec.
constexpr std::uint32_t kMaxWireShards = 4096;

}  // namespace

bool ShardFrontier::covers(const ShardFrontier& want) const {
  if (want.seqs.size() > seqs.size()) {
    return false;
  }
  for (std::size_t rank = 0; rank < want.seqs.size(); ++rank) {
    if (seqs[rank] < want.seqs[rank]) {
      return false;
    }
  }
  return true;
}

void ShardFrontier::merge(const ShardFrontier& other) {
  if (other.seqs.size() > seqs.size()) {
    seqs.resize(other.seqs.size(), 0);
  }
  for (std::size_t rank = 0; rank < other.seqs.size(); ++rank) {
    seqs[rank] = std::max(seqs[rank], other.seqs[rank]);
  }
}

ContextToken ContextToken::zero(std::size_t shard_count,
                                std::size_t replicas) {
  ContextToken token;
  token.shards.assign(shard_count, ShardFrontier{});
  for (ShardFrontier& frontier : token.shards) {
    frontier.seqs.assign(replicas, 0);
  }
  return token;
}

void ContextToken::merge(const ContextToken& other) {
  if (other.shards.size() > shards.size()) {
    shards.resize(other.shards.size());
  }
  for (std::size_t shard = 0; shard < other.shards.size(); ++shard) {
    shards[shard].merge(other.shards[shard]);
  }
}

void ContextToken::merge_shard(std::size_t shard,
                               const ShardFrontier& frontier) {
  if (shard >= shards.size()) {
    shards.resize(shard + 1);
  }
  shards[shard].merge(frontier);
}

void ContextToken::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardFrontier& frontier : shards) {
    writer.u64_vec(frontier.seqs);
  }
}

ContextToken ContextToken::decode(Reader& reader) {
  const std::uint32_t count = reader.u32();
  if (count > kMaxWireShards) {
    throw SerdeError("ContextToken: shard count exceeds wire bound");
  }
  ContextToken token;
  token.shards.reserve(count);
  for (std::uint32_t shard = 0; shard < count; ++shard) {
    ShardFrontier frontier;
    frontier.seqs = reader.u64_vec();
    token.shards.push_back(std::move(frontier));
  }
  return token;
}

std::vector<std::uint8_t> encode_map_request(const MapRequest& message) {
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(MsgType::kMapRequest));
  writer.u64(message.nonce);
  return writer.take();
}

std::vector<std::uint8_t> encode_map_response(const MapResponse& message) {
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(MsgType::kMapResponse));
  writer.u64(message.nonce);
  writer.u64(message.shards);
  writer.u64(message.replicas);
  writer.u64(message.shard);
  writer.u64(message.rank);
  return writer.take();
}

std::vector<std::uint8_t> encode_op_request(const OpRequest& message) {
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(message.type));
  writer.u64(message.session);
  writer.u64(message.request);
  writer.str(message.key);
  writer.str(message.value);
  message.token.encode(writer);
  return writer.take();
}

std::vector<std::uint8_t> encode_op_response(const OpResponse& message) {
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(MsgType::kResponse));
  writer.u64(message.session);
  writer.u64(message.request);
  writer.u8(static_cast<std::uint8_t>(message.status));
  writer.boolean(message.present);
  writer.str(message.value);
  writer.u64(message.fence_digest);
  writer.u64(message.shard);
  writer.u64_vec(message.frontier.seqs);
  return writer.take();
}

std::optional<MsgType> peek_type(std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    return std::nullopt;
  }
  const std::uint8_t type = payload.front();
  if (type < static_cast<std::uint8_t>(MsgType::kMapRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kResponse)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(type);
}

std::optional<MapRequest> parse_map_request(
    std::span<const std::uint8_t> payload) {
  if (peek_type(payload) != MsgType::kMapRequest) {
    return std::nullopt;
  }
  try {
    Reader reader(payload.subspan(1));
    MapRequest message;
    message.nonce = reader.u64();
    return message;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<MapResponse> parse_map_response(
    std::span<const std::uint8_t> payload) {
  if (peek_type(payload) != MsgType::kMapResponse) {
    return std::nullopt;
  }
  try {
    Reader reader(payload.subspan(1));
    MapResponse message;
    message.nonce = reader.u64();
    message.shards = reader.u64();
    message.replicas = reader.u64();
    message.shard = reader.u64();
    message.rank = reader.u64();
    return message;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<OpRequest> parse_op_request(
    std::span<const std::uint8_t> payload) {
  const std::optional<MsgType> type = peek_type(payload);
  if (type != MsgType::kPut && type != MsgType::kGet &&
      type != MsgType::kFence && type != MsgType::kShutdown) {
    return std::nullopt;
  }
  try {
    Reader reader(payload.subspan(1));
    OpRequest message;
    message.type = *type;
    message.session = reader.u64();
    message.request = reader.u64();
    message.key = reader.str();
    message.value = reader.str();
    message.token = ContextToken::decode(reader);
    return message;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<OpResponse> parse_op_response(
    std::span<const std::uint8_t> payload) {
  if (peek_type(payload) != MsgType::kResponse) {
    return std::nullopt;
  }
  try {
    Reader reader(payload.subspan(1));
    OpResponse message;
    message.session = reader.u64();
    message.request = reader.u64();
    const std::uint8_t status = reader.u8();
    if (status > static_cast<std::uint8_t>(Status::kRetry)) {
      return std::nullopt;
    }
    message.status = static_cast<Status>(status);
    message.present = reader.boolean();
    message.value = reader.str();
    message.fence_digest = reader.u64();
    message.shard = reader.u64();
    message.frontier.seqs = reader.u64_vec();
    return message;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace cbc::kv
