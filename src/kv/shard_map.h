// Shard map and layout for the sharded KV service (§5.2).
//
// The paper's scaling answer is to partition the shared data so that one
// causal group serves one shard and no causal metadata crosses shards.
// KvLayout is the static description of such a deployment — S shards ×
// (R replicas + 1 router slot) worth of UDP addresses, the multi-group
// analogue of ClusterConfig — and ShardMap is the routing function
// proper: key -> owning shard by stable hash. The split mirrors the
// shard-metadata / replication-engine separation common in sharded
// stores: the layout says where replicas live, the map says who owns a
// key, and neither knows anything about causal ordering.
//
// Layout file format (comments and blank lines ignored):
//
//   shards 4
//   replicas 3
//   member <shard> <rank> <host>:<port>
//
// Every shard needs exactly replicas+1 member lines, ranks dense from 0.
// Rank `replicas` is the *router slot*: a config entry the shard's
// replicas know how to address (so oob replies pass the stranger filter)
// but which is NOT part of the causal group view — the driver's client
// socket binds there, speaking only unsequenced kOob frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/cluster_config.h"
#include "util/types.h"

namespace cbc::kv {

/// Static multi-group deployment description: per-shard member addresses.
struct KvLayout {
  std::size_t shards = 0;
  std::size_t replicas = 0;
  /// addresses[shard][rank], rank 0..replicas inclusive; the last entry
  /// is the router slot.
  std::vector<std::vector<net::MemberAddress>> addresses;

  /// Parses the file at `path`; throws InvalidArgument naming the line on
  /// malformed entries, missing counts, or incomplete shards.
  [[nodiscard]] static KvLayout load(const std::string& path);

  /// Parses layout text directly (tests, the harness).
  [[nodiscard]] static KvLayout parse(std::string_view text);

  /// Builds an all-localhost layout over the given ports; ports.size()
  /// must be shards * (replicas + 1), consumed shard-major.
  [[nodiscard]] static KvLayout localhost(
      std::size_t shards, std::size_t replicas,
      const std::vector<std::uint16_t>& ports);

  /// Renders the layout back to file text (harness writes, examples).
  [[nodiscard]] std::string encode_text() const;

  /// One shard's ClusterConfig: ids 0..replicas, router slot last. The
  /// causal group view is ids 0..replicas-1 — callers must exclude the
  /// router slot from GroupView membership.
  [[nodiscard]] net::ClusterConfig shard_config(std::size_t shard) const;

  /// The router slot's NodeId within every shard config (== replicas).
  [[nodiscard]] NodeId router_slot() const {
    return static_cast<NodeId>(replicas);
  }
};

/// Key -> owning shard by stable FNV-1a hash. Deterministic across
/// processes and runs: every front-end manager and every test agrees on
/// ownership without coordination.
class ShardMap {
 public:
  explicit ShardMap(std::size_t shards);

  [[nodiscard]] std::size_t shard_of(std::string_view key) const;
  [[nodiscard]] std::size_t shards() const { return shards_; }

 private:
  std::size_t shards_;
};

}  // namespace cbc::kv
