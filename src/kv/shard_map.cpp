#include "kv/shard_map.h"

#include <fstream>
#include <sstream>

#include "object/replicated_object.h"
#include "util/ensure.h"

namespace cbc::kv {

namespace {

[[noreturn]] void bad_layout(std::size_t line, const std::string& what) {
  throw InvalidArgument("KvLayout: line " + std::to_string(line) + ": " +
                        what);
}

}  // namespace

KvLayout KvLayout::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "KvLayout::load: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

KvLayout KvLayout::parse(std::string_view text) {
  KvLayout layout;
  bool have_shards = false;
  bool have_replicas = false;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') {
      continue;  // blank or comment
    }
    if (keyword == "shards" || keyword == "replicas") {
      long long count = 0;
      if (!(fields >> count) || count < 1 || count > 4096) {
        bad_layout(line_no, "expected '" + keyword + " <1..4096>'");
      }
      (keyword == "shards" ? layout.shards : layout.replicas) =
          static_cast<std::size_t>(count);
      (keyword == "shards" ? have_shards : have_replicas) = true;
      continue;
    }
    if (keyword != "member") {
      bad_layout(line_no, "unknown keyword '" + keyword + "'");
    }
    if (!have_shards || !have_replicas) {
      bad_layout(line_no, "member before shards/replicas counts");
    }
    long long shard = -1;
    long long rank = -1;
    std::string address;
    if (!(fields >> shard >> rank >> address)) {
      bad_layout(line_no, "expected 'member <shard> <rank> <host>:<port>'");
    }
    if (shard < 0 || static_cast<std::size_t>(shard) >= layout.shards) {
      bad_layout(line_no, "shard out of range");
    }
    if (rank < 0 || static_cast<std::size_t>(rank) > layout.replicas) {
      bad_layout(line_no, "rank out of range (0..replicas inclusive)");
    }
    layout.addresses.resize(layout.shards);
    auto& shard_addrs = layout.addresses[static_cast<std::size_t>(shard)];
    shard_addrs.resize(layout.replicas + 1);
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= address.size()) {
      bad_layout(line_no, "address must be <host>:<port>");
    }
    net::MemberAddress member;
    member.host = address.substr(0, colon);
    long long port = 0;
    try {
      port = std::stoll(address.substr(colon + 1));
    } catch (const std::exception&) {
      bad_layout(line_no, "unparseable port");
    }
    if (port < 1 || port > 65535) {
      bad_layout(line_no, "port out of range");
    }
    auto& slot = shard_addrs[static_cast<std::size_t>(rank)];
    if (!slot.host.empty()) {
      bad_layout(line_no, "duplicate member (shard, rank)");
    }
    member.port = static_cast<std::uint16_t>(port);
    slot = member;
  }
  require(have_shards && have_replicas,
          "KvLayout::parse: missing shards/replicas counts");
  layout.addresses.resize(layout.shards);
  for (std::size_t shard = 0; shard < layout.shards; ++shard) {
    auto& shard_addrs = layout.addresses[shard];
    shard_addrs.resize(layout.replicas + 1);
    for (std::size_t rank = 0; rank <= layout.replicas; ++rank) {
      require(!shard_addrs[rank].host.empty(),
              "KvLayout::parse: shard " + std::to_string(shard) +
                  " missing rank " + std::to_string(rank));
    }
  }
  return layout;
}

KvLayout KvLayout::localhost(std::size_t shards, std::size_t replicas,
                             const std::vector<std::uint16_t>& ports) {
  require(shards >= 1 && replicas >= 1, "KvLayout::localhost: empty layout");
  require(ports.size() == shards * (replicas + 1),
          "KvLayout::localhost: need shards*(replicas+1) ports");
  KvLayout layout;
  layout.shards = shards;
  layout.replicas = replicas;
  layout.addresses.resize(shards);
  std::size_t next = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    layout.addresses[shard].resize(replicas + 1);
    for (std::size_t rank = 0; rank <= replicas; ++rank) {
      layout.addresses[shard][rank] = {"127.0.0.1", ports[next++]};
    }
  }
  return layout;
}

std::string KvLayout::encode_text() const {
  std::ostringstream out;
  out << "shards " << shards << "\n"
      << "replicas " << replicas << "\n";
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t rank = 0; rank <= replicas; ++rank) {
      const net::MemberAddress& member = addresses[shard][rank];
      out << "member " << shard << " " << rank << " " << member.host << ":"
          << member.port << "\n";
    }
  }
  return out.str();
}

net::ClusterConfig KvLayout::shard_config(std::size_t shard) const {
  require(shard < shards, "KvLayout::shard_config: shard out of range");
  std::ostringstream text;
  for (std::size_t rank = 0; rank <= replicas; ++rank) {
    const net::MemberAddress& member = addresses[shard][rank];
    text << rank << " " << member.host << ":" << member.port << "\n";
  }
  return net::ClusterConfig::parse(text.str());
}

ShardMap::ShardMap(std::size_t shards) : shards_(shards) {
  require(shards >= 1, "ShardMap: need at least one shard");
}

std::size_t ShardMap::shard_of(std::string_view key) const {
  const auto* data = reinterpret_cast<const std::uint8_t*>(key.data());
  return object::fnv1a64({data, key.size()}) % shards_;
}

}  // namespace cbc::kv
