// Client side of the sharded kv service: a blocking UDP router/client
// plus the per-session context layer.
//
// KvClient is the front-end manager's network half: it binds each
// shard's *router slot* (a config entry the shard's replicas can
// address, deliberately outside the causal group view) and exchanges
// kOob-framed kv wire messages with replicas. It is pre-stack plumbing
// in the style of fault::fetch_checkpoint_blocking — plain sockets,
// wall-clock resend, scan-and-match — and is single-threaded by design:
// one driver process owns the deployment's router slots.
//
// KvSession is the §5.2 story: every operation carries the session's
// context token, every kOk response folds the serving shard's updated
// frontier back into it, so a later read on ANY shard waits (server-
// side) until that shard has caught up with what this session already
// observed there. adopt() transfers a whole token between sessions —
// the paper's "context passes with the data" — which is how causal
// chains that hop sessions stay readable.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kv/shard_map.h"
#include "kv/wire.h"

namespace cbc::kv {

/// Blocking per-deployment UDP client; owns one socket per shard, bound
/// at the shard's router slot. Not thread-safe (one driver, serial ops).
class KvClient {
 public:
  struct Options {
    std::int64_t recv_timeout_ms = 20;      ///< single recv() wait
    std::int64_t resend_interval_ms = 100;  ///< request re-send period
    std::int64_t exchange_timeout_ms = 5000;  ///< per exchange() deadline
  };

  struct Stats {
    std::uint64_t exchanges = 0;
    std::uint64_t resends = 0;
    std::uint64_t exchange_timeouts = 0;
    std::uint64_t stray_datagrams = 0;  ///< non-kv traffic on the socket
  };

  /// Binds every router slot; throws InvalidArgument when a bind fails
  /// (another driver already owns the deployment).
  KvClient(KvLayout layout, Options options);
  explicit KvClient(KvLayout layout) : KvClient(std::move(layout), Options{}) {}
  ~KvClient();

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Blocks until every replica of every shard answers a map exchange
  /// agreeing on the deployment shape; false on timeout.
  [[nodiscard]] bool wait_ready(std::int64_t timeout_ms);

  /// Sends one op request to (shard, rank) and waits for the matching
  /// response, re-sending on a wall-clock period; nullopt on deadline.
  [[nodiscard]] std::optional<OpResponse> exchange(std::size_t shard,
                                                   std::size_t rank,
                                                   const OpRequest& request);

  [[nodiscard]] const KvLayout& layout() const { return layout_; }
  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool map_exchange(std::size_t shard, std::size_t rank,
                                  std::uint64_t nonce,
                                  std::int64_t timeout_ms);

  KvLayout layout_;
  ShardMap map_;
  Options options_;
  Stats stats_;
  std::vector<net::ClusterConfig> configs_;  // one per shard
  std::vector<int> fds_;                     // one per shard
};

/// One causal session over the sharded service: routes ops by key hash,
/// threads the context token through every request, retries kRetry
/// refusals (the server never serves a causally-stale read).
class KvSession {
 public:
  struct GetResult {
    bool present = false;
    std::string value;
  };

  KvSession(KvClient& client, std::uint64_t id);

  /// Routes to the owning shard; nullopt-like false on exchange failure.
  [[nodiscard]] bool put(const std::string& key, const std::string& value);
  [[nodiscard]] std::optional<GetResult> get(const std::string& key);

  /// Round-closing sync on one shard; returns the shard sub-map digest.
  [[nodiscard]] std::optional<std::uint64_t> fence(std::size_t shard);

  /// Drains one replica: the server waits for this session's token, acks,
  /// and raises its drain flag.
  [[nodiscard]] bool shutdown(std::size_t shard, std::size_t rank);

  [[nodiscard]] const ContextToken& context() const { return token_; }

  /// §5.2 token transfer: adopting another session's context is the ONLY
  /// way causality crosses sessions — pass it with the data.
  void adopt(const ContextToken& other) { token_.merge(other); }

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

 private:
  [[nodiscard]] std::optional<OpResponse> run(OpRequest request,
                                              std::size_t shard,
                                              std::size_t rank);

  KvClient& client_;
  std::uint64_t id_;
  ContextToken token_;
  std::uint64_t next_request_ = 1;
  std::uint64_t round_robin_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace cbc::kv
