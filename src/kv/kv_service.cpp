#include "kv/kv_service.h"

#include <utility>

#include "apps/kv_store.h"
#include "obs/flight_recorder.h"
#include "time/vector_clock.h"
#include "util/ensure.h"

namespace cbc::kv {

KvService::KvService(Replica& replica, ReplyFn reply, NowFn now,
                     Options options)
    : replica_(replica),
      reply_(std::move(reply)),
      now_(std::move(now)),
      options_(std::move(options)) {
  require(static_cast<bool>(reply_) && static_cast<bool>(now_),
          "KvService: reply and now callbacks are required");
  require(options_.shards >= 1 && options_.shard < options_.shards,
          "KvService: shard out of range");
  require(options_.replicas >= 1 && options_.rank < options_.replicas,
          "KvService: rank out of range");
  require(options_.wait_timeout_us > 0,
          "KvService: wait timeout must be positive");
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "kv";
  }
  if (options_.obs.has_metrics()) {
    wait_hist_ = &options_.obs.metrics->histogram(options_.obs.prefix +
                                                  ".context_wait_us");
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const Stats& s = stats_;
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".requests", s.requests);
          sink.counter(prefix + ".malformed", s.malformed);
          sink.counter(prefix + ".puts", s.puts);
          sink.counter(prefix + ".gets", s.gets);
          sink.counter(prefix + ".fences", s.fences);
          sink.counter(prefix + ".context_waits", s.context_waits);
          sink.counter(prefix + ".context_timeouts", s.context_timeouts);
          sink.counter(prefix + ".shutdowns", s.shutdowns);
          sink.gauge(prefix + ".parked", static_cast<double>(parked_.size()));
        });
  }
}

ShardFrontier KvService::frontier() const {
  const VectorClock& prefix = replica_.osend().delivered_prefix();
  ShardFrontier result;
  result.seqs.resize(options_.replicas, 0);
  for (std::size_t rank = 0; rank < options_.replicas; ++rank) {
    result.seqs[rank] = prefix.at(static_cast<NodeId>(rank));
  }
  return result;
}

bool KvService::covered(const OpRequest& request) const {
  if (request.token.shards.size() <= options_.shard) {
    return true;  // token carries nothing about this shard
  }
  return frontier().covers(request.token.shards[options_.shard]);
}

void KvService::handle(NodeId from, std::span<const std::uint8_t> payload) {
  const std::optional<MsgType> type = peek_type(payload);
  if (!type.has_value()) {
    ++stats_.malformed;
    return;
  }
  if (*type == MsgType::kMapRequest) {
    const std::optional<MapRequest> request = parse_map_request(payload);
    if (!request.has_value()) {
      ++stats_.malformed;
      return;
    }
    ++stats_.requests;
    MapResponse response;
    response.nonce = request->nonce;
    response.shards = options_.shards;
    response.replicas = options_.replicas;
    response.shard = options_.shard;
    response.rank = options_.rank;
    reply_(from, encode_map_response(response));
    return;
  }
  if (*type == MsgType::kMapResponse || *type == MsgType::kResponse) {
    ++stats_.malformed;  // client-bound message on a server socket
    return;
  }
  const std::optional<OpRequest> request = parse_op_request(payload);
  if (!request.has_value()) {
    ++stats_.malformed;
    return;
  }
  ++stats_.requests;
  const std::int64_t arrived = now_();
  if (covered(*request)) {
    serve(from, *request, arrived);
    drain_parked();  // serving a put/fence advances the frontier
    return;
  }
  ++stats_.context_waits;
  // Flight id: the client node plus its per-session request seq — unique
  // enough to chase one stalled request through a postmortem.
  obs::flight_record(obs::FlightEvent::kKvPark,
                     MessageId{from, request->request}, request->session);
  parked_.push_back(
      {from, *request, arrived, arrived + options_.wait_timeout_us});
}

void KvService::on_delivery() { drain_parked(); }

void KvService::poll() {
  drain_parked();
  const std::int64_t now = now_();
  for (std::size_t i = 0; i < parked_.size();) {
    if (parked_[i].deadline_us > now) {
      ++i;
      continue;
    }
    const Parked entry = std::move(parked_[i]);
    parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats_.context_timeouts;
    // The causally-stale request is refused, never served: the client
    // re-sends until this shard catches up.
    OpResponse response;
    response.session = entry.request.session;
    response.request = entry.request.request;
    response.status = Status::kRetry;
    response.shard = options_.shard;
    response.frontier = frontier();
    reply_(entry.from, encode_op_response(response));
  }
}

void KvService::drain_parked() {
  if (draining_) {
    return;  // re-entered from a submit's synchronous local delivery
  }
  draining_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < parked_.size(); ++i) {
      if (!covered(parked_[i].request)) {
        continue;
      }
      const Parked entry = std::move(parked_[i]);
      parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
      const std::int64_t waited = now_() - entry.arrived_us;
      obs::flight_record(
          obs::FlightEvent::kKvDrain,
          MessageId{entry.from, entry.request.request},
          static_cast<std::uint64_t>(waited < 0 ? 0 : waited));
      serve(entry.from, entry.request, entry.arrived_us);
      progress = true;
      break;  // indices shifted; rescan with the advanced frontier
    }
  }
  draining_ = false;
}

void KvService::record_wait(std::int64_t arrived_us) {
  if (wait_hist_ != nullptr) {
    const std::int64_t waited = now_() - arrived_us;
    wait_hist_->record(static_cast<double>(waited < 0 ? 0 : waited));
  }
}

void KvService::serve(NodeId from, const OpRequest& request,
                      std::int64_t arrived_us) {
  record_wait(arrived_us);
  OpResponse response;
  response.session = request.session;
  response.request = request.request;
  response.status = Status::kOk;
  response.shard = options_.shard;
  switch (request.type) {
    case MsgType::kPut: {
      ++stats_.puts;
      replica_.submit(apps::KvStore::put(request.key, request.value));
      break;
    }
    case MsgType::kGet: {
      ++stats_.gets;
      const object::Op op = apps::KvStore::get(request.key);
      // Session-local read: applied on a copy, never broadcast — the
      // replica's own state (and its cross-replica digest) is untouched.
      object::Value observer = replica_.state();
      Reader args(op.args);
      const std::vector<std::uint8_t> bytes = observer.apply("get", args);
      Reader decoded(bytes);
      response.present = decoded.boolean();
      response.value = decoded.str();
      if (options_.record_get) {
        options_.record_get(get_history_op(request, op, bytes));
      }
      break;
    }
    case MsgType::kFence: {
      ++stats_.fences;
      const object::Op op =
          apps::KvStore::fence(options_.shard, options_.shards);
      replica_.submit(op);
      // State-inert: the digest computed now equals the fence's response
      // at its (just-completed) local application.
      object::Value observer = replica_.state();
      Reader args(op.args);
      const std::vector<std::uint8_t> bytes = observer.apply("fence", args);
      Reader digest(bytes);
      response.fence_digest = digest.u64();
      break;
    }
    case MsgType::kShutdown: {
      ++stats_.shutdowns;
      drain_requested_ = true;
      break;
    }
    default:
      break;
  }
  response.frontier = frontier();
  reply_(from, encode_op_response(response));
}

check::HistoryOp KvService::get_history_op(
    const OpRequest& request, const object::Op& op,
    const std::vector<std::uint8_t>& response_bytes) {
  check::HistoryOp record;
  const NodeId origin =
      kGetOriginBase +
      static_cast<NodeId>(
          (request.session * options_.shards + options_.shard) *
              options_.replicas) +
      options_.rank;
  record.id = MessageId{origin, ++session_get_seq_[request.session]};
  record.origin = origin;
  record.label = "get#s" + std::to_string(request.session) + "." +
                 std::to_string(record.id.seq);
  record.args = op.args;
  record.response = response_bytes;
  // Same-shard context deps only: the edges the wait must have enforced.
  // Cross-shard entries of the token are deliberately NOT asserted — no
  // causal metadata crosses shards (§5.2); cross-shard causality is
  // carried by token adoption enlarging these same-shard frontiers.
  if (request.token.shards.size() > options_.shard) {
    const ShardFrontier& want = request.token.shards[options_.shard];
    for (std::size_t rank = 0;
         rank < want.seqs.size() && rank < options_.replicas; ++rank) {
      if (want.seqs[rank] == 0) {
        continue;
      }
      record.deps.push_back(
          MessageId{shard_origin(options_.shard, options_.replicas,
                                 static_cast<NodeId>(rank)),
                    want.seqs[rank]});
    }
  }
  return record;
}

}  // namespace cbc::kv
