// cbc_kv — the sharded causal KV service (§5.2) in one binary.
//
//   cbc_kv server --layout FILE --shard S --rank R [options]
//     One replica of one shard: the full library stack over real UDP
//     (UdpTransport -> [ChaosTransport] -> Batching -> OSend ->
//     InvariantChecker -> delivery tap -> ReplicaNode<object::Value>)
//     running the catalog's "kv" object, plus a KvService answering
//     client oob requests at this replica. Each shard is an independent
//     causal group: no causal metadata ever crosses shards.
//
//   cbc_kv drive --layout FILE [options]
//     The front-end driver: binds every shard's router slot, runs
//     `sessions` client sessions through a round-structured mixed
//     workload — each session puts its own key slots (keys hash across
//     all shards), then reads a neighbour session's keys after adopting
//     that session's context token (§5.2 token transfer), so every read
//     is a cross-shard, cross-session causal dependency the service must
//     honor. Each round closes with per-shard fences under the merged
//     round token; every session adopts the fence context before the
//     next round, which causally orders same-slot rewrites across
//     rounds. The driver verifies every read returns the value the
//     adopted context promises; a stale value is a consistency bug and
//     is counted in the report (value_mismatches, expected 0).
//
// Shutdown is context-consistent too: the driver sends kShutdown with
// its final token to every replica; a replica acks only once its shard
// frontier covers the token — i.e. once it has delivered the complete
// workload — then writes its report (and recorded history) and exits.
// By the time the last ack arrives, no replica needs retransmissions.
//
// Server reports/history mirror cbc_node: key=value report files, and
// --record-history writes a SiteHistory whose broadcast ids are
// remapped to shard-qualified origins (shard * replicas + rank) so the
// per-rank histories of ALL shards merge into one id space for the
// offline cbc_check oracle; session-local gets are recorded at their
// true serve position with per-session origins.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/install.h"
#include "causal/osend.h"
#include "check/history.h"
#include "check/invariant_checker.h"
#include "check/violation.h"
#include "fault/chaos_transport.h"
#include "fault/fault_plan.h"
#include "group/group_view.h"
#include "kv/kv_service.h"
#include "kv/session.h"
#include "kv/shard_map.h"
#include "kv/wire.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/metrics_http.h"
#include "net/udp_transport.h"
#include "object/catalog.h"
#include "object/value.h"
#include "obs/flight_recorder.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "replica/replica_node.h"
#include "transport/batching.h"
#include "util/ensure.h"

#include <unistd.h>

namespace {

volatile std::sig_atomic_t g_terminate_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigterm(int) { g_terminate_requested = 1; }
void on_sigusr2(int) { g_dump_requested = 1; }

struct KvArgs {
  std::string mode;  // "server" or "drive"
  std::string layout_path;
  std::size_t shard = static_cast<std::size_t>(-1);
  cbc::NodeId rank = cbc::kNoNode;
  std::string report_path;
  std::string progress_path;
  std::string record_history_path;
  std::string fault_plan_path;
  std::string flight_path;
  bool force_poll = false;
  int metrics_port = -1;  // -1 = no endpoint; 0 = ephemeral
  std::string metrics_snapshot_path;
  std::int64_t wait_timeout_ms = 2000;

  // Driver knobs.
  std::uint64_t sessions = 2;
  std::uint64_t rounds = 3;
  std::uint64_t ops_per_round = 4;
  std::int64_t ready_timeout_ms = 20'000;
  std::int64_t exchange_timeout_ms = 5000;

  [[nodiscard]] bool observability() const {
    return metrics_port >= 0 || !metrics_snapshot_path.empty();
  }
};

void usage() {
  std::cerr
      << "usage: cbc_kv server --layout FILE --shard S --rank R [options]\n"
         "       cbc_kv drive  --layout FILE [options]\n"
         "  --layout FILE     kv layout file (shards/replicas/member lines)\n"
         "server options:\n"
         "  --shard S         this replica's shard\n"
         "  --rank R          this replica's rank within the shard\n"
         "  --report FILE     write the final key=value report here\n"
         "  --progress FILE   rewrite request progress here (harnesses)\n"
         "  --record-history FILE  write this replica's history here at\n"
         "                    drain (cbc_check input, shard-remapped ids)\n"
         "  --fault-plan FILE deterministic fault injection plan\n"
         "  --flight FILE     back the flight-recorder ring with FILE\n"
         "                    (survives SIGKILL; default in-memory ring\n"
         "                    dumped on crash points and SIGUSR2)\n"
         "  --wait-timeout-ms N  context-wait deadline before kRetry\n"
         "  --metrics-port P  serve Prometheus plaintext on 127.0.0.1:P\n"
         "  --metrics-snapshot FILE  rewrite the metrics page here\n"
         "  --force-poll      use the poll event-loop backend\n"
         "drive options:\n"
         "  --sessions N      client sessions (default 2)\n"
         "  --rounds R        workload rounds (default 3)\n"
         "  --ops K           key slots per session per round (default 4)\n"
         "  --report FILE     write the driver's key=value report here\n"
         "  --ready-timeout-ms N   wait for every replica to answer\n"
         "  --exchange-timeout-ms N  per-request client deadline\n";
}

KvArgs parse_args(int argc, char** argv) {
  KvArgs args;
  cbc::require(argc >= 2, "cbc_kv: a mode (server|drive) is required");
  args.mode = argv[1];
  cbc::require(args.mode == "server" || args.mode == "drive",
               "cbc_kv: mode must be server or drive");
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      cbc::require(i + 1 < argc, "cbc_kv: flag needs a value: " + flag);
      return argv[++i];
    };
    if (flag == "--layout") {
      args.layout_path = value();
    } else if (flag == "--shard") {
      args.shard = std::stoul(value());
    } else if (flag == "--rank") {
      args.rank = static_cast<cbc::NodeId>(std::stoul(value()));
    } else if (flag == "--report") {
      args.report_path = value();
    } else if (flag == "--progress") {
      args.progress_path = value();
    } else if (flag == "--record-history") {
      args.record_history_path = value();
    } else if (flag == "--fault-plan") {
      args.fault_plan_path = value();
    } else if (flag == "--flight") {
      args.flight_path = value();
    } else if (flag == "--wait-timeout-ms") {
      args.wait_timeout_ms = std::stoll(value());
      cbc::require(args.wait_timeout_ms > 0,
                   "cbc_kv: --wait-timeout-ms must be positive");
    } else if (flag == "--metrics-port") {
      args.metrics_port = std::stoi(value());
      cbc::require(args.metrics_port >= 0 && args.metrics_port <= 65535,
                   "cbc_kv: --metrics-port out of range");
    } else if (flag == "--metrics-snapshot") {
      args.metrics_snapshot_path = value();
    } else if (flag == "--force-poll") {
      args.force_poll = true;
    } else if (flag == "--sessions") {
      args.sessions = std::stoull(value());
      cbc::require(args.sessions >= 1, "cbc_kv: --sessions must be >= 1");
    } else if (flag == "--rounds") {
      args.rounds = std::stoull(value());
    } else if (flag == "--ops") {
      args.ops_per_round = std::stoull(value());
      cbc::require(args.ops_per_round >= 1, "cbc_kv: --ops must be >= 1");
    } else if (flag == "--ready-timeout-ms") {
      args.ready_timeout_ms = std::stoll(value());
    } else if (flag == "--exchange-timeout-ms") {
      args.exchange_timeout_ms = std::stoll(value());
    } else {
      usage();
      cbc::require(false, "cbc_kv: unknown flag: " + flag);
    }
  }
  cbc::require(!args.layout_path.empty(), "cbc_kv: --layout is required");
  if (args.mode == "server") {
    cbc::require(args.shard != static_cast<std::size_t>(-1),
                 "cbc_kv server: --shard is required");
    cbc::require(args.rank != cbc::kNoNode, "cbc_kv server: --rank is required");
  }
  return args;
}

/// Atomic (tmp + rename) key=value file write, so a harness polling the
/// path never reads a partial file.
void write_kv_file(const std::string& path,
                   const std::vector<std::pair<std::string, std::string>>& kv) {
  if (path.empty()) {
    return;
  }
  // pid-unique tmp: a crashed member's restarted incarnation can share
  // the path, and two writers on one ".tmp" would tear the rename.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const auto& [key, value] : kv) {
      out << key << "=" << value << "\n";
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::string hex64(std::uint64_t v) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything one kv replica process owns, wired bottom-up.
class Server {
 public:
  Server(const KvArgs& args, cbc::kv::KvLayout layout)
      : args_(args),
        layout_(std::move(layout)),
        config_(layout_.shard_config(args.shard)),
        loop_(cbc::net::EventLoop::Options{.force_poll = args.force_poll,
                                           .wheel = {}}),
        udp_(loop_, config_, make_udp_options()),
        chaos_(make_chaos()),
        batching_(chaos_ != nullptr ? static_cast<cbc::Transport&>(*chaos_)
                                    : static_cast<cbc::Transport&>(udp_),
                  make_batching_options()),
        view_(1, group_members()),
        log_(std::make_shared<cbc::check::ViolationLog>()) {
    cbc::require(args_.shard < layout_.shards,
                 "cbc_kv server: --shard out of range for the layout");
    cbc::require(args_.rank < layout_.replicas,
                 "cbc_kv server: --rank out of range for the layout");
    if (args_.observability()) {
      // Every scrape line from this process carries its shard/replica
      // identity, so one Prometheus target set tells shards apart.
      registry_.set_default_labels(
          {{"shard", std::to_string(args_.shard)},
           {"replica", std::to_string(args_.rank)}});
    }
    // The flight ring is process-global and always on; export its
    // occupancy whenever anything scrapes this registry.
    flight_collector_ =
        registry_.register_collector([](cbc::obs::CollectorSink& sink) {
          if (cbc::obs::FlightRecorder* recorder =
                  cbc::obs::flight_recorder()) {
            sink.counter("flight.records", recorder->total_recorded());
            sink.gauge("flight.capacity",
                       static_cast<double>(recorder->capacity()));
          }
        });
    const auto entry = cbc::object::Catalog::instance().find("kv");
    cbc::require(entry.has_value(), "cbc_kv: catalog is missing 'kv'");
    const cbc::CommutativitySpec derived =
        cbc::object::derive_commutativity(entry->spec());

    cbc::OSendMember::Options osend_options;
    osend_options.reliability.enabled = true;
    osend_options.reliability.obs = hooks("reliable");
    // Client requests arrive inside the datagram-processing path (stack
    // lock held, front-end state mid-update). Serving them there would
    // deadlock on submit and compute wrong dependencies, so the payload
    // is copied and the service runs from a posted loop task — same loop
    // thread, outside the stack.
    osend_options.reliability.oob_handler =
        [this](cbc::NodeId from, std::span<const std::uint8_t> payload) {
          std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
          loop_.post([this, from, bytes = std::move(bytes)] {
            service_->handle(from, bytes);
          });
        };
    osend_options.obs = hooks("osend");
    auto member = std::make_unique<cbc::OSendMember>(
        batching_, view_, [](const cbc::Delivery&) {}, osend_options);

    cbc::check::InvariantChecker::Options check_options;
    check_options.obs = hooks("check");
    check_options.stable_spec = derived;
    check_options.digest_exempt_kinds = {"nop"};
    auto checker = std::make_unique<cbc::check::InvariantChecker>(
        std::move(member), log_, check_options);
    checker_ = checker.get();

    replica_ = std::make_unique<cbc::ReplicaNode<cbc::object::Value>>(
        std::move(checker), derived,
        cbc::FrontEndManager::Options{.fifo_chain = true},
        cbc::object::Value(entry->make()));
    // The apply observer fires after the replica applied a broadcast op:
    // the right moment to record it (actual response bytes, for CM
    // replay) and the earliest sound moment to wake parked client
    // requests — deferred to a posted task so serving happens outside
    // the stack, with the front end fully caught up.
    replica_->set_apply_observer(
        [this](const cbc::Delivery& delivery,
               const std::vector<std::uint8_t>& response) {
          if (!args_.record_history_path.empty()) {
            cbc::check::HistoryOp op;
            op.id = remap(delivery.id);
            op.origin = remap_origin(delivery.sender);
            op.label = delivery.label();
            const auto payload = delivery.payload();
            op.args.assign(payload.begin(), payload.end());
            for (const cbc::MessageId& dep : delivery.deps().ids()) {
              op.deps.push_back(remap(dep));
            }
            op.response = response;
            history_.push_back(std::move(op));
          }
          loop_.post([this] { service_->on_delivery(); });
        });

    cbc::kv::KvService::Options service_options;
    service_options.shard = args_.shard;
    service_options.shards = layout_.shards;
    service_options.replicas = layout_.replicas;
    service_options.rank = args_.rank;
    service_options.wait_timeout_us = args_.wait_timeout_ms * 1000;
    if (!args_.record_history_path.empty()) {
      service_options.record_get = [this](cbc::check::HistoryOp op) {
        history_.push_back(std::move(op));
      };
    }
    service_options.obs = hooks("kv");
    service_ = std::make_unique<cbc::kv::KvService>(
        *replica_,
        [this](cbc::NodeId to, std::vector<std::uint8_t> payload) {
          replica_->osend().send_oob(to, payload);
        },
        [] { return steady_now_us(); }, std::move(service_options));

    if (args_.metrics_port >= 0) {
      cbc::net::MetricsHttpServer::Options http_options;
      http_options.port = static_cast<std::uint16_t>(args_.metrics_port);
      metrics_http_ = std::make_unique<cbc::net::MetricsHttpServer>(
          loop_, registry_, http_options);
    }
  }

  int run() {
    write_progress();
    arm_tick();
    arm_snapshot();
    loop_.run();
    return 0;
  }

 private:
  [[nodiscard]] std::vector<cbc::NodeId> group_members() const {
    // The shard config carries replicas + 1 entries; the last is the
    // router slot — addressable, but never a causal group member.
    std::vector<cbc::NodeId> members;
    for (std::size_t rank = 0; rank < layout_.replicas; ++rank) {
      members.push_back(static_cast<cbc::NodeId>(rank));
    }
    return members;
  }

  [[nodiscard]] cbc::net::UdpTransport::Options make_udp_options() {
    cbc::net::UdpTransport::Options options;
    options.local_ids = {args_.rank};
    options.obs = hooks("udp");
    return options;
  }

  [[nodiscard]] cbc::BatchingTransport::Options make_batching_options() {
    cbc::BatchingTransport::Options options;
    options.obs = hooks("batch");
    return options;
  }

  [[nodiscard]] std::unique_ptr<cbc::fault::ChaosTransport> make_chaos() {
    if (args_.fault_plan_path.empty()) {
      return nullptr;
    }
    cbc::fault::ChaosTransport::Options options;
    options.plan = cbc::fault::FaultPlan::load(args_.fault_plan_path);
    options.local_node = args_.rank;
    options.on_crash = [] {
      if (cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder()) {
        recorder->dump();
      }
      std::_Exit(137);
    };
    options.obs = hooks("fault");
    return std::make_unique<cbc::fault::ChaosTransport>(udp_,
                                                        std::move(options));
  }

  [[nodiscard]] cbc::obs::Hooks hooks(std::string prefix) {
    if (!args_.observability()) {
      return {};
    }
    return {&registry_, nullptr, std::move(prefix)};
  }

  [[nodiscard]] cbc::NodeId remap_origin(cbc::NodeId rank) const {
    return cbc::kv::shard_origin(args_.shard, layout_.replicas, rank);
  }

  [[nodiscard]] cbc::MessageId remap(const cbc::MessageId& id) const {
    return cbc::MessageId{remap_origin(id.sender), id.seq};
  }

  void arm_tick() {
    loop_.schedule(20'000, [this] {
      tick();
      if (!stopping_) {
        arm_tick();
      }
    });
  }

  void arm_snapshot() {
    if (args_.metrics_snapshot_path.empty()) {
      return;
    }
    loop_.schedule(250'000, [this] {
      dump_metrics();
      if (!stopping_) {
        arm_snapshot();
      }
    });
  }

  void tick() {
    service_->poll();
    write_progress();
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
      if (cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder()) {
        recorder->dump();
      }
    }
    if (g_terminate_requested != 0) {
      finish();
      return;
    }
    if (service_->drain_requested()) {
      // The drain ack has been sent (the shutdown request's token was
      // covered, so the full workload is delivered here). Linger a few
      // ticks so the ack datagram and any final acks flush, then exit.
      ++drain_ticks_;
      if (drain_ticks_ >= 10) {
        finish();
      }
    }
  }

  void finish() {
    write_report();
    dump_metrics();
    write_history();
    stopping_ = true;
    loop_.stop();
  }

  void dump_metrics() {
    if (!args_.observability() || args_.metrics_snapshot_path.empty()) {
      return;
    }
    const std::string tmp =
        args_.metrics_snapshot_path + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << registry_.render_prometheus();
    }
    std::rename(tmp.c_str(), args_.metrics_snapshot_path.c_str());
  }

  void write_history() {
    if (args_.record_history_path.empty()) {
      return;
    }
    cbc::check::SiteHistory history;
    history.object = "kv";
    history.site = remap_origin(args_.rank);
    history.ops = std::move(history_);
    try {
      history.save(args_.record_history_path);
    } catch (const cbc::InvalidArgument& error) {
      std::cerr << "cbc_kv server " << args_.shard << "/" << args_.rank
                << ": cannot write history: " << error.what() << "\n";
    }
  }

  void write_progress() {
    if (args_.progress_path.empty()) {
      return;
    }
    const cbc::kv::KvService::Stats& s = service_->stats();
    // shard/rank/metrics_port ride along so fleet tools (cbc_top) can
    // discover live scrape endpoints before any final report exists.
    write_kv_file(args_.progress_path,
                  {{"requests", std::to_string(s.requests)},
                   {"parked", std::to_string(service_->parked())},
                   {"delivered",
                    std::to_string(checker_->delivered_sequence().size())},
                   {"drain", service_->drain_requested() ? "1" : "0"},
                   {"shard", std::to_string(args_.shard)},
                   {"rank", std::to_string(args_.rank)},
                   {"metrics_port", metrics_http_ != nullptr
                                        ? std::to_string(metrics_http_->port())
                                        : "none"}});
  }

  void write_report() {
    if (report_written_) {
      return;
    }
    report_written_ = true;
    const auto& digests = checker_->stable_digests();
    const cbc::kv::KvService::Stats& s = service_->stats();
    write_kv_file(
        args_.report_path,
        {{"shard", std::to_string(args_.shard)},
         {"rank", std::to_string(args_.rank)},
         {"object", "kv"},
         {"done", service_->drain_requested() ? "1" : "0"},
         {"delivered", std::to_string(checker_->delivered_sequence().size())},
         {"digest_count", std::to_string(digests.size())},
         {"digest", digests.empty() ? "0" : hex64(digests.back())},
         {"requests", std::to_string(s.requests)},
         {"puts", std::to_string(s.puts)},
         {"gets", std::to_string(s.gets)},
         {"fences", std::to_string(s.fences)},
         {"context_waits", std::to_string(s.context_waits)},
         {"context_timeouts", std::to_string(s.context_timeouts)},
         {"malformed", std::to_string(s.malformed)},
         {"violations", std::to_string(log_->size())},
         {"metrics_port", metrics_http_ != nullptr
                              ? std::to_string(metrics_http_->port())
                              : "none"},
         {"flight", flight_file()}});
    if (!log_->empty()) {
      std::cerr << "cbc_kv server " << args_.shard << "/" << args_.rank
                << ": INVARIANT VIOLATIONS:\n"
                << log_->report();
    }
  }

  /// Where a postmortem of this process would read the flight ring.
  [[nodiscard]] static std::string flight_file() {
    cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder();
    if (recorder == nullptr) {
      return "none";
    }
    return recorder->file_backed() ? recorder->options().path
                                   : recorder->options().dump_path;
  }

  KvArgs args_;
  cbc::kv::KvLayout layout_;
  cbc::net::ClusterConfig config_;
  cbc::net::EventLoop loop_;
  cbc::obs::MetricsRegistry registry_;
  cbc::net::UdpTransport udp_;
  std::unique_ptr<cbc::fault::ChaosTransport> chaos_;
  cbc::BatchingTransport batching_;
  cbc::GroupView view_;
  std::shared_ptr<cbc::check::ViolationLog> log_;
  cbc::check::InvariantChecker* checker_ = nullptr;  // owned via replica_
  std::unique_ptr<cbc::ReplicaNode<cbc::object::Value>> replica_;
  std::unique_ptr<cbc::kv::KvService> service_;
  std::unique_ptr<cbc::net::MetricsHttpServer> metrics_http_;
  cbc::obs::CollectorHandle flight_collector_;
  std::vector<cbc::check::HistoryOp> history_;
  int drain_ticks_ = 0;
  bool report_written_ = false;
  bool stopping_ = false;
};

/// The workload value every session writes into slot k at round r — and
/// therefore the exact value a causally-fresh read must return.
std::string slot_key(std::uint64_t session, std::uint64_t slot) {
  return "s" + std::to_string(session) + "_k" + std::to_string(slot);
}

std::string slot_value(std::uint64_t session, std::uint64_t slot,
                       std::uint64_t round) {
  return "r" + std::to_string(round) + "v" + std::to_string(session + slot);
}

int run_driver(const KvArgs& args, cbc::kv::KvLayout layout) {
  cbc::kv::KvClient::Options client_options;
  client_options.exchange_timeout_ms = args.exchange_timeout_ms;
  cbc::kv::KvClient client(std::move(layout), client_options);
  const std::size_t shards = client.layout().shards;
  const std::size_t replicas = client.layout().replicas;

  if (!client.wait_ready(args.ready_timeout_ms)) {
    std::cerr << "cbc_kv drive: replicas did not become ready\n";
    return 1;
  }

  std::vector<cbc::kv::KvSession> sessions;
  sessions.reserve(args.sessions);
  for (std::uint64_t s = 0; s < args.sessions; ++s) {
    sessions.emplace_back(client, s + 1);
  }

  std::uint64_t value_mismatches = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> final_digests(shards, 0);
  for (std::uint64_t round = 0; round < args.rounds; ++round) {
    // 1. Every session rewrites its own key slots (keys hash across all
    //    shards — each session's round is a cross-shard write fan-out).
    for (std::uint64_t s = 0; s < args.sessions; ++s) {
      for (std::uint64_t slot = 0; slot < args.ops_per_round; ++slot) {
        if (!sessions[s].put(slot_key(s, slot), slot_value(s, slot, round))) {
          ++failures;
        }
      }
    }
    // 2. Cross-session causal reads: session s adopts its neighbour's
    //    context (§5.2 — the token passes with the data) and must then
    //    observe exactly the neighbour's round-r values, whichever shard
    //    and replica serves the read.
    for (std::uint64_t s = 0; s < args.sessions && args.sessions > 1; ++s) {
      const std::uint64_t peer = (s + 1) % args.sessions;
      sessions[s].adopt(sessions[peer].context());
      for (std::uint64_t slot = 0; slot < args.ops_per_round; ++slot) {
        const auto got = sessions[s].get(slot_key(peer, slot));
        if (!got.has_value()) {
          ++failures;
          continue;
        }
        if (!got->present || got->value != slot_value(peer, slot, round)) {
          ++value_mismatches;
        }
      }
    }
    // 3. Close the round: session 0 adopts every session's context and
    //    fences each shard — the fence causally follows all round-r puts
    //    on its shard. Everyone then adopts the fence context, so round
    //    r+1's same-slot rewrites are causally after fence r.
    for (std::uint64_t s = 1; s < args.sessions; ++s) {
      sessions[0].adopt(sessions[s].context());
    }
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const auto digest = sessions[0].fence(shard);
      if (!digest.has_value()) {
        ++failures;
        continue;
      }
      final_digests[shard] = *digest;
    }
    for (std::uint64_t s = 1; s < args.sessions; ++s) {
      sessions[s].adopt(sessions[0].context());
    }
  }

  // Context-consistent shutdown: the final token covers the complete
  // workload, so each replica acks only once it has delivered everything.
  std::uint64_t shutdown_failures = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      if (!sessions[0].shutdown(shard, rank)) {
        ++shutdown_failures;
      }
    }
  }

  std::uint64_t retries = 0;
  for (const cbc::kv::KvSession& session : sessions) {
    retries += session.retries();
  }
  const cbc::kv::KvClient::Stats& cs = client.stats();
  std::vector<std::pair<std::string, std::string>> kv = {
      {"sessions", std::to_string(args.sessions)},
      {"rounds", std::to_string(args.rounds)},
      {"ops", std::to_string(args.ops_per_round)},
      {"shards", std::to_string(shards)},
      {"replicas", std::to_string(replicas)},
      {"done", failures == 0 && shutdown_failures == 0 ? "1" : "0"},
      {"value_mismatches", std::to_string(value_mismatches)},
      {"failures", std::to_string(failures)},
      {"shutdown_failures", std::to_string(shutdown_failures)},
      {"retries", std::to_string(retries)},
      {"exchanges", std::to_string(cs.exchanges)},
      {"resends", std::to_string(cs.resends)},
      {"stray_datagrams", std::to_string(cs.stray_datagrams)},
  };
  for (std::size_t shard = 0; shard < shards; ++shard) {
    kv.emplace_back("digest_shard" + std::to_string(shard),
                    hex64(final_digests[shard]));
  }
  write_kv_file(args.report_path, kv);
  if (value_mismatches != 0) {
    std::cerr << "cbc_kv drive: " << value_mismatches
              << " causally-stale read(s) observed\n";
  }
  return failures == 0 && shutdown_failures == 0 && value_mismatches == 0 ? 0
                                                                          : 1;
}

}  // namespace

int main(int argc, char** argv) {
  struct sigaction term {};
  term.sa_handler = on_sigterm;
  ::sigaction(SIGTERM, &term, nullptr);
  struct sigaction dump {};
  dump.sa_handler = on_sigusr2;
  ::sigaction(SIGUSR2, &dump, nullptr);

  try {
    cbc::apps::install_objects();
    const KvArgs args = parse_args(argc, argv);
    cbc::kv::KvLayout layout = cbc::kv::KvLayout::load(args.layout_path);
    if (args.mode == "drive") {
      return run_driver(args, std::move(layout));
    }
    // Always-on flight recorder, installed before any protocol state
    // exists. The decoded pid is the shard-remapped origin (shard *
    // replicas + rank) so dumps from every shard merge into the same id
    // space as the recorded histories.
    cbc::obs::FlightRecorder::Options flight_options;
    flight_options.node_id = static_cast<std::uint32_t>(
        cbc::kv::shard_origin(args.shard, layout.replicas, args.rank));
    flight_options.role = 1;
    flight_options.path = args.flight_path;
    if (args.flight_path.empty()) {
      flight_options.dump_path =
          !args.report_path.empty()
              ? args.report_path + ".flight"
              : "cbc_kv_s" + std::to_string(args.shard) + "_r" +
                    std::to_string(args.rank) + ".flight";
    }
    cbc::obs::FlightRecorder flight(flight_options);
    cbc::obs::install_flight_recorder(&flight);
    Server server(args, std::move(layout));
    return server.run();
  } catch (const std::exception& error) {
    std::cerr << "cbc_kv: fatal: " << error.what() << "\n";
    return 1;
  }
}
