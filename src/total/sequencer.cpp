#include "total/sequencer.h"

#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

namespace {

void encode_delivery(Writer& writer, const Delivery& delivery) {
  delivery.id.encode(writer);
  writer.str(delivery.label);
  writer.i64(delivery.sent_at);
  writer.blob(delivery.payload);
}

Delivery decode_delivery(Reader& reader) {
  Delivery delivery;
  delivery.id = MessageId::decode(reader);
  delivery.label = reader.str();
  delivery.sent_at = reader.i64();
  delivery.payload = reader.blob();
  delivery.sender = delivery.id.sender;
  return delivery;
}

}  // namespace

SequencerMember::SequencerMember(Transport& transport, const GroupView& view,
                                 DeliverFn deliver, Options options)
    : transport_(transport),
      view_(view),
      deliver_(std::move(deliver)),
      endpoint_(
          transport,
          [this](NodeId from, std::span<const std::uint8_t> bytes) {
            on_receive(from, bytes);
          },
          options.reliability) {
  require(static_cast<bool>(deliver_),
          "SequencerMember: empty deliver callback");
  require(view_.contains(endpoint_.id()),
          "SequencerMember: transport id not in the group view");
}

MessageId SequencerMember::broadcast(std::string label,
                                     std::vector<std::uint8_t> payload,
                                     const DepSpec& /*deps*/) {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  const MessageId message_id{id(), next_seq_++};
  Delivery delivery;
  delivery.id = message_id;
  delivery.sender = id();
  delivery.label = std::move(label);
  delivery.payload = std::move(payload);
  delivery.sent_at = transport_.now_us();
  stats_.broadcasts += 1;

  if (is_sequencer()) {
    sequence_and_broadcast(std::move(delivery));
  } else {
    Writer writer;
    writer.u8(static_cast<std::uint8_t>(FrameType::kRequest));
    encode_delivery(writer, delivery);
    endpoint_.send(view_.member_at(0), writer.take());
  }
  return message_id;
}

void SequencerMember::on_receive(NodeId from,
                                 std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  Reader reader(bytes);
  const auto type = static_cast<FrameType>(reader.u8());
  stats_.received += 1;
  if (type == FrameType::kRequest) {
    protocol_ensure(is_sequencer(),
                    "Sequencer: request frame at a non-sequencer member");
    sequence_and_broadcast(decode_delivery(reader));
    return;
  }
  if (type == FrameType::kOrdered) {
    const std::uint64_t stamp = reader.u64();
    accept_ordered(stamp, decode_delivery(reader));
    return;
  }
  protocol_ensure(false, "Sequencer: unknown frame type");
  (void)from;
}

void SequencerMember::sequence_and_broadcast(Delivery delivery) {
  const std::uint64_t stamp = next_stamp_++;
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(FrameType::kOrdered));
  writer.u64(stamp);
  encode_delivery(writer, delivery);
  const std::vector<std::uint8_t> wire = writer.take();
  for (const NodeId member : view_.members()) {
    if (member != id()) {
      endpoint_.send(member, wire);
    }
  }
  accept_ordered(stamp, std::move(delivery));
}

void SequencerMember::accept_ordered(std::uint64_t global_seq,
                                     Delivery delivery) {
  if (global_seq < next_deliver_ || pending_.count(global_seq) != 0) {
    stats_.duplicates += 1;
    return;
  }
  pending_.emplace(global_seq, std::move(delivery));
  stats_.max_holdback_depth =
      std::max<std::uint64_t>(stats_.max_holdback_depth, pending_.size());
  drain_in_order();
}

void SequencerMember::drain_in_order() {
  for (;;) {
    const auto it = pending_.find(next_deliver_);
    if (it == pending_.end()) {
      return;
    }
    Delivery delivery = std::move(it->second);
    pending_.erase(it);
    ++next_deliver_;
    delivery.delivered_at = transport_.now_us();
    log_.push_back(std::move(delivery));
    stats_.delivered += 1;
    deliver_(log_.back());
  }
}

}  // namespace cbc
