#include "total/sequencer.h"

#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

SequencerMember::SequencerMember(Transport& transport, const GroupView& view,
                                 DeliverFn deliver, Options options)
    : transport_(transport),
      view_(view),
      deliver_(std::move(deliver)),
      endpoint_(
          transport,
          [this](NodeId from, const WireFrame& frame) {
            on_receive(from, frame);
          },
          options.reliability) {
  require(static_cast<bool>(deliver_),
          "SequencerMember: empty deliver callback");
  require(view_.contains(endpoint_.id()),
          "SequencerMember: transport id not in the group view");
}

void SequencerMember::set_deliver(DeliverFn deliver) {
  const LockGuard guard(mutex_);
  require(static_cast<bool>(deliver),
          "SequencerMember: empty deliver callback");
  deliver_ = std::move(deliver);
}

MessageId SequencerMember::broadcast(std::string label,
                                     std::vector<std::uint8_t> payload,
                                     const DepSpec& /*deps*/) {
  const LockGuard guard(mutex_);
  const MessageId message_id{id(), next_seq_++};
  stats_.broadcasts += 1;

  Writer writer;
  writer.u8(static_cast<std::uint8_t>(FrameType::kRequest));
  const std::size_t section_offset = writer.size();
  Envelope::encode_section(writer, message_id, label, DepSpec::none(),
                           transport_.now_us(), payload);
  const SharedBuffer request = writer.take_shared();
  const Envelope envelope = Envelope::parse(request, section_offset);

  if (is_sequencer()) {
    sequence_and_broadcast(envelope);
  } else {
    endpoint_.send(view_.member_at(0), request);
  }
  return message_id;
}

void SequencerMember::on_receive(NodeId from, const WireFrame& frame) {
  const LockGuard guard(mutex_);
  // Wire bytes are untrusted: frames that do not decode are counted and
  // dropped rather than tearing down the receive path.
  try {
    Reader reader(frame.bytes());
    const auto type = static_cast<FrameType>(reader.u8());
    stats_.received += 1;
    if (type == FrameType::kRequest) {
      protocol_ensure(is_sequencer(),
                      "Sequencer: request frame at a non-sequencer member");
      sequence_and_broadcast(
          Envelope::parse(frame.buffer, frame.offset + reader.position()));
      return;
    }
    if (type == FrameType::kOrdered) {
      const std::uint64_t stamp = reader.u64();
      accept_ordered(stamp, Envelope::parse(frame.buffer,
                                            frame.offset + reader.position()));
      return;
    }
    protocol_ensure(false, "Sequencer: unknown frame type");
  } catch (const SerdeError&) {
    stats_.malformed += 1;
  }
  (void)from;
}

void SequencerMember::sequence_and_broadcast(const Envelope& envelope) {
  const std::uint64_t stamp = next_stamp_++;
  // Re-frame: splice the request's envelope section verbatim after the
  // ordered prelude (the one copy on the two-hop path).
  Writer writer;
  writer.u8(static_cast<std::uint8_t>(FrameType::kOrdered));
  writer.u64(stamp);
  writer.raw(envelope.section_bytes());
  const SharedBuffer wire = writer.take_shared();
  for (const NodeId member : view_.members()) {
    if (member != id()) {
      endpoint_.send(member, wire);
    }
  }
  // The sequencer's own delivery reuses the envelope it already holds.
  accept_ordered(stamp, envelope);
}

void SequencerMember::accept_ordered(std::uint64_t global_seq,
                                     Envelope envelope) {
  if (global_seq < next_deliver_ || pending_.count(global_seq) != 0) {
    stats_.duplicates += 1;
    return;
  }
  pending_.emplace(global_seq, std::move(envelope));
  stats_.max_holdback_depth =
      std::max<std::uint64_t>(stats_.max_holdback_depth, pending_.size());
  drain_in_order();
}

void SequencerMember::drain_in_order() {
  for (;;) {
    const auto it = pending_.find(next_deliver_);
    if (it == pending_.end()) {
      return;
    }
    Delivery delivery(std::move(it->second));
    pending_.erase(it);
    ++next_deliver_;
    delivery.delivered_at = transport_.now_us();
    log_.push_back(std::move(delivery));
    stats_.delivered += 1;
    deliver_(log_.back());
  }
}

}  // namespace cbc
