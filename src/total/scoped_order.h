// Scoped total ordering over OSend (paper §5.2, eq. 5).
//
// The paper defines ASend as a *function interposed between the causal
// broadcast and application layers* that totally orders a bounded SET of
// messages relative to causal anchors:
//
//     ASend({m1', m2'}, Occurs_After(Msg))
//       ==>   Msg -> m1' -> m2'  at all members,  or
//             Msg -> m2' -> m1'  at all members
//
// "In terms of the OSend based causal broadcast interface, a total order
//  can be defined over a set of messages {m} specified by (lbl_a, lbl_d),
//  where lbl_a and lbl_d refer to the ascendant node of {m} and the
//  descendant node(s) of {m}."
//
// ScopedOrderMember implements exactly that: a *scope* is opened by an
// ascendant message (lbl_a), spontaneous messages submitted into the
// scope ride OSend with Occurs_After(ascendant) — mutually concurrent on
// the wire — and a descendant message (lbl_d, AND-dependent on the whole
// set) closes it. Members defer the application delivery of in-scope
// messages until the descendant arrives, then release them in one
// deterministic sort. Causal traffic outside scopes flows untouched —
// total order is paid for only where the application asks for it, unlike
// the whole-stream ASendMember ("the case where lbl_d is NULL and lbl_a
// is a termination message represents a total order on ALL messages").
//
// The member is written against the abstract BroadcastMember interface:
// the default factory builds an OSendMember, but any causally ordered
// discipline (or layered stack) can be injected.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/osend.h"

namespace cbc {

/// Identifier of one ordering scope (unique per opener).
struct ScopeId {
  NodeId opener = kNoNode;
  std::uint64_t index = 0;
  auto operator<=>(const ScopeId&) const = default;
};

/// One member speaking causal broadcast with on-demand scoped total order.
class ScopedOrderMember {
 public:
  struct Options {
    OSendMember::Options member;
  };

  ScopedOrderMember(Transport& transport, const GroupView& view,
                    DeliverFn deliver)
      : ScopedOrderMember(transport, view, std::move(deliver), Options{}) {}
  ScopedOrderMember(Transport& transport, const GroupView& view,
                    DeliverFn deliver, Options options);

  /// Injects the underlying ordering member (must provide causal order
  /// with Occurs_After dependencies; OSendMember is the default).
  ScopedOrderMember(std::unique_ptr<BroadcastMember> member,
                    DeliverFn deliver);

  /// Plain causal traffic — delivered immediately in causal order,
  /// untouched by any scope.
  MessageId send_causal(std::string label, std::vector<std::uint8_t> payload,
                        const DepSpec& deps);

  /// Opens a totally-ordered scope with an ascendant message lbl_a.
  /// Returns the scope id (usable by ANY member for submissions once the
  /// ascendant is seen). One member opens; all may submit.
  ScopeId open_scope(std::string ascendant_label,
                     std::vector<std::uint8_t> payload = {});

  /// Submits a message into an open scope: on the wire it is concurrent
  /// with the scope's other messages; to the application it is delivered
  /// only at scope close, in the deterministic merged order.
  MessageId send_scoped(ScopeId scope, std::string label,
                        std::vector<std::uint8_t> payload);

  /// Closes a scope with the descendant message lbl_d: an AND-dependency
  /// on every scoped message this member has SEEN (the opener typically
  /// closes; with racing submitters, stragglers join the next scope —
  /// same caveat as §6.1 coverage). At every member, delivery of the
  /// descendant releases the scope's messages in sorted order first.
  MessageId close_scope(ScopeId scope, std::string descendant_label,
                        std::vector<std::uint8_t> payload = {});

  [[nodiscard]] BroadcastMember& member() { return *member_; }
  [[nodiscard]] const BroadcastMember& member() const { return *member_; }
  [[nodiscard]] NodeId id() const { return member_->id(); }

  /// Application-order log (scoped messages appear at their release
  /// point, not their wire delivery point).
  [[nodiscard]] const std::vector<Delivery>& app_log() const {
    return app_log_;
  }

 private:
  struct ScopeState {
    MessageId ascendant;
    std::vector<Delivery> held;       // wire-delivered, not yet released
    std::vector<MessageId> seen_ids;  // for the closer's AND-set
    bool closed = false;
  };

  static std::string scope_tag(ScopeId scope);
  static bool parse_scope(const std::string& label, ScopeId& scope,
                          std::string& inner, bool& is_open, bool& is_close);
  void on_delivery(const Delivery& delivery);
  void emit(const Delivery& delivery);

  DeliverFn deliver_;
  std::unique_ptr<BroadcastMember> member_;
  std::uint64_t next_scope_ = 1;
  std::map<ScopeId, ScopeState> scopes_;
  std::vector<Delivery> app_log_;
};

}  // namespace cbc
