// ASend: total ordering of spontaneous messages (paper §5.2, Figure 4).
//
// The paper interposes a function between the causal-broadcast and
// application layers that (i) imposes an arbitrary delivery order on a set
// of spontaneously generated messages and (ii) enforces that order
// identically at all members — without a central sequencer:
//
//   ASend({m1', m2'}, Occurs_After(Msg))     enforces  Msg -> m1' -> m2'
//                                            or        Msg -> m2' -> m1'
//                                            identically everywhere  (eq. 5)
//
// Realization: *deterministic round merge*. Logical time advances in
// rounds; each member contributes exactly one frame per round — its next
// queued message, or an explicit SKIP once it learns the round has started
// elsewhere. When a member holds all N frames of round r it delivers the
// round's real messages in a deterministic sort (label, sender, seq) and
// advances. Every member computes the same sort, so the sequence of state
// transitions is identical at every member — agreement "without explicit
// protocols", at the cost of N frames per round, which is why the paper
// notes total ordering "may be feasible when the group size is not large".
//
// The round structure is exactly the paper's (lbl_a, lbl_d) scoping: the
// close of round r-1 is the ascendant sync point of round r.
//
// Wire layout: [u64 round][bool skip]([envelope section] when !skip) —
// shared Envelope codec after the round prelude; buffered round frames
// retain the arrived buffer by refcount, never copying the payload.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "causal/delivery.h"
#include "causal/envelope.h"
#include "group/group_view.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/reliable.h"
#include "transport/transport.h"
#include "util/thread_annotations.h"

namespace cbc {

/// One group member speaking the deterministic-round-merge total order.
class ASendMember final : public BroadcastMember {
 public:
  struct Options {
    ReliableEndpoint::Options reliability{.enabled = false};
    /// Observability sinks: OrderingStats collector + round gauges and
    /// per-envelope submit/deliver spans. Default: off.
    obs::Hooks obs{};
  };

  ASendMember(Transport& transport, const GroupView& view, DeliverFn deliver)
      : ASendMember(transport, view, std::move(deliver), Options{}) {}
  ASendMember(Transport& transport, const GroupView& view, DeliverFn deliver,
              Options options);

  ASendMember(const ASendMember&) = delete;
  ASendMember& operator=(const ASendMember&) = delete;

  [[nodiscard]] NodeId id() const override { return endpoint_.id(); }

  /// Submits a message for total ordering. `deps` is accepted for
  /// interface compatibility; the round structure already serializes
  /// everything, which subsumes any Occurs_After ascendant.
  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override;

  /// Paper-styled alias of broadcast().
  MessageId asend(std::string label, std::vector<std::uint8_t> payload) {
    return broadcast(std::move(label), std::move(payload), DepSpec::none());
  }

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }

  void set_deliver(DeliverFn deliver) override;

  /// Round whose delivery this member is currently waiting to complete.
  [[nodiscard]] std::uint64_t current_round() const {
    const LockGuard guard(mutex_);
    return deliver_round_;
  }

  /// Number of frames buffered for future rounds.
  [[nodiscard]] std::size_t buffered_frames() const {
    const LockGuard guard(mutex_);
    return buffered_frames_locked();
  }

  [[nodiscard]] const GroupView& view() const override { return view_; }

  /// Stack lock — see OSendMember::stack_mutex().
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  /// One member's contribution to one round: a real message or a SKIP
  /// (a null envelope).
  struct Frame {
    bool skip = false;
    Envelope envelope;  // meaningful when !skip
  };

  /// A submitted message awaiting its round (transient: each submission
  /// is contributed to a round within the same broadcast() call unless
  /// the member is catching up).
  struct PendingSubmit {
    MessageId id;
    std::string label;
    std::vector<std::uint8_t> payload;
  };

  void on_receive(NodeId from, const WireFrame& frame);
  void contribute(std::uint64_t round) CBC_REQUIRES(mutex_);
  void catch_up_contributions(std::uint64_t round) CBC_REQUIRES(mutex_);
  /// Encodes and broadcasts this member's frame for `round`; returns the
  /// contributed frame (sharing the encoded buffer for a real message).
  Frame send_frame(std::uint64_t round, std::optional<PendingSubmit> submit)
      CBC_REQUIRES(mutex_);
  void try_close_rounds() CBC_REQUIRES(mutex_);
  [[nodiscard]] std::size_t buffered_frames_locked() const
      CBC_REQUIRES(mutex_);

  Transport& transport_;
  const GroupView& view_;
  DeliverFn deliver_;
  Options options_;
  ReliableEndpoint endpoint_;
  mutable RecursiveMutex mutex_{kRankStack, "asend stack"};

  SeqNo next_seq_ CBC_GUARDED_BY(mutex_) = 1;
  // first round not contributed
  std::uint64_t next_contribution_round_ CBC_GUARDED_BY(mutex_) = 0;
  // first round not delivered
  std::uint64_t deliver_round_ CBC_GUARDED_BY(mutex_) = 0;
  // messages awaiting a round
  std::deque<PendingSubmit> submit_queue_ CBC_GUARDED_BY(mutex_);
  // round -> (member rank -> frame)
  std::map<std::uint64_t, std::map<std::size_t, Frame>> rounds_
      CBC_GUARDED_BY(mutex_);
  std::vector<Delivery> log_;
  OrderingStats stats_;
  // Last member: unregisters before the state it reads is torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc
