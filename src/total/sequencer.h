// Fixed-sequencer total order — the classical baseline ASend is compared
// against (bench C1/C5).
//
// The lowest-ranked view member acts as sequencer. Senders unicast their
// message to the sequencer, which stamps a global sequence number and
// broadcasts the ordered message; members deliver in contiguous stamp
// order. Two message hops for non-sequencer members (vs. one broadcast
// round for ASend), plus a throughput bottleneck and a single point of
// failure at the sequencer — the structural costs the paper's
// decentralized arbitration avoids.
//
// Wire layouts (shared Envelope codec after the prelude):
//   request:  [u8 kRequest][envelope section]
//   ordered:  [u8 kOrdered][u64 stamp][envelope section]
// The sequencer re-frames a request into the ordered broadcast by splicing
// the request's envelope section verbatim (Envelope::section_bytes) — the
// payload is copied exactly once on the request→ordered hop, and the
// ordered frame is then shared across all destinations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "causal/delivery.h"
#include "causal/envelope.h"
#include "group/group_view.h"
#include "transport/reliable.h"
#include "transport/transport.h"
#include "util/thread_annotations.h"

namespace cbc {

/// One group member under fixed-sequencer total order.
class SequencerMember final : public BroadcastMember {
 public:
  struct Options {
    ReliableEndpoint::Options reliability{.enabled = false};
  };

  SequencerMember(Transport& transport, const GroupView& view,
                  DeliverFn deliver)
      : SequencerMember(transport, view, std::move(deliver), Options{}) {}
  SequencerMember(Transport& transport, const GroupView& view,
                  DeliverFn deliver, Options options);

  [[nodiscard]] NodeId id() const override { return endpoint_.id(); }

  /// Submits a message; `deps` is ignored (total order subsumes it).
  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override;

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }

  void set_deliver(DeliverFn deliver) override;

  /// True when this member is the group's sequencer.
  [[nodiscard]] bool is_sequencer() const {
    return id() == view_.member_at(0);
  }

  [[nodiscard]] const GroupView& view() const override { return view_; }

  /// Stack lock — see OSendMember::stack_mutex().
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  enum class FrameType : std::uint8_t { kRequest = 1, kOrdered = 2 };

  void on_receive(NodeId from, const WireFrame& frame);
  void sequence_and_broadcast(const Envelope& envelope) CBC_REQUIRES(mutex_);
  void accept_ordered(std::uint64_t global_seq, Envelope envelope)
      CBC_REQUIRES(mutex_);
  void drain_in_order() CBC_REQUIRES(mutex_);

  Transport& transport_;
  const GroupView& view_;
  DeliverFn deliver_;
  ReliableEndpoint endpoint_;
  mutable RecursiveMutex mutex_{kRankStack, "sequencer stack"};

  SeqNo next_seq_ CBC_GUARDED_BY(mutex_) = 1;  // per-sender message ids
  // sequencer: next global stamp
  std::uint64_t next_stamp_ CBC_GUARDED_BY(mutex_) = 1;
  // everyone: next stamp to deliver
  std::uint64_t next_deliver_ CBC_GUARDED_BY(mutex_) = 1;
  // stamp -> message
  std::map<std::uint64_t, Envelope> pending_ CBC_GUARDED_BY(mutex_);
  std::vector<Delivery> log_;
  OrderingStats stats_;
};

}  // namespace cbc
