#include "total/asend.h"

#include <algorithm>

#include "obs/msg_trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

ASendMember::ASendMember(Transport& transport, const GroupView& view,
                         DeliverFn deliver, Options options)
    : transport_(transport),
      view_(view),
      deliver_(std::move(deliver)),
      options_(std::move(options)),
      endpoint_(
          transport,
          [this](NodeId from, const WireFrame& frame) {
            on_receive(from, frame);
          },
          options_.reliability) {
  require(static_cast<bool>(deliver_), "ASendMember: empty deliver callback");
  require(view_.contains(endpoint_.id()),
          "ASendMember: transport id not in the group view");
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "asend";
  }
  if (options_.obs.has_metrics()) {
    // Scrape-time migration of OrderingStats onto the registry (see
    // OSendMember); round progress rides along as gauges.
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const LockGuard guard(mutex_);
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".broadcasts", stats_.broadcasts);
          sink.counter(prefix + ".received", stats_.received);
          sink.counter(prefix + ".delivered", stats_.delivered);
          sink.gauge(prefix + ".max_holdback_depth",
                     static_cast<double>(stats_.max_holdback_depth));
          sink.counter(prefix + ".duplicates", stats_.duplicates);
          sink.counter(prefix + ".malformed", stats_.malformed);
          sink.gauge(prefix + ".round", static_cast<double>(deliver_round_));
          sink.gauge(prefix + ".buffered_frames",
                     static_cast<double>(buffered_frames_locked()));
        });
  }
}

void ASendMember::set_deliver(DeliverFn deliver) {
  const LockGuard guard(mutex_);
  require(static_cast<bool>(deliver), "ASendMember: empty deliver callback");
  deliver_ = std::move(deliver);
}

MessageId ASendMember::broadcast(std::string label,
                                 std::vector<std::uint8_t> payload,
                                 const DepSpec& /*deps*/) {
  const LockGuard guard(mutex_);
  const MessageId message_id{id(), next_seq_++};
  stats_.broadcasts += 1;
  obs::trace_submit(options_.obs, message_id, label);
  submit_queue_.push_back(
      PendingSubmit{message_id, std::move(label), std::move(payload)});
  // Each submission occupies this member's slot in the next round it has
  // not yet contributed to.
  contribute(next_contribution_round_);
  try_close_rounds();
  return message_id;
}

void ASendMember::contribute(std::uint64_t round) {
  ensure(round == next_contribution_round_,
         "ASend: contributions must be in round order");
  std::optional<PendingSubmit> submit;
  if (!submit_queue_.empty()) {
    submit = std::move(submit_queue_.front());
    submit_queue_.pop_front();
  }
  ++next_contribution_round_;
  const auto self_rank = view_.rank_of(id());
  ensure(self_rank.has_value(), "ASend: self not in view");
  Frame frame = send_frame(round, std::move(submit));
  rounds_[round].emplace(*self_rank, std::move(frame));
}

void ASendMember::catch_up_contributions(std::uint64_t round) {
  // Fill every round up to and including `round` that we have not yet
  // contributed to (with queued messages first, then SKIPs).
  while (next_contribution_round_ <= round) {
    contribute(next_contribution_round_);
  }
}

ASendMember::Frame ASendMember::send_frame(std::uint64_t round,
                                           std::optional<PendingSubmit> submit) {
  Writer writer;
  writer.u64(round);
  writer.boolean(!submit.has_value());  // skip flag
  std::size_t section_offset = 0;
  if (submit.has_value()) {
    section_offset = writer.size();
    Envelope::encode_section(writer, submit->id, submit->label,
                             DepSpec::none(), transport_.now_us(),
                             submit->payload);
  }
  const SharedBuffer wire = writer.take_shared();
  for (const NodeId member : view_.members()) {
    if (member != id()) {
      endpoint_.send(member, wire);
    }
  }
  Frame frame;
  frame.skip = !submit.has_value();
  if (!frame.skip) {
    // Our own slot shares the encoded frame — same zero-copy path as
    // frames arriving from peers.
    frame.envelope = Envelope::parse(wire, section_offset);
  }
  return frame;
}

void ASendMember::on_receive(NodeId from, const WireFrame& wire) {
  const LockGuard guard(mutex_);
  // Untrusted wire bytes: an undecodable frame is counted and dropped so
  // a corrupt datagram cannot tear down the receive path.
  std::uint64_t round = 0;
  Frame frame;
  try {
    Reader reader(wire.bytes());
    round = reader.u64();
    frame.skip = reader.boolean();
    if (!frame.skip) {
      frame.envelope =
          Envelope::parse(wire.buffer, wire.offset + reader.position());
    }
  } catch (const SerdeError&) {
    stats_.malformed += 1;
    return;
  }
  stats_.received += 1;

  const auto sender_rank = view_.rank_of(from);
  protocol_ensure(sender_rank.has_value(),
                  "ASend: frame from outside the view");
  auto& slots = rounds_[round];
  if (slots.count(*sender_rank) != 0) {
    stats_.duplicates += 1;
    return;
  }
  slots.emplace(*sender_rank, std::move(frame));

  // Learning that round `round` is underway obliges us to contribute our
  // slot for it (and for any earlier round we skipped hearing about).
  catch_up_contributions(round);
  try_close_rounds();
}

void ASendMember::try_close_rounds() {
  for (;;) {
    const auto it = rounds_.find(deliver_round_);
    if (it == rounds_.end() || it->second.size() < view_.size()) {
      std::size_t buffered = buffered_frames_locked();
      stats_.max_holdback_depth =
          std::max<std::uint64_t>(stats_.max_holdback_depth, buffered);
      return;
    }
    // Round complete: deliver its real messages in the deterministic merge
    // order (label, sender, seq) — identical at every member.
    std::vector<Envelope> real;
    for (auto& [rank, frame] : it->second) {
      if (!frame.skip) {
        real.push_back(std::move(frame.envelope));
      }
    }
    rounds_.erase(it);
    std::sort(real.begin(), real.end(),
              [](const Envelope& a, const Envelope& b) {
                if (a.label() != b.label()) {
                  return a.label() < b.label();
                }
                return a.id() < b.id();
              });
    for (Envelope& envelope : real) {
      Delivery delivery(std::move(envelope));
      delivery.delivered_at = transport_.now_us();
      // ASend subsumes explicit dependencies in the round structure, so
      // deliver spans carry no Occurs_After edges; round closing is the
      // hold, but per-message hold is not tracked here.
      obs::trace_deliver(options_.obs, delivery.id, delivery.label(), {}, 0);
      log_.push_back(std::move(delivery));
      stats_.delivered += 1;
      deliver_(log_.back());
    }
    ++deliver_round_;
  }
}

std::size_t ASendMember::buffered_frames_locked() const {
  std::size_t total = 0;
  for (const auto& [round, slots] : rounds_) {
    total += slots.size();
  }
  return total;
}

}  // namespace cbc
