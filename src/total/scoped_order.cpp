#include "total/scoped_order.h"

#include <algorithm>

#include "util/ensure.h"

namespace cbc {

ScopedOrderMember::ScopedOrderMember(Transport& transport,
                                     const GroupView& view, DeliverFn deliver,
                                     Options options)
    : ScopedOrderMember(
          std::make_unique<OSendMember>(
              transport, view, [](const Delivery&) {}, options.member),
          std::move(deliver)) {}

ScopedOrderMember::ScopedOrderMember(std::unique_ptr<BroadcastMember> member,
                                     DeliverFn deliver)
    : deliver_(std::move(deliver)), member_(std::move(member)) {
  require(static_cast<bool>(deliver_),
          "ScopedOrderMember: empty deliver callback");
  member_->set_deliver(
      [this](const Delivery& delivery) { on_delivery(delivery); });
}

std::string ScopedOrderMember::scope_tag(ScopeId scope) {
  return "@" + std::to_string(scope.opener) + "." +
         std::to_string(scope.index);
}

bool ScopedOrderMember::parse_scope(const std::string& label, ScopeId& scope,
                                    std::string& inner, bool& is_open,
                                    bool& is_close) {
  if (label.empty() || label[0] != '@') {
    return false;
  }
  const std::size_t dot = label.find('.');
  const std::size_t kind_pos = label.find('|');
  if (dot == std::string::npos || kind_pos == std::string::npos ||
      kind_pos < dot + 2) {
    return false;
  }
  scope.opener =
      static_cast<NodeId>(std::stoul(label.substr(1, dot - 1)));
  scope.index = std::stoull(label.substr(dot + 1, kind_pos - dot - 2));
  const char kind = label[kind_pos - 1];
  is_open = kind == 'o';
  is_close = kind == 'c';
  inner = label.substr(kind_pos + 1);
  return true;
}

MessageId ScopedOrderMember::send_causal(std::string label,
                                         std::vector<std::uint8_t> payload,
                                         const DepSpec& deps) {
  require(label.empty() || label[0] != '@',
          "ScopedOrderMember: '@' labels are reserved for scopes");
  return member_->broadcast(std::move(label), std::move(payload), deps);
}

ScopeId ScopedOrderMember::open_scope(std::string ascendant_label,
                                      std::vector<std::uint8_t> payload) {
  const ScopeId scope{member_->id(), next_scope_++};
  member_->broadcast(scope_tag(scope) + ".o|" + ascendant_label,
                     std::move(payload), DepSpec::none());
  return scope;
}

MessageId ScopedOrderMember::send_scoped(ScopeId scope, std::string label,
                                         std::vector<std::uint8_t> payload) {
  const auto it = scopes_.find(scope);
  require(it != scopes_.end(),
          "ScopedOrderMember::send_scoped: unknown scope (ascendant not yet "
          "seen here)");
  require(!it->second.closed,
          "ScopedOrderMember::send_scoped: scope already closed");
  return member_->broadcast(scope_tag(scope) + ".m|" + label,
                            std::move(payload),
                            DepSpec::after(it->second.ascendant));
}

MessageId ScopedOrderMember::close_scope(ScopeId scope,
                                         std::string descendant_label,
                                         std::vector<std::uint8_t> payload) {
  const auto it = scopes_.find(scope);
  require(it != scopes_.end(),
          "ScopedOrderMember::close_scope: unknown scope");
  require(!it->second.closed,
          "ScopedOrderMember::close_scope: scope already closed");
  DepSpec deps = DepSpec::after_all(it->second.seen_ids);
  deps.add(it->second.ascendant);
  return member_->broadcast(scope_tag(scope) + ".c|" + descendant_label,
                            std::move(payload), deps);
}

void ScopedOrderMember::on_delivery(const Delivery& delivery) {
  ScopeId scope;
  std::string inner;
  bool is_open = false;
  bool is_close = false;
  if (!parse_scope(delivery.label(), scope, inner, is_open, is_close)) {
    emit(delivery);  // plain causal traffic
    return;
  }
  if (is_open) {
    ScopeState state;
    state.ascendant = delivery.id;
    scopes_.emplace(scope, std::move(state));
    Delivery ascendant = delivery;
    ascendant.override_label(inner);
    emit(ascendant);  // lbl_a is ordinary causal traffic to the app
    return;
  }
  const auto it = scopes_.find(scope);
  protocol_ensure(it != scopes_.end(),
                  "ScopedOrder: scoped message before its ascendant");
  ScopeState& state = it->second;
  if (is_close) {
    protocol_ensure(!state.closed, "ScopedOrder: scope closed twice");
    state.closed = true;
    // Release the held set in the deterministic merge order: identical at
    // every member for the messages the descendant covered.
    std::sort(state.held.begin(), state.held.end(),
              [](const Delivery& a, const Delivery& b) {
                if (a.label() != b.label()) return a.label() < b.label();
                return a.id < b.id;
              });
    for (Delivery& held : state.held) {
      const std::string& wire_label = held.label();
      held.override_label(wire_label.substr(wire_label.find('|') + 1));
      emit(held);
    }
    state.held.clear();
    Delivery closer = delivery;
    closer.override_label(inner);
    emit(closer);
    return;
  }
  // In-scope member message.
  if (state.closed) {
    // A straggler the closer's AND-set did not cover: total order was
    // never promised for it — release in causal (arrival) order.
    Delivery straggler = delivery;
    straggler.override_label(inner);
    emit(straggler);
    return;
  }
  state.seen_ids.push_back(delivery.id);
  state.held.push_back(delivery);  // label un-mangled at release
}

void ScopedOrderMember::emit(const Delivery& delivery) {
  app_log_.push_back(delivery);
  deliver_(app_log_.back());
}

}  // namespace cbc
