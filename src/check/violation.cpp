#include "check/violation.h"

namespace cbc::check {

std::string_view to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDependencyViolation:
      return "dependency";
    case ViolationKind::kDuplicateDelivery:
      return "duplicate";
    case ViolationKind::kSenderGap:
      return "sender-gap";
    case ViolationKind::kSetDivergence:
      return "set-divergence";
    case ViolationKind::kOrderDivergence:
      return "order-divergence";
    case ViolationKind::kStableDivergence:
      return "stable-divergence";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::string out;
  out.reserve(detail.size() + 48);
  out.append("[").append(cbc::check::to_string(kind)).append("]");
  if (member != kNoNode) {
    out.append(" member ").append(std::to_string(member));
  }
  if (!message.is_null()) {
    out.append(" msg ").append(message.to_string());
  }
  out.append(": ").append(detail);
  return out;
}

void ViolationLog::add(ViolationKind kind, NodeId member, MessageId message,
                       std::string detail) {
  violations_.push_back(
      Violation{kind, member, message, std::move(detail)});
}

std::string ViolationLog::report() const {
  std::string out;
  for (const Violation& violation : violations_) {
    out.append(violation.to_string()).append("\n");
  }
  return out;
}

}  // namespace cbc::check
