// cbc_check — offline causal-consistency oracle over recorded histories.
//
//   cbc_check [--object NAME] history0.bin history1.bin ...
//
// Loads one SiteHistory per file (written by cbc_node --record-history),
// resolves the object's sequential spec from the catalog, and verifies
// CC / CM / CCv (see history_checker.h). Exit 0 when every property
// holds, 1 on any violation, 2 on usage/load errors.
#include <iostream>
#include <string>
#include <vector>

#include "apps/install.h"
#include "check/history.h"
#include "check/history_checker.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "util/ensure.h"

int main(int argc, char** argv) {
  std::string object;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--object") {
      if (i + 1 >= argc) {
        std::cerr << "cbc_check: --object needs a value\n";
        return 2;
      }
      object = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: cbc_check [--object NAME] HISTORY_FILE...\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: cbc_check [--object NAME] HISTORY_FILE...\n";
    return 2;
  }

  try {
    cbc::apps::install_objects();
    std::vector<cbc::check::SiteHistory> sites;
    sites.reserve(paths.size());
    for (const std::string& path : paths) {
      sites.push_back(cbc::check::SiteHistory::load(path));
      if (object.empty()) {
        object = sites.back().object;
      }
      if (sites.back().object != object) {
        std::cerr << "cbc_check: " << path << " records object '"
                  << sites.back().object << "', expected '" << object
                  << "'\n";
        return 2;
      }
    }
    const auto entry = cbc::object::Catalog::instance().find(object);
    if (!entry.has_value()) {
      std::cerr << "cbc_check: unknown object '" << object << "'\n";
      return 2;
    }
    const cbc::object::SequentialSpec spec = entry->spec();
    const cbc::check::HistoryChecker checker(
        spec, cbc::object::derive_commutativity(spec));
    const cbc::check::HistoryChecker::Result result = checker.check(sites);
    std::cout << "object=" << object << " sites=" << sites.size() << " "
              << result.summary() << "\n";
    for (const std::string& violation : result.violations) {
      std::cout << "  " << violation << "\n";
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "cbc_check: fatal: " << error.what() << "\n";
    return 2;
  }
}
