// cbc_check — offline causal-consistency oracle over recorded histories.
//
//   cbc_check [--object NAME] history0.bin history1.bin ...
//   cbc_check --kv-replicas R [--site-local KIND]... history...
//
// Loads one SiteHistory per file (written by cbc_node --record-history),
// resolves the object's sequential spec from the catalog, and verifies
// CC / CM / CCv (see history_checker.h). Exit 0 when every property
// holds, 1 on any violation, 2 on usage/load errors.
//
// --kv-replicas R enables the sharded-service merge: each input file is
// one (shard, rank) replica of a cbc_kv deployment, its `site` already
// shard-qualified (site = shard * R + rank). Files are grouped by rank
// and concatenated across shards in shard order into one merged site
// history per rank. Sound because cbc_kv asserts NO cross-shard causal
// edges (§5.2 — context crosses shards only by enlarging same-shard
// frontiers), so any fixed interleaving of the shard histories
// linearizes the merged causal order, and using the SAME shard order at
// every rank makes cross-shard concurrent non-commuting pairs uniformly
// arbitrated by construction. A causally-stale served read still fails
// CC: its carried same-shard context deps would follow it in its own
// site order.
//
// --site-local KIND (repeatable; cbc_kv passes `get`) marks kinds that
// are recorded only at the site that served them, exempting them from
// CCv's same-operation-set requirement.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "apps/install.h"
#include "check/history.h"
#include "check/history_checker.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "util/ensure.h"

namespace {

void usage() {
  std::cerr << "usage: cbc_check [--object NAME] [--kv-replicas R]\n"
               "                 [--site-local KIND]... HISTORY_FILE...\n";
}

/// Groups per-(shard, rank) kv histories by rank and concatenates each
/// group across shards in shard order (site = shard * replicas + rank).
std::vector<cbc::check::SiteHistory> merge_kv_sites(
    std::vector<cbc::check::SiteHistory> sites, std::uint64_t replicas) {
  std::sort(sites.begin(), sites.end(),
            [](const cbc::check::SiteHistory& a,
               const cbc::check::SiteHistory& b) { return a.site < b.site; });
  std::vector<cbc::check::SiteHistory> merged;
  for (cbc::check::SiteHistory& site : sites) {
    const cbc::NodeId rank = site.site % static_cast<cbc::NodeId>(replicas);
    auto it = std::find_if(merged.begin(), merged.end(),
                           [rank](const cbc::check::SiteHistory& m) {
                             return m.site == rank;
                           });
    if (it == merged.end()) {
      cbc::check::SiteHistory fresh;
      fresh.object = site.object;
      fresh.site = rank;
      merged.push_back(std::move(fresh));
      it = merged.end() - 1;
    }
    // Sites are sorted by shard-qualified id, so within one rank the
    // shards append in shard order — identical at every rank.
    it->ops.insert(it->ops.end(),
                   std::make_move_iterator(site.ops.begin()),
                   std::make_move_iterator(site.ops.end()));
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  std::string object;
  std::vector<std::string> paths;
  std::uint64_t kv_replicas = 0;
  cbc::check::HistoryChecker::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--object") {
      if (i + 1 >= argc) {
        std::cerr << "cbc_check: --object needs a value\n";
        return 2;
      }
      object = argv[++i];
    } else if (arg == "--kv-replicas") {
      if (i + 1 >= argc) {
        std::cerr << "cbc_check: --kv-replicas needs a value\n";
        return 2;
      }
      kv_replicas = std::stoull(argv[++i]);
      if (kv_replicas == 0) {
        std::cerr << "cbc_check: --kv-replicas must be >= 1\n";
        return 2;
      }
    } else if (arg == "--site-local") {
      if (i + 1 >= argc) {
        std::cerr << "cbc_check: --site-local needs a value\n";
        return 2;
      }
      options.site_local_kinds.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  try {
    cbc::apps::install_objects();
    std::vector<cbc::check::SiteHistory> sites;
    sites.reserve(paths.size());
    for (const std::string& path : paths) {
      sites.push_back(cbc::check::SiteHistory::load(path));
      if (object.empty()) {
        object = sites.back().object;
      }
      if (sites.back().object != object) {
        std::cerr << "cbc_check: " << path << " records object '"
                  << sites.back().object << "', expected '" << object
                  << "'\n";
        return 2;
      }
    }
    if (kv_replicas != 0) {
      sites = merge_kv_sites(std::move(sites), kv_replicas);
    }
    const auto entry = cbc::object::Catalog::instance().find(object);
    if (!entry.has_value()) {
      std::cerr << "cbc_check: unknown object '" << object << "'\n";
      return 2;
    }
    const cbc::object::SequentialSpec spec = entry->spec();
    const cbc::check::HistoryChecker checker(
        spec, cbc::object::derive_commutativity(spec), options);
    const cbc::check::HistoryChecker::Result result = checker.check(sites);
    std::cout << "object=" << object << " sites=" << sites.size() << " "
              << result.summary() << "\n";
    for (const std::string& violation : result.violations) {
      std::cout << "  " << violation << "\n";
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "cbc_check: fatal: " << error.what() << "\n";
    return 2;
  }
}
