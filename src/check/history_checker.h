// HistoryChecker — an offline, black-box causal-consistency oracle.
//
// Input: one recorded SiteHistory per member (cbc_node --record-history)
// plus the object's sequential specification and derived commutativity
// table. The checker knows nothing about the protocol that produced the
// histories — it re-derives the causal order from what the messages
// themselves carried and replays the sequential spec, in the style of
// Bouajjani et al., "On Verifying Causal Consistency" (POPL'17):
//
//   CC  (causal consistency)  every site's delivery order linearizes the
//       causal order — the transitive closure of carried Occurs_After
//       dependencies and per-origin program order;
//   CM  (causal memory)       replaying each site's own order against the
//       sequential spec reproduces every recorded response;
//   CCv (causal convergence)  all sites delivered the same operation set,
//       replayed final states are equal, and every pair of causally
//       concurrent NON-commuting operations is ordered the same way at
//       every site that delivered both.
//
// Violations are collected (not thrown), so one bad history reports
// everything wrong with it.
#pragma once

#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "check/history.h"
#include "object/sequential_spec.h"

namespace cbc::check {

class HistoryChecker {
 public:
  struct Options {
    /// Kinds that are recorded ONLY at the site that served them —
    /// session-local reads in a service whose reads are never broadcast
    /// (cbc_kv gets). Exempt from CCv's same-operation-set requirement;
    /// every other check (CC linearization against their carried deps,
    /// CM response replay) still covers them in full.
    std::vector<std::string> site_local_kinds;
  };

  struct Result {
    bool cc = false;
    bool cm = false;
    bool ccv = false;
    std::vector<std::string> violations;

    [[nodiscard]] bool ok() const { return cc && cm && ccv; }
    [[nodiscard]] std::string summary() const;
  };

  /// `spec` builds fresh objects for replay; `commutativity` (normally
  /// derive_commutativity(spec)) classifies concurrent pairs for CCv.
  HistoryChecker(object::SequentialSpec spec, CommutativitySpec commutativity)
      : spec_(std::move(spec)), commutativity_(std::move(commutativity)) {}
  HistoryChecker(object::SequentialSpec spec, CommutativitySpec commutativity,
                 Options options)
      : spec_(std::move(spec)),
        commutativity_(std::move(commutativity)),
        options_(std::move(options)) {}

  [[nodiscard]] Result check(const std::vector<SiteHistory>& sites) const;

 private:
  object::SequentialSpec spec_;
  CommutativitySpec commutativity_;
  Options options_;
};

}  // namespace cbc::check
