#include "check/invariant_checker.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace cbc::check {

namespace {

/// FNV-1a over a byte span, folded into a running hash.
std::uint64_t fnv1a(std::uint64_t hash, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Content hash of one delivery: id, label, payload.
std::uint64_t hash_delivery(const Delivery& delivery) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  const std::uint64_t id_bits =
      (static_cast<std::uint64_t>(delivery.id.sender) << 48) ^ delivery.id.seq;
  hash = fnv1a(hash, std::span(
                         reinterpret_cast<const std::uint8_t*>(&id_bits),
                         sizeof(id_bits)));
  hash = fnv1a(hash, std::span(
                         reinterpret_cast<const std::uint8_t*>(
                             delivery.label().data()),
                         delivery.label().size()));
  return fnv1a(hash, delivery.payload());
}

/// Order-sensitive combine (splitmix finalizer) for chaining sync points.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

InvariantChecker::InvariantChecker(std::unique_ptr<BroadcastMember> lower,
                                   std::shared_ptr<ViolationLog> log,
                                   Options options)
    : ProtocolLayer(std::move(lower)),
      log_(std::move(log)),
      options_(std::move(options)) {
  require(log_ != nullptr, "InvariantChecker: null violation log");
  if (options_.stable_spec.has_value()) {
    detector_.emplace(*options_.stable_spec,
                      [this](const StablePoint& point) {
                        stable_history_.push_back(point);
                      });
  }
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "check";
  }
  if (options_.obs.has_metrics()) {
    const std::string& prefix = options_.obs.prefix;
    deliveries_counter_ = &options_.obs.metrics->counter(prefix +
                                                         ".deliveries");
    violations_counter_ = &options_.obs.metrics->counter(prefix +
                                                         ".violations");
    stable_points_counter_ =
        &options_.obs.metrics->counter(prefix + ".stable_points");
  }
}

void InvariantChecker::record(ViolationKind kind, MessageId message,
                              std::string detail) {
  local_violations_ += 1;
  if (violations_counter_ != nullptr) {
    violations_counter_->inc();
  }
  // A violation is precisely what the flight recorder exists for: mark
  // it in the journal, then persist the ring before anything above us
  // reacts (aborts, tears down the process, ...).
  obs::flight_record(obs::FlightEvent::kMark, message,
                     static_cast<std::uint64_t>(kind));
  if (obs::FlightRecorder* recorder = obs::flight_recorder()) {
    recorder->dump();
  }
  log_->add(kind, id(), message, std::move(detail));
}

void InvariantChecker::on_lower_delivery(const Delivery& delivery) {
  const MessageId message = delivery.id;
  if (deliveries_counter_ != nullptr) {
    deliveries_counter_->inc();
  }
  if (options_.check_duplicates && seen_.count(message) != 0) {
    record(ViolationKind::kDuplicateDelivery, message,
           "delivered again at position " + std::to_string(sequence_.size()));
    deliver_up(delivery);
    return;
  }
  if (options_.check_dependencies) {
    for (const MessageId& dep : delivery.deps().ids()) {
      if (seen_.count(dep) == 0 && dep.seq > floor_for(dep.sender)) {
        record(ViolationKind::kDependencyViolation, message,
               "Occurs_After(" + dep.to_string() +
                   ") not yet delivered locally at position " +
                   std::to_string(sequence_.size()));
      }
    }
  }
  seen_.insert(message);
  sequence_.push_back(message);
  per_sender_[message.sender].insert(message.seq);
  if (detector_.has_value()) {
    if (options_.digest_exempt_kinds.count(
            CommutativitySpec::kind_of(delivery.label())) == 0) {
      const std::uint64_t hash = hash_delivery(delivery);
      if (options_.stable_spec->is_commutative(delivery.label())) {
        // Commutative ops may arrive in any relative order at different
        // members; XOR keeps the cycle digest order-insensitive.
        open_cycle_acc_ ^= hash;
      } else {
        digest_chain_ = mix(digest_chain_ ^ open_cycle_acc_, hash);
        open_cycle_acc_ = 0;
        stable_digests_.push_back(digest_chain_);
        obs::flight_record(obs::FlightEvent::kStablePoint, message,
                           stable_digests_.size());
        if (stable_points_counter_ != nullptr) {
          stable_points_counter_->inc();
        }
        if (obs::tracing(options_.obs)) {
          options_.obs.tracer->instant(
              "stable_point", "check", obs::Tracer::wall_now_us(),
              "\"cycle\":" + std::to_string(stable_digests_.size()) +
                  ",\"sync\":\"" + message.to_string() +
                  "\",\"digest\":" + std::to_string(digest_chain_));
        }
      }
    }
    detector_->on_delivery(delivery);
  }
  deliver_up(delivery);
}

SeqNo InvariantChecker::floor_for(NodeId sender) const {
  const auto it = restore_floor_.find(sender);
  return it == restore_floor_.end() ? 0 : it->second;
}

void InvariantChecker::restore(std::vector<std::uint64_t> digests,
                               std::map<NodeId, SeqNo> baseline_floor) {
  require(sequence_.empty(),
          "InvariantChecker::restore: deliveries already recorded");
  stable_digests_ = std::move(digests);
  digest_chain_ = stable_digests_.empty() ? 0 : stable_digests_.back();
  open_cycle_acc_ = 0;
  restore_floor_ = std::move(baseline_floor);
}

void InvariantChecker::check_no_gaps() {
  for (const auto& [sender, seqs] : per_sender_) {
    SeqNo expected = floor_for(sender) + 1;
    for (const SeqNo seq : seqs) {
      if (seq != expected) {
        record(ViolationKind::kSenderGap, MessageId{sender, expected},
               "sender " + std::to_string(sender) + " delivered up to seq " +
                   std::to_string(*seqs.rbegin()) + " but seq " +
                   std::to_string(expected) + " is missing");
        break;
      }
      ++expected;
    }
  }
}

InvariantMonitor::InvariantMonitor(InvariantChecker::Options default_options)
    : log_(std::make_shared<ViolationLog>()),
      default_options_(std::move(default_options)) {}

std::unique_ptr<InvariantChecker> InvariantMonitor::attach(
    std::unique_ptr<BroadcastMember> lower) {
  return attach(std::move(lower), default_options_);
}

std::unique_ptr<InvariantChecker> InvariantMonitor::attach(
    std::unique_ptr<BroadcastMember> lower,
    InvariantChecker::Options options) {
  auto checker = std::make_unique<InvariantChecker>(std::move(lower), log_,
                                                    std::move(options));
  checkers_.push_back(checker.get());
  return checker;
}

bool InvariantMonitor::check_quiescent() {
  for (InvariantChecker* checker : checkers_) {
    checker->check_no_gaps();
  }
  if (checkers_.size() < 2) {
    return log_->empty();
  }

  // Identical delivered message set everywhere.
  const auto sorted_ids = [](const InvariantChecker& checker) {
    std::vector<MessageId> ids = checker.delivered_sequence();
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const std::vector<MessageId> reference = sorted_ids(*checkers_[0]);
  for (std::size_t i = 1; i < checkers_.size(); ++i) {
    const std::vector<MessageId> ids = sorted_ids(*checkers_[i]);
    if (ids == reference) {
      continue;
    }
    std::vector<MessageId> diff;
    std::set_symmetric_difference(reference.begin(), reference.end(),
                                  ids.begin(), ids.end(),
                                  std::back_inserter(diff));
    log_->add(ViolationKind::kSetDivergence, checkers_[i]->id(),
              diff.empty() ? MessageId::null() : diff.front(),
              "delivered set differs from member " +
                  std::to_string(checkers_[0]->id()) + " (" +
                  std::to_string(diff.size()) + " ids differ)");
  }

  // Identical sequence wherever total order was promised (ASend eq. 5).
  const InvariantChecker* total_reference = nullptr;
  for (const InvariantChecker* checker : checkers_) {
    if (!checker->options().expect_total_order) {
      continue;
    }
    if (total_reference == nullptr) {
      total_reference = checker;
      continue;
    }
    const auto& expected = total_reference->delivered_sequence();
    const auto& actual = checker->delivered_sequence();
    const std::size_t common = std::min(expected.size(), actual.size());
    std::size_t at = 0;
    while (at < common && expected[at] == actual[at]) {
      ++at;
    }
    if (at == expected.size() && at == actual.size()) {
      continue;
    }
    log_->add(ViolationKind::kOrderDivergence, checker->id(),
              at < common ? actual[at] : MessageId::null(),
              "arbitration order diverges from member " +
                  std::to_string(total_reference->id()) + " at position " +
                  std::to_string(at));
  }

  // Stable-point agreement wherever a commutativity spec was given.
  const InvariantChecker* stable_reference = nullptr;
  for (const InvariantChecker* checker : checkers_) {
    if (!checker->options().stable_spec.has_value()) {
      continue;
    }
    if (stable_reference == nullptr) {
      stable_reference = checker;
      continue;
    }
    const auto& expected = stable_reference->stable_history();
    const auto& actual = checker->stable_history();
    if (expected.size() != actual.size()) {
      log_->add(ViolationKind::kStableDivergence, checker->id(),
                MessageId::null(),
                "saw " + std::to_string(actual.size()) +
                    " stable points vs member " +
                    std::to_string(stable_reference->id()) + "'s " +
                    std::to_string(expected.size()));
      continue;
    }
    for (std::size_t c = 0; c < expected.size(); ++c) {
      if (actual[c].sync_message != expected[c].sync_message) {
        log_->add(ViolationKind::kStableDivergence, checker->id(),
                  actual[c].sync_message,
                  "cycle " + std::to_string(c + 1) +
                      " closed on a different sync message than member " +
                      std::to_string(stable_reference->id()));
        continue;
      }
      if (checker->stable_digests()[c] !=
          stable_reference->stable_digests()[c]) {
        log_->add(ViolationKind::kStableDivergence, checker->id(),
                  actual[c].sync_message,
                  "state digest at stable point " + std::to_string(c + 1) +
                      " differs from member " +
                      std::to_string(stable_reference->id()) +
                      " — states disagree at an activity endpoint");
      }
    }
  }
  return log_->empty();
}

}  // namespace cbc::check
