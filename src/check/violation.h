// Structured invariant-violation records.
//
// The check subsystem never asserts with abort(): every broken invariant
// becomes a Violation appended to a shared ViolationLog, so a single run
// (or one explored schedule) can report *all* breakages with enough
// context to reproduce them — which member, which message, what was
// expected. Tests and the schedule explorer fail on a non-empty log.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/message_id.h"
#include "util/types.h"

namespace cbc::check {

/// Category of a broken paper invariant.
enum class ViolationKind {
  kDependencyViolation,  ///< delivered before an Occurs_After predecessor
  kDuplicateDelivery,    ///< same message delivered twice at one member
  kSenderGap,            ///< a sender's seq range has a hole at quiescence
  kSetDivergence,        ///< members delivered different message sets
  kOrderDivergence,      ///< total-order members delivered different orders
  kStableDivergence,     ///< stable-point histories or states disagree
};

/// Short stable name of a kind ("dependency", "duplicate", ...).
[[nodiscard]] std::string_view to_string(ViolationKind kind);

/// One observed violation, bound to the member and message involved.
struct Violation {
  ViolationKind kind;
  NodeId member = kNoNode;   ///< member that observed the breakage
  MessageId message;         ///< offending message (null when group-level)
  std::string detail;        ///< human-readable specifics

  [[nodiscard]] std::string to_string() const;
};

/// Append-only collection of violations, shared by every checker of one
/// group. Not thread-safe; under ThreadTransport, checkers already run
/// under their stack lock and group-level checks run at quiescence.
class ViolationLog {
 public:
  void add(ViolationKind kind, NodeId member, MessageId message,
           std::string detail);

  [[nodiscard]] bool empty() const { return violations_.empty(); }
  [[nodiscard]] std::size_t size() const { return violations_.size(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// Multi-line report of every violation (empty string when clean).
  [[nodiscard]] std::string report() const;

  void clear() { violations_.clear(); }

 private:
  std::vector<Violation> violations_;
};

}  // namespace cbc::check
