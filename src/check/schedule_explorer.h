// ScheduleExplorer — DPOR-lite model checking over delivery interleavings.
//
// The deterministic simulator replays ONE schedule per seed; the explorer
// instead *enumerates* schedules. A scenario (group of members wrapped in
// InvariantCheckers over an ExplorerTransport) is re-constructed from
// scratch for every run; at each step the explorer picks which pending
// transport operation fires next. Because a run is a pure function of its
// choice sequence, the explorer can:
//
//   - exhaustively DFS-enumerate interleavings up to a schedule budget
//     (replay a recorded prefix, branch the deepest unexplored choice);
//   - continue with seeded random walks past the budget (recorded seeds,
//     so any failure is reproducible);
//   - on violation, greedily minimize the failing choice sequence toward
//     the FIFO schedule and emit a step-by-step trace of the minimal
//     failing interleaving plus the structured violation report.
//
// This turns the checker's paper invariants (Occurs_After precedence,
// agreed ASend order, stable-point state agreement) into properties tested
// across *every* explored schedule, not one hand-picked one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/explorer_transport.h"
#include "check/invariant_checker.h"
#include "util/rng.h"

namespace cbc::check {

/// One explorable system: members + checkers over the given transport.
/// The factory is invoked once per schedule; construction must register
/// every endpoint, start() issues the initial broadcasts (reactive sends
/// belong in delivery callbacks), and the monitor holds the verdict.
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Issues the scenario's initial broadcasts.
  virtual void start() = 0;

  /// The monitor whose checkers wrap this scenario's members.
  [[nodiscard]] virtual InvariantMonitor& monitor() = 0;

  /// Optional app-level assertions at quiescence; add violations to the
  /// monitor's log to fail the schedule.
  virtual void on_quiescent() {}
};

using ScenarioFactory =
    std::function<std::unique_ptr<Scenario>(Transport& transport)>;

struct ExplorerOptions {
  /// DFS enumeration budget (number of schedules). The space is fully
  /// covered ("exhausted") when DFS runs out of unexplored branches first.
  std::size_t max_exhaustive_schedules = 1000;
  /// Additional seeded random walks after the DFS budget.
  std::size_t random_schedules = 0;
  std::uint64_t seed = 1;
  /// Per-schedule step cap (guards against timer re-arm loops). A
  /// truncated schedule skips the quiescence checks; online violations
  /// still count.
  std::size_t max_steps = 10000;
  /// When set, the explorer emits progress counters here
  /// (`<metrics_prefix>.schedules_explored` / `.minimize_steps` /
  /// `.violations_found`). Default: off.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "explorer";
};

struct ExplorerResult {
  std::size_t schedules_explored = 0;
  std::size_t distinct_schedules = 0;
  bool exhausted = false;         ///< DFS covered the entire space
  bool violation_found = false;
  /// Minimized failing choice sequence (empty when no violation). Replay
  /// with ScheduleExplorer::replay() to reproduce.
  std::vector<std::size_t> failing_schedule;
  std::uint64_t failing_seed = 0;  ///< seed of the failing random walk (0 = DFS)
  /// Step trace of the minimized failing schedule + violation report.
  std::string failure_report;

  [[nodiscard]] bool ok() const { return !violation_found; }
};

/// Enumerates schedules of one scenario and checks invariants on each.
class ScheduleExplorer {
 public:
  ScheduleExplorer(ScenarioFactory factory, ExplorerOptions options)
      : factory_(std::move(factory)), options_(std::move(options)) {
    if (obs::kCompiledIn && options_.metrics != nullptr) {
      schedules_counter_ = &options_.metrics->counter(
          options_.metrics_prefix + ".schedules_explored");
      minimize_counter_ = &options_.metrics->counter(
          options_.metrics_prefix + ".minimize_steps");
      violations_counter_ = &options_.metrics->counter(
          options_.metrics_prefix + ".violations_found");
    }
  }

  /// Runs the exhaustive phase then the random phase; stops at the first
  /// violating schedule (minimized into the result).
  ExplorerResult explore();

  /// Re-executes one choice sequence (e.g. a reported failing_schedule)
  /// and returns the violation report ("" when that schedule is clean).
  std::string replay(const std::vector<std::size_t>& choices);

 private:
  struct RunRecord {
    std::vector<std::size_t> choices;  // actual choice taken at each step
    std::vector<std::size_t> fanout;   // pending-op count at each step
    bool truncated = false;            // hit max_steps before quiescence
    bool violated = false;
  };

  RunRecord run_one(const std::vector<std::size_t>& forced, Rng* rng,
                    std::vector<std::string>* trace);
  std::vector<std::size_t> minimize(std::vector<std::size_t> failing);
  void fill_failure(ExplorerResult& result,
                    const std::vector<std::size_t>& failing);

  ScenarioFactory factory_;
  ExplorerOptions options_;
  obs::Counter* schedules_counter_ = nullptr;
  obs::Counter* minimize_counter_ = nullptr;
  obs::Counter* violations_counter_ = nullptr;
};

}  // namespace cbc::check
