#include "check/history.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/ensure.h"

namespace cbc::check {

namespace {
constexpr std::uint32_t kMagic = 0x48434243U;  // "CBCH"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void SiteHistory::encode(Writer& writer) const {
  writer.u32(kMagic);
  writer.u32(kVersion);
  writer.str(object);
  writer.u32(site);
  writer.u32(static_cast<std::uint32_t>(ops.size()));
  for (const HistoryOp& op : ops) {
    op.id.encode(writer);
    writer.u32(op.origin);
    writer.str(op.label);
    writer.blob(op.args);
    writer.u32(static_cast<std::uint32_t>(op.deps.size()));
    for (const MessageId& dep : op.deps) {
      dep.encode(writer);
    }
    writer.blob(op.response);
  }
}

SiteHistory SiteHistory::decode(Reader& reader) {
  const std::uint32_t magic = reader.u32();
  require(magic == kMagic, "SiteHistory: bad magic");
  const std::uint32_t version = reader.u32();
  require(version == kVersion,
          "SiteHistory: unsupported version " + std::to_string(version));
  SiteHistory history;
  history.object = reader.str();
  history.site = static_cast<NodeId>(reader.u32());
  const std::uint32_t count = reader.u32();
  history.ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    HistoryOp op;
    op.id = MessageId::decode(reader);
    op.origin = static_cast<NodeId>(reader.u32());
    op.label = reader.str();
    op.args = reader.blob();
    const std::uint32_t deps = reader.u32();
    op.deps.reserve(deps);
    for (std::uint32_t d = 0; d < deps; ++d) {
      op.deps.push_back(MessageId::decode(reader));
    }
    op.response = reader.blob();
    history.ops.push_back(std::move(op));
  }
  return history;
}

void SiteHistory::save(const std::string& path) const {
  Writer writer;
  encode(writer);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "SiteHistory: cannot write '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.size()));
    require(out.good(), "SiteHistory: short write to '" + tmp + "'");
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "SiteHistory: rename to '" + path + "' failed");
}

SiteHistory SiteHistory::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "SiteHistory: cannot read '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  Reader reader(bytes);
  SiteHistory history = decode(reader);
  require(reader.exhausted(), "SiteHistory: trailing bytes in '" + path + "'");
  return history;
}

}  // namespace cbc::check
