// InvariantChecker — a ProtocolLayer that mechanically verifies the
// paper's correctness claims on a live delivery stream.
//
// Attach one checker per member (wrapping any BroadcastMember) and share
// one ViolationLog across the group, normally via InvariantMonitor. On
// every delivery the checker asserts, against its own record of what this
// member has delivered:
//
//   - Occurs_After precedence: every id in the message's dependency set
//     was already delivered locally (§3.1 — the causal delivery rule);
//   - no duplicate delivery of any message id;
//
// and it accumulates the state needed for the quiescence-time checks run
// by InvariantMonitor::check_quiescent():
//
//   - no-gap delivery: each sender's delivered seqs form 1..max with no
//     holes (reliability masked every loss);
//   - identical delivered message *set* at every member;
//   - identical delivered *sequence* at every member when the wrapped
//     discipline promises total order (ASend arbitration — eq. 5);
//   - stable-point agreement (§4.1, §6.1): same sync-message chain, and an
//     order-insensitive state digest per cycle that must match across
//     members — "identical state with no agreement protocol".
//
// Violations are recorded, never thrown: one schedule reports every
// breakage it exhibits, which is what the schedule explorer minimizes on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "activity/commutativity.h"
#include "activity/stable_point.h"
#include "check/violation.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "stack/protocol_layer.h"

namespace cbc::check {

/// Per-member online invariant checker (see file comment).
class InvariantChecker final : public ProtocolLayer {
 public:
  struct Options {
    bool check_dependencies = true;  ///< Occurs_After precedence per delivery
    bool check_duplicates = true;    ///< no message delivered twice
    /// The wrapped discipline promises one identical delivery sequence at
    /// every member (ASend, sequencer); the monitor then compares full
    /// sequences, not just sets.
    bool expect_total_order = false;
    /// When set, deliveries feed a StablePointDetector and the monitor
    /// compares stable-point histories and state digests across members.
    std::optional<CommutativitySpec> stable_spec;
    /// Label kinds excluded from the stable digest (still checked for
    /// dependencies/duplicates and fed to the detector). Use for
    /// state-inert ops whose delivery is NOT ordered relative to the sync
    /// chain — e.g. a departure marker racing an in-flight sync lands in
    /// cycle k at one member and cycle k+1 at another, so folding it into
    /// the digest would report divergence where states actually agree.
    std::set<std::string> digest_exempt_kinds;
    /// Observability sinks: delivery/violation/stable-point counters plus
    /// a `stable_point` trace instant per closed cycle. Default: off.
    obs::Hooks obs{};
  };

  InvariantChecker(std::unique_ptr<BroadcastMember> lower,
                   std::shared_ptr<ViolationLog> log, Options options);

  /// Message ids in local delivery order (never pruned; checker-owned).
  [[nodiscard]] const std::vector<MessageId>& delivered_sequence() const {
    return sequence_;
  }

  /// Stable points detected so far (empty unless stable_spec was given).
  [[nodiscard]] const std::vector<StablePoint>& stable_history() const {
    return stable_history_;
  }

  /// Order-insensitive state digest per closed cycle: commutative messages
  /// of the cycle fold in XOR (order must not matter), chained through the
  /// closing sync message. Equal digests at equal cycles == state
  /// agreement at the stable point.
  [[nodiscard]] const std::vector<std::uint64_t>& stable_digests() const {
    return stable_digests_;
  }

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::size_t violation_count() const { return local_violations_; }

  /// Per-member quiescence check: every delivered sender's seqs must be
  /// contiguous from 1 (no-gap; from the restored floor after recovery).
  /// Called by InvariantMonitor.
  void check_no_gaps();

  /// Seeds the checker from a transferred checkpoint (crash recovery):
  /// `digests` becomes the stable digest chain (the next closed cycle
  /// chains off its tail), and deliveries at or below `baseline_floor`
  /// (per-sender seq) are treated as already seen — dependencies on them
  /// are satisfied and the no-gap check starts above the floor. Must be
  /// called before any delivery flows through this checker.
  void restore(std::vector<std::uint64_t> digests,
               std::map<NodeId, SeqNo> baseline_floor);

 protected:
  void on_lower_delivery(const Delivery& delivery) override;

 private:
  void record(ViolationKind kind, MessageId message, std::string detail);
  [[nodiscard]] SeqNo floor_for(NodeId sender) const;

  std::shared_ptr<ViolationLog> log_;
  Options options_;
  std::unordered_set<MessageId> seen_;
  std::vector<MessageId> sequence_;
  std::map<NodeId, std::set<SeqNo>> per_sender_;  // for the no-gap check
  // Per-sender baseline adopted at recovery: seqs at or below it were
  // delivered by the pre-crash incarnation (or covered by the transferred
  // checkpoint) and count as seen.
  std::map<NodeId, SeqNo> restore_floor_;
  std::optional<StablePointDetector> detector_;
  std::vector<StablePoint> stable_history_;
  std::vector<std::uint64_t> stable_digests_;
  std::uint64_t open_cycle_acc_ = 0;  ///< XOR of open-cycle message hashes
  std::uint64_t digest_chain_ = 0;    ///< digest after the last stable point
  std::size_t local_violations_ = 0;
  obs::Counter* deliveries_counter_ = nullptr;
  obs::Counter* violations_counter_ = nullptr;
  obs::Counter* stable_points_counter_ = nullptr;
};

/// Group-level aggregation: wraps members in checkers sharing one log and
/// runs the cross-member checks at quiescence.
class InvariantMonitor {
 public:
  InvariantMonitor() : InvariantMonitor(InvariantChecker::Options{}) {}
  explicit InvariantMonitor(InvariantChecker::Options default_options);

  /// Wraps `lower` in a checker registered with this monitor. The caller
  /// owns the returned checker and must keep it alive as long as the
  /// monitor is used.
  [[nodiscard]] std::unique_ptr<InvariantChecker> attach(
      std::unique_ptr<BroadcastMember> lower);
  [[nodiscard]] std::unique_ptr<InvariantChecker> attach(
      std::unique_ptr<BroadcastMember> lower,
      InvariantChecker::Options options);

  [[nodiscard]] const std::shared_ptr<ViolationLog>& log() const {
    return log_;
  }

  /// Runs every quiescence-time check across the registered members:
  /// per-member no-gap, same delivered set, identical sequence when total
  /// order was promised, stable-point agreement when a spec was given.
  /// Returns true when the log is still empty afterwards.
  bool check_quiescent();

  /// The full violation report (empty when clean).
  [[nodiscard]] std::string report() const { return log_->report(); }

 private:
  std::shared_ptr<ViolationLog> log_;
  InvariantChecker::Options default_options_;
  std::vector<InvariantChecker*> checkers_;
};

}  // namespace cbc::check
