#include "check/history_checker.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/ensure.h"

namespace cbc::check {

namespace {

/// Reachability bitsets over the op universe: row i holds every op
/// reachable from i through the causal order.
class Closure {
 public:
  explicit Closure(std::size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t from, std::size_t to) {
    bits_[from * words_ + to / 64] |= std::uint64_t{1} << (to % 64);
  }

  [[nodiscard]] bool test(std::size_t from, std::size_t to) const {
    return (bits_[from * words_ + to / 64] >>
            (to % 64) & 1) != 0;
  }

  /// rows[from] |= rows[via] — folds via's reach set into from's.
  void absorb(std::size_t from, std::size_t via) {
    for (std::size_t w = 0; w < words_; ++w) {
      bits_[from * words_ + w] |= bits_[via * words_ + w];
    }
  }

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

std::string op_name(const HistoryOp& op) {
  return op.label + " (" + op.id.to_string() + ")";
}

}  // namespace

std::string HistoryChecker::Result::summary() const {
  std::ostringstream out;
  out << "CC=" << (cc ? "pass" : "FAIL") << " CM=" << (cm ? "pass" : "FAIL")
      << " CCv=" << (ccv ? "pass" : "FAIL") << " violations="
      << violations.size();
  return out.str();
}

HistoryChecker::Result HistoryChecker::check(
    const std::vector<SiteHistory>& sites) const {
  Result result;
  auto fail = [&result](std::string message) {
    result.violations.push_back(std::move(message));
  };
  if (sites.empty()) {
    fail("no site histories given");
    return result;
  }

  // --- Universe: dedup ops by id; the recorded content must agree. ---
  std::vector<const HistoryOp*> ops;
  std::unordered_map<MessageId, std::size_t> index;
  bool content_ok = true;
  for (const SiteHistory& site : sites) {
    for (const HistoryOp& op : site.ops) {
      const auto [it, inserted] = index.emplace(op.id, ops.size());
      if (inserted) {
        ops.push_back(&op);
      } else {
        const HistoryOp& seen = *ops[it->second];
        if (seen.label != op.label || seen.args != op.args ||
            seen.deps != op.deps) {
          content_ok = false;
          fail("sites disagree on the content of " + op.id.to_string());
        }
      }
    }
  }
  const std::size_t n = ops.size();

  // --- Causal order: carried deps ∪ per-origin program order. ---
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indegree(n, 0);
  bool deps_resolved = true;
  auto add_edge = [&](std::size_t from, std::size_t to) {
    succ[from].push_back(to);
    indegree[to] += 1;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const MessageId& dep : ops[i]->deps) {
      if (dep.is_null()) {
        continue;
      }
      const auto it = index.find(dep);
      if (it == index.end()) {
        deps_resolved = false;
        fail(op_name(*ops[i]) + " depends on " + dep.to_string() +
             ", which no site delivered");
        continue;
      }
      add_edge(it->second, i);
    }
  }
  std::map<NodeId, std::vector<std::size_t>> by_origin;
  for (std::size_t i = 0; i < n; ++i) {
    by_origin[ops[i]->origin].push_back(i);
  }
  for (auto& [origin, seq] : by_origin) {
    std::sort(seq.begin(), seq.end(), [&](std::size_t a, std::size_t b) {
      return ops[a]->id.seq < ops[b]->id.seq;
    });
    for (std::size_t k = 1; k < seq.size(); ++k) {
      add_edge(seq[k - 1], seq[k]);
    }
  }

  // Transitive closure in one topological sweep (Kahn).
  Closure reach(n);
  std::vector<std::size_t> topo;
  {
    std::deque<std::size_t> ready;
    std::vector<std::size_t> remaining = indegree;
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining[i] == 0) {
        ready.push_back(i);
      }
    }
    while (!ready.empty()) {
      const std::size_t u = ready.front();
      ready.pop_front();
      topo.push_back(u);
      for (const std::size_t v : succ[u]) {
        reach.set(v, u);
        reach.absorb(v, u);
        if (--remaining[v] == 0) {
          ready.push_back(v);
        }
      }
    }
  }
  const bool acyclic = topo.size() == n;
  if (!acyclic) {
    fail("causal order contains a cycle (deps + program order)");
  }

  // --- CC: each site's order linearizes the causal order. ---
  bool cc_ok = acyclic && deps_resolved;
  std::vector<std::unordered_map<MessageId, std::size_t>> position(
      sites.size());
  for (std::size_t s = 0; s < sites.size(); ++s) {
    for (std::size_t p = 0; p < sites[s].ops.size(); ++p) {
      const auto [it, inserted] =
          position[s].emplace(sites[s].ops[p].id, p);
      if (!inserted) {
        cc_ok = false;
        fail("site " + std::to_string(sites[s].site) + " delivered " +
             sites[s].ops[p].id.to_string() + " twice");
      }
    }
  }
  if (acyclic) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      for (std::size_t p = 0; p < sites[s].ops.size(); ++p) {
        const std::size_t i = index.at(sites[s].ops[p].id);
        // Every causal predecessor this site delivered must come earlier.
        for (std::size_t j = 0; j < n; ++j) {
          if (!reach.test(i, j)) {
            continue;
          }
          const auto it = position[s].find(ops[j]->id);
          if (it == position[s].end()) {
            cc_ok = false;
            fail("site " + std::to_string(sites[s].site) + " delivered " +
                 op_name(*ops[i]) + " without its causal predecessor " +
                 op_name(*ops[j]));
          } else if (it->second > p) {
            cc_ok = false;
            fail("site " + std::to_string(sites[s].site) + " delivered " +
                 op_name(*ops[i]) + " before its causal predecessor " +
                 op_name(*ops[j]));
          }
        }
      }
    }
  }
  result.cc = cc_ok && content_ok;

  // --- CM: each site's own order reproduces its recorded responses. ---
  bool cm_ok = true;
  std::vector<std::unique_ptr<object::ReplicatedObject>> finals;
  for (const SiteHistory& site : sites) {
    std::unique_ptr<object::ReplicatedObject> state = spec_.make();
    for (const HistoryOp& op : site.ops) {
      const std::string kind = CommutativitySpec::kind_of(op.label);
      Reader args(op.args);
      std::vector<std::uint8_t> replayed;
      try {
        replayed = state->apply(kind, args);
      } catch (const InvalidArgument& error) {
        cm_ok = false;
        fail("site " + std::to_string(site.site) + ": replaying " +
             op_name(op) + " failed: " + error.what());
        continue;
      }
      if (replayed != op.response) {
        cm_ok = false;
        fail("site " + std::to_string(site.site) + ": replayed response of " +
             op_name(op) + " differs from the recorded one");
      }
    }
    finals.push_back(std::move(state));
  }
  result.cm = cm_ok;

  // --- CCv: same op set, equal final states, concurrent non-commuting
  // pairs ordered identically everywhere. ---
  bool ccv_ok = acyclic && deps_resolved && content_ok;
  // Site-local kinds (session reads served at exactly one site) are not
  // part of the shared operation set every site must deliver; everything
  // else must appear everywhere.
  const auto is_site_local = [this](const HistoryOp& op) {
    const std::string kind = CommutativitySpec::kind_of(op.label);
    return std::find(options_.site_local_kinds.begin(),
                     options_.site_local_kinds.end(),
                     kind) != options_.site_local_kinds.end();
  };
  std::size_t shared_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_site_local(*ops[i])) {
      ++shared_total;
    }
  }
  for (std::size_t s = 0; s < sites.size(); ++s) {
    std::size_t shared_here = 0;
    for (const HistoryOp& op : sites[s].ops) {
      if (!is_site_local(op)) {
        ++shared_here;
      }
    }
    if (shared_here != shared_total) {
      ccv_ok = false;
      fail("site " + std::to_string(sites[s].site) + " delivered " +
           std::to_string(shared_here) + " of " +
           std::to_string(shared_total) + " shared operations");
    }
  }
  for (std::size_t s = 1; s < finals.size(); ++s) {
    if (!finals[s]->equals(*finals[0])) {
      ccv_ok = false;
      fail("final states diverge: site " + std::to_string(sites[0].site) +
           " has " + finals[0]->to_string() + ", site " +
           std::to_string(sites[s].site) + " has " + finals[s]->to_string());
    }
  }
  if (acyclic) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (reach.test(i, j) || reach.test(j, i) ||
            commutativity_.commute(ops[i]->label, ops[j]->label)) {
          continue;
        }
        // Concurrent and non-commuting: arbitration must be uniform.
        int first_order = 0;
        for (std::size_t s = 0; s < sites.size(); ++s) {
          const auto pi = position[s].find(ops[i]->id);
          const auto pj = position[s].find(ops[j]->id);
          if (pi == position[s].end() || pj == position[s].end()) {
            continue;
          }
          const int order = pi->second < pj->second ? 1 : -1;
          if (first_order == 0) {
            first_order = order;
          } else if (order != first_order) {
            ccv_ok = false;
            fail("sites order the concurrent non-commuting pair " +
                 op_name(*ops[i]) + " / " + op_name(*ops[j]) +
                 " differently");
          }
        }
      }
    }
  }
  result.ccv = ccv_ok;
  return result;
}

}  // namespace cbc::check
