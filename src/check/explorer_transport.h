// ExplorerTransport — a Transport whose nondeterminism is a choice point.
//
// Instead of delivering frames after a sampled latency, every send() and
// schedule() queues a PendingOp. The schedule explorer then *picks* which
// pending operation executes next — so the set of reachable delivery
// interleavings is exactly the set of choice sequences, and a run is
// reproduced bit-for-bit by replaying its choices. The transport makes no
// ordering promise (deliveries on one link may be permuted), matching the
// weakest contract of the Transport interface, which is precisely what the
// ordering layers must mask.
//
// Single-threaded by design, like SimTransport: handlers run inside
// execute(), on the explorer's thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "transport/transport.h"

namespace cbc::check {

/// Choice-driven transport for schedule exploration.
class ExplorerTransport final : public Transport {
 public:
  /// One schedulable operation: a frame delivery or a due timer.
  struct PendingOp {
    enum class Kind { kDeliver, kTimer };
    Kind kind = Kind::kDeliver;
    std::uint64_t token = 0;  ///< creation order, unique within a run
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    SharedBuffer frame;              ///< kDeliver only
    std::function<void()> action;    ///< kTimer only
  };

  NodeId add_endpoint(Handler handler) override;
  [[nodiscard]] std::size_t endpoint_count() const override {
    return handlers_.size();
  }
  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override;
  void schedule(SimTime delay_us, std::function<void()> action) override;
  [[nodiscard]] SimTime now_us() const override { return now_; }

  /// Operations currently eligible to run.
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] const PendingOp& pending(std::size_t index) const;

  /// One-line description of a pending op, for failure traces.
  [[nodiscard]] std::string describe(std::size_t index) const;

  /// Removes pending op `index` and runs it (handler or timer action).
  /// Operations it spawns are appended and become choosable next step.
  void execute(std::size_t index);

 private:
  std::vector<Handler> handlers_;
  std::deque<PendingOp> pending_;
  std::uint64_t next_token_ = 1;
  SimTime now_ = 0;
};

}  // namespace cbc::check
