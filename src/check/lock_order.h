// Ranked lock-order assertions for the protocol stack.
//
// The stack has a strict lock hierarchy, acquired top-down:
//
//   kRankStack (100)      a member's stack_mutex() — broadcast and receive
//                         paths, and every upper layer (lock arbiter,
//                         replica, name service) guarding its entry points
//   kRankReliable (200)   ReliableEndpoint's link-state mutex
//   kRankTransport (300)  transport decorators (batching queues)
//
// A thread may only acquire ranks in non-decreasing order (re-acquiring a
// mutex it already holds is always allowed — stack mutexes are recursive
// by design). Acquiring a *lower* rank while holding a higher one is the
// inversion that deadlocks under ThreadTransport the moment two members
// race — e.g. calling back into a stack mutex from under a reliability or
// batching lock. OrderedLockGuard asserts the discipline on every
// acquisition, before blocking, so a would-be deadlock becomes a
// deterministic LogicError with the two lock names in the message.
//
// Header-only and dependency-free (util/ensure.h only) so the transport
// layer can use it without linking against the check library. The
// bookkeeping is a thread-local array of at most a handful of entries;
// the cost is a few compares per lock acquisition.
#pragma once

#include <cstddef>
#include <string>

#include "util/ensure.h"

namespace cbc::check {

inline constexpr int kRankStack = 100;      ///< member stack_mutex()
inline constexpr int kRankReliable = 200;   ///< ReliableEndpoint state
inline constexpr int kRankTransport = 300;  ///< transport decorator queues

namespace detail {

/// One lock currently held by this thread.
struct HeldLock {
  const void* address = nullptr;
  int rank = 0;
  const char* name = "";
};

/// Per-thread stack of held ranked locks. Deliberately a fixed array: the
/// hierarchy is three levels deep and recursion is shallow; overflow means
/// the hierarchy itself is broken.
struct HeldLockStack {
  static constexpr std::size_t kCapacity = 16;
  HeldLock entries[kCapacity];
  std::size_t depth = 0;
};

inline thread_local HeldLockStack held_locks;

inline void note_acquire(const void* address, int rank, const char* name) {
  HeldLockStack& held = held_locks;
  ensure(held.depth < HeldLockStack::kCapacity,
         "lock-order: held-lock stack overflow");
  int max_rank = 0;
  const char* max_name = "";
  for (std::size_t i = 0; i < held.depth; ++i) {
    if (held.entries[i].address == address) {
      // Recursive re-entry of a mutex this thread already owns: always
      // safe, and exempt from the rank check.
      held.entries[held.depth++] = HeldLock{address, rank, name};
      return;
    }
    if (held.entries[i].rank > max_rank) {
      max_rank = held.entries[i].rank;
      max_name = held.entries[i].name;
    }
  }
  if (rank < max_rank) {
    throw LogicError("lock-order violated: acquiring '" + std::string(name) +
                     "' (rank " + std::to_string(rank) + ") while holding '" +
                     max_name + "' (rank " + std::to_string(max_rank) + ")");
  }
  held.entries[held.depth++] = HeldLock{address, rank, name};
}

inline void note_release(const void* address) {
  HeldLockStack& held = held_locks;
  for (std::size_t i = held.depth; i-- > 0;) {
    if (held.entries[i].address == address) {
      for (std::size_t j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      held.depth -= 1;
      return;
    }
  }
}

}  // namespace detail

/// std::lock_guard with a rank assertion (works for std::mutex and
/// std::recursive_mutex). The check runs BEFORE blocking on the mutex, so
/// an inversion reports deterministically instead of deadlocking.
template <typename MutexT>
class OrderedLockGuard {
 public:
  OrderedLockGuard(MutexT& mutex, int rank, const char* name) : mutex_(mutex) {
    detail::note_acquire(&mutex_, rank, name);
    mutex_.lock();
  }
  ~OrderedLockGuard() {
    mutex_.unlock();
    detail::note_release(&mutex_);
  }

  OrderedLockGuard(const OrderedLockGuard&) = delete;
  OrderedLockGuard& operator=(const OrderedLockGuard&) = delete;

 private:
  MutexT& mutex_;
};

}  // namespace cbc::check
