// Recorded operation histories — the on-disk input of the offline
// consistency oracle (HistoryChecker, cbc_check).
//
// A SiteHistory is one member's local delivery sequence: every operation
// it applied, in order, with the dependency set the message carried and
// the response its application produced. cbc_node --record-history
// writes one file per member; the checker replays the set of files
// against the object's sequential specification.
//
// File format (versioned, little-endian):
//   u32 magic 'CBCH'   u32 version   str object   u32 site
//   u32 ops   then per op:
//     id (sender,seq)   u32 origin   str label   blob args
//     u32 deps + (sender,seq) each   blob response
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/message_id.h"
#include "util/serde.h"
#include "util/types.h"

namespace cbc::check {

/// One applied operation as one site recorded it.
struct HistoryOp {
  MessageId id;
  NodeId origin = kNoNode;
  std::string label;                    ///< "kind(args)#n"; kind_of() splits
  std::vector<std::uint8_t> args;       ///< encoded operation arguments
  std::vector<MessageId> deps;          ///< the message's Occurs_After set
  std::vector<std::uint8_t> response;   ///< bytes apply() returned here

  bool operator==(const HistoryOp& other) const = default;
};

/// One member's complete local delivery order.
struct SiteHistory {
  std::string object;  ///< catalog name of the replicated object
  NodeId site = kNoNode;
  std::vector<HistoryOp> ops;

  void encode(Writer& writer) const;
  static SiteHistory decode(Reader& reader);

  /// Atomic (tmp + rename) save. Throws InvalidArgument on I/O failure.
  void save(const std::string& path) const;

  /// Throws InvalidArgument on missing file, truncation, bad magic, or
  /// unsupported version.
  static SiteHistory load(const std::string& path);
};

}  // namespace cbc::check
