#include "check/schedule_explorer.h"

#include <optional>
#include <unordered_set>

namespace cbc::check {

namespace {

std::uint64_t hash_choices(const std::vector<std::size_t>& choices) {
  std::uint64_t hash = 0xCBF29CE484222325ULL ^ choices.size();
  for (const std::size_t choice : choices) {
    hash ^= choice;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

ScheduleExplorer::RunRecord ScheduleExplorer::run_one(
    const std::vector<std::size_t>& forced, Rng* rng,
    std::vector<std::string>* trace) {
  ExplorerTransport transport;
  const std::unique_ptr<Scenario> scenario = factory_(transport);
  scenario->start();

  RunRecord rec;
  while (transport.pending_count() > 0 &&
         rec.choices.size() < options_.max_steps) {
    const std::size_t fanout = transport.pending_count();
    const std::size_t depth = rec.choices.size();
    std::size_t choice = 0;
    if (depth < forced.size()) {
      // Replays are deterministic so a recorded choice is always in
      // range; the clamp only matters for minimization candidates.
      choice = std::min(forced[depth], fanout - 1);
    } else if (rng != nullptr) {
      choice = static_cast<std::size_t>(rng->next_below(fanout));
    }
    rec.fanout.push_back(fanout);
    rec.choices.push_back(choice);
    if (trace != nullptr) {
      trace->push_back("step " + std::to_string(depth) + ": " +
                       transport.describe(choice) + "  [choice " +
                       std::to_string(choice + 1) + "/" +
                       std::to_string(fanout) + "]");
    }
    transport.execute(choice);
  }
  rec.truncated = transport.pending_count() > 0;
  if (rec.truncated) {
    // Quiescence was never reached; only online violations count.
    rec.violated = !scenario->monitor().log()->empty();
  } else {
    scenario->on_quiescent();
    rec.violated = !scenario->monitor().check_quiescent();
  }
  return rec;
}

std::vector<std::size_t> ScheduleExplorer::minimize(
    std::vector<std::size_t> failing) {
  // Greedy pass toward the FIFO schedule: a choice of 0 means "run the
  // oldest pending op", so a sequence of all-zeros is the baseline
  // schedule and every zeroed position is one reordering removed.
  for (std::size_t i = 0; i < failing.size(); ++i) {
    if (failing[i] == 0) {
      continue;
    }
    std::vector<std::size_t> candidate = failing;
    candidate[i] = 0;
    if (minimize_counter_ != nullptr) {
      minimize_counter_->inc();
    }
    RunRecord rec = run_one(candidate, nullptr, nullptr);
    if (rec.violated) {
      failing = std::move(rec.choices);
    }
  }
  // Trailing zeros are implied (beyond the forced prefix the explorer
  // picks 0), so the minimal reproducer is the prefix up to the last
  // non-zero choice.
  while (!failing.empty() && failing.back() == 0) {
    failing.pop_back();
  }
  return failing;
}

void ScheduleExplorer::fill_failure(ExplorerResult& result,
                                    const std::vector<std::size_t>& failing) {
  result.violation_found = true;
  if (violations_counter_ != nullptr) {
    violations_counter_->inc();
  }
  result.failing_schedule = minimize(failing);
  std::vector<std::string> trace;
  RunRecord rec = run_one(result.failing_schedule, nullptr, &trace);
  if (!rec.violated) {
    // Minimization should preserve failure; fall back to the original.
    result.failing_schedule = failing;
    trace.clear();
    rec = run_one(result.failing_schedule, nullptr, &trace);
  }
  std::string report = "failing schedule (" +
                       std::to_string(result.failing_schedule.size()) +
                       " forced choices):\n";
  for (const std::string& line : trace) {
    report.append("  ").append(line).append("\n");
  }
  report.append(replay(result.failing_schedule));
  result.failure_report = std::move(report);
}

std::string ScheduleExplorer::replay(const std::vector<std::size_t>& choices) {
  ExplorerTransport transport;
  const std::unique_ptr<Scenario> scenario = factory_(transport);
  scenario->start();
  std::size_t depth = 0;
  while (transport.pending_count() > 0 && depth < options_.max_steps) {
    const std::size_t fanout = transport.pending_count();
    const std::size_t choice =
        depth < choices.size() ? std::min(choices[depth], fanout - 1) : 0;
    transport.execute(choice);
    ++depth;
  }
  if (transport.pending_count() == 0) {
    scenario->on_quiescent();
    scenario->monitor().check_quiescent();
  }
  return scenario->monitor().report();
}

ExplorerResult ScheduleExplorer::explore() {
  ExplorerResult result;
  std::unordered_set<std::uint64_t> distinct;

  // Exhaustive phase: depth-first over the choice tree by replaying a
  // prefix and extending it FIFO-first, then branching the deepest
  // position that still has unexplored alternatives.
  std::vector<std::size_t> prefix;
  while (result.schedules_explored < options_.max_exhaustive_schedules) {
    const RunRecord rec = run_one(prefix, nullptr, nullptr);
    result.schedules_explored += 1;
    if (schedules_counter_ != nullptr) {
      schedules_counter_->inc();
    }
    distinct.insert(hash_choices(rec.choices));
    if (rec.violated) {
      result.distinct_schedules = distinct.size();
      fill_failure(result, rec.choices);
      return result;
    }
    std::optional<std::size_t> branch;
    for (std::size_t d = rec.choices.size(); d-- > 0;) {
      if (rec.choices[d] + 1 < rec.fanout[d]) {
        branch = d;
        break;
      }
    }
    if (!branch.has_value()) {
      result.exhausted = true;
      break;
    }
    prefix.assign(rec.choices.begin(),
                  rec.choices.begin() +
                      static_cast<std::ptrdiff_t>(*branch) + 1);
    prefix.back() += 1;
  }

  // Random phase: seeded walks; every failure names its seed.
  for (std::size_t k = 0; k < options_.random_schedules; ++k) {
    const std::uint64_t walk_seed =
        options_.seed + 0x9E3779B97F4A7C15ULL * (k + 1);
    Rng rng(walk_seed);
    const RunRecord rec = run_one({}, &rng, nullptr);
    result.schedules_explored += 1;
    if (schedules_counter_ != nullptr) {
      schedules_counter_->inc();
    }
    distinct.insert(hash_choices(rec.choices));
    if (rec.violated) {
      result.distinct_schedules = distinct.size();
      result.failing_seed = walk_seed;
      fill_failure(result, rec.choices);
      return result;
    }
  }

  result.distinct_schedules = distinct.size();
  return result;
}

}  // namespace cbc::check
