#include "check/explorer_transport.h"

#include "util/ensure.h"

namespace cbc::check {

NodeId ExplorerTransport::add_endpoint(Handler handler) {
  require(static_cast<bool>(handler), "ExplorerTransport: empty handler");
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void ExplorerTransport::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(frame != nullptr, "ExplorerTransport::send: null frame");
  require(from < handlers_.size(), "ExplorerTransport::send: unknown sender");
  require(to < handlers_.size(), "ExplorerTransport::send: unknown receiver");
  PendingOp op;
  op.kind = PendingOp::Kind::kDeliver;
  op.token = next_token_++;
  op.from = from;
  op.to = to;
  op.frame = std::move(frame);
  pending_.push_back(std::move(op));
}

void ExplorerTransport::schedule(SimTime delay_us,
                                 std::function<void()> action) {
  require(delay_us >= 0, "ExplorerTransport::schedule: negative delay");
  require(static_cast<bool>(action),
          "ExplorerTransport::schedule: empty action");
  PendingOp op;
  op.kind = PendingOp::Kind::kTimer;
  op.token = next_token_++;
  op.action = std::move(action);
  pending_.push_back(std::move(op));
}

const ExplorerTransport::PendingOp& ExplorerTransport::pending(
    std::size_t index) const {
  require(index < pending_.size(), "ExplorerTransport: bad pending index");
  return pending_[index];
}

std::string ExplorerTransport::describe(std::size_t index) const {
  const PendingOp& op = pending(index);
  if (op.kind == PendingOp::Kind::kTimer) {
    return "timer #" + std::to_string(op.token);
  }
  return "deliver #" + std::to_string(op.token) + " " +
         std::to_string(op.from) + "->" + std::to_string(op.to) + " (" +
         std::to_string(op.frame->size()) + "B)";
}

void ExplorerTransport::execute(std::size_t index) {
  require(index < pending_.size(), "ExplorerTransport: bad pending index");
  PendingOp op = std::move(pending_[index]);
  pending_.erase(pending_.begin() +
                 static_cast<std::deque<PendingOp>::difference_type>(index));
  // Logical time: one tick per executed operation, so sent_at/delivered_at
  // stamps are strictly increasing along a schedule.
  now_ += 1;
  if (op.kind == PendingOp::Kind::kTimer) {
    op.action();
    return;
  }
  handlers_[op.to](op.from, WireFrame(std::move(op.frame)));
}

}  // namespace cbc::check
