#include "util/serde.h"

namespace cbc {

void Writer::str(std::string_view v) {
  require(v.size() <= UINT32_MAX, "Writer::str: string too large");
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void Writer::blob(std::span<const std::uint8_t> v) {
  require(v.size() <= UINT32_MAX, "Writer::blob: blob too large");
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void Writer::u64_vec(const std::vector<std::uint64_t>& v) {
  require(v.size() <= UINT32_MAX, "Writer::u64_vec: vector too large");
  u32(static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t x : v) {
    u64(x);
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return bytes_[pos_++];
}

double Reader::f64() {
  const std::uint64_t bits = get_le<std::uint64_t>();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> Reader::blob() {
  const std::uint32_t n = u32();
  need(n);
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> Reader::blob_view() {
  const std::uint32_t n = u32();
  need(n);
  const std::span<const std::uint8_t> out = bytes_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::uint64_t> Reader::u64_vec() {
  const std::uint32_t n = u32();
  // Bounds-check before reserving: n is untrusted wire input, and a corrupt
  // count must fail as truncation, not as a multi-gigabyte allocation.
  need(static_cast<std::size_t>(n) * sizeof(std::uint64_t));
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(u64());
  }
  return out;
}

}  // namespace cbc
