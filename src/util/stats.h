// Summary statistics used by the benchmark harness.
//
// Benches record per-message latencies and queue depths into a Histogram
// and print mean / percentiles, which is how the claim benches (C1–C6 in
// DESIGN.md) report their series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbc {

/// Accumulates scalar samples and answers mean / min / max / percentile
/// queries. Stores raw samples (exact percentiles; benches are small
/// enough that memory is not a concern).
class Histogram {
 public:
  /// Adds one sample.
  void add(double value);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// Exact percentile with linear interpolation; q in [0,100]. An empty
  /// histogram answers 0.0 for every q (well-defined, never throws).
  [[nodiscard]] double percentile(double q) const;

  /// "n=… mean=… p50=… p99=… max=…" one-line summary for bench output
  /// ("n=0" when empty).
  [[nodiscard]] std::string summary() const;

  /// Merges another histogram's samples into this one.
  void merge(const Histogram& other);

  /// Discards all samples.
  void reset();

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Monotonically increasing named counters, printed by benches to report
/// message/agreement counts (e.g. DESIGN.md experiment C3).
class Counters {
 public:
  /// Increments `name` by `delta` (default 1), creating it at zero first.
  void inc(const std::string& name, std::uint64_t delta = 1);

  /// Current value; zero when never incremented.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// All counters in name order as "name=value" lines.
  [[nodiscard]] std::string summary() const;

  void reset();

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

}  // namespace cbc
