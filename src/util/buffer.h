// Refcounted immutable byte buffers — the allocation unit of the wire.
//
// Every encoded frame lives in exactly one Buffer for its whole life:
// senders encode once, the transports pass the same Buffer to every
// destination by shared_ptr, and receivers parse headers in place while
// payload spans alias the frame bytes. Nothing on the message path should
// ever copy a Buffer — the copy constructor is instrumented with a global
// counter so tests can assert exactly that (see envelope_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace cbc {

/// Immutable byte storage with an instrumented copy constructor.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  Buffer(const Buffer& other) : bytes_(other.bytes_) { note_copy(); }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      bytes_ = other.bytes_;
      note_copy();
    }
    return *this;
  }
  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }
  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  /// Process-wide count of Buffer copy operations since the last reset.
  /// The message path is copy-free by construction; a nonzero count is a
  /// regression.
  static std::uint64_t copy_count();
  static void reset_copy_count();

 private:
  static void note_copy();

  std::vector<std::uint8_t> bytes_;
};

/// Shared ownership of one immutable frame.
using SharedBuffer = std::shared_ptr<const Buffer>;

/// Wraps freshly encoded bytes into a shared frame (moves, never copies).
[[nodiscard]] inline SharedBuffer make_buffer(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const Buffer>(std::move(bytes));
}

/// A window into a shared frame, as handed to transport receive handlers.
/// `offset`/`length` delimit the message within the frame so that stacked
/// framings (reliability headers, batched frames) can expose sub-messages
/// without copying.
struct WireFrame {
  static constexpr std::size_t kToEnd = SIZE_MAX;

  SharedBuffer buffer;
  std::size_t offset = 0;
  std::size_t length = kToEnd;

  WireFrame() = default;
  explicit WireFrame(SharedBuffer frame, std::size_t off = 0,
                     std::size_t len = kToEnd)
      : buffer(std::move(frame)), offset(off), length(len) {}

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    if (!buffer || offset >= buffer->size()) {
      return {};
    }
    const std::size_t available = buffer->size() - offset;
    return buffer->bytes().subspan(offset,
                                   length == kToEnd ? available
                                                    : std::min(length, available));
  }

  /// A window `skip` bytes into this one (drops a header without copying).
  [[nodiscard]] WireFrame subframe(std::size_t skip) const {
    return WireFrame(buffer, offset + skip,
                     length == kToEnd ? kToEnd
                                      : (skip < length ? length - skip : 0));
  }
};

}  // namespace cbc
