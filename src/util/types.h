// Fundamental identifier and time types shared by every layer.
#pragma once

#include <cstdint>

namespace cbc {

/// Identifies one entity (process/member) in the system. Node ids are
/// dense small integers assigned by the network/group layer.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = UINT32_MAX;

/// Simulated time in microseconds. Signed so that subtraction is safe.
using SimTime = std::int64_t;

/// Per-sender message sequence number (assigned in send order).
using SeqNo = std::uint64_t;

}  // namespace cbc
