// Lightweight invariant checking used throughout the library.
//
// The library distinguishes three failure categories:
//  - programming errors inside the library  -> ensure() (throws LogicError)
//  - misuse of the public API by a caller   -> require() (throws InvalidArgument)
//  - protocol invariant violations detected at runtime (e.g. a causal
//    delivery condition observed to be broken) -> protocol_ensure()
//    (throws ProtocolViolation). These are the errors the test suite's
//    failure-injection cases look for.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cbc {

/// Error thrown when an internal library invariant is broken.
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Error thrown when a caller passes arguments that violate a precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Error thrown when a distributed-protocol invariant is observed to be
/// violated at runtime (e.g. out-of-order delivery past a declared
/// dependency, or divergent state at a stable point).
class ProtocolViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[nodiscard]] std::string format_failure(std::string_view kind,
                                         std::string_view message,
                                         const std::source_location& loc);

// Out-of-line cold paths (ensure.cpp). Keeping the throw behind a
// [[noreturn]] call keeps the checks inlineable as a compare-and-branch
// and makes the can-throw surface explicit to static analysis
// (bugprone-exception-escape traces these instead of seeing a throw
// inside every destructor that asserts).
[[noreturn]] void raise_logic_error(std::string_view message,
                                    const std::source_location& loc);
[[noreturn]] void raise_invalid_argument(std::string_view message,
                                         const std::source_location& loc);
[[noreturn]] void raise_protocol_violation(std::string_view message,
                                           const std::source_location& loc);
}  // namespace detail

/// Checks an internal invariant; throws LogicError when it does not hold.
inline void ensure(bool condition, std::string_view message,
                   const std::source_location loc =
                       std::source_location::current()) {
  if (!condition) {
    detail::raise_logic_error(message, loc);
  }
}

/// Checks a caller-facing precondition; throws InvalidArgument on failure.
inline void require(bool condition, std::string_view message,
                    const std::source_location loc =
                        std::source_location::current()) {
  if (!condition) {
    detail::raise_invalid_argument(message, loc);
  }
}

/// Checks a distributed-protocol invariant; throws ProtocolViolation on
/// failure. Used by delivery engines and consistency checkers.
inline void protocol_ensure(bool condition, std::string_view message,
                            const std::source_location loc =
                                std::source_location::current()) {
  if (!condition) {
    detail::raise_protocol_violation(message, loc);
  }
}

}  // namespace cbc
