#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/ensure.h"

namespace cbc {

void Histogram::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
}

double Histogram::mean() const {
  require(!samples_.empty(), "Histogram::mean on empty histogram");
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  require(!samples_.empty(), "Histogram::min on empty histogram");
  sort_if_needed();
  return samples_.front();
}

double Histogram::max() const {
  require(!samples_.empty(), "Histogram::max on empty histogram");
  sort_if_needed();
  return samples_.back();
}

double Histogram::stddev() const {
  require(!samples_.empty(), "Histogram::stddev on empty histogram");
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::percentile(double q) const {
  require(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  // Empty is well-defined, not an error: metric plumbing asks for
  // percentiles of streams that may simply have seen nothing yet.
  if (samples_.empty()) {
    return 0.0;
  }
  sort_if_needed();
  if (samples_.size() == 1) {
    return samples_.front();
  }
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::summary() const {
  std::ostringstream out;
  if (samples_.empty()) {
    out << "n=0";
    return out.str();
  }
  out << "n=" << samples_.size() << " mean=" << mean()
      << " p50=" << percentile(50) << " p90=" << percentile(90)
      << " p99=" << percentile(99) << " max=" << max();
  return out.str();
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::reset() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

void Histogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void Counters::inc(const std::string& name, std::uint64_t delta) {
  for (auto& [key, value] : entries_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  entries_.emplace_back(name, delta);
}

std::uint64_t Counters::get(const std::string& name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return value;
    }
  }
  return 0;
}

std::string Counters::summary() const {
  std::vector<std::pair<std::string, std::uint64_t>> sorted = entries_;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) {
      out << "\n";
    }
    first = false;
    out << key << "=" << value;
  }
  return out.str();
}

void Counters::reset() { entries_.clear(); }

}  // namespace cbc
