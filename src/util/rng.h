// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (network jitter, workload
// generators, interleaving fuzzers) draws from an explicitly seeded Rng so
// that simulations, tests, and benches reproduce bit-for-bit — mirroring
// the paper's emphasis on behaviour that is "reproducible across different
// execution instances".
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/ensure.h"

namespace cbc {

/// SplitMix64-based deterministic generator. Small, fast, and fully
/// specified here so results do not depend on the standard library's
/// distribution implementations.
class Rng {
 public:
  /// Constructs a generator from a seed; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    require(bound > 0, "Rng::next_below bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "Rng::next_in requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                    : next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) {
    require(mean > 0.0, "Rng::next_exponential mean must be positive");
    // Avoid log(0) by nudging the uniform sample away from zero.
    double u = next_double();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(1.0 - u);
  }

  /// Derives an independent child generator (for per-node streams).
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace cbc
