// Minimal leveled logger.
//
// The library is a reusable component, so logging is off by default and
// writes to a caller-configurable sink. Benches and examples turn on Info
// to narrate protocol traces; tests leave it off.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

namespace cbc {

/// Severity of a log record, in increasing order of importance.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Returns a short uppercase name for a level ("TRACE", "INFO", ...).
std::string_view log_level_name(LogLevel level);

/// Process-wide logging configuration. Thread-safe for concurrent loggers;
/// configuration calls should happen before spinning up worker threads.
class LogConfig {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Minimum level that is emitted; records below it are discarded.
  static void set_min_level(LogLevel level);
  static LogLevel min_level();

  /// Replaces the output sink. The default sink writes to stderr.
  static void set_sink(Sink sink);

  /// Emits one record through the current sink if `level` is enabled.
  static void emit(LogLevel level, std::string_view message);
};

/// Builder for one log record; emits on destruction.
///
/// Usage: `Log(LogLevel::kInfo) << "delivered " << id;`
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() { LogConfig::emit(level_, stream_.str()); }

  template <typename T>
  Log& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace cbc
