#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.h"

namespace cbc {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarn};

Mutex& sink_mutex() {
  static Mutex m{kRankLeaf, "log sink"};
  return m;
}

LogConfig::Sink& sink_storage() {
  static LogConfig::Sink sink = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(log_level_name(level).size()),
                 log_level_name(level).data(),
                 static_cast<int>(message.size()), message.data());
  };
  return sink;
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void LogConfig::set_min_level(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel LogConfig::min_level() {
  return g_min_level.load(std::memory_order_relaxed);
}

void LogConfig::set_sink(Sink sink) {
  const LockGuard guard(sink_mutex());
  sink_storage() = std::move(sink);
}

void LogConfig::emit(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) {
    return;
  }
  const LockGuard guard(sink_mutex());
  if (sink_storage()) {
    sink_storage()(level, message);
  }
}

}  // namespace cbc
