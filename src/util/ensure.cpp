#include "util/ensure.h"

namespace cbc::detail {

std::string format_failure(std::string_view kind, std::string_view message,
                           const std::source_location& loc) {
  std::string out;
  out.reserve(message.size() + 96);
  out.append(kind);
  out.append(" violated: ");
  out.append(message);
  out.append(" [");
  out.append(loc.file_name());
  out.append(":");
  out.append(std::to_string(loc.line()));
  out.append("]");
  return out;
}

void raise_logic_error(std::string_view message,
                       const std::source_location& loc) {
  throw LogicError(format_failure("invariant", message, loc));
}

void raise_invalid_argument(std::string_view message,
                            const std::source_location& loc) {
  throw InvalidArgument(format_failure("precondition", message, loc));
}

void raise_protocol_violation(std::string_view message,
                              const std::source_location& loc) {
  throw ProtocolViolation(format_failure("protocol", message, loc));
}

}  // namespace cbc::detail
