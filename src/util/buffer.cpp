#include "util/buffer.h"

#include <atomic>

namespace cbc {

namespace {
std::atomic<std::uint64_t> g_buffer_copies{0};
}  // namespace

std::uint64_t Buffer::copy_count() {
  return g_buffer_copies.load(std::memory_order_relaxed);
}

void Buffer::reset_copy_count() {
  g_buffer_copies.store(0, std::memory_order_relaxed);
}

void Buffer::note_copy() {
  g_buffer_copies.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cbc
