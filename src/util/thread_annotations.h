// Thread-safety capabilities for the protocol stack.
//
// One mutex type, two enforcement regimes:
//
//   * Under clang, the CBC_* macros expand to Thread Safety Analysis
//     attributes, so "which lock guards what" and "which helpers need the
//     lock held" are compile-time-checked (`-Wthread-safety -Werror` in
//     CI). Misuse — touching a CBC_GUARDED_BY member without the lock,
//     calling a CBC_REQUIRES helper unlocked — is a build error.
//   * Everywhere (clang and gcc alike), cbc::Mutex carries the ranked
//     lock-order discipline at runtime: the stack's lock hierarchy is
//     acquired top-down, and every acquisition asserts non-decreasing
//     rank BEFORE blocking, so a would-be deadlock reports as a
//     deterministic LogicError naming both locks instead of hanging.
//
// The rank hierarchy (acquired top-down, lower rank first):
//
//   kRankRegistry  (50)   MetricsRegistry — the scrape path holds it while
//                         running collectors that take component locks, so
//                         it must sit BELOW every component rank. Never
//                         call registry lookups while holding a component
//                         lock (resolve handles up front instead).
//   kRankStack    (100)   a member's stack_mutex() — broadcast/receive
//                         paths and every upper layer (lock arbiter,
//                         replica, name service). Recursive by design.
//   kRankReliable (200)   ReliableEndpoint's link-state mutex
//   kRankTransport(300)   transport decorators (batching queues, chaos
//                         state, UDP send stats)
//   kRankPeerTable(500)   ThreadTransport's endpoint table
//   kRankPeerQueue(510)   one ThreadTransport endpoint's inbox
//   kRankJitter   (520)   ThreadTransport's shared jitter RNG
//   kRankTimer    (530)   ThreadTransport's timer queue (armed from under
//                         reliable/batching locks, hence above 300)
//   kRankLoopPending(800) EventLoop's cross-thread task queue
//   kRankLeaf     (900)   push-only leaves (tracer, catalog, log sink) —
//                         safe to take while holding anything above.
//
// Header-only and dependency-free (util/ensure.h only) so every layer can
// use it without extra linkage. This header is the ONLY place raw
// std::mutex / std::lock_guard / std::unique_lock may appear (lint L1).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>

#include "util/ensure.h"

// ---------------------------------------------------------------------------
// Attribute macros — clang Thread Safety Analysis, no-ops elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CBC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CBC_THREAD_ANNOTATION
#define CBC_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define CBC_CAPABILITY(x) CBC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime holds a capability.
#define CBC_SCOPED_CAPABILITY CBC_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding the named capability.
#define CBC_GUARDED_BY(x) CBC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* is guarded by the named capability.
#define CBC_PT_GUARDED_BY(x) CBC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release).
#define CBC_REQUIRES(...) \
  CBC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on return).
#define CBC_ACQUIRE(...) CBC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define CBC_RELEASE(...) CBC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define CBC_EXCLUDES(...) CBC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime-checked claim that the capability is held (e.g. "we are on the
/// loop thread"); the analysis trusts it from this point on.
#define CBC_ASSERT_CAPABILITY(x) CBC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define CBC_RETURN_CAPABILITY(x) CBC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function body is exempt from analysis. Use sparingly and
/// say why at the use site.
#define CBC_NO_THREAD_SAFETY_ANALYSIS \
  CBC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cbc {

// ---------------------------------------------------------------------------
// Lock ranks.
// ---------------------------------------------------------------------------

inline constexpr int kRankRegistry = 50;     ///< MetricsRegistry tables
inline constexpr int kRankStack = 100;       ///< member stack_mutex()
inline constexpr int kRankReliable = 200;    ///< ReliableEndpoint state
inline constexpr int kRankTransport = 300;   ///< transport decorator state
inline constexpr int kRankPeerTable = 500;   ///< ThreadTransport endpoints
inline constexpr int kRankPeerQueue = 510;   ///< one endpoint's inbox
inline constexpr int kRankJitter = 520;      ///< ThreadTransport jitter RNG
inline constexpr int kRankTimer = 530;       ///< ThreadTransport timers
inline constexpr int kRankLoopPending = 800; ///< EventLoop posted tasks
inline constexpr int kRankLeaf = 900;        ///< push-only leaves

namespace check_detail {

/// One lock currently held by this thread.
struct HeldLock {
  const void* address = nullptr;
  int rank = 0;
  const char* name = "";
};

/// Per-thread stack of held ranked locks. Deliberately a fixed array: the
/// hierarchy is a handful of levels deep and recursion is shallow;
/// overflow means the hierarchy itself is broken.
struct HeldLockStack {
  static constexpr std::size_t kCapacity = 16;
  HeldLock entries[kCapacity];
  std::size_t depth = 0;
};

inline thread_local HeldLockStack held_locks;

inline void note_acquire(const void* address, int rank, const char* name) {
  HeldLockStack& held = held_locks;
  ensure(held.depth < HeldLockStack::kCapacity,
         "lock-order: held-lock stack overflow");
  int max_rank = 0;
  const char* max_name = "";
  for (std::size_t i = 0; i < held.depth; ++i) {
    if (held.entries[i].address == address) {
      // Recursive re-entry of a mutex this thread already owns: always
      // safe, and exempt from the rank check.
      held.entries[held.depth++] = HeldLock{address, rank, name};
      return;
    }
    if (held.entries[i].rank > max_rank) {
      max_rank = held.entries[i].rank;
      max_name = held.entries[i].name;
    }
  }
  if (rank < max_rank) {
    throw LogicError("lock-order violated: acquiring '" + std::string(name) +
                     "' (rank " + std::to_string(rank) + ") while holding '" +
                     max_name + "' (rank " + std::to_string(max_rank) + ")");
  }
  held.entries[held.depth++] = HeldLock{address, rank, name};
}

inline void note_release(const void* address) {
  HeldLockStack& held = held_locks;
  for (std::size_t i = held.depth; i-- > 0;) {
    if (held.entries[i].address == address) {
      for (std::size_t j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      held.depth -= 1;
      return;
    }
  }
}

}  // namespace check_detail

// ---------------------------------------------------------------------------
// Annotated, ranked mutex wrappers.
// ---------------------------------------------------------------------------

class CondVar;

/// std::mutex carrying a static capability and a runtime rank. The rank
/// check runs BEFORE blocking, so an inversion reports deterministically
/// instead of deadlocking.
class CBC_CAPABILITY("mutex") Mutex {
 public:
  Mutex(int rank, const char* name) noexcept : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CBC_ACQUIRE() {
    check_detail::note_acquire(this, rank_, name_);
    mu_.lock();
  }
  void unlock() CBC_RELEASE() {
    mu_.unlock();
    check_detail::note_release(this);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

  /// Enables `CBC_GUARDED_BY(!mu_)`-style negated-capability use.
  const Mutex& operator!() const { return *this; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// std::recursive_mutex variant — stack mutexes are recursive by design
/// (a deliver callback may re-enter broadcast()).
class CBC_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex(int rank, const char* name) noexcept
      : rank_(rank), name_(name) {}

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() CBC_ACQUIRE() {
    check_detail::note_acquire(this, rank_, name_);
    mu_.lock();
  }
  void unlock() CBC_RELEASE() {
    mu_.unlock();
    check_detail::note_release(this);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

  const RecursiveMutex& operator!() const { return *this; }

 private:
  std::recursive_mutex mu_;
  const int rank_;
  const char* const name_;
};

/// Scoped lock over a cbc::Mutex or cbc::RecursiveMutex. Subsumes the old
/// OrderedLockGuard: the rank and name now live on the mutex, so the call
/// site is just `const LockGuard guard(mutex_);`.
template <typename MutexT>
class CBC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(MutexT& mutex) CBC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() CBC_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  MutexT& mutex_;
};

template <typename MutexT>
LockGuard(MutexT&) -> LockGuard<MutexT>;

/// Condition variable waiting on a cbc::Mutex the caller already holds.
/// The wait adopts the held native mutex, so the thread's rank bookkeeping
/// stays consistent across the unlock/relock inside wait: the HeldLockStack
/// entry persists while blocked (the thread acquires nothing while
/// waiting) and is accurate again once wait returns with the lock held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) CBC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner, std::move(pred));
    inner.release();  // ownership stays with the caller's LockGuard
  }

  /// Predicate-free wait — the caller re-checks its condition in a loop
  /// (spurious wakeups included).
  void wait(Mutex& mu) CBC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      CBC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, timeout);
    inner.release();
    return status;
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) CBC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_until(inner, deadline, std::move(pred));
    inner.release();
    return satisfied;
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) CBC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(inner, timeout, std::move(pred));
    inner.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cbc
