// Byte-level serialization for wire messages.
//
// The transports move opaque byte vectors; protocol layers encode their
// headers and payloads with Writer/Reader. The format is little-endian,
// length-prefixed, and versioned by the enclosing message type — no
// reflection, no allocation surprises, fully deterministic.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.h"
#include "util/ensure.h"

namespace cbc {

/// Append-only encoder producing a byte vector.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view v);

  /// Length-prefixed raw byte blob.
  void blob(std::span<const std::uint8_t> v);

  /// Length-prefixed vector of u64.
  void u64_vec(const std::vector<std::uint64_t>& v);

  /// Appends raw bytes with NO length prefix (for splicing pre-encoded
  /// sections, e.g. an Envelope's canonical bytes, into a larger frame).
  void raw(std::span<const std::uint8_t> v) {
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

  /// Finishes encoding into a refcounted immutable frame (moves the bytes;
  /// the frame is then shared across destinations without copying).
  [[nodiscard]] SharedBuffer take_shared() { return make_buffer(std::move(bytes_)); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential decoder over a byte span. Throws SerdeError (an
/// InvalidArgument subtype) on truncated or malformed input, so corrupted
/// wire messages surface as errors instead of undefined behaviour.
class SerdeError : public InvalidArgument {
 public:
  using InvalidArgument::InvalidArgument;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  std::vector<std::uint8_t> blob();
  std::vector<std::uint64_t> u64_vec();

  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Bytes consumed so far (offset of the next unread byte).
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Returns a length-prefixed blob as a view into the underlying bytes
  /// (no copy; caller must keep the backing storage alive).
  std::span<const std::uint8_t> blob_view();

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw SerdeError("serde: truncated input");
    }
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(bytes_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace cbc
