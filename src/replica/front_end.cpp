#include "replica/front_end.h"

namespace cbc {

FrontEndManager::FrontEndManager(BroadcastMember& member,
                                 CommutativitySpec spec, Options options)
    : member_(member), spec_(std::move(spec)), options_(options) {}

MessageId FrontEndManager::submit(const std::string& kind,
                                  std::vector<std::uint8_t> args) {
  const std::string label =
      kind + "#" + std::to_string(member_.id()) + "." +
      std::to_string(++label_counter_);
  if (spec_.is_commutative(kind)) {
    ++c_submitted_;
    // Commutative requests order only after the last sync message; they
    // stay concurrent with one another (||{rqst_c}) — unless fifo_chain
    // adds this member's own previous commutative op (null ids are
    // ignored by DepSpec, so the first link needs no special case).
    DepSpec deps =
        options_.fifo_chain
            ? DepSpec::after_all({last_sync_, last_own_commutative_})
            : DepSpec::after(last_sync_);
    const MessageId message = member_.broadcast(label, std::move(args), deps);
    last_own_commutative_ = message;
    return message;
  }
  ++nc_submitted_;
  DepSpec deps;
  if (cids_.empty()) {
    deps = DepSpec::after(last_sync_);
  } else {
    deps = DepSpec::after_all(cids_);
  }
  // {Cid} is cleared by on_delivery when this sync message is delivered
  // locally (synchronously, when its dependencies are already met here).
  return member_.broadcast(label, std::move(args), deps);
}

void FrontEndManager::on_delivery(const Delivery& delivery) {
  if (spec_.is_commutative(delivery.label())) {
    cids_.push_back(delivery.id);
  } else {
    last_sync_ = delivery.id;
    cids_.clear();
  }
}

}  // namespace cbc
