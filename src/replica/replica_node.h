// ReplicaNode — one member of a replicated-data group (§6.1's base
// protocol, assembled from the library's layers).
//
// Each node is simultaneously:
//   - a *replica*: a state machine applying every delivered request in the
//     local causal delivery order ("a replica basically processes messages
//     in the sequence established by the causal order");
//   - a *front-end manager*: the client-side label/ordering generator;
//   - a *stable-point observer*: reads requested against the node are
//     deferred to a stable point, where the returned value is identical at
//     every member.
//
// The node is written against the abstract BroadcastMember interface and
// owns its ordering member via unique_ptr — the default factory builds an
// OSendMember, but any discipline (or a whole ProtocolLayer stack) can be
// injected instead.
//
// The State template parameter supplies the application semantics; see
// src/apps for the shipped state machines and src/object for the
// runtime-polymorphic object::Value (an object chosen by name — seed it
// via Options::initial). Requirements on State:
//   copyable                                     snapshots, stable history
//   std::vector<std::uint8_t> apply(kind, Reader&)  transition function F,
//                                                returning the op response
//   bool operator==(const State&)                agreement checks
// The node's initial state defaults to State{}; every member must be
// seeded identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "activity/commutativity.h"
#include "activity/stable_point.h"
#include "causal/osend.h"
#include "util/thread_annotations.h"
#include "replica/front_end.h"
#include "stack/protocol_layer.h"
#include "util/serde.h"

namespace cbc {

template <typename State>
class ReplicaNode {
 public:
  /// Callback for deferred reads: the agreed state plus the stable point
  /// at which it was taken.
  using StableReadFn = std::function<void(const State&, const StablePoint&)>;

  /// Callback fired when a particular message has been applied locally;
  /// receives the post-application state (used to answer a submitted read
  /// at its serialization point).
  using AppliedFn = std::function<void(const State&)>;

  /// Callback fired after each delivered operation has been applied,
  /// with the response its application produced (history recording,
  /// client reply paths).
  using ApplyObserverFn =
      std::function<void(const Delivery&, const std::vector<std::uint8_t>&)>;

  struct Options {
    OSendMember::Options member;
    FrontEndManager::Options front_end;
    /// The replica's starting state — identical at every member. Needed
    /// whenever State{} is not the real initial value (object::Value is
    /// empty until seeded with a catalog object).
    State initial{};
  };

  ReplicaNode(Transport& transport, const GroupView& view,
              CommutativitySpec spec)
      : ReplicaNode(transport, view, std::move(spec), Options{}) {}

  ReplicaNode(Transport& transport, const GroupView& view,
              CommutativitySpec spec, Options options)
      : ReplicaNode(std::make_unique<OSendMember>(
                        transport, view, [](const Delivery&) {},
                        options.member),
                    std::move(spec), options.front_end,
                    std::move(options.initial)) {}

  /// Injects an ordering member (any discipline or layered stack); the
  /// node splices itself into the member's delivery path.
  ReplicaNode(std::unique_ptr<BroadcastMember> member, CommutativitySpec spec,
              FrontEndManager::Options front_end_options = {},
              State initial = State{})
      : member_(std::move(member)),
        front_end_(*member_, spec, front_end_options),
        detector_(spec, [this](const StablePoint& point) {
          on_stable_point(point);
        }),
        state_(std::move(initial)) {
    member_->set_deliver(
        [this](const Delivery& delivery) { on_delivery(delivery); });
  }

  /// Submits an operation through the front-end manager. Returns the
  /// request's message id. Thread-safe (shares the member's stack lock
  /// with the delivery path, so it may be called from any thread under
  /// ThreadTransport).
  MessageId submit(const std::string& kind, std::vector<std::uint8_t> args) {
    const LockGuard guard(member_->stack_mutex());
    return front_end_.submit(kind, std::move(args));
  }

  /// Convenience for the src/apps Op structs ({kind, args}).
  template <typename OpT>
  MessageId submit(const OpT& op) {
    return submit(op.kind, op.args);
  }

  /// Submits an operation and registers a callback for the moment it is
  /// applied at *this* replica. For a non-commutative read this is the
  /// paper's consistent read: the observed state equals every other
  /// member's state at the same point.
  template <typename OpT>
  MessageId submit_with_result(const OpT& op, AppliedFn on_applied) {
    const LockGuard guard(member_->stack_mutex());
    // Register under the id the next broadcast will get, *before*
    // submitting: local delivery happens synchronously inside submit().
    pending_result_.emplace(MessageId{member_->id(), next_local_seq()},
                            std::move(on_applied));
    return submit(op.kind, op.args);
  }

  /// Defers a read to the next stable point (no message is sent): the
  /// callback receives the agreed snapshot. "A read operation requested
  /// at a member may be deferred to occur at the next stable point so
  /// that the value returned is the same as that by every other member."
  void read_at_next_stable(StableReadFn fn) {
    const LockGuard guard(member_->stack_mutex());
    deferred_reads_.push_back(std::move(fn));
  }

  /// Observes every local application (delivery + response). One observer
  /// at a time; set before traffic flows.
  void set_apply_observer(ApplyObserverFn observer) {
    const LockGuard guard(member_->stack_mutex());
    apply_observer_ = std::move(observer);
  }

  /// Current local state (may differ across members between stable points).
  [[nodiscard]] const State& state() const { return state_; }

  /// Snapshot taken at the most recent stable point (agreed value).
  [[nodiscard]] const std::optional<State>& last_stable_state() const {
    return last_stable_state_;
  }

  /// Seeds the replica from a transferred stable-point snapshot (crash
  /// recovery). The snapshot becomes both the working state and the last
  /// stable state; call before any delivery flows through this node.
  void restore_state(State snapshot) {
    const LockGuard guard(member_->stack_mutex());
    state_ = snapshot;
    last_stable_state_ = std::move(snapshot);
  }

  /// Snapshot at every stable point so far, in cycle order. Snapshot k
  /// pairs with detector().history()[k]. Members agree on snapshot k
  /// whenever cycle k's coverage was complete at every member — the
  /// paper's agreement-at-stable-points property, directly checkable.
  [[nodiscard]] const std::vector<State>& stable_history() const {
    return stable_history_;
  }

  [[nodiscard]] BroadcastMember& member() { return *member_; }
  [[nodiscard]] const BroadcastMember& member() const { return *member_; }

  /// Checked downcast for OSend-specific accessors (graph, stability);
  /// only valid when the node runs over the OSend discipline, possibly
  /// under a stack of ProtocolLayer decorators (checker, tracing, taps) —
  /// the chain is unwrapped until the concrete member surfaces.
  [[nodiscard]] OSendMember& osend() {
    BroadcastMember* current = member_.get();
    while (auto* layer = dynamic_cast<ProtocolLayer*>(current)) {
      current = &layer->lower();
    }
    auto* concrete = dynamic_cast<OSendMember*>(current);
    require(concrete != nullptr,
            "ReplicaNode::osend: member is not an OSendMember");
    return *concrete;
  }

  [[nodiscard]] FrontEndManager& front_end() { return front_end_; }
  [[nodiscard]] const StablePointDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] NodeId id() const { return member_->id(); }

 private:
  [[nodiscard]] SeqNo next_local_seq() const {
    // Member seqs start at 1 and increment per broadcast.
    return member_->stats().broadcasts + 1;
  }

  void on_delivery(const Delivery& delivery) {
    // Apply the operation: label "<kind>#<origin>.<n>" -> kind.
    const std::string kind = CommutativitySpec::kind_of(delivery.label());
    Reader args(delivery.payload());
    const std::vector<std::uint8_t> response = state_.apply(kind, args);
    if (apply_observer_) {
      apply_observer_(delivery, response);
    }
    front_end_.on_delivery(delivery);
    detector_.on_delivery(delivery);
    const auto pending = pending_result_.find(delivery.id);
    if (pending != pending_result_.end()) {
      AppliedFn fn = std::move(pending->second);
      pending_result_.erase(pending);
      fn(state_);
    }
  }

  void on_stable_point(const StablePoint& point) {
    last_stable_state_ = state_;
    stable_history_.push_back(state_);
    if (deferred_reads_.empty()) {
      return;
    }
    std::vector<StableReadFn> reads = std::move(deferred_reads_);
    deferred_reads_.clear();
    for (StableReadFn& read : reads) {
      read(state_, point);
    }
  }

  std::unique_ptr<BroadcastMember> member_;
  FrontEndManager front_end_;
  StablePointDetector detector_;
  State state_{};
  std::optional<State> last_stable_state_;
  std::vector<State> stable_history_;
  std::vector<StableReadFn> deferred_reads_;
  std::unordered_map<MessageId, AppliedFn> pending_result_;
  ApplyObserverFn apply_observer_;
};

}  // namespace cbc
