// ReplicaGroup — convenience harness wiring N ReplicaNodes over one
// transport. Tests, benches, and examples all build groups this way.
#pragma once

#include <memory>
#include <vector>

#include "group/group_view.h"
#include "replica/replica_node.h"
#include "util/ensure.h"

namespace cbc {

/// Owns a GroupView of {0..n-1} plus one ReplicaNode per member. The
/// transport must be freshly constructed (no endpoints yet) so the
/// transport-assigned ids match the view.
template <typename State>
class ReplicaGroup {
 public:
  ReplicaGroup(Transport& transport, std::size_t n, CommutativitySpec spec)
      : ReplicaGroup(transport, n, std::move(spec),
                     typename ReplicaNode<State>::Options{}) {}

  ReplicaGroup(Transport& transport, std::size_t n, CommutativitySpec spec,
               typename ReplicaNode<State>::Options options) {
    require(n > 0, "ReplicaGroup: need at least one member");
    require(transport.endpoint_count() == 0,
            "ReplicaGroup: transport already has endpoints");
    std::vector<NodeId> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(static_cast<NodeId>(i));
    }
    view_ = GroupView(1, std::move(members));
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<ReplicaNode<State>>(transport, view_,
                                                            spec, options));
      ensure(nodes_.back()->id() == static_cast<NodeId>(i),
             "ReplicaGroup: transport id mismatch");
    }
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const GroupView& view() const { return view_; }

  [[nodiscard]] ReplicaNode<State>& node(std::size_t i) {
    require(i < nodes_.size(), "ReplicaGroup::node: index out of range");
    return *nodes_[i];
  }

  /// True when every member's *current* state equals node 0's (expected
  /// only at stable points / quiescence).
  [[nodiscard]] bool states_agree() const {
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (!(nodes_[i]->state() == nodes_[0]->state())) {
        return false;
      }
    }
    return true;
  }

  /// True when every member's last stable snapshot exists and agrees.
  [[nodiscard]] bool stable_states_agree() const {
    if (!nodes_[0]->last_stable_state().has_value()) {
      return false;
    }
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      const auto& snapshot = nodes_[i]->last_stable_state();
      if (!snapshot.has_value() ||
          !(*snapshot == *nodes_[0]->last_stable_state())) {
        return false;
      }
    }
    return true;
  }

 private:
  GroupView view_;
  std::vector<std::unique_ptr<ReplicaNode<State>>> nodes_;
};

}  // namespace cbc
