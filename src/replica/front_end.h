// Front-end manager — the client side of the §6.1 access protocol.
//
// The paper's client() pseudocode, verbatim in structure:
//
//   Ncid := 0; {Cid} := ∅;
//   forever
//     if op is non-commutative:
//        if {Cid} = ∅:  OSend(rqst, RPC_GRP, Occurs_After(Ncid-1))
//        else:          OSend(rqst, RPC_GRP, Occurs_After(∧{Cid}))
//        {Cid} := ∅
//     if op is commutative:
//        OSend(rqst, RPC_GRP, Occurs_After(Ncid-1));  insert id in {Cid}
//
// yielding the cycle  rqst_nc(r-1) → ||{rqst_c(r,k)} → rqst_nc(r).
//
// One refinement over the literal pseudocode: the manager tracks {Cid}
// from *delivered* traffic, not only its own submissions — the paper
// already requires this ("the manager keeps track of the occurrence of
// commutative and non-commutative operations"; its graph must equal the
// replicas'), and it is what makes a sync message's Occurs_After set cover
// commutative requests issued by other members.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "causal/delivery.h"

namespace cbc {

/// Generates causally-labelled request messages over a BroadcastMember.
class FrontEndManager {
 public:
  struct Options {
    /// When true, each commutative submission also names this manager's
    /// previous commutative submission in its Occurs_After set, forcing
    /// this member's own commutative ops to deliver in submission (FIFO)
    /// order everywhere — strictly stronger than the paper's pseudocode
    /// (which leaves them fully concurrent) but still within its model:
    /// Occurs_After accepts any message set. Cluster workloads use this so
    /// a member's round marker causally follows all its round ops.
    bool fifo_chain = false;
  };

  /// `member` must outlive the manager. The owner must forward every
  /// delivered message to on_delivery() (ReplicaNode does this).
  FrontEndManager(BroadcastMember& member, CommutativitySpec spec)
      : FrontEndManager(member, std::move(spec), Options{}) {}
  FrontEndManager(BroadcastMember& member, CommutativitySpec spec,
                  Options options);

  /// Submits one operation; label becomes "<kind>#<n>" and the
  /// Occurs_After set follows the client() pseudocode above.
  MessageId submit(const std::string& kind, std::vector<std::uint8_t> args);

  /// Must be called for every message delivered at this member, in
  /// delivery order (keeps Ncid/{Cid} synchronized with the replica view).
  void on_delivery(const Delivery& delivery);

  /// The last delivered non-commutative (sync) message; null before any.
  [[nodiscard]] MessageId last_sync() const { return last_sync_; }

  /// Commutative messages delivered since the last sync ({Cid}).
  [[nodiscard]] const std::vector<MessageId>& open_cids() const {
    return cids_;
  }

  /// Count of sync messages submitted by this manager (its Ncid).
  [[nodiscard]] std::uint64_t nc_submitted() const { return nc_submitted_; }
  [[nodiscard]] std::uint64_t c_submitted() const { return c_submitted_; }

  /// Restores ordering context from a snapshot (joiner state transfer):
  /// the last sync message and the open commutative set at the cut.
  void restore(MessageId last_sync, std::vector<MessageId> cids) {
    last_sync_ = last_sync;
    cids_ = std::move(cids);
  }

 private:
  BroadcastMember& member_;
  CommutativitySpec spec_;
  Options options_;
  MessageId last_own_commutative_ = MessageId::null();  // fifo_chain tail
  MessageId last_sync_ = MessageId::null();
  std::vector<MessageId> cids_;
  std::uint64_t nc_submitted_ = 0;
  std::uint64_t c_submitted_ = 0;
  std::uint64_t label_counter_ = 0;
};

}  // namespace cbc
