// DynamicReplicaNode — the §6.1 replica protocol over dynamic membership.
//
// Combines the FlushCoordinator (view changes at consistent cuts) with
// the replica machinery (front-end manager, state machine, stable-point
// detection) and adds *state transfer*: when a view with joiners installs,
// survivors ship a snapshot of the application state — captured exactly at
// the flush cut, so it is identical at every survivor — inside the welcome
// message, together with the front-end ordering context (last sync id and
// the open commutative set). A joiner adopts the snapshot before any
// new-view operation is applied, so it is a full replica from its first
// delivery onward.
//
// State requirements (beyond ReplicaNode's): `void encode(Writer&) const`
// and `static State decode(Reader&)`.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "activity/stable_point.h"
#include "causal/flush.h"
#include "util/thread_annotations.h"
#include "replica/front_end.h"
#include "util/serde.h"

namespace cbc {

template <typename State>
class DynamicReplicaNode {
 public:
  using StableReadFn = std::function<void(const State&, const StablePoint&)>;
  using ViewInstalledFn = std::function<void(const GroupView&)>;

  struct Options {
    OSendMember::Options member;
    /// The replica's starting state — identical at every member (see
    /// ReplicaNode::Options::initial).
    State initial{};
  };

  DynamicReplicaNode(Transport& transport, const GroupView& view,
                     CommutativitySpec spec)
      : DynamicReplicaNode(transport, view, std::move(spec), Options{}) {}

  DynamicReplicaNode(Transport& transport, const GroupView& view,
                     CommutativitySpec spec, Options options)
      : coordinator_(
            transport, view,
            [this](const Delivery& delivery) { on_app_delivery(delivery); },
            [this](const GroupView& installed) {
              if (on_view_) {
                on_view_(installed);
              }
            },
            options.member),
        front_end_(coordinator_.member(), spec),
        detector_(spec,
                  [this](const StablePoint& point) {
                    last_stable_state_ = state_;
                    stable_history_.push_back(state_);
                    fire_deferred_reads(point);
                  }),
        state_(std::move(options.initial)) {
    coordinator_.enable_state_transfer(
        [this] { return make_snapshot(); },
        [this](std::span<const std::uint8_t> snapshot) {
          adopt_snapshot(snapshot);
        });
  }

  /// Submits an operation through the front-end manager.
  MessageId submit(const std::string& kind, std::vector<std::uint8_t> args) {
    const LockGuard guard(coordinator_.member().stack_mutex());
    return front_end_.submit(kind, std::move(args));
  }

  template <typename OpT>
  MessageId submit(const OpT& op) {
    return submit(op.kind, op.args);
  }

  /// Proposes a membership change (this node acting as the authority).
  void propose_view(const GroupView& new_view) {
    coordinator_.propose(new_view);
  }

  /// Registers a view-installation observer.
  void on_view_installed(ViewInstalledFn fn) { on_view_ = std::move(fn); }

  void read_at_next_stable(StableReadFn fn) {
    const LockGuard guard(coordinator_.member().stack_mutex());
    deferred_reads_.push_back(std::move(fn));
  }

  [[nodiscard]] const State& state() const { return state_; }
  [[nodiscard]] const std::optional<State>& last_stable_state() const {
    return last_stable_state_;
  }
  [[nodiscard]] const std::vector<State>& stable_history() const {
    return stable_history_;
  }
  [[nodiscard]] const StablePointDetector& detector() const {
    return detector_;
  }
  [[nodiscard]] FlushCoordinator& coordinator() { return coordinator_; }
  [[nodiscard]] const GroupView& view() const { return coordinator_.view(); }
  [[nodiscard]] NodeId id() const { return coordinator_.member().id(); }

 private:
  void on_app_delivery(const Delivery& delivery) {
    const std::string kind = CommutativitySpec::kind_of(delivery.label());
    Reader args(delivery.payload());
    state_.apply(kind, args);
    front_end_.on_delivery(delivery);
    detector_.on_delivery(delivery);
  }

  [[nodiscard]] std::vector<std::uint8_t> make_snapshot() const {
    Writer writer;
    state_.encode(writer);
    // Front-end ordering context, so the joiner's first submissions slot
    // into the current causal activity instead of floating free.
    front_end_.last_sync().encode(writer);
    writer.u32(static_cast<std::uint32_t>(front_end_.open_cids().size()));
    for (const MessageId& id : front_end_.open_cids()) {
      id.encode(writer);
    }
    return writer.take();
  }

  void adopt_snapshot(std::span<const std::uint8_t> snapshot) {
    Reader reader(snapshot);
    state_ = State::decode(reader);
    const MessageId last_sync = MessageId::decode(reader);
    std::vector<MessageId> cids;
    const std::uint32_t count = reader.u32();
    cids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      cids.push_back(MessageId::decode(reader));
    }
    front_end_.restore(last_sync, std::move(cids));
  }

  void fire_deferred_reads(const StablePoint& point) {
    if (deferred_reads_.empty()) {
      return;
    }
    std::vector<StableReadFn> reads = std::move(deferred_reads_);
    deferred_reads_.clear();
    for (StableReadFn& read : reads) {
      read(state_, point);
    }
  }

  FlushCoordinator coordinator_;
  FrontEndManager front_end_;
  StablePointDetector detector_;
  State state_{};
  std::optional<State> last_stable_state_;
  std::vector<State> stable_history_;
  std::vector<StableReadFn> deferred_reads_;
  ViewInstalledFn on_view_;
};

}  // namespace cbc
