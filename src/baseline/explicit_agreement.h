// Baseline: explicit per-message agreement protocol.
//
// The paper's headline claim is that stable points let members agree
// "without explicit protocols to reach agreement". This node is the
// explicit protocol being avoided: every operation runs a dedicated
// acknowledgement round —
//
//   origin  --PROPOSE-->  all members          (N-1 messages)
//   member  ----ACK---->  origin               (N-1 messages)
//   origin  --COMMIT--->  all members          (N-1 messages)
//
// and the operation is applied only at COMMIT, i.e. 3(N-1) messages and
// three network hops of latency per operation versus OSend's N-1 and one
// hop. Bench C3 counts both. Commits are applied in arrival order, which
// agrees across members only for commutative operations — the baseline is
// an agreement-cost yardstick, not a general-purpose protocol (that is
// the point).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "util/thread_annotations.h"
#include "graph/message_id.h"
#include "group/group_view.h"
#include "transport/transport.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

/// Agreement-round statistics for one member.
struct AgreementStats {
  std::uint64_t proposed = 0;   ///< operations this member originated
  std::uint64_t committed = 0;  ///< operations applied locally
  std::uint64_t acks_sent = 0;
  std::uint64_t rounds_completed = 0;  ///< proposals this origin committed
  std::uint64_t malformed = 0;         ///< undecodable wire frames dropped
};

/// One member of the explicit-agreement replica group.
template <typename State>
class ExplicitAgreementNode {
 public:
  /// Fired at the origin when its proposal has been committed everywhere
  /// it can know about (i.e. it broadcast COMMIT); carries commit latency.
  using CommittedFn = std::function<void(MessageId, SimTime latency_us)>;

  ExplicitAgreementNode(Transport& transport, const GroupView& view)
      : transport_(transport), view_(view) {
    id_ = transport.add_endpoint(
        [this](NodeId from, const WireFrame& frame) {
          on_frame(from, frame);
        });
    require(view_.contains(id_),
            "ExplicitAgreementNode: transport id not in the group view");
  }

  /// Proposes one operation; it is applied everywhere after the full
  /// PROPOSE/ACK/COMMIT round.
  MessageId submit(const std::string& kind, std::vector<std::uint8_t> args,
                   CommittedFn on_committed = nullptr) {
    const LockGuard guard(mutex_);
    const MessageId message_id{id_, next_seq_++};
    stats_.proposed += 1;
    Round& round = rounds_[message_id];
    round.kind = kind;
    round.args = args;
    round.started_at = transport_.now_us();
    round.on_committed = std::move(on_committed);

    Writer writer;
    writer.u8(kPropose);
    message_id.encode(writer);
    writer.str(kind);
    writer.blob(args);
    const SharedBuffer wire = writer.take_shared();
    for (const NodeId member : view_.members()) {
      if (member != id_) {
        transport_.send(id_, member, wire);
      }
    }
    round.acks = 1;  // self
    maybe_commit(message_id);
    return message_id;
  }

  template <typename OpT>
  MessageId submit(const OpT& op) {
    return submit(op.kind, op.args);
  }

  [[nodiscard]] const State& state() const { return state_; }
  [[nodiscard]] const AgreementStats& stats() const { return stats_; }
  [[nodiscard]] NodeId id() const { return id_; }

 private:
  static constexpr std::uint8_t kPropose = 1;
  static constexpr std::uint8_t kAck = 2;
  static constexpr std::uint8_t kCommit = 3;

  struct Round {
    std::string kind;
    std::vector<std::uint8_t> args;
    std::size_t acks = 0;
    SimTime started_at = 0;
    CommittedFn on_committed;
  };
  struct PendingOp {
    std::string kind;
    std::vector<std::uint8_t> args;
  };

  void on_frame(NodeId from, const WireFrame& frame) {
    const LockGuard guard(mutex_);
    try {
      dispatch_frame(from, frame);
    } catch (const SerdeError&) {
      stats_.malformed += 1;  // untrusted wire bytes: drop, don't abort
    }
  }

  void dispatch_frame(NodeId from, const WireFrame& frame)
      CBC_REQUIRES(mutex_) {
    // The SerdeError guard lives in on_receive(), the sole caller.
    Reader reader(frame.bytes());  // cbc-lint: disable=L2
    const std::uint8_t type = reader.u8();
    const MessageId message_id = MessageId::decode(reader);
    if (type == kPropose) {
      PendingOp op;
      op.kind = reader.str();
      op.args = reader.blob();
      pending_.emplace(message_id, std::move(op));
      Writer ack;
      ack.u8(kAck);
      message_id.encode(ack);
      stats_.acks_sent += 1;
      transport_.send(id_, from, ack.take());
      return;
    }
    if (type == kAck) {
      const auto it = rounds_.find(message_id);
      if (it == rounds_.end()) {
        return;  // already committed
      }
      it->second.acks += 1;
      maybe_commit(message_id);
      return;
    }
    if (type == kCommit) {
      const auto it = pending_.find(message_id);
      protocol_ensure(it != pending_.end(),
                      "ExplicitAgreement: COMMIT for unknown proposal");
      apply(it->second.kind, it->second.args);
      pending_.erase(it);
      return;
    }
    protocol_ensure(false, "ExplicitAgreement: unknown frame type");
  }

  void maybe_commit(const MessageId& message_id) CBC_REQUIRES(mutex_) {
    const auto it = rounds_.find(message_id);
    ensure(it != rounds_.end(), "ExplicitAgreement: missing round");
    if (it->second.acks < view_.size()) {
      return;
    }
    Round round = std::move(it->second);
    rounds_.erase(it);
    Writer commit;
    commit.u8(kCommit);
    message_id.encode(commit);
    const SharedBuffer wire = commit.take_shared();
    for (const NodeId member : view_.members()) {
      if (member != id_) {
        transport_.send(id_, member, wire);
      }
    }
    apply(round.kind, round.args);
    stats_.rounds_completed += 1;
    if (round.on_committed) {
      round.on_committed(message_id, transport_.now_us() - round.started_at);
    }
  }

  void apply(const std::string& kind, const std::vector<std::uint8_t>& args)
      CBC_REQUIRES(mutex_) {
    Reader reader(args);
    state_.apply(kind, reader);
    stats_.committed += 1;
  }

  Transport& transport_;
  const GroupView& view_;
  NodeId id_ = kNoNode;
  mutable RecursiveMutex mutex_{kRankStack, "explicit-agreement stack"};
  SeqNo next_seq_ CBC_GUARDED_BY(mutex_) = 1;
  // Mutated under mutex_ but exposed by the unlocked state() accessor
  // (tests read it quiescently), so not statically guarded.
  State state_{};
  std::map<MessageId, Round> rounds_ CBC_GUARDED_BY(mutex_);
  std::map<MessageId, PendingOp> pending_ CBC_GUARDED_BY(mutex_);
  AgreementStats stats_;
};

}  // namespace cbc
