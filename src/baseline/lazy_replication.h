// Baseline: lazy replication with gossip (the paper's reference [1],
// Ladin–Liskov–Shrira style, simplified).
//
// The paper positions itself against "existing models of implementing
// distributed data access where application level message causality
// information is used only indirectly [1, 4]". In lazy replication a
// client operation is applied at ONE replica immediately and propagates
// to the others in the background via periodic gossip (anti-entropy);
// replicas converge eventually but expose stale values meanwhile.
//
// This node implements the update path: per-origin operation logs with
// version-vector tracking, push gossip of the suffix a peer is missing,
// and ack-driven quiescence (gossip timers disarm when every peer is
// known caught up — required for Scheduler::run() termination). The
// ablation bench A1 compares its staleness window and message cost with
// causal broadcasting under identical workloads.
//
// Convergence requires commutative operations (the same restriction the
// §6.1 protocol exploits); the tests drive it with counter inc/dec.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "util/thread_annotations.h"
#include "group/group_view.h"
#include "time/vector_clock.h"
#include "transport/transport.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

/// Gossip statistics for one lazy replica.
struct LazyStats {
  std::uint64_t local_ops = 0;      ///< operations accepted locally
  std::uint64_t gossip_msgs = 0;    ///< gossip pushes sent
  std::uint64_t acks = 0;           ///< gossip acks sent
  std::uint64_t ops_shipped = 0;    ///< operations carried by gossip
  std::uint64_t ops_applied = 0;    ///< remote operations applied
  std::uint64_t malformed = 0;      ///< undecodable wire frames dropped
};

/// One member of a lazily replicated group.
template <typename State>
class LazyReplicaNode {
 public:
  struct Options {
    SimTime gossip_interval_us = 5000;
  };

  LazyReplicaNode(Transport& transport, const GroupView& view)
      : LazyReplicaNode(transport, view, Options{}) {}

  LazyReplicaNode(Transport& transport, const GroupView& view, Options options)
      : transport_(transport),
        view_(view),
        options_(options),
        have_(view.size()) {
    require(options_.gossip_interval_us > 0,
            "LazyReplicaNode: gossip interval must be positive");
    id_ = transport.add_endpoint(
        [this](NodeId from, const WireFrame& frame) {
          on_frame(from, frame);
        });
    require(view_.contains(id_), "LazyReplicaNode: id not in view");
    peer_known_.assign(view_.size(), VectorClock(view_.size()));
  }

  /// Applies an operation at THIS replica immediately; propagation to the
  /// other replicas happens lazily via gossip.
  void submit(const std::string& kind, std::vector<std::uint8_t> args) {
    const LockGuard guard(mutex_);
    apply(kind, args);
    const auto rank = view_.rank_of(id_);
    have_.tick(static_cast<NodeId>(*rank));
    log_[*rank].push_back(LoggedOp{kind, std::move(args)});
    stats_.local_ops += 1;
    maybe_arm_gossip();
  }

  template <typename OpT>
  void submit(const OpT& op) {
    submit(op.kind, op.args);
  }

  [[nodiscard]] const State& state() const { return state_; }
  [[nodiscard]] const LazyStats& stats() const { return stats_; }
  [[nodiscard]] NodeId id() const { return id_; }

  /// Version vector of operations applied here.
  [[nodiscard]] const VectorClock& version() const { return have_; }

 private:
  struct LoggedOp {
    std::string kind;
    std::vector<std::uint8_t> args;
  };
  static constexpr std::uint8_t kGossip = 1;
  static constexpr std::uint8_t kAck = 2;

  void apply(const std::string& kind, const std::vector<std::uint8_t>& args)
      CBC_REQUIRES(mutex_) {
    Reader reader(args);
    state_.apply(kind, reader);
  }

  void on_frame(NodeId from, const WireFrame& frame) {
    const LockGuard guard(mutex_);
    try {
      dispatch_frame(from, frame);
    } catch (const SerdeError&) {
      stats_.malformed += 1;  // untrusted wire bytes: drop, don't abort
    }
  }

  void dispatch_frame(NodeId from, const WireFrame& frame)
      CBC_REQUIRES(mutex_) {
    // The SerdeError guard lives in on_receive(), the sole caller.
    Reader reader(frame.bytes());  // cbc-lint: disable=L2
    const std::uint8_t type = reader.u8();
    if (type == kGossip) {
      // (origin rank, start seq, ops...) batches for each lagging origin.
      const std::uint32_t batches = reader.u32();
      for (std::uint32_t b = 0; b < batches; ++b) {
        const std::uint32_t origin_rank = reader.u32();
        const std::uint64_t start_seq = reader.u64();  // 1-based
        const std::uint32_t count = reader.u32();
        for (std::uint32_t k = 0; k < count; ++k) {
          const std::string kind = reader.str();
          const std::vector<std::uint8_t> args = reader.blob();
          const std::uint64_t seq = start_seq + k;
          if (seq == have_.at(origin_rank) + 1) {
            apply(kind, args);
            have_.tick(origin_rank);
            log_[origin_rank].push_back(LoggedOp{kind, args});
            stats_.ops_applied += 1;
          }
          // Older: duplicate, skip. Newer-with-gap cannot happen: batches
          // always start at the receiver-advertised frontier, FIFO links
          // in the simulator keep them in order; out-of-order arrivals
          // are simply re-sent on the next gossip round.
        }
      }
      // Ack with our (possibly advanced) version vector.
      Writer ack;
      ack.u8(kAck);
      have_.encode(ack);
      stats_.acks += 1;
      transport_.send(id_, from, ack.take());
      maybe_arm_gossip();  // we may now know more than some other peer
      return;
    }
    if (type == kAck) {
      const VectorClock theirs = VectorClock::decode(reader);
      const auto rank = view_.rank_of(from);
      protocol_ensure(rank.has_value(), "LazyReplica: ack from non-member");
      peer_known_[*rank].merge(theirs);
      return;
    }
    protocol_ensure(false, "LazyReplica: unknown frame type");
  }

  [[nodiscard]] bool peer_lags(std::size_t peer_rank) const
      CBC_REQUIRES(mutex_) {
    for (std::size_t origin = 0; origin < view_.size(); ++origin) {
      if (peer_known_[peer_rank].at(static_cast<NodeId>(origin)) <
          have_.at(static_cast<NodeId>(origin))) {
        return true;
      }
    }
    return false;
  }

  void maybe_arm_gossip() CBC_REQUIRES(mutex_) {
    if (gossip_armed_) {
      return;
    }
    bool anyone_lags = false;
    for (std::size_t rank = 0; rank < view_.size(); ++rank) {
      if (view_.member_at(rank) != id_ && peer_lags(rank)) {
        anyone_lags = true;
        break;
      }
    }
    if (!anyone_lags) {
      return;
    }
    gossip_armed_ = true;
    transport_.schedule(options_.gossip_interval_us, [this] { gossip_round(); });
  }

  void gossip_round() {
    const LockGuard guard(mutex_);
    gossip_armed_ = false;
    for (std::size_t rank = 0; rank < view_.size(); ++rank) {
      const NodeId peer = view_.member_at(rank);
      if (peer == id_ || !peer_lags(rank)) {
        continue;
      }
      Writer frame;
      frame.u8(kGossip);
      std::uint32_t batches = 0;
      Writer body;
      for (std::size_t origin = 0; origin < view_.size(); ++origin) {
        const std::uint64_t theirs =
            peer_known_[rank].at(static_cast<NodeId>(origin));
        const std::uint64_t mine = have_.at(static_cast<NodeId>(origin));
        if (mine <= theirs) {
          continue;
        }
        ++batches;
        body.u32(static_cast<std::uint32_t>(origin));
        body.u64(theirs + 1);
        body.u32(static_cast<std::uint32_t>(mine - theirs));
        const auto& ops = log_.at(origin);
        for (std::uint64_t seq = theirs + 1; seq <= mine; ++seq) {
          const LoggedOp& op = ops.at(seq - 1);
          body.str(op.kind);
          body.blob(op.args);
          stats_.ops_shipped += 1;
        }
      }
      frame.u32(batches);
      const auto& body_bytes = body.bytes();
      std::vector<std::uint8_t> wire = frame.take();
      wire.insert(wire.end(), body_bytes.begin(), body_bytes.end());
      stats_.gossip_msgs += 1;
      transport_.send(id_, peer, std::move(wire));
    }
    maybe_arm_gossip();  // re-arm while someone still lags (ack pending)
  }

  Transport& transport_;
  const GroupView& view_;
  Options options_;
  NodeId id_ = kNoNode;
  mutable RecursiveMutex mutex_{kRankStack, "lazy-replication stack"};

  // Mutated under mutex_ but exposed by the unlocked state()/version()
  // accessors (tests read them quiescently), so not statically guarded.
  State state_{};
  VectorClock have_;  // ops applied here, per origin rank
  // origin rank -> ops
  std::map<std::size_t, std::vector<LoggedOp>> log_ CBC_GUARDED_BY(mutex_);
  // per peer rank: what they have
  std::vector<VectorClock> peer_known_ CBC_GUARDED_BY(mutex_);
  bool gossip_armed_ CBC_GUARDED_BY(mutex_) = false;
  LazyStats stats_;
};

}  // namespace cbc
