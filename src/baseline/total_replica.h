// Baseline: replicated data access over per-message total ordering.
//
// "An agreement protocol that is based on the guarantee of an identical
// message sequence at every member (say, total order on messages) operates
// at the granularity of individual messages" (§3.2). This node applies
// every operation in a single totally-ordered stream — every delivery is
// an agreement point, so reads are trivially consistent, but nothing is
// ever concurrent: the asynchronism the paper's stable-point protocol
// recovers is given up. Benches C2/C3 run the same workloads against this
// node and ReplicaNode to expose the difference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "causal/delivery.h"
#include "group/group_view.h"
#include "total/asend.h"
#include "total/sequencer.h"
#include "util/serde.h"

namespace cbc {

/// Which total-order engine the baseline rides on.
enum class TotalOrderEngine { kASendMerge, kSequencer };

/// One member of a totally-ordered replica group.
template <typename State>
class TotalReplicaNode {
 public:
  struct Options {
    TotalOrderEngine engine = TotalOrderEngine::kASendMerge;
    ReliableEndpoint::Options reliability{.enabled = false};
  };

  TotalReplicaNode(Transport& transport, const GroupView& view)
      : TotalReplicaNode(transport, view, Options{}) {}

  TotalReplicaNode(Transport& transport, const GroupView& view,
                   Options options) {
    DeliverFn deliver = [this](const Delivery& delivery) {
      on_delivery(delivery);
    };
    switch (options.engine) {
      case TotalOrderEngine::kASendMerge:
        member_ = std::make_unique<ASendMember>(
            transport, view, std::move(deliver),
            ASendMember::Options{.reliability = options.reliability});
        break;
      case TotalOrderEngine::kSequencer:
        member_ = std::make_unique<SequencerMember>(
            transport, view, std::move(deliver),
            SequencerMember::Options{.reliability = options.reliability});
        break;
    }
  }

  /// Submits one operation into the total order.
  MessageId submit(const std::string& kind, std::vector<std::uint8_t> args) {
    return member_->broadcast(kind, std::move(args), DepSpec::none());
  }

  template <typename OpT>
  MessageId submit(const OpT& op) {
    return submit(op.kind, op.args);
  }

  /// Current state; identical at all members after the same number of
  /// deliveries (every message is an agreement point).
  [[nodiscard]] const State& state() const { return state_; }

  [[nodiscard]] BroadcastMember& member() { return *member_; }
  [[nodiscard]] const BroadcastMember& member() const { return *member_; }
  [[nodiscard]] NodeId id() const { return member_->id(); }

 private:
  void on_delivery(const Delivery& delivery) {
    const std::string kind = CommutativitySpec::kind_of(delivery.label());
    Reader args(delivery.payload());
    state_.apply(kind, args);
  }

  std::unique_ptr<BroadcastMember> member_;
  State state_{};
};

}  // namespace cbc
