#include "fault/fault_plan.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/ensure.h"

namespace cbc::fault {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw InvalidArgument("FaultPlan: line " + std::to_string(line_no) + ": " +
                        what);
}

double parse_probability(const std::string& token, std::size_t line_no,
                         const char* what) {
  double p = -1.0;
  try {
    p = std::stod(token);
  } catch (const std::exception&) {
    fail(line_no, std::string(what) + " must be a number, got '" + token + "'");
  }
  if (p < 0.0 || p > 1.0) {
    fail(line_no, std::string(what) + " must be in [0,1], got '" + token + "'");
  }
  return p;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_no,
                        const char* what) {
  try {
    return std::stoull(token);
  } catch (const std::exception&) {
    fail(line_no,
         std::string(what) + " must be an integer, got '" + token + "'");
  }
}

/// Splits "0,1|2" into {{0,1},{2}}.
std::vector<std::vector<NodeId>> parse_groups(const std::string& token,
                                              std::size_t line_no) {
  std::vector<std::vector<NodeId>> groups;
  std::istringstream group_stream(token);
  std::string group;
  while (std::getline(group_stream, group, '|')) {
    std::vector<NodeId> ids;
    std::istringstream id_stream(group);
    std::string id;
    while (std::getline(id_stream, id, ',')) {
      if (id.empty()) {
        fail(line_no, "empty node id in partition groups '" + token + "'");
      }
      ids.push_back(
          static_cast<NodeId>(parse_u64(id, line_no, "partition node id")));
    }
    if (ids.empty()) {
      fail(line_no, "empty group in partition groups '" + token + "'");
    }
    groups.push_back(std::move(ids));
  }
  if (groups.size() < 2) {
    fail(line_no, "partition needs at least two '|'-separated groups");
  }
  return groups;
}

}  // namespace

bool Partition::separates(NodeId from, NodeId to) const {
  const auto group_of = [&](NodeId node) -> int {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (std::find(groups[g].begin(), groups[g].end(), node) !=
          groups[g].end()) {
        return static_cast<int>(g);
      }
    }
    return -1;  // unlisted nodes are unaffected
  };
  const int gf = group_of(from);
  const int gt = group_of(to);
  return gf >= 0 && gt >= 0 && gf != gt;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "FaultPlan: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    line_no += 1;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "seed") {
      std::string value;
      if (!(fields >> value)) {
        fail(line_no, "expected 'seed <u64>'");
      }
      plan.seed_ = parse_u64(value, line_no, "seed");
    } else if (directive == "link") {
      std::string from_token;
      std::string to_token;
      if (!(fields >> from_token >> to_token)) {
        fail(line_no, "expected 'link <from|*> <to|*> ...'");
      }
      LinkPattern pattern;
      if (from_token == "*") {
        pattern.from_any = true;
      } else {
        pattern.from = static_cast<NodeId>(
            parse_u64(from_token, line_no, "link endpoint"));
      }
      if (to_token == "*") {
        pattern.to_any = true;
      } else {
        pattern.to =
            static_cast<NodeId>(parse_u64(to_token, line_no, "link endpoint"));
      }
      std::string knob;
      while (fields >> knob) {
        std::string value;
        if (!(fields >> value)) {
          fail(line_no, "'" + knob + "' is missing its value");
        }
        if (knob == "drop") {
          pattern.rule.drop = parse_probability(value, line_no, "drop");
        } else if (knob == "dup") {
          pattern.rule.duplicate = parse_probability(value, line_no, "dup");
        } else if (knob == "reorder") {
          pattern.rule.reorder = parse_probability(value, line_no, "reorder");
        } else if (knob == "delay") {
          std::string max_value;
          if (!(fields >> max_value)) {
            fail(line_no, "expected 'delay <min_us> <max_us>'");
          }
          pattern.rule.delay_min_us = static_cast<SimTime>(
              parse_u64(value, line_no, "delay minimum"));
          pattern.rule.delay_max_us = static_cast<SimTime>(
              parse_u64(max_value, line_no, "delay maximum"));
          if (pattern.rule.delay_min_us > pattern.rule.delay_max_us) {
            fail(line_no, "delay minimum exceeds maximum");
          }
        } else {
          fail(line_no, "unknown link knob '" + knob + "'");
        }
      }
      plan.rules_.push_back(std::move(pattern));
    } else if (directive == "partition") {
      std::string start_token;
      std::string duration_token;
      std::string groups_token;
      std::string extra;
      if (!(fields >> start_token >> duration_token >> groups_token) ||
          (fields >> extra)) {
        fail(line_no, "expected 'partition <start_us> <duration_us> <groups>'");
      }
      Partition partition;
      partition.start_us = static_cast<SimTime>(
          parse_u64(start_token, line_no, "partition start"));
      partition.duration_us = static_cast<SimTime>(
          parse_u64(duration_token, line_no, "partition duration"));
      partition.groups = parse_groups(groups_token, line_no);
      plan.partitions_.push_back(std::move(partition));
    } else if (directive == "crash") {
      std::string node_token;
      std::string at_token;
      std::string extra;
      if (!(fields >> node_token >> at_token) || (fields >> extra)) {
        fail(line_no, "expected 'crash <node> <at_us>'");
      }
      CrashPoint crash;
      crash.node =
          static_cast<NodeId>(parse_u64(node_token, line_no, "crash node"));
      crash.at_us =
          static_cast<SimTime>(parse_u64(at_token, line_no, "crash time"));
      plan.crashes_.push_back(crash);
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  return plan;
}

const LinkRule* FaultPlan::rule_for(NodeId from, NodeId to) const {
  const LinkPattern* best = nullptr;
  for (const LinkPattern& pattern : rules_) {
    if (!pattern.matches(from, to)) {
      continue;
    }
    if (best == nullptr || pattern.wildcards() < best->wildcards()) {
      best = &pattern;
    }
  }
  return best == nullptr ? nullptr : &best->rule;
}

bool FaultPlan::partitioned(NodeId from, NodeId to, SimTime now_us) const {
  for (const Partition& partition : partitions_) {
    if (partition.active_at(now_us) && partition.separates(from, to)) {
      return true;
    }
  }
  return false;
}

std::optional<SimTime> FaultPlan::crash_time(NodeId node) const {
  for (const CrashPoint& crash : crashes_) {
    if (crash.node == node) {
      return crash.at_us;
    }
  }
  return std::nullopt;
}

}  // namespace cbc::fault
