// State transfer for crash recovery — the frame pair and the pre-stack
// bootstrap client.
//
// A recovering member must not bring its protocol stack up on stale
// state: any message delivered against a pre-recovery baseline would
// corrupt the checker's digest chain. So the transfer happens BEFORE the
// stack exists: a raw UDP socket is bound to the member's own configured
// address (peers therefore identify the datagrams as coming from that
// member) and a StateRequest is sent to a live peer, framed exactly as
// the peer's stack expects — the batching layer's [u32 count][u32 len]
// envelope around a reliable-layer out-of-band (kOob) frame. The peer's
// ReliableEndpoint hands the payload to its oob_handler, which replies
// with a StateResponse carrying the peer's latest stable-point
// Checkpoint; the client parses the response out of the same framing,
// retries on silence, and only then is the node constructed from the
// transferred state.
//
// Oob payload layout:
//
//     request:  u8 kStateRequestTag   u64 requester  u64 have
//     response: u8 kStateResponseTag  Checkpoint
//
// `have` is the requester's own digest-chain length — advisory (the
// response always carries the full chain; stable-point agreement makes
// the requester's prefix and the responder's chain interchangeable).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/checkpoint.h"
#include "transport/transport.h"

namespace cbc::fault {

inline constexpr std::uint8_t kStateRequestTag = 1;
inline constexpr std::uint8_t kStateResponseTag = 2;

struct StateRequest {
  NodeId requester = 0;
  std::uint64_t have = 0;  ///< digest-chain length already held
};

/// Oob payloads (the bytes handed to ReliableEndpoint::send_oob and
/// received by its oob_handler). Parsers return nullopt on malformed
/// input — these bytes come off an untrusted wire.
std::vector<std::uint8_t> encode_state_request(const StateRequest& request);
std::optional<StateRequest> parse_state_request(
    std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_state_response(const Checkpoint& snapshot);
std::optional<Checkpoint> parse_state_response(
    std::span<const std::uint8_t> payload);

struct TransferOptions {
  sockaddr_in self{};  ///< bind here: the recovering member's own address
  sockaddr_in peer{};  ///< live member to fetch from
  int retry_interval_ms = 200;
  int timeout_ms = 30'000;
};

/// Blocking pre-stack fetch of a live peer's latest stable checkpoint.
/// Returns nullopt on timeout; throws InvalidArgument on socket setup
/// failure (e.g. the member's address is still held by the old process).
std::optional<Checkpoint> fetch_checkpoint_blocking(
    const StateRequest& request, const TransferOptions& options);

}  // namespace cbc::fault
