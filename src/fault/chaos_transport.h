// Deterministic fault injection at the transport seam.
//
// ChaosTransport is a decorator over any Transport (SimTransport for
// in-process scenarios, UdpTransport for the real cluster): every send is
// passed through the installed FaultPlan and either forwarded, dropped,
// duplicated, delayed, or handed an extra overtaking delay (reorder).
// Receive paths are untouched — faults are injected exactly once, on the
// sender's side of the link, so wrapping every node's transport does not
// square the loss rate.
//
// Determinism: each directed link draws from its own Rng stream derived
// from (plan seed, from, to), and every send consumes the same fixed
// sequence of draws (drop, duplicate, delay, reorder) regardless of which
// faults are enabled. Two runs with the same plan, seed, and traffic are
// therefore bit-identical — over SimTransport the whole schedule replays.
//
// Crash points: frames to or from a crashed node are dropped once its
// time arrives. When `Options::local_node` names this process's own id
// and the plan schedules its crash, `on_crash` fires (once, via the inner
// transport's timer) so the process can exit for real — the cluster
// harness relaunches it with `--recover`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "fault/fault_plan.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/transport.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace cbc::fault {

/// Fault-injecting decorator. Borrows the inner transport, which must
/// outlive it.
class ChaosTransport final : public Transport {
 public:
  struct Options {
    FaultPlan plan;
    /// This process's own node id; enables the local crash point.
    std::optional<NodeId> local_node;
    /// Fired (once) when the local node's scripted crash time arrives.
    std::function<void()> on_crash;
    /// Observability sinks (fault.* counters). Default: off.
    obs::Hooks obs{};
  };

  struct ChaosStats {
    std::uint64_t forwarded = 0;        ///< frames passed through untouched
    std::uint64_t drops = 0;            ///< lost to a link drop rate
    std::uint64_t duplicates = 0;       ///< extra copies injected
    std::uint64_t delays = 0;           ///< frames given added latency
    std::uint64_t reorders = 0;         ///< frames given an overtaking delay
    std::uint64_t partition_drops = 0;  ///< lost to an active partition
    std::uint64_t crash_drops = 0;      ///< to/from a crashed node
  };

  ChaosTransport(Transport& inner, Options options);

  NodeId add_endpoint(Handler handler) override;
  [[nodiscard]] std::size_t endpoint_count() const override;
  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override;
  void schedule(SimTime delay_us, std::function<void()> action) override;
  [[nodiscard]] SimTime now_us() const override;

  [[nodiscard]] ChaosStats stats() const;

 private:
  using LinkKey = std::pair<NodeId, NodeId>;

  /// Lazily creates the link's deterministic stream.
  Rng& link_rng(NodeId from, NodeId to) CBC_REQUIRES(mutex_);
  /// True when either end is past its scripted crash time.
  [[nodiscard]] bool crashed(NodeId node, SimTime now) const;
  void arm_local_crash();

  Transport& inner_;
  Options options_;

  mutable Mutex mutex_{kRankTransport, "chaos state"};
  std::map<LinkKey, Rng> link_rngs_ CBC_GUARDED_BY(mutex_);
  bool crash_fired_ CBC_GUARDED_BY(mutex_) = false;
  ChaosStats stats_ CBC_GUARDED_BY(mutex_);
  // Last member: unregisters before the stats it reads are torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc::fault
