// Stable-point checkpoints: crash-recovery state at the paper's natural
// consistency boundary.
//
// At every stable point a member's state is, by construction, identical
// at all members ("without any explicit agreement protocol", §4.1) — so
// a snapshot taken exactly there needs no coordination to be a valid
// recovery point for the whole group. A Checkpoint bundles everything a
// dead member needs to resume as itself rather than as a blind observer:
//
//   - the app-state snapshot (opaque blob, the replica's stable state)
//   - the stable digest chain up to that point (so the InvariantChecker
//     can keep asserting agreement across the crash)
//   - the delivered frontier (vector clock of the stable cut — the
//     causal baseline the recovering member adopts)
//   - the closing sync's MessageId (the front-end's causal anchor)
//
// File layout (little-endian, via util/serde):
//
//     u32 magic 'CBCK'   u32 version
//     u64 node           u64 cycles (stable points captured)
//     u64_vec stable digest chain
//     MessageId last_sync   VectorClock frontier
//     blob app_state
//
// Writes are atomic (tmp + rename) so a crash mid-checkpoint leaves the
// previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/message_id.h"
#include "time/vector_clock.h"
#include "transport/transport.h"
#include "util/serde.h"

namespace cbc::fault {

struct Checkpoint {
  static constexpr std::uint32_t kMagic = 0x4342434BU;  // "CBCK"
  static constexpr std::uint32_t kVersion = 1;

  NodeId node = 0;
  /// Stable cycles closed at capture time (== stable_digests.size()).
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> stable_digests;
  MessageId last_sync = MessageId::null();
  VectorClock frontier;
  std::vector<std::uint8_t> app_state;

  void encode(Writer& writer) const;
  /// Throws SerdeError / InvalidArgument on truncation or bad magic.
  static Checkpoint decode(Reader& reader);

  /// Atomically persists to `path` (tmp + rename); throws on I/O failure.
  void save(const std::string& path) const;
  /// Loads and validates a checkpoint file; throws on any failure.
  static Checkpoint load(const std::string& path);
};

}  // namespace cbc::fault
