#include "fault/chaos_transport.h"

#include "obs/flight_recorder.h"
#include "util/ensure.h"

namespace cbc::fault {

namespace {

/// Stream key for one directed link: seed mixed with (from, to) through a
/// splitmix-style finalizer so adjacent links get unrelated streams.
std::uint64_t link_stream_seed(std::uint64_t seed, NodeId from, NodeId to) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(from) << 32 |
                            static_cast<std::uint64_t>(to));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Extra overtaking delay for reordered frames: long enough to land after
/// frames sent (and possibly delayed) shortly afterwards.
constexpr SimTime kReorderDelayMinUs = 500;
constexpr SimTime kReorderDelayMaxUs = 2000;
/// Offset separating a duplicate from its original.
constexpr SimTime kDuplicateOffsetUs = 50;

/// MessageId stamped into kFault flight records for one wire frame. The
/// lockstep invariant (one reliable data frame per broadcast per link)
/// makes the link seq of a kData header [u8 1][u64 seq le] the sender's
/// broadcast seq; control/heartbeat/oob frames record as seq 0.
MessageId frame_flight_id(NodeId from, const SharedBuffer& frame) {
  std::uint64_t seq = 0;
  const std::span<const std::uint8_t> bytes = frame->bytes();
  if (bytes.size() >= 9 && bytes[0] == 1) {
    for (std::size_t i = 8; i >= 1; --i) {
      seq = (seq << 8) | bytes[i];
    }
  }
  return MessageId{from, seq};
}

void flight_fault(const MessageId& id, obs::FaultKind kind) {
  obs::flight_record(obs::FlightEvent::kFault, id,
                     static_cast<std::uint64_t>(kind));
}

}  // namespace

ChaosTransport::ChaosTransport(Transport& inner, Options options)
    : inner_(inner), options_(std::move(options)) {
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "fault";
  }
  arm_local_crash();
  if (options_.obs.has_metrics()) {
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const ChaosStats s = stats();
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".forwarded", s.forwarded);
          sink.counter(prefix + ".drops", s.drops);
          sink.counter(prefix + ".duplicates", s.duplicates);
          sink.counter(prefix + ".delays", s.delays);
          sink.counter(prefix + ".reorders", s.reorders);
          sink.counter(prefix + ".partition_drops", s.partition_drops);
          sink.counter(prefix + ".crash_drops", s.crash_drops);
        });
  }
}

void ChaosTransport::arm_local_crash() {
  if (!options_.local_node.has_value() || !options_.on_crash) {
    return;
  }
  const std::optional<SimTime> at =
      options_.plan.crash_time(*options_.local_node);
  if (!at.has_value()) {
    return;
  }
  const SimTime now = inner_.now_us();
  const SimTime delay = *at > now ? *at - now : 0;
  inner_.schedule(delay, [this] {
    bool fire = false;
    {
      const LockGuard guard(mutex_);
      fire = !crash_fired_;
      crash_fired_ = true;
    }
    if (fire) {
      // Mark the scripted crash point in the journal before the handler
      // (which typically dumps the ring and _Exit()s) runs.
      flight_fault(MessageId{options_.local_node.value_or(kNoNode), 0},
                   obs::FaultKind::kCrash);
      options_.on_crash();
    }
  });
}

NodeId ChaosTransport::add_endpoint(Handler handler) {
  // Receive path is untouched: faults are injected exactly once, on the
  // sending side of each link.
  return inner_.add_endpoint(std::move(handler));
}

std::size_t ChaosTransport::endpoint_count() const {
  return inner_.endpoint_count();
}

Rng& ChaosTransport::link_rng(NodeId from, NodeId to) {
  auto it = link_rngs_.find({from, to});
  if (it == link_rngs_.end()) {
    it = link_rngs_
             .emplace(LinkKey{from, to},
                      Rng(link_stream_seed(options_.plan.seed(), from, to)))
             .first;
  }
  return it->second;
}

bool ChaosTransport::crashed(NodeId node, SimTime now) const {
  const std::optional<SimTime> at = options_.plan.crash_time(node);
  return at.has_value() && now >= *at;
}

void ChaosTransport::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(frame != nullptr, "ChaosTransport::send: null frame");
  const SimTime now = inner_.now_us();

  bool duplicate = false;
  SimTime delay_us = 0;
  {
    const LockGuard guard(mutex_);
    if (crashed(from, now) || crashed(to, now)) {
      stats_.crash_drops += 1;
      flight_fault(frame_flight_id(from, frame), obs::FaultKind::kCrashDrop);
      return;
    }
    if (options_.plan.partitioned(from, to, now)) {
      stats_.partition_drops += 1;
      flight_fault(frame_flight_id(from, frame),
                   obs::FaultKind::kPartitionDrop);
      return;
    }
    const LinkRule* rule = options_.plan.rule_for(from, to);
    if (rule != nullptr && !rule->quiet()) {
      // Fixed draw order — drop, duplicate, delay, reorder — consumed on
      // EVERY send so the stream stays aligned across runs whichever
      // faults actually fire.
      Rng& rng = link_rng(from, to);
      const bool dropped = rng.next_bool(rule->drop);
      duplicate = rng.next_bool(rule->duplicate);
      if (rule->delay_max_us > 0) {
        delay_us = rng.next_in(rule->delay_min_us, rule->delay_max_us);
      }
      const bool reordered = rng.next_bool(rule->reorder);
      if (reordered) {
        delay_us += rng.next_in(kReorderDelayMinUs, kReorderDelayMaxUs);
        stats_.reorders += 1;
        flight_fault(frame_flight_id(from, frame), obs::FaultKind::kReorder);
      }
      if (dropped) {
        stats_.drops += 1;
        flight_fault(frame_flight_id(from, frame), obs::FaultKind::kDrop);
        return;
      }
      if (delay_us > 0) {
        stats_.delays += 1;
        if (!reordered) {
          flight_fault(frame_flight_id(from, frame), obs::FaultKind::kDelay);
        }
      }
      if (duplicate) {
        stats_.duplicates += 1;
        flight_fault(frame_flight_id(from, frame),
                     obs::FaultKind::kDuplicate);
      }
    }
    stats_.forwarded += 1;
  }

  if (delay_us > 0) {
    inner_.schedule(delay_us, [this, from, to, frame] {
      inner_.send(from, to, frame);
    });
  } else {
    inner_.send(from, to, frame);
  }
  if (duplicate) {
    inner_.schedule(delay_us + kDuplicateOffsetUs,
                    [this, from, to, frame = std::move(frame)] {
                      inner_.send(from, to, frame);
                    });
  }
}

void ChaosTransport::schedule(SimTime delay_us, std::function<void()> action) {
  inner_.schedule(delay_us, std::move(action));
}

SimTime ChaosTransport::now_us() const { return inner_.now_us(); }

ChaosTransport::ChaosStats ChaosTransport::stats() const {
  const LockGuard guard(mutex_);
  return stats_;
}

}  // namespace cbc::fault
