#include "fault/state_transfer.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "transport/reliable.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc::fault {

namespace {

/// Wraps an oob payload in the on-the-wire framing the peer's stack
/// expects: the batching layer's one-entry batch around a reliable kOob
/// frame.
std::vector<std::uint8_t> frame_for_wire(
    std::span<const std::uint8_t> oob_payload) {
  Writer oob;
  oob.u8(ReliableEndpoint::kOobFrameType);
  oob.raw(oob_payload);
  Writer batch;
  batch.u32(1);
  batch.blob(oob.bytes());
  return batch.take();
}

/// Scans one received datagram (batch framing) for a kOob inner frame
/// carrying a parseable StateResponse.
std::optional<Checkpoint> scan_datagram(std::span<const std::uint8_t> bytes) {
  try {
    Reader reader(bytes);
    const std::uint32_t count = reader.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::span<const std::uint8_t> inner = reader.blob_view();
      if (inner.empty() || inner[0] != ReliableEndpoint::kOobFrameType) {
        continue;
      }
      std::optional<Checkpoint> snapshot =
          parse_state_response(inner.subspan(1));
      if (snapshot.has_value()) {
        return snapshot;
      }
    }
  } catch (const SerdeError&) {
    // Not batch framing (or truncated) — some other traffic aimed at the
    // dead member's address. Ignore.
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::uint8_t> encode_state_request(const StateRequest& request) {
  Writer writer;
  writer.u8(kStateRequestTag);
  writer.u64(request.requester);
  writer.u64(request.have);
  return writer.take();
}

std::optional<StateRequest> parse_state_request(
    std::span<const std::uint8_t> payload) {
  try {
    Reader reader(payload);
    if (reader.u8() != kStateRequestTag) {
      return std::nullopt;
    }
    StateRequest request;
    request.requester = static_cast<NodeId>(reader.u64());
    request.have = reader.u64();
    if (!reader.exhausted()) {
      return std::nullopt;
    }
    return request;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_state_response(const Checkpoint& snapshot) {
  Writer writer;
  writer.u8(kStateResponseTag);
  snapshot.encode(writer);
  return writer.take();
}

std::optional<Checkpoint> parse_state_response(
    std::span<const std::uint8_t> payload) {
  try {
    Reader reader(payload);
    if (reader.u8() != kStateResponseTag) {
      return std::nullopt;
    }
    Checkpoint snapshot = Checkpoint::decode(reader);
    if (!reader.exhausted()) {
      return std::nullopt;
    }
    return snapshot;
  } catch (const InvalidArgument&) {
    return std::nullopt;
  }
}

std::optional<Checkpoint> fetch_checkpoint_blocking(
    const StateRequest& request, const TransferOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  require(fd >= 0, "state transfer: cannot create socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&options.self),
             sizeof(options.self)) != 0) {
    ::close(fd);
    throw InvalidArgument(
        "state transfer: cannot bind the member's own address (is the old "
        "process still running?)");
  }
  timeval tv{};
  tv.tv_sec = options.retry_interval_ms / 1000;
  tv.tv_usec = (options.retry_interval_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  const std::vector<std::uint8_t> wire =
      frame_for_wire(encode_state_request(request));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.timeout_ms);
  std::vector<std::uint8_t> buf(64 * 1024);
  std::optional<Checkpoint> result;
  // The request is re-sent on a wall-clock period (not on recv timeouts):
  // peers keep retransmitting old traffic at the dead member's address, so
  // the socket is rarely silent — the retry must not starve behind it.
  auto next_request = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    if (std::chrono::steady_clock::now() >= next_request) {
      (void)::sendto(fd, wire.data(), wire.size(), 0,
                     reinterpret_cast<const sockaddr*>(&options.peer),
                     sizeof(options.peer));
      next_request = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options.retry_interval_ms);
    }
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      continue;  // recv timeout elapsed — loop re-checks the retry clock
    }
    result = scan_datagram(
        std::span<const std::uint8_t>(buf.data(), static_cast<std::size_t>(n)));
    if (result.has_value()) {
      break;
    }
  }
  ::close(fd);
  return result;
}

}  // namespace cbc::fault
