// Seeded, declarative fault-injection plans.
//
// A FaultPlan is the single description of the adversity a run must
// survive: per-link loss/duplication/delay/reorder rates, scripted
// network partitions with heal times, and scheduled crash points. The
// same plan text drives both the in-process deterministic simulator
// (ScheduleExplorer scenarios over SimTransport) and the multi-process
// cluster (`cbc_node --fault-plan`), so a schedule that breaks the
// checker in simulation is the same schedule the real cluster is
// hammered with — the paper's reproducibility emphasis applied to the
// faults themselves, not just the protocol.
//
// Plan text format (one directive per line, '#' comments):
//
//     seed <u64>
//     link <from|*> <to|*> [drop <p>] [dup <p>] [delay <min_us> <max_us>]
//                          [reorder <p>]
//     partition <start_us> <duration_us> <ids>|<ids>[|<ids>...]
//     crash <node> <at_us>
//
// Link rules match most-specific-first (exact pair, then `from *`, then
// `* to`, then `* *`); probabilities are in [0,1]. A partition drops
// every frame crossing between its groups during [start, start+duration);
// nodes absent from every group are unaffected. A crash point silences a
// node (all frames to/from it dropped) from `at_us` on — and, when the
// plan is installed on that node's own ChaosTransport, fires the
// `on_crash` hook so the process can die for real.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "transport/transport.h"

namespace cbc::fault {

/// Per-link fault rates. Wildcards are encoded out-of-band (LinkPattern);
/// a rule with all-zero rates is a valid "quiet" override.
struct LinkRule {
  double drop = 0.0;       ///< P(frame silently lost)
  double duplicate = 0.0;  ///< P(frame delivered twice)
  double reorder = 0.0;    ///< P(frame gets an extra overtaking delay)
  SimTime delay_min_us = 0;  ///< uniform added latency, lower bound
  SimTime delay_max_us = 0;  ///< uniform added latency, upper bound

  [[nodiscard]] bool quiet() const {
    return drop == 0.0 && duplicate == 0.0 && reorder == 0.0 &&
           delay_max_us == 0;
  }
};

/// A scripted split: frames crossing between two different groups during
/// [start_us, start_us + duration_us) are dropped; the network heals
/// itself when the window closes.
struct Partition {
  SimTime start_us = 0;
  SimTime duration_us = 0;
  std::vector<std::vector<NodeId>> groups;

  [[nodiscard]] bool active_at(SimTime now_us) const {
    return now_us >= start_us && now_us < start_us + duration_us;
  }
  /// True when `from` and `to` sit in different groups of this partition.
  [[nodiscard]] bool separates(NodeId from, NodeId to) const;
};

/// A scheduled process death: the node falls silent at `at_us`.
struct CrashPoint {
  NodeId node = 0;
  SimTime at_us = 0;
};

/// Parsed, immutable fault plan. Value type — copy freely.
class FaultPlan {
 public:
  /// Empty plan: no faults, seed 1.
  FaultPlan() = default;

  /// Loads a plan file; throws InvalidArgument on unreadable/invalid input.
  static FaultPlan load(const std::string& path);
  /// Parses plan text; throws InvalidArgument with a line number on error.
  static FaultPlan parse(std::string_view text);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Most-specific rule for a directed link, or nullptr when no rule
  /// matches (equivalent to a quiet link).
  [[nodiscard]] const LinkRule* rule_for(NodeId from, NodeId to) const;

  /// True when any scripted partition separates `from` and `to` at `now`.
  [[nodiscard]] bool partitioned(NodeId from, NodeId to,
                                 SimTime now_us) const;

  /// The node's scripted crash time, if any.
  [[nodiscard]] std::optional<SimTime> crash_time(NodeId node) const;

  [[nodiscard]] const std::vector<Partition>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] const std::vector<CrashPoint>& crashes() const {
    return crashes_;
  }

  /// True when the plan injects nothing at all.
  [[nodiscard]] bool empty() const {
    return rules_.empty() && partitions_.empty() && crashes_.empty();
  }

 private:
  struct LinkPattern {
    bool from_any = false;
    bool to_any = false;
    NodeId from = 0;
    NodeId to = 0;
    LinkRule rule;

    [[nodiscard]] bool matches(NodeId f, NodeId t) const {
      return (from_any || from == f) && (to_any || to == t);
    }
    /// Lower is more specific: exact=0, from-wild... see rule_for.
    [[nodiscard]] int wildcards() const {
      return (from_any ? 1 : 0) + (to_any ? 2 : 0);
    }
  };

  std::uint64_t seed_ = 1;
  std::vector<LinkPattern> rules_;
  std::vector<Partition> partitions_;
  std::vector<CrashPoint> crashes_;
};

}  // namespace cbc::fault
