#include "fault/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "util/ensure.h"

namespace cbc::fault {

void Checkpoint::encode(Writer& writer) const {
  writer.u32(kMagic);
  writer.u32(kVersion);
  writer.u64(node);
  writer.u64(cycles);
  writer.u64_vec(stable_digests);
  last_sync.encode(writer);
  frontier.encode(writer);
  writer.blob(app_state);
}

Checkpoint Checkpoint::decode(Reader& reader) {
  const std::uint32_t magic = reader.u32();
  require(magic == kMagic, "Checkpoint: bad magic");
  const std::uint32_t version = reader.u32();
  require(version == kVersion,
          "Checkpoint: unsupported version " + std::to_string(version));
  Checkpoint checkpoint;
  checkpoint.node = static_cast<NodeId>(reader.u64());
  checkpoint.cycles = reader.u64();
  checkpoint.stable_digests = reader.u64_vec();
  checkpoint.last_sync = MessageId::decode(reader);
  checkpoint.frontier = VectorClock::decode(reader);
  checkpoint.app_state = reader.blob();
  require(checkpoint.cycles == checkpoint.stable_digests.size(),
          "Checkpoint: cycle count disagrees with digest chain length");
  return checkpoint;
}

void Checkpoint::save(const std::string& path) const {
  Writer writer;
  encode(writer);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "Checkpoint: cannot write '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(writer.bytes().data()),
              static_cast<std::streamsize>(writer.size()));
    require(out.good(), "Checkpoint: short write to '" + tmp + "'");
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "Checkpoint: rename to '" + path + "' failed");
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "Checkpoint: cannot read '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  Reader reader(bytes);
  Checkpoint checkpoint = decode(reader);
  require(reader.exhausted(), "Checkpoint: trailing bytes in '" + path + "'");
  return checkpoint;
}

}  // namespace cbc::fault
