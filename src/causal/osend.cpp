#include "causal/osend.h"

#include <deque>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/msg_trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

OSendMember::OSendMember(Transport& transport, const GroupView& view,
                         DeliverFn deliver, Options options)
    : transport_(transport),
      view_(view),
      deliver_(std::move(deliver)),
      options_(options),
      endpoint_(
          transport,
          [this](NodeId from, const WireFrame& frame) {
            on_receive(from, frame);
          },
          options.reliability),
      delivered_prefix_(view.size()),
      stable_floor_(view.size()),
      knowledge_(view.size()) {
  require(static_cast<bool>(deliver_), "OSendMember: empty deliver callback");
  require(view_.contains(endpoint_.id()),
          "OSendMember: transport id not in the group view; register "
          "members in ascending view order");
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "osend";
  }
  if (options_.obs.has_metrics()) {
    hold_hist_ =
        &options_.obs.metrics->histogram(options_.obs.prefix + ".hold_us");
    // Scrape-time migration of OrderingStats onto the registry: the
    // struct stays the storage (stats() keeps working); the collector
    // reads it under the stack lock when scraped.
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const LockGuard guard(mutex_);
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".broadcasts", stats_.broadcasts);
          sink.counter(prefix + ".received", stats_.received);
          sink.counter(prefix + ".delivered", stats_.delivered);
          sink.counter(prefix + ".held_back", stats_.held_back);
          sink.gauge(prefix + ".max_holdback_depth",
                     static_cast<double>(stats_.max_holdback_depth));
          sink.counter(prefix + ".duplicates", stats_.duplicates);
          sink.counter(prefix + ".malformed", stats_.malformed);
          sink.gauge(prefix + ".holdback_depth",
                     static_cast<double>(pending_.size()));
        });
  }
  if (options_.reliability.enabled && options_.reliability.suspect_after_us > 0) {
    std::vector<NodeId> peers;
    for (const NodeId member : view_.members()) {
      if (member != id()) {
        peers.push_back(member);
      }
    }
    endpoint_.monitor_peers(peers);
  }
}

void OSendMember::set_deliver(DeliverFn deliver) {
  const LockGuard guard(mutex_);
  require(static_cast<bool>(deliver), "OSendMember: empty deliver callback");
  deliver_ = std::move(deliver);
}

MessageId OSendMember::broadcast(std::string label,
                                 std::vector<std::uint8_t> payload,
                                 const DepSpec& deps) {
  const LockGuard guard(mutex_);
  require(!sends_suspended_ || label.rfind("__vc", 0) == 0,
          "OSendMember::broadcast: sends suspended during a view change");
  const MessageId message_id{id(), next_seq_++};
  stats_.broadcasts += 1;
  obs::trace_submit(options_.obs, message_id, label);
  obs::flight_record(obs::FlightEvent::kSubmit, message_id);

  // Encode ONCE: prelude + envelope section into a single shared frame.
  Writer writer;
  writer.u64(view_.id());  // receivers buffer frames from future views
  delivered_prefix_.encode(writer);
  const std::size_t section_offset = writer.size();
  Envelope::encode_section(writer, message_id, label, deps,
                           transport_.now_us(), payload);
  const SharedBuffer frame = writer.take_shared();
  obs::flight_record(obs::FlightEvent::kEncode, message_id, frame->size());

  for (const NodeId member : view_.members()) {
    if (member != id()) {
      endpoint_.send(member, frame);
    }
  }
  // Local copy bypasses the network: a sender has "seen" its own message
  // the moment it generates it (it still honours any unseen dependency).
  // Parsing our own frame keeps self-delivery on the same zero-copy path.
  try_deliver(Delivery(Envelope::parse(frame, section_offset)));
  return message_id;
}

void OSendMember::on_receive(NodeId from, const WireFrame& frame) {
  const LockGuard guard(mutex_);
  // Wire bytes are untrusted once the transport is a real network: a frame
  // that does not decode is counted and dropped, never allowed to tear
  // down the receive path (the reliability layer has already accepted it,
  // so there is no retransmission to wait for — the sender's copy was
  // corrupt or forged).
  ViewId sender_view = 0;
  VectorClock sender_prefix;
  Delivery delivery;
  try {
    Reader reader(frame.bytes());
    sender_view = reader.u64();
    if (sender_view > view_.id()) {
      // Successor-view traffic racing ahead of our flush: no message may be
      // delivered in different views at different members, so hold it until
      // we install that view ourselves.
      foreign_buffer_.push_back(frame);
      return;
    }
    sender_prefix = VectorClock::decode(reader);
    delivery =
        Delivery(Envelope::parse(frame.buffer, frame.offset + reader.position()));
  } catch (const SerdeError&) {
    stats_.malformed += 1;
    return;
  }
  stats_.received += 1;

  const auto sender_rank = view_.rank_of(from);
  if (!sender_rank.has_value()) {
    // A joiner may start broadcasting in the successor view before this
    // member has installed it; buffer and replay at install_view().
    foreign_buffer_.push_back(frame);
    return;
  }
  if (sender_prefix.width() == view_.size()) {
    knowledge_.observe_row(static_cast<NodeId>(*sender_rank), sender_prefix);
  }
  try_deliver(std::move(delivery));
}

void OSendMember::install_view(const GroupView& new_view) {
  const LockGuard guard(mutex_);
  require(new_view.contains(id()), "install_view: self not in the new view");
  require(new_view.id() > view_.id(), "install_view: view id must advance");

  const GroupView old_view = view_;
  auto remap = [&](const VectorClock& old_clock) {
    VectorClock fresh(new_view.size());
    for (std::size_t new_rank = 0; new_rank < new_view.size(); ++new_rank) {
      const NodeId member = new_view.member_at(new_rank);
      const auto old_rank = old_view.rank_of(member);
      if (old_rank.has_value()) {
        fresh.set(static_cast<NodeId>(new_rank),
                  old_clock.at(static_cast<NodeId>(*old_rank)));
      }
    }
    return fresh;
  };

  const VectorClock new_prefix = remap(delivered_prefix_);
  const VectorClock new_floor = remap(stable_floor_);
  MatrixClock new_knowledge(new_view.size());
  for (std::size_t new_rank = 0; new_rank < new_view.size(); ++new_rank) {
    const NodeId member = new_view.member_at(new_rank);
    const auto old_rank = old_view.rank_of(member);
    if (old_rank.has_value()) {
      new_knowledge.observe_row(
          static_cast<NodeId>(new_rank),
          remap(knowledge_.row(static_cast<NodeId>(*old_rank))));
    }
  }
  view_ = new_view;
  delivered_prefix_ = new_prefix;
  stable_floor_ = new_floor;
  knowledge_ = std::move(new_knowledge);

  // Replay traffic buffered for this (or a future) view.
  std::vector<WireFrame> buffered = std::move(foreign_buffer_);
  foreign_buffer_.clear();
  for (const WireFrame& frame : buffered) {
    // Re-enter through the normal receive path (sender is parsed from the
    // frame; frames from still-future views re-buffer harmlessly). Frames
    // were buffered after only a view-id peek, so the rest of the prelude
    // is still untrusted here.
    try {
      Reader reader(frame.bytes());
      (void)reader.u64();  // view id
      (void)VectorClock::decode(reader);
      const MessageId parsed = MessageId::decode(reader);
      on_receive(parsed.sender, frame);
    } catch (const SerdeError&) {
      stats_.malformed += 1;
    }
  }
}

void OSendMember::adopt_baseline(const VectorClock& baseline) {
  const LockGuard guard(mutex_);
  require(baseline.width() == view_.size(),
          "adopt_baseline: width mismatch with current view");
  std::vector<MessageId> newly_satisfied;
  for (std::size_t rank = 0; rank < view_.size(); ++rank) {
    const NodeId node = static_cast<NodeId>(rank);
    const std::uint64_t target = baseline.at(node);
    if (target <= stable_floor_.at(node)) {
      continue;
    }
    stable_floor_.set(node, target);
    if (delivered_prefix_.at(node) < target) {
      delivered_prefix_.set(node, target);
    }
    // Re-establish prefix contiguity over anything delivered above it.
    auto& above = delivered_above_[view_.member_at(rank)];
    std::uint64_t prefix = delivered_prefix_.at(node);
    while (above.count(prefix + 1) != 0) {
      above.erase(prefix + 1);
      ++prefix;
    }
    delivered_prefix_.set(node, prefix);
    // Dependencies on messages at or below the baseline are now satisfied.
    for (const auto& [dep, waiting] : waiters_) {
      const auto dep_rank = view_.rank_of(dep.sender);
      if (dep_rank.has_value() && *dep_rank == rank && dep.seq <= target) {
        newly_satisfied.push_back(dep);
      }
    }
  }
  const auto self_rank = view_.rank_of(id());
  ensure(self_rank.has_value(), "adopt_baseline: self not in view");
  knowledge_.observe_row(static_cast<NodeId>(*self_rank), delivered_prefix_);

  // A recovering member adopting a baseline that covers its own pre-crash
  // broadcasts must resume numbering above them — both at the OSend layer
  // and on the reliable per-link seq (the lockstep invariant: one reliable
  // data frame per broadcast per link), or peers would discard its first
  // new messages as duplicates.
  const std::uint64_t own_floor =
      baseline.at(static_cast<NodeId>(*self_rank));
  if (next_seq_ <= own_floor) {
    next_seq_ = own_floor + 1;
    endpoint_.fast_forward_send_seq(next_seq_);
  }

  // Release any held-back messages whose remaining deps were pre-baseline.
  std::deque<Delivery> ready;
  for (const MessageId& dep : newly_satisfied) {
    const auto waiting = waiters_.find(dep);
    if (waiting == waiters_.end()) {
      continue;
    }
    for (const MessageId& waiter_id : waiting->second) {
      const auto it = pending_.find(waiter_id);
      if (it == pending_.end()) {
        continue;
      }
      ensure(it->second.missing > 0, "adopt_baseline: waiter with no deps");
      if (--it->second.missing == 0) {
        ready.push_back(std::move(it->second.delivery));
        pending_.erase(it);
      }
    }
    waiters_.erase(waiting);
  }
  while (!ready.empty()) {
    Delivery current = std::move(ready.front());
    ready.pop_front();
    try_deliver(std::move(current));
  }
}

void OSendMember::try_deliver(Delivery delivery) {
  if (delivered_.count(delivery.id) != 0 ||
      pending_.count(delivery.id) != 0 ||
      below_stable_floor(delivery.id)) {
    // The floor check matters after crash recovery: peers retransmit
    // messages the adopted baseline already covers; re-delivering one
    // would double-apply it to the replica.
    stats_.duplicates += 1;
    return;
  }
  std::size_t missing = 0;
  for (const MessageId& dep : delivery.deps().ids()) {
    if (delivered_.count(dep) == 0 && !below_stable_floor(dep)) {
      ++missing;
      waiters_[dep].push_back(delivery.id);
    }
  }
  if (missing > 0) {
    const MessageId pending_id = delivery.id;
    const std::int64_t held_since_us =
        options_.obs.any() || obs::flight_recorder() != nullptr
            ? obs::Tracer::wall_now_us()
            : 0;
    obs::flight_record(obs::FlightEvent::kHoldEnter, pending_id, missing);
    pending_.emplace(pending_id, PendingMessage{std::move(delivery), missing,
                                                held_since_us});
    stats_.held_back += 1;
    stats_.max_holdback_depth =
        std::max<std::uint64_t>(stats_.max_holdback_depth, pending_.size());
    return;
  }

  // Deliver, then cascade through pending messages this unblocks. Each
  // entry carries the wall-clock stamp of when it entered the hold-back
  // queue (0 = delivered on arrival) for the hold-time metric.
  std::deque<std::pair<Delivery, std::int64_t>> ready;
  ready.emplace_back(std::move(delivery), 0);
  while (!ready.empty()) {
    auto [current, held_since_us] = std::move(ready.front());
    ready.pop_front();
    const MessageId current_id = current.id;
    deliver_now(std::move(current), held_since_us);
    const auto waiting = waiters_.find(current_id);
    if (waiting == waiters_.end()) {
      continue;
    }
    for (const MessageId& waiter_id : waiting->second) {
      const auto it = pending_.find(waiter_id);
      if (it == pending_.end()) {
        continue;
      }
      ensure(it->second.missing > 0, "OSend: waiter with no missing deps");
      if (--it->second.missing == 0) {
        ready.emplace_back(std::move(it->second.delivery),
                           it->second.held_since_us);
        pending_.erase(it);
      }
    }
    waiters_.erase(waiting);
  }
}

void OSendMember::deliver_now(Delivery delivery,
                              std::int64_t held_since_us) {
  const auto rank = view_.rank_of(delivery.sender);
  protocol_ensure(rank.has_value(), "OSend: delivery from outside the view");
  delivered_.insert(delivery.id);

  // Advance the contiguous delivered prefix for this sender.
  auto& above = delivered_above_[delivery.sender];
  above.insert(delivery.id.seq);
  std::uint64_t prefix = delivered_prefix_.at(static_cast<NodeId>(*rank));
  while (above.count(prefix + 1) != 0) {
    above.erase(prefix + 1);
    ++prefix;
  }
  delivered_prefix_.set(static_cast<NodeId>(*rank), prefix);
  const auto self_rank = view_.rank_of(id());
  ensure(self_rank.has_value(), "OSend: self not in view");
  knowledge_.observe_row(static_cast<NodeId>(*self_rank), delivered_prefix_);

  if (options_.record_graph) {
    graph_.add(delivery.id, delivery.label(), delivery.deps());
  }
  delivery.delivered_at = transport_.now_us();
  if (options_.obs.any() || obs::flight_recorder() != nullptr) {
    const std::int64_t hold_us =
        held_since_us > 0 ? obs::Tracer::wall_now_us() - held_since_us : 0;
    const auto held =
        static_cast<std::uint64_t>(std::max<std::int64_t>(hold_us, 0));
    if (hold_hist_ != nullptr) {
      hold_hist_->record(static_cast<double>(held));
    }
    if (held_since_us > 0) {
      obs::flight_record(obs::FlightEvent::kHoldExit, delivery.id, held);
    }
    obs::flight_record(obs::FlightEvent::kDeliver, delivery.id, held);
    if (options_.obs.any()) {
      obs::trace_deliver(options_.obs, delivery.id, delivery.label(),
                         delivery.deps().ids(), hold_us);
    }
  }
  if (!options_.keep_delivery_log) {
    log_.clear();
  }
  log_.push_back(std::move(delivery));
  stats_.delivered += 1;
  deliver_(log_.back());
}

bool OSendMember::below_stable_floor(MessageId message) const {
  const auto rank = view_.rank_of(message.sender);
  if (!rank.has_value()) {
    return false;
  }
  return message.seq <= stable_floor_.at(static_cast<NodeId>(*rank));
}

bool OSendMember::has_delivered(MessageId message) const {
  const LockGuard guard(mutex_);
  return delivered_.count(message) != 0 || below_stable_floor(message);
}

std::size_t OSendMember::prune_stable() {
  const LockGuard guard(mutex_);
  const VectorClock cut = knowledge_.stable_cut();
  std::size_t pruned = 0;
  for (std::size_t rank = 0; rank < view_.size(); ++rank) {
    const NodeId sender = view_.member_at(rank);
    const std::uint64_t floor = stable_floor_.at(static_cast<NodeId>(rank));
    const std::uint64_t target = cut.at(static_cast<NodeId>(rank));
    for (std::uint64_t seq = floor + 1; seq <= target; ++seq) {
      const MessageId id{sender, seq};
      // Stability implies local delivery (the cut includes our own row).
      ensure(delivered_.count(id) != 0,
             "prune_stable: stable message not delivered locally");
      delivered_.erase(id);
      if (options_.record_graph && graph_.contains(id)) {
        graph_.remove(id);
      }
      ++pruned;
    }
    if (target > floor) {
      stable_floor_.set(static_cast<NodeId>(rank), target);
    }
  }
  return pruned;
}

bool OSendMember::is_stable(MessageId message) const {
  const auto rank = view_.rank_of(message.sender);
  if (!rank.has_value()) {
    return false;
  }
  return knowledge_.is_stable(static_cast<NodeId>(*rank), message.seq);
}

}  // namespace cbc
