// Envelope — the immutable, refcounted unit every discipline broadcasts.
//
// An envelope is one application message plus its ordering header
// (id, label, Occurs_After set, send time), encoded ONCE into a shared
// frame. Every discipline's wire format is
//
//     [discipline prelude][envelope section]
//
// where the prelude carries discipline-specific state (OSend's view id and
// piggybacked delivered-prefix, CBCAST's vector timestamp, ASend's round
// number, the sequencer's global stamp) and the envelope section is this
// shared codec. Senders append the section to their frame; receivers parse
// it in place. The payload is never copied after encoding: hold-back
// queues, the delivery log, and application callbacks all see spans into
// the same refcounted frame (see util/buffer.h for the instrumentation
// that enforces this).
//
// Envelope section wire layout (little-endian, via util/serde):
//
//     MessageId   id        (u32 sender, u64 seq)
//     str         label     (u32 length + bytes)
//     DepSpec     deps      (u32 count + count * MessageId)
//     i64         sent_at   (transport time at broadcast)
//     blob        payload   (u32 length + bytes)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "graph/dep_spec.h"
#include "graph/message_id.h"
#include "util/buffer.h"
#include "util/serde.h"
#include "util/types.h"

namespace cbc {

/// One immutable message. Copying an Envelope bumps a refcount; the frame
/// bytes and decoded header are shared and never duplicated.
class Envelope {
 public:
  Envelope() = default;

  /// True when this envelope holds a message (default-constructed
  /// envelopes are null placeholders, e.g. an ASend SKIP frame).
  [[nodiscard]] bool valid() const { return rec_ != nullptr; }

  /// Encodes the canonical envelope section at the writer's current
  /// position. The caller then finishes the frame with take_shared() and
  /// recovers the Envelope with parse(frame, section_offset).
  static void encode_section(Writer& writer, MessageId id,
                             std::string_view label, const DepSpec& deps,
                             SimTime sent_at,
                             std::span<const std::uint8_t> payload);

  /// Parses the envelope section starting at `offset` within `frame`,
  /// sharing the frame bytes (payload is a view, not a copy). Throws
  /// SerdeError on malformed input.
  static Envelope parse(SharedBuffer frame, std::size_t offset);

  [[nodiscard]] const MessageId& id() const { return rec().id; }
  [[nodiscard]] NodeId sender() const { return rec().id.sender; }
  [[nodiscard]] const std::string& label() const { return rec().label; }
  [[nodiscard]] const DepSpec& deps() const { return rec().deps; }
  [[nodiscard]] SimTime sent_at() const { return rec().sent_at; }

  /// The application payload — a view into the shared frame.
  [[nodiscard]] std::span<const std::uint8_t> payload() const;

  /// The encoded envelope section — spliced verbatim into a new frame by
  /// re-framing layers (the sequencer's ordered broadcast, ASend's round
  /// contribution).
  [[nodiscard]] std::span<const std::uint8_t> section_bytes() const;

  /// The whole frame this envelope lives in (prelude + section).
  [[nodiscard]] const SharedBuffer& frame() const { return rec().frame; }

 private:
  struct Record {
    MessageId id;
    std::string label;
    DepSpec deps;
    SimTime sent_at = 0;
    SharedBuffer frame;
    std::size_t section_offset = 0;
    std::size_t section_length = 0;
    std::size_t payload_offset = 0;
    std::size_t payload_length = 0;
  };

  explicit Envelope(std::shared_ptr<const Record> rec) : rec_(std::move(rec)) {}

  [[nodiscard]] const Record& rec() const;

  std::shared_ptr<const Record> rec_;
};

}  // namespace cbc
