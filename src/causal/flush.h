// View-change flush protocol over a flushable member (virtual-synchrony
// style).
//
// The paper assumes a fixed group per computation (ISIS hosts the
// membership machinery); a production library needs joins and leaves. The
// FlushCoordinator installs a successor view at every surviving member at
// a *consistent cut*: no message is delivered in one view at one member
// and in a different view at another.
//
// Protocol (all traffic rides the member's own broadcast channel, labels
// prefixed "__vc"):
//   1. One member (the membership authority) calls propose(new_view);
//      a __vc_propose broadcast carries the encoded view.
//   2. On delivering the proposal, each member suspends application
//      sends and broadcasts __vc_flush carrying its contiguous
//      delivered-prefix vector.
//   3. A member installs the new view once it has (a) delivered __vc_flush
//      from every old-view member and (b) its own delivered prefix
//      dominates the component-wise max of all flush prefixes — i.e. it
//      has delivered everything anyone had delivered (and hence everything
//      anyone had *sent*, since senders self-deliver). Then sends resume.
//
// A joiner does not participate in the old view's flush: it is simply
// constructed with the successor view; survivors buffer any traffic the
// joiner emits early and replay it at installation (the member's
// foreign-message buffer).
//
// Assumption (documented, enforced): proposals are serialized by a single
// membership authority (the Membership class provides one); conflicting
// concurrent proposals raise ProtocolViolation.
//
// The coordinator is a ProtocolLayer: it owns an abstract ViewSyncMember
// (OSendMember by default), consumes "__vc*" system traffic, and passes
// everything else upward — so it can sit anywhere in a protocol stack.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "causal/osend.h"
#include "util/ensure.h"
#include "group/group_view.h"
#include "stack/protocol_layer.h"
#include "stack/view_sync.h"
#include "time/vector_clock.h"

namespace cbc {

/// Wraps a flushable broadcast member with the flush protocol.
class FlushCoordinator : public ProtocolLayer {
 public:
  /// Invoked after a new view is installed locally.
  using ViewInstalledFn = std::function<void(const GroupView&)>;

  /// Produces an application-state snapshot shipped to joiners inside the
  /// welcome message (captured at the install cut, so it reflects exactly
  /// the old-view traffic).
  using SnapshotFn = std::function<std::vector<std::uint8_t>()>;
  /// Installs a received snapshot at a joiner (called once, before any
  /// new-view application delivery is handed up).
  using AdoptSnapshotFn =
      std::function<void(std::span<const std::uint8_t> snapshot)>;

  /// Composes over an existing flushable member: system ("__vc*")
  /// messages are consumed by the coordinator, everything else is passed
  /// to `app_deliver`.
  FlushCoordinator(std::unique_ptr<ViewSyncMember> member,
                   DeliverFn app_deliver, ViewInstalledFn on_view);

  /// Convenience: constructs an OSendMember underneath.
  FlushCoordinator(Transport& transport, const GroupView& view,
                   DeliverFn app_deliver, ViewInstalledFn on_view)
      : FlushCoordinator(transport, view, std::move(app_deliver),
                         std::move(on_view), OSendMember::Options{}) {}
  FlushCoordinator(Transport& transport, const GroupView& view,
                   DeliverFn app_deliver, ViewInstalledFn on_view,
                   OSendMember::Options options);

  /// Enables application-state transfer to joiners. Survivors call
  /// `snapshot` at each install that admits joiners; a joiner's `adopt`
  /// runs when the first welcome arrives. Set on every member (symmetric).
  void enable_state_transfer(SnapshotFn snapshot, AdoptSnapshotFn adopt);

  /// Proposes a successor view (id must be current id + 1 and contain all
  /// the callers... any membership change except removing this member).
  void propose(const GroupView& new_view);

  [[nodiscard]] ViewSyncMember& member() { return *sync_; }
  [[nodiscard]] const ViewSyncMember& member() const { return *sync_; }

  /// Checked downcast for OSend-specific accessors (graph, stability, GC);
  /// only valid when the coordinator runs over the default OSend member.
  [[nodiscard]] OSendMember& osend() {
    auto* concrete = dynamic_cast<OSendMember*>(sync_);
    require(concrete != nullptr,
            "FlushCoordinator::osend: member is not an OSendMember");
    return *concrete;
  }
  [[nodiscard]] bool view_change_in_progress() const {
    return target_.has_value();
  }

 protected:
  void on_lower_delivery(const Delivery& delivery) override;

 private:
  void handle_propose(const Delivery& delivery);
  void handle_flush(const Delivery& delivery);
  void handle_welcome(const Delivery& delivery);
  void maybe_install();

  ViewSyncMember* sync_ = nullptr;  // the owned lower member, typed
  ViewInstalledFn on_view_;

  std::optional<GroupView> target_;
  // Old-view member -> its flushed delivered-prefix (old-view ranks).
  std::map<NodeId, VectorClock> flushed_;
  // False only for a freshly constructed joiner that has neither flushed
  // through a view change nor adopted a survivor's welcome baseline.
  bool has_baseline_ = false;
  SnapshotFn snapshot_;
  AdoptSnapshotFn adopt_snapshot_;
};

}  // namespace cbc
